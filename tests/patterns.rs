//! Pattern-level integration tests: the paper's worked examples
//! (Figures 1–3) and case studies (Figures 4–6) hold end-to-end when the
//! workloads run on the VM and the profiler consumes live events.

use drms::analysis::{CostPlot, InputMetric};
use drms::core::DrmsConfig;
use drms::workloads::{imgpipe, minidb, patterns};

#[test]
fn figure_2_producer_consumer_scaling() {
    for n in [1i64, 5, 25, 125] {
        let w = patterns::producer_consumer(n);
        let (report, _) = drms::ProfileSession::workload(&w)
            .run()
            .expect("run")
            .into_parts()
            .expect("run");
        let consumer = report.merged_routine(w.focus.unwrap());
        assert_eq!(consumer.rms_plot().last().unwrap().0, 1, "n = {n}");
        assert_eq!(consumer.drms_plot().last().unwrap().0, n as u64, "n = {n}");
    }
}

#[test]
fn figure_3_stream_reader_scaling() {
    for n in [1i64, 7, 49] {
        let w = patterns::stream_reader(n);
        let (report, _) = drms::ProfileSession::workload(&w)
            .run()
            .expect("run")
            .into_parts()
            .expect("run");
        let reader = report.merged_routine(w.focus.unwrap());
        assert_eq!(reader.rms_plot().last().unwrap().0, 1, "n = {n}");
        assert_eq!(reader.drms_plot().last().unwrap().0, n as u64, "n = {n}");
    }
}

#[test]
fn figure_4_rms_collapses_drms_grows() {
    let sizes = [32i64, 64, 128, 256, 512, 1024];
    let w = minidb::minidb_scaling(&sizes);
    let (report, _) = drms::ProfileSession::workload(&w)
        .run()
        .expect("run")
        .into_parts()
        .expect("run");
    let select = report.merged_routine(w.focus.unwrap());
    let rms = CostPlot::of(&select, InputMetric::Rms);
    let drms = CostPlot::of(&select, InputMetric::Drms);
    // drms sees one distinct input size per table; rms compresses them
    // into (at most a couple of) buffer-sized values.
    assert_eq!(drms.len(), sizes.len());
    assert!(rms.len() <= 2);
    // Worst-case cost at the collapsed rms point equals the biggest
    // table's cost — the "false superlinear" signature.
    let max_cost = drms.points.iter().map(|&(_, c)| c).max().unwrap();
    assert_eq!(rms.points.iter().map(|&(_, c)| c).max().unwrap(), max_cost);
}

#[test]
fn figure_6_metric_refinement_chain() {
    let tasks = 24;
    let w = imgpipe::vips(2, tasks, 1);
    let wb = w.program.routine_by_name("wbuffer_write_thread").unwrap();
    let (full, _) = drms::ProfileSession::workload(&w)
        .run()
        .expect("run")
        .into_parts()
        .expect("run");
    let (ext, _) = drms::ProfileSession::workload(&w)
        .drms(DrmsConfig::external_only())
        .run()
        .expect("run")
        .into_parts()
        .expect("run");
    let (none, _) = drms::ProfileSession::workload(&w)
        .drms(DrmsConfig::static_only())
        .run()
        .expect("run")
        .into_parts()
        .expect("run");
    let p_full = full.merged_routine(wb);
    let p_ext = ext.merged_routine(wb);
    let p_none = none.merged_routine(wb);
    // static-only == rms by construction.
    assert_eq!(p_none.drms_plot(), p_full.rms_plot());
    // Each added input source refines the plot.
    assert!(p_ext.distinct_drms() >= p_none.distinct_drms());
    assert!(p_full.distinct_drms() >= p_ext.distinct_drms());
    assert!(p_full.distinct_drms() >= tasks - 2);
}

#[test]
fn write_before_read_suppresses_input_everywhere() {
    // A routine that writes a buffer then reads it back gets zero input
    // for those cells under both metrics, on a real VM run.
    use drms::prelude::*;
    let mut pb = ProgramBuilder::new();
    let scratch = pb.function("scratch", 0, |f| {
        let buf = f.alloc(16);
        f.for_range(0, 16, |f, i| f.store(buf, i, i));
        let acc = f.copy(0);
        f.for_range(0, 16, |f, i| {
            let v = f.load(buf, i);
            let s = f.add(acc, v);
            f.assign(acc, s);
        });
        f.ret(None);
    });
    let main = pb.function("main", 0, |f| {
        f.call_void(scratch, &[]);
        f.ret(None);
    });
    let program = pb.finish(main).unwrap();
    let (report, _) = drms::ProfileSession::new(&program)
        .run()
        .unwrap()
        .into_parts()
        .unwrap();
    let p = report.merged_routine(scratch);
    assert_eq!(p.drms_plot(), vec![(0, p.drms_plot()[0].1)]);
    assert_eq!(p.rms_plot()[0].0, 0);
}
