//! Differential dispatch/batching properties.
//!
//! The fast interpreter core must be *observably equivalent* to the
//! reference interpreter: pre-decoded block dispatch (plain or fused)
//! and batched tool event delivery may change how fast a run goes, but
//! never what it produces. This suite runs every workload family under
//! the full dispatch × batching matrix and asserts identical profile
//! reports, run statistics, metrics registries, drms curves, and
//! recorded trace checksums — including under chaos scheduling and
//! injected kernel faults.

use drms::analysis::{CostPlot, InputMetric};
use drms::prelude::*;
use drms::sched::fnv1a;
use drms::trace::{codec, merge_traces};
use drms::vm::TraceRecorder;
use drms::workloads::{self, Workload};

/// The dispatch/batching matrix; the first entry (reference interpreter,
/// per-event delivery) is the baseline the others must match.
const MATRIX: &[(DecodeMode, usize)] = &[
    (DecodeMode::Off, 1),
    (DecodeMode::Off, 512),
    (DecodeMode::Blocks, 1),
    (DecodeMode::Blocks, 512),
    (DecodeMode::Fused, 1),
    (DecodeMode::Fused, 512),
];

/// One representative of every sweep/bench workload family.
fn families() -> Vec<Workload> {
    vec![
        workloads::patterns::producer_consumer(16),
        workloads::patterns::stream_reader(24),
        workloads::minidb::minidb_scaling(&[32, 64, 128]),
        workloads::minidb::mysqlslap(2, 2, 48),
        workloads::imgpipe::vips(2, 6, 1),
        workloads::sorting::selection_sort_sweep(&[10, 30, 50]),
    ]
}

/// Everything a run exposes that the matrix must keep invariant.
struct Observed {
    report: ProfileReport,
    stats: RunStats,
    metrics_json: String,
    trace_fnv: u64,
}

fn observe(w: &Workload, mut cfg: RunConfig, decode: DecodeMode, batch: usize) -> Observed {
    cfg.decode = decode;
    cfg.event_batch = batch;
    let outcome = ProfileSession::new(&w.program)
        .config(cfg.clone())
        .run()
        .expect("valid program");
    // Trace checksum from a second run with a recorder tool: batched
    // delivery replays through the default `observe_batch`, so the
    // recorded event stream must be byte-identical to per-event mode.
    let mut rec = TraceRecorder::new();
    let mut vm = Vm::new(&w.program, cfg).expect("valid program");
    let _ = vm.run(&mut rec); // a guest abort keeps its partial trace
    let merged = merge_traces(rec.into_traces());
    Observed {
        report: outcome.report,
        stats: outcome.stats,
        metrics_json: outcome.metrics.to_json(),
        trace_fnv: fnv1a(codec::to_text(&merged).as_bytes()),
    }
}

/// Runs `w` under every matrix entry and asserts each one observes
/// exactly what the reference interpreter observes.
fn assert_matrix_equivalent(w: &Workload, base: &RunConfig, label: &str) {
    let (d0, b0) = MATRIX[0];
    let reference = observe(w, base.clone(), d0, b0);
    for &(decode, batch) in &MATRIX[1..] {
        let got = observe(w, base.clone(), decode, batch);
        let tag = format!("{label}: {} under {decode:?}/batch={batch}", w.name);
        assert_eq!(got.report, reference.report, "{tag}: profile report");
        assert_eq!(got.stats, reference.stats, "{tag}: run stats");
        assert_eq!(
            got.metrics_json, reference.metrics_json,
            "{tag}: metrics registry"
        );
        assert_eq!(got.trace_fnv, reference.trace_fnv, "{tag}: trace checksum");
        if let Some(focus) = w.focus {
            let curve = CostPlot::of(&got.report.merged_routine(focus), InputMetric::Drms);
            let want = CostPlot::of(&reference.report.merged_routine(focus), InputMetric::Drms);
            assert_eq!(curve.points, want.points, "{tag}: drms curve");
        }
    }
}

#[test]
fn dispatch_matrix_is_observably_equivalent_across_families() {
    for w in families() {
        assert_matrix_equivalent(&w, &w.run_config(), "default schedule");
    }
}

#[test]
fn equivalence_holds_under_chaos_scheduling() {
    for w in families() {
        for seed in [3u64, 0xC4A0] {
            let cfg = RunConfig {
                policy: SchedPolicy::Chaos { seed },
                ..w.run_config()
            };
            assert_matrix_equivalent(&w, &cfg, &format!("chaos seed {seed}"));
        }
    }
}

#[test]
fn equivalence_holds_under_fault_injection() {
    // Device-backed families, so the plan's short reads and transient
    // errors actually fire inside the kernel model.
    let device_backed = [
        workloads::patterns::stream_reader(24),
        workloads::minidb::minidb_scaling(&[32, 64, 128]),
        workloads::minidb::mysqlslap(2, 2, 48),
    ];
    let plan =
        FaultPlan::parse("seed=11,fd0:shortread:p=1/3,in:eintr:every=5").expect("valid fault spec");
    for w in device_backed {
        let cfg = RunConfig {
            faults: Some(plan.clone()),
            ..w.run_config()
        };
        assert_matrix_equivalent(&w, &cfg, "fault plan");
        // Faults and chaos together: the worst-case nondeterminism the
        // matrix still has to cancel out.
        let cfg = RunConfig {
            policy: SchedPolicy::Chaos { seed: 0xFA17 },
            faults: Some(plan.clone()),
            ..w.run_config()
        };
        assert_matrix_equivalent(&w, &cfg, "fault plan + chaos");
    }
}
