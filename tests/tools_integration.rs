//! Integration tests of the comparison tools over real VM executions:
//! race detection on the workloads, call-graph structure, definedness
//! checking, and the relative overhead ordering of Table 1.

use drms::tools::{CallgrindTool, HelgrindTool, MemcheckTool};
use drms::vm::{run_program, MultiTool, NullTool, Tool};
use drms::workloads::{self, patterns};

#[test]
fn helgrind_is_quiet_on_properly_synchronized_workloads() {
    for w in [
        patterns::producer_consumer(10),
        workloads::parsec::fluidanimate(2, 1),
        workloads::specomp::nab(2, 1),
        workloads::imgpipe::vips(2, 4, 1),
    ] {
        let mut hg = HelgrindTool::new();
        run_program(&w.program, w.run_config(), &mut hg).expect("run");
        assert_eq!(
            hg.race_count(),
            0,
            "{} should be race-free, found {:?}",
            w.name,
            hg.races()
        );
    }
}

#[test]
fn helgrind_flags_an_intentionally_racy_program() {
    use drms::prelude::*;
    let mut pb = ProgramBuilder::new();
    let g = pb.global(1);
    let racer = pb.function("racer", 0, |f| {
        let v = f.load(g.raw() as i64, 0);
        let v2 = f.add(v, 1);
        f.store(g.raw() as i64, 0, v2);
        f.ret(None);
    });
    let main = pb.function("main", 0, |f| {
        let a = f.spawn(racer, &[]);
        let b = f.spawn(racer, &[]);
        f.join(a);
        f.join(b);
        f.ret(None);
    });
    let program = pb.finish(main).unwrap();
    let mut hg = HelgrindTool::new();
    run_program(&program, RunConfig::default(), &mut hg).expect("run");
    assert_eq!(hg.race_count(), 1, "the unsynchronized counter races");
}

#[test]
fn callgrind_reconstructs_the_call_graph() {
    let w = patterns::producer_consumer(8);
    let mut cg = CallgrindTool::new();
    run_program(&w.program, w.run_config(), &mut cg).expect("run");
    let p = &w.program;
    let consumer = p.routine_by_name("consumer").unwrap();
    let consume = p.routine_by_name("consume_data").unwrap();
    let producer = p.routine_by_name("producer").unwrap();
    let produce = p.routine_by_name("produce_data").unwrap();
    assert_eq!(cg.arc(consumer, consume).unwrap().calls, 8);
    assert_eq!(cg.arc(producer, produce).unwrap().calls, 8);
    assert!(cg.arc(consumer, produce).is_none());
    let main_cost = cg.routine_cost(p.routine_by_name("main").unwrap()).unwrap();
    assert!(main_cost.inclusive >= main_cost.exclusive);
}

#[test]
fn memcheck_is_quiet_on_initialized_workloads() {
    // The bundled workloads initialize what they read (via stores or
    // kernel fills), so a definedness checker reports nothing.
    for w in [
        patterns::stream_reader(6),
        workloads::minidb::minidb_scaling(&[32]),
        workloads::parsec::blackscholes(2, 1),
    ] {
        let mut mc = MemcheckTool::for_program(&w.program);
        run_program(&w.program, w.run_config(), &mut mc).expect("run");
        assert_eq!(mc.error_count(), 0, "{}", w.name);
    }
}

#[test]
fn multi_tool_runs_two_analyses_in_one_pass() {
    let w = patterns::producer_consumer(6);
    let mut hg = HelgrindTool::new();
    let mut cg = CallgrindTool::new();
    {
        let mut multi = MultiTool::new();
        multi.push(&mut hg).push(&mut cg);
        run_program(&w.program, w.run_config(), &mut multi).expect("run");
    }
    assert_eq!(hg.race_count(), 0);
    assert!(cg.routine_count() >= 4);
}

#[test]
fn event_counts_are_identical_across_tools() {
    // The VM emits the same event stream no matter which tool observes
    // it: stats.events must match between a null run and any tool run.
    let w = workloads::parsec::dedup(3, 1);
    let mut null = NullTool;
    let base = run_program(&w.program, w.run_config(), &mut null).expect("run");
    let mut hg = HelgrindTool::new();
    let hg_stats = run_program(&w.program, w.run_config(), &mut hg).expect("run");
    let mut mc = MemcheckTool::new();
    let mc_stats = run_program(&w.program, w.run_config(), &mut mc).expect("run");
    assert_eq!(base.events, hg_stats.events);
    assert_eq!(base.events, mc_stats.events);
    assert_eq!(base.basic_blocks, hg_stats.basic_blocks);
}

#[test]
fn shadow_footprints_order_matches_the_paper() {
    // Space: helgrind (16B/cell epochs) > aprof-drms (global + per-thread
    // u64 shadows) > memcheck (1B/cell) > callgrind (no shadow memory),
    // mirroring Table 1's space-overhead ordering.
    use drms::core::{DrmsConfig, DrmsProfiler};
    let w = workloads::specomp::nab(4, 2);
    let mut hg = HelgrindTool::new();
    run_program(&w.program, w.run_config(), &mut hg).expect("run");
    let mut dp = DrmsProfiler::new(DrmsConfig::full());
    run_program(&w.program, w.run_config(), &mut dp).expect("run");
    let mut mc = MemcheckTool::for_program(&w.program);
    run_program(&w.program, w.run_config(), &mut mc).expect("run");
    let mut cg = CallgrindTool::new();
    run_program(&w.program, w.run_config(), &mut cg).expect("run");
    assert!(hg.shadow_bytes() > dp.shadow_bytes(), "helgrind > drms");
    assert!(dp.shadow_bytes() > mc.shadow_bytes(), "drms > memcheck");
    assert!(
        mc.shadow_bytes() > cg.shadow_bytes(),
        "memcheck > callgrind"
    );
}
