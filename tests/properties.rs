//! Property-based tests over randomly generated event streams and guest
//! programs, driven by the workspace's own seeded PRNG (the build
//! environment has no network access, so no external fuzzing crate):
//!
//! * the read/write timestamping algorithm agrees with the naive
//!   set-based oracle (Figure 7 vs Figure 8) on arbitrary interleavings;
//! * timestamp renumbering never changes profiles;
//! * `drms ≥ rms` on every activation (paper Inequality 1);
//! * the trace codec round-trips arbitrary traces;
//! * merging preserves per-thread subsequences;
//! * injected kernel faults do not change the cost-function shape of a
//!   retrying workload (metamorphic);
//! * corrupted trace text never panics the codec and salvage yields a
//!   valid prefix.

use drms::analysis::{CostPlot, InputMetric};
use drms::core::{DrmsConfig, DrmsProfiler, NaiveProfiler, RmsProfiler};
use drms::trace::{
    codec, merge_traces, merge_traces_with_ties, replay, Addr, Event, RoutineId, ThreadId,
    ThreadTrace, TieBreaker, TimedEvent,
};
use drms::vm::{FaultPlan, SmallRng};

const CASES: u64 = 64;

/// A compact description of one generated event.
#[derive(Clone, Debug)]
enum Op {
    Call(u8),
    Return,
    Read(u8),
    Write(u8),
    KernelFill(u8, u8),
    KernelDrain(u8, u8),
}

/// Samples one op with the same weights the proptest strategy used:
/// call 3, return 3, read 6, write 4, kernel fill 1, kernel drain 1.
fn random_op(rng: &mut SmallRng) -> Op {
    match rng.gen_range(0u32..18) {
        0..=2 => Op::Call(rng.gen_range(0u32..6) as u8),
        3..=5 => Op::Return,
        6..=11 => Op::Read(rng.gen_range(0u32..24) as u8),
        12..=15 => Op::Write(rng.gen_range(0u32..24) as u8),
        16 => Op::KernelFill(rng.gen_range(0u32..20) as u8, rng.gen_range(1u32..5) as u8),
        _ => Op::KernelDrain(rng.gen_range(0u32..20) as u8, rng.gen_range(1u32..5) as u8),
    }
}

/// Samples 1–3 threads of 0–59 ops each.
fn random_interleaving(rng: &mut SmallRng) -> Vec<ThreadTrace> {
    let threads = rng.gen_range(1usize..4);
    let per_thread: Vec<Vec<Op>> = (0..threads)
        .map(|_| {
            let len = rng.gen_range(0usize..60);
            (0..len).map(|_| random_op(rng)).collect()
        })
        .collect();
    build_traces(per_thread)
}

/// Turns per-thread op lists into well-formed per-thread traces: calls
/// and returns are balanced per thread (spurious returns are dropped,
/// pending frames closed at the end), memory ops outside a routine are
/// dropped.
fn build_traces(per_thread: Vec<Vec<Op>>) -> Vec<ThreadTrace> {
    let mut traces = Vec::new();
    let mut time = 1u64;
    for (t, ops) in per_thread.into_iter().enumerate() {
        let tid = ThreadId::new(t as u32);
        let mut tr = ThreadTrace::new(tid);
        let mut depth = 0u32;
        let mut stack: Vec<RoutineId> = Vec::new();
        tr.push(time, 0, Event::ThreadStart { parent: None });
        time += 1;
        for op in ops {
            match op {
                Op::Call(r) => {
                    let routine = RoutineId::new(r as u32);
                    stack.push(routine);
                    depth += 1;
                    tr.push(time, depth as u64, Event::Call { routine });
                }
                Op::Return => {
                    if let Some(routine) = stack.pop() {
                        depth -= 1;
                        tr.push(time, depth as u64 + 1, Event::Return { routine });
                    }
                }
                Op::Read(a) if depth > 0 => {
                    tr.push(
                        time,
                        depth as u64,
                        Event::Read {
                            addr: Addr::new(100 + a as u64),
                            len: 1,
                        },
                    );
                }
                Op::Write(a) if depth > 0 => {
                    tr.push(
                        time,
                        depth as u64,
                        Event::Write {
                            addr: Addr::new(100 + a as u64),
                            len: 1,
                        },
                    );
                }
                Op::KernelFill(a, l) if depth > 0 => {
                    tr.push(
                        time,
                        depth as u64,
                        Event::KernelToUser {
                            addr: Addr::new(100 + a as u64),
                            len: l as u32,
                        },
                    );
                }
                Op::KernelDrain(a, l) if depth > 0 => {
                    tr.push(
                        time,
                        depth as u64,
                        Event::UserToKernel {
                            addr: Addr::new(100 + a as u64),
                            len: l as u32,
                        },
                    );
                }
                _ => {}
            }
            time += 1;
        }
        while let Some(routine) = stack.pop() {
            tr.push(time, depth as u64, Event::Return { routine });
            depth = depth.saturating_sub(1);
            time += 1;
        }
        tr.push(time, 0, Event::ThreadExit);
        time += 1;
        traces.push(tr);
    }
    traces
}

#[test]
fn timestamping_matches_naive_oracle() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xA11CE ^ case);
        let traces = random_interleaving(&mut rng);
        let merged = merge_traces_with_ties(traces, TieBreaker::Seeded(case % 8));
        let mut fast = DrmsProfiler::new(DrmsConfig::full());
        replay(&merged, &mut fast);
        let mut oracle = NaiveProfiler::new();
        replay(&merged, &mut oracle);
        let a = fast.into_report();
        let b = oracle.into_report();
        assert_eq!(a.len(), b.len(), "case {case}");
        for (&(r, t), p) in a.iter() {
            let q = b.get(r, t).expect("oracle has the same profiles");
            assert_eq!(
                &p.by_drms, &q.by_drms,
                "drms mismatch at {r}/{t}, case {case}"
            );
            assert_eq!(&p.by_rms, &q.by_rms, "rms mismatch at {r}/{t}, case {case}");
        }
    }
}

#[test]
fn renumbering_never_changes_profiles() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xB0B ^ case);
        let traces = random_interleaving(&mut rng);
        let limit = rng.gen_range(4u64..64);
        let merged = merge_traces(traces);
        let mut base = DrmsProfiler::new(DrmsConfig::full());
        replay(&merged, &mut base);
        let mut tiny = DrmsProfiler::new(DrmsConfig {
            count_limit: limit,
            ..DrmsConfig::full()
        });
        replay(&merged, &mut tiny);
        assert_eq!(
            base.into_report(),
            tiny.into_report(),
            "case {case}, limit {limit}"
        );
    }
}

#[test]
fn drms_dominates_rms_pointwise() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xD0D0 ^ case);
        let merged = merge_traces(random_interleaving(&mut rng));
        let mut prof = DrmsProfiler::new(DrmsConfig::full());
        replay(&merged, &mut prof);
        for (_, p) in prof.report().iter() {
            assert!(p.sum_drms >= p.sum_rms, "case {case}");
        }
    }
}

#[test]
fn standalone_rms_matches_fused_rms() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xFACE ^ case);
        let merged = merge_traces(random_interleaving(&mut rng));
        let mut fused = DrmsProfiler::new(DrmsConfig::full());
        replay(&merged, &mut fused);
        let mut standalone = RmsProfiler::new();
        replay(&merged, &mut standalone);
        let a = fused.into_report();
        let b = standalone.into_report();
        for (&(r, t), p) in a.iter() {
            let q = b.get(r, t).expect("same routines");
            assert_eq!(&p.by_rms, &q.by_rms, "at {r}/{t}, case {case}");
        }
    }
}

#[test]
fn static_only_drms_equals_rms() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5EED ^ case);
        let merged = merge_traces(random_interleaving(&mut rng));
        let mut prof = DrmsProfiler::new(DrmsConfig::static_only());
        replay(&merged, &mut prof);
        for (_, p) in prof.report().iter() {
            assert_eq!(&p.by_drms, &p.by_rms, "case {case}");
        }
    }
}

#[test]
fn codec_roundtrips_arbitrary_traces() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xC0DEC ^ case);
        let merged = merge_traces(random_interleaving(&mut rng));
        let text = codec::to_text(&merged);
        let back = codec::from_text(&text).expect("parse");
        assert_eq!(back, merged, "case {case}");
    }
}

#[test]
fn merge_preserves_thread_subsequences() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x9E9E ^ case);
        let traces = random_interleaving(&mut rng);
        let expected: Vec<Vec<TimedEvent>> = traces.iter().map(|t| t.events().to_vec()).collect();
        let merged = merge_traces_with_ties(traces, TieBreaker::Seeded(case % 8));
        for (t, exp) in expected.iter().enumerate() {
            let got: Vec<TimedEvent> = merged
                .iter()
                .filter(|e| e.thread.index() as usize == t)
                .copied()
                .collect();
            assert_eq!(&got, exp, "case {case}");
        }
    }
}

/// Samples a fault plan a retrying guest can always mask: short reads
/// and transient errors only (no hard EIO, which legitimately changes
/// what the guest can read).
fn random_recoverable_plan(rng: &mut SmallRng) -> FaultPlan {
    let seed = rng.next_u64() & 0xFFFF;
    let mut rules = Vec::new();
    if rng.gen_ratio(2, 3) {
        let den = rng.gen_range(2u64..6);
        let num = rng.gen_range(1u64..den + 1);
        rules.push(format!("fd0:shortread:p={num}/{den}"));
    }
    if rng.gen_ratio(1, 2) {
        let period = rng.gen_range(3u64..20);
        rules.push(format!("in:eintr:every={period}"));
    }
    if rules.is_empty() {
        rules.push("in:eagain:p=1/7".to_owned());
    }
    let spec = format!("seed={seed},{}", rules.join(","));
    FaultPlan::parse(&spec).expect("generated specs are valid")
}

/// Metamorphic robustness property: a workload whose reads resume short
/// transfers and retry transient errors produces the same drms input
/// sizes — and the same cost-function class — whether or not faults are
/// injected. Costs differ (retry loops execute extra blocks), so only
/// the input sets and the fit class are compared.
#[test]
fn fault_injection_preserves_cost_function_shape() {
    let sizes = [32i64, 64, 96, 128, 192, 256];
    let w = drms::workloads::minidb::minidb_scaling(&sizes);
    let focus = w.focus.expect("mysql_select");
    let (clean_report, clean_stats) = drms::ProfileSession::workload(&w)
        .run()
        .expect("fault-free run")
        .into_parts()
        .expect("fault-free run");
    let clean_plot = CostPlot::of(&clean_report.merged_routine(focus), InputMetric::Drms);
    let clean_sizes: Vec<u64> = clean_plot.points.iter().map(|p| p.0).collect();
    let clean_fit = clean_plot.fit(0.02);
    assert_eq!(clean_stats.faults.injected(), 0);

    for case in 0..16u64 {
        let mut rng = SmallRng::seed_from_u64(0xFA17 ^ case);
        let plan = random_recoverable_plan(&mut rng);
        let mut cfg = w.run_config();
        cfg.faults = Some(plan.clone());
        let outcome = drms::ProfileSession::new(&w.program)
            .config(cfg)
            .run()
            .expect("valid workload");
        assert!(
            outcome.error.is_none(),
            "recoverable faults must not abort the run (case {case}, plan {plan})"
        );
        let plot = CostPlot::of(&outcome.report.merged_routine(focus), InputMetric::Drms);
        let fault_sizes: Vec<u64> = plot.points.iter().map(|p| p.0).collect();
        assert_eq!(
            fault_sizes, clean_sizes,
            "drms input sizes must match the fault-free run (case {case}, plan {plan})"
        );
        assert_eq!(
            plot.fit(0.02).model,
            clean_fit.model,
            "cost-function class must survive injected faults (case {case}, plan {plan})"
        );
    }
}

/// Corrupting serialized traces (single-byte replacement or truncation)
/// never panics the codec: strict parsing reports a structured error and
/// lossy parsing salvages a prefix that still replays cleanly.
#[test]
fn corrupted_trace_text_never_panics() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xBADC0DE ^ case);
        let merged = merge_traces(random_interleaving(&mut rng));
        let text = codec::to_text(&merged);
        if text.is_empty() {
            continue;
        }
        let corrupted = if rng.gen_ratio(1, 2) {
            // Replace one byte with 'X' (trace text is pure ASCII).
            let i = rng.gen_range(0usize..text.len());
            let mut bytes = text.clone().into_bytes();
            bytes[i] = b'X';
            String::from_utf8(bytes).expect("still ASCII")
        } else {
            // Truncate mid-stream, as a crashed capture would.
            let i = rng.gen_range(0usize..text.len());
            text[..i].to_owned()
        };
        // Strict parsing returns a structured result either way.
        let _ = codec::from_text(&corrupted);
        // Lossy parsing salvages a prefix no longer than the original...
        let salvage = codec::from_text_lossy(&corrupted);
        assert!(salvage.events.len() <= merged.len(), "case {case}");
        // ...whose fully-intact lines are exactly the original prefix
        // (the final salvaged event of a truncated text may itself be a
        // truncated-but-well-formed line, so compare all but the last).
        let intact = salvage.events.len().saturating_sub(1);
        assert_eq!(&salvage.events[..intact], &merged[..intact], "case {case}");
        // ...and which the analysis pipeline accepts without panicking.
        let mut prof = DrmsProfiler::new(DrmsConfig::full());
        replay(&salvage.events, &mut prof);
        let _ = prof.into_report();
    }
}

/// The shadow memory's last-leaf cache is transparent: on arbitrary
/// clustered get/set/clear sequences the cached reads agree with the
/// always-walk reference path ([`get_uncached`]) and with a map oracle.
///
/// [`get_uncached`]: drms::vm::ShadowMemory::get_uncached
#[test]
fn shadow_leaf_cache_is_transparent() {
    use drms::vm::ShadowMemory;
    use std::collections::HashMap;
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5AD0_0B5E ^ case);
        let mut shadow: ShadowMemory<u64> = ShadowMemory::new();
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        for step in 0..500u64 {
            // Cluster addresses onto a handful of leaf chunks so the
            // sequence mixes same-leaf runs with leaf switches.
            let leaf = rng.gen_range(0u32..5) as u64;
            let a = leaf * 4096 + rng.gen_range(0u32..64) as u64;
            let addr = Addr::new(a);
            match rng.gen_range(0u32..12) {
                0..=5 => {
                    shadow.set(addr, step + 1);
                    oracle.insert(a, step + 1);
                }
                6..=9 => {
                    let expect = oracle.get(&a).copied().unwrap_or_default();
                    assert_eq!(shadow.get(addr), expect, "case {case} step {step}");
                    assert_eq!(shadow.get_uncached(addr), expect, "case {case} step {step}");
                }
                10 => {
                    assert_eq!(
                        shadow.get(addr),
                        shadow.get_uncached(addr),
                        "case {case} step {step}"
                    );
                }
                _ => {
                    shadow.clear();
                    oracle.clear();
                }
            }
        }
    }
}
