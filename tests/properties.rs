//! Property-based tests over randomly generated event streams and guest
//! programs:
//!
//! * the read/write timestamping algorithm agrees with the naive
//!   set-based oracle (Figure 7 vs Figure 8) on arbitrary interleavings;
//! * timestamp renumbering never changes profiles;
//! * `drms ≥ rms` on every activation (paper Inequality 1);
//! * the trace codec round-trips arbitrary traces;
//! * merging preserves per-thread subsequences.

use drms::core::{DrmsConfig, DrmsProfiler, NaiveProfiler, RmsProfiler};
use drms::trace::{
    codec, merge_traces, merge_traces_with_ties, replay, Addr, Event, RoutineId, ThreadId,
    ThreadTrace, TieBreaker, TimedEvent,
};
use proptest::prelude::*;

/// A compact description of one generated event.
#[derive(Clone, Debug)]
enum Op {
    Call(u8),
    Return,
    Read(u8),
    Write(u8),
    KernelFill(u8, u8),
    KernelDrain(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..6).prop_map(Op::Call),
        3 => Just(Op::Return),
        6 => (0u8..24).prop_map(Op::Read),
        4 => (0u8..24).prop_map(Op::Write),
        1 => ((0u8..20), (1u8..5)).prop_map(|(a, l)| Op::KernelFill(a, l)),
        1 => ((0u8..20), (1u8..5)).prop_map(|(a, l)| Op::KernelDrain(a, l)),
    ]
}

/// Turns per-thread op lists into well-formed per-thread traces: calls
/// and returns are balanced per thread (spurious returns are dropped,
/// pending frames closed at the end), memory ops outside a routine are
/// dropped.
fn build_traces(per_thread: Vec<Vec<Op>>) -> Vec<ThreadTrace> {
    let mut traces = Vec::new();
    let mut time = 1u64;
    for (t, ops) in per_thread.into_iter().enumerate() {
        let tid = ThreadId::new(t as u32);
        let mut tr = ThreadTrace::new(tid);
        let mut depth = 0u32;
        let mut stack: Vec<RoutineId> = Vec::new();
        tr.push(time, 0, Event::ThreadStart { parent: None });
        time += 1;
        for op in ops {
            match op {
                Op::Call(r) => {
                    let routine = RoutineId::new(r as u32);
                    stack.push(routine);
                    depth += 1;
                    tr.push(time, depth as u64, Event::Call { routine });
                }
                Op::Return => {
                    if let Some(routine) = stack.pop() {
                        depth -= 1;
                        tr.push(time, depth as u64 + 1, Event::Return { routine });
                    }
                }
                Op::Read(a) if depth > 0 => {
                    tr.push(
                        time,
                        depth as u64,
                        Event::Read {
                            addr: Addr::new(100 + a as u64),
                            len: 1,
                        },
                    );
                }
                Op::Write(a) if depth > 0 => {
                    tr.push(
                        time,
                        depth as u64,
                        Event::Write {
                            addr: Addr::new(100 + a as u64),
                            len: 1,
                        },
                    );
                }
                Op::KernelFill(a, l) if depth > 0 => {
                    tr.push(
                        time,
                        depth as u64,
                        Event::KernelToUser {
                            addr: Addr::new(100 + a as u64),
                            len: l as u32,
                        },
                    );
                }
                Op::KernelDrain(a, l) if depth > 0 => {
                    tr.push(
                        time,
                        depth as u64,
                        Event::UserToKernel {
                            addr: Addr::new(100 + a as u64),
                            len: l as u32,
                        },
                    );
                }
                _ => {}
            }
            time += 1;
        }
        while let Some(routine) = stack.pop() {
            tr.push(time, depth as u64, Event::Return { routine });
            depth = depth.saturating_sub(1);
            time += 1;
        }
        tr.push(time, 0, Event::ThreadExit);
        time += 1;
        traces.push(tr);
    }
    traces
}

fn interleavings() -> impl Strategy<Value = Vec<ThreadTrace>> {
    proptest::collection::vec(proptest::collection::vec(op_strategy(), 0..60), 1..4)
        .prop_map(build_traces)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn timestamping_matches_naive_oracle(traces in interleavings(), seed in 0u64..8) {
        let merged = merge_traces_with_ties(traces, TieBreaker::Seeded(seed));
        let mut fast = DrmsProfiler::new(DrmsConfig::full());
        replay(&merged, &mut fast);
        let mut oracle = NaiveProfiler::new();
        replay(&merged, &mut oracle);
        let a = fast.into_report();
        let b = oracle.into_report();
        prop_assert_eq!(a.len(), b.len());
        for (&(r, t), p) in a.iter() {
            let q = b.get(r, t).expect("oracle has the same profiles");
            prop_assert_eq!(&p.by_drms, &q.by_drms, "drms mismatch at {}/{}", r, t);
            prop_assert_eq!(&p.by_rms, &q.by_rms, "rms mismatch at {}/{}", r, t);
        }
    }

    #[test]
    fn renumbering_never_changes_profiles(traces in interleavings(), limit in 4u64..64) {
        let merged = merge_traces(traces);
        let mut base = DrmsProfiler::new(DrmsConfig::full());
        replay(&merged, &mut base);
        let mut tiny = DrmsProfiler::new(DrmsConfig {
            count_limit: limit,
            ..DrmsConfig::full()
        });
        replay(&merged, &mut tiny);
        prop_assert_eq!(base.into_report(), tiny.into_report());
    }

    #[test]
    fn drms_dominates_rms_pointwise(traces in interleavings()) {
        let merged = merge_traces(traces);
        let mut prof = DrmsProfiler::new(DrmsConfig::full());
        replay(&merged, &mut prof);
        for (_, p) in prof.report().iter() {
            prop_assert!(p.sum_drms >= p.sum_rms);
        }
    }

    #[test]
    fn standalone_rms_matches_fused_rms(traces in interleavings()) {
        let merged = merge_traces(traces);
        let mut fused = DrmsProfiler::new(DrmsConfig::full());
        replay(&merged, &mut fused);
        let mut standalone = RmsProfiler::new();
        replay(&merged, &mut standalone);
        let a = fused.into_report();
        let b = standalone.into_report();
        for (&(r, t), p) in a.iter() {
            let q = b.get(r, t).expect("same routines");
            prop_assert_eq!(&p.by_rms, &q.by_rms, "at {}/{}", r, t);
        }
    }

    #[test]
    fn static_only_drms_equals_rms(traces in interleavings()) {
        let merged = merge_traces(traces);
        let mut prof = DrmsProfiler::new(DrmsConfig::static_only());
        replay(&merged, &mut prof);
        for (_, p) in prof.report().iter() {
            prop_assert_eq!(&p.by_drms, &p.by_rms);
        }
    }

    #[test]
    fn codec_roundtrips_arbitrary_traces(traces in interleavings()) {
        let merged = merge_traces(traces);
        let text = codec::to_text(&merged);
        let back = codec::from_text(&text).expect("parse");
        prop_assert_eq!(back, merged);
    }

    #[test]
    fn merge_preserves_thread_subsequences(traces in interleavings(), seed in 0u64..8) {
        let expected: Vec<Vec<TimedEvent>> = traces
            .iter()
            .map(|t| t.events().to_vec())
            .collect();
        let merged = merge_traces_with_ties(traces, TieBreaker::Seeded(seed));
        for (t, exp) in expected.iter().enumerate() {
            let got: Vec<TimedEvent> = merged
                .iter()
                .filter(|e| e.thread.index() as usize == t)
                .copied()
                .collect();
            prop_assert_eq!(&got, exp);
        }
    }
}
