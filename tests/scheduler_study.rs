//! The scheduler-sensitivity study of §4.2: runs workloads under several
//! scheduling configurations and checks the paper's observations —
//! external input is stable across runs, thread input fluctuates without
//! qualitatively changing the plots, and the drms/rms relationship is
//! preserved under every interleaving.

use drms::core::{DrmsConfig, DrmsProfiler};
use drms::vm::{SchedPolicy, Vm};
use drms::workloads::{self, Workload};

fn totals_under(w: &Workload, policy: SchedPolicy, quantum: u32) -> (u64, u64) {
    let mut cfg = w.run_config();
    cfg.policy = policy;
    cfg.quantum = quantum;
    let mut prof = DrmsProfiler::new(DrmsConfig::full());
    Vm::new(&w.program, cfg)
        .expect("vm")
        .run(&mut prof)
        .expect("run");
    let report = prof.into_report();
    let (mut th, mut ke) = (0u64, 0u64);
    for (_, p) in report.iter() {
        th += p.breakdown.thread_induced;
        ke += p.breakdown.kernel_induced;
    }
    (th, ke)
}

fn policies() -> Vec<SchedPolicy> {
    vec![
        SchedPolicy::RoundRobin,
        SchedPolicy::Random { seed: 11 },
        SchedPolicy::Random { seed: 22 },
        SchedPolicy::Random { seed: 33 },
    ]
}

#[test]
fn external_input_is_stable_across_schedules() {
    for w in [
        workloads::patterns::stream_reader(30),
        workloads::minidb::minidb_scaling(&[64, 128]),
        workloads::parsec::blackscholes(3, 1),
    ] {
        let kernel_counts: Vec<u64> = policies()
            .into_iter()
            .map(|p| totals_under(&w, p, 50).1)
            .collect();
        let first = kernel_counts[0];
        assert!(
            kernel_counts.iter().all(|&k| k == first),
            "{}: external input varies across schedules: {kernel_counts:?}",
            w.name
        );
    }
}

#[test]
fn thread_input_fluctuates_but_stays_in_band() {
    // Thread input may vary with the interleaving (the paper measures a
    // small mean fluctuation with occasional large peaks); the count must
    // stay positive and within an order of magnitude here.
    let w = workloads::parsec::canneal(3, 1);
    let counts: Vec<u64> = policies()
        .into_iter()
        .map(|p| totals_under(&w, p, 20).0)
        .collect();
    let lo = *counts.iter().min().unwrap();
    let hi = *counts.iter().max().unwrap();
    assert!(lo > 0, "thread sharing never disappears: {counts:?}");
    assert!(hi <= lo * 10, "fluctuation stays bounded: {counts:?}");
}

#[test]
fn quantum_changes_interleavings_not_correctness() {
    let w = workloads::patterns::producer_consumer(20);
    for quantum in [1u32, 5, 50, 500] {
        let mut cfg = w.run_config();
        cfg.quantum = quantum;
        let mut prof = DrmsProfiler::new(DrmsConfig::full());
        Vm::new(&w.program, cfg)
            .expect("vm")
            .run(&mut prof)
            .expect("run");
        let report = prof.into_report();
        let consumer = report.merged_routine(w.focus.unwrap());
        // The handoff count is interleaving-independent thanks to the
        // semaphores: drms(consumer) = 20 under every quantum.
        assert_eq!(
            consumer.drms_plot().last().unwrap().0,
            20,
            "quantum {quantum}"
        );
        assert_eq!(consumer.rms_plot().last().unwrap().0, 1);
    }
}

#[test]
fn random_schedules_are_reproducible_by_seed() {
    let w = workloads::parsec::dedup(3, 1);
    let a = totals_under(&w, SchedPolicy::Random { seed: 7 }, 30);
    let b = totals_under(&w, SchedPolicy::Random { seed: 7 }, 30);
    assert_eq!(a, b, "same seed, same interleaving, same profile");
}

#[test]
fn inequality_holds_under_every_schedule() {
    let w = workloads::imgpipe::vips(2, 4, 1);
    for policy in policies() {
        let mut cfg = w.run_config();
        cfg.policy = policy;
        let mut prof = DrmsProfiler::new(DrmsConfig::full());
        Vm::new(&w.program, cfg)
            .expect("vm")
            .run(&mut prof)
            .expect("run");
        for (&(r, t), p) in prof.report().iter() {
            assert!(
                p.sum_drms >= p.sum_rms,
                "drms >= rms violated at {r}/{t} under {policy:?}"
            );
        }
    }
}
