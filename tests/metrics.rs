//! End-to-end observability gates: every tier-1 workload family must
//! produce a metrics registry that (a) survives its own
//! self-consistency audit and (b) is byte-deterministic — the same
//! program + seed + schedule renders the identical JSON, run to run.

use drms::prelude::*;
use drms::workloads::{imgpipe, minidb, patterns, sorting, Workload};

/// A cross-section of the tier-1 workloads: every subsystem the
/// registry observes (threads, sync, kernel devices, shadow-heavy
/// profiling) shows up in at least one entry.
fn tier1_suite() -> Vec<Workload> {
    vec![
        patterns::stream_reader(24),
        patterns::producer_consumer(16),
        patterns::lock_order_inversion(3),
        sorting::selection_sort_default(10),
        minidb::minidb_scaling(&[16, 32, 64]),
        imgpipe::vips(2, 6, 1),
    ]
}

#[test]
fn every_tier1_workload_passes_the_metrics_audit() {
    for w in tier1_suite() {
        let outcome = ProfileSession::workload(&w).run().unwrap();
        assert!(outcome.error.is_none(), "{}: {:?}", w.name, outcome.error);
        let audit = outcome.metrics.audit();
        assert_eq!(audit, Ok(()), "{}: {audit:?}", w.name);
        assert_eq!(
            outcome.metrics.counter("vm.events.total"),
            outcome.stats.events,
            "{}: registry and RunStats disagree on the event count",
            w.name
        );
    }
}

#[test]
fn metrics_json_is_byte_identical_across_runs() {
    for w in tier1_suite() {
        let run = |seed| {
            ProfileSession::workload(&w)
                .sched(SchedPolicy::Random { seed })
                .run()
                .unwrap()
        };
        let (a, b) = (run(5), run(5));
        assert_eq!(
            a.metrics.to_json(),
            b.metrics.to_json(),
            "{}: same seed must render identical metrics",
            w.name
        );
        assert_eq!(a.metrics.to_prometheus(), b.metrics.to_prometheus());
        // A different schedule seed still audits cleanly (the invariants
        // hold per run, not just on the canonical schedule).
        let c = run(6);
        assert_eq!(c.metrics.audit(), Ok(()), "{}", w.name);
    }
}

#[test]
fn aborted_runs_keep_consistent_metrics() {
    let w = minidb::minidb_scaling(&[64, 128, 256]);
    let outcome = ProfileSession::workload(&w)
        .config(RunConfig {
            max_instructions: 20_000,
            ..w.run_config()
        })
        .run()
        .unwrap();
    assert!(outcome.is_partial());
    assert_eq!(
        outcome.metrics.audit(),
        Ok(()),
        "{:?}",
        outcome.metrics.audit()
    );
    assert_eq!(outcome.metrics.counter("run.aborts"), 1);
    assert!(outcome.metrics.counter("sched.preempt.abort") > 0);
}
