//! Cross-crate integration tests: online vs offline profiling
//! equivalence, trace serialization, facade workflows, and end-to-end
//! cost-function estimation on the bundled workloads.

use drms::analysis::{CostPlot, InputMetric, Model};
use drms::core::{DrmsConfig, DrmsProfiler};
use drms::trace::{codec, merge_traces, replay};
use drms::vm::{run_program, TraceRecorder, Vm};
use drms::workloads::{self, Workload};

/// Profiles online (tool attached to the VM) and offline (record, merge,
/// replay) and asserts identical reports — the paper's trace-merging
/// formulation is equivalent to live instrumentation.
fn online_equals_offline(w: &Workload) {
    let mut online = DrmsProfiler::new(DrmsConfig::full());
    run_program(&w.program, w.run_config(), &mut online).expect("online run");

    let mut recorder = TraceRecorder::new();
    run_program(&w.program, w.run_config(), &mut recorder).expect("recorded run");
    for trace in recorder.traces() {
        trace.validate().expect("well-formed per-thread trace");
    }
    let merged = merge_traces(recorder.into_traces());
    let mut offline = DrmsProfiler::new(DrmsConfig::full());
    replay(&merged, &mut offline);

    assert_eq!(
        online.into_report(),
        offline.into_report(),
        "online and replayed profiles differ for {}",
        w.name
    );
}

#[test]
fn online_offline_equivalence_across_workloads() {
    for w in [
        workloads::patterns::producer_consumer(12),
        workloads::patterns::stream_reader(12),
        workloads::minidb::minidb_scaling(&[32, 64]),
        workloads::parsec::dedup(3, 1),
        workloads::imgpipe::vips(2, 4, 1),
        workloads::specomp::smithwa(2, 1),
    ] {
        online_equals_offline(&w);
    }
}

#[test]
fn trace_codec_roundtrips_a_real_execution() {
    let w = workloads::patterns::producer_consumer(6);
    let mut recorder = TraceRecorder::new();
    run_program(&w.program, w.run_config(), &mut recorder).expect("run");
    let merged = merge_traces(recorder.into_traces());
    let text = codec::to_text(&merged);
    let back = codec::from_text(&text).expect("parse recorded trace");
    assert_eq!(back, merged);

    // Replaying the parsed trace still yields the same profile.
    let mut a = DrmsProfiler::new(DrmsConfig::full());
    replay(&merged, &mut a);
    let mut b = DrmsProfiler::new(DrmsConfig::full());
    replay(&back, &mut b);
    assert_eq!(a.into_report(), b.into_report());
}

#[test]
fn profiling_is_deterministic_under_round_robin() {
    let w = workloads::parsec::dedup(3, 1);
    let (r1, s1) = drms::ProfileSession::workload(&w)
        .run()
        .expect("run 1")
        .into_parts()
        .expect("run 1");
    let (r2, s2) = drms::ProfileSession::workload(&w)
        .run()
        .expect("run 2")
        .into_parts()
        .expect("run 2");
    assert_eq!(r1, r2, "round-robin scheduling must be deterministic");
    assert_eq!(s1.basic_blocks, s2.basic_blocks);
    assert_eq!(s1.thread_switches, s2.thread_switches);
}

#[test]
fn quadratic_routine_is_identified_end_to_end() {
    let w = workloads::sorting::selection_sort_sweep(&[10, 20, 40, 80, 120, 160]);
    let (report, _) = drms::ProfileSession::workload(&w)
        .run()
        .expect("run")
        .into_parts()
        .expect("run");
    let p = report.merged_routine(w.focus.expect("selection_sort"));
    let fit = CostPlot::of(&p, InputMetric::Drms).fit(0.01);
    assert_eq!(fit.model, Model::Quadratic, "fit: {fit}");
    assert!(fit.r2 > 0.99);
}

#[test]
fn renumbering_is_transparent_on_real_workloads() {
    let w = workloads::imgpipe::vips(2, 5, 1);
    let (baseline, _) = drms::ProfileSession::workload(&w)
        .run()
        .expect("run")
        .into_parts()
        .expect("run");
    let tiny = DrmsConfig {
        count_limit: 128,
        ..DrmsConfig::full()
    };
    let mut prof = DrmsProfiler::new(tiny);
    Vm::new(&w.program, w.run_config())
        .expect("vm")
        .run(&mut prof)
        .expect("run");
    assert!(prof.renumberings() > 0, "tiny limit must renumber");
    assert_eq!(prof.into_report(), baseline);
}

#[test]
fn drms_dominates_rms_on_every_profile() {
    // Paper Inequality 1: drms >= rms for every activation; in aggregate,
    // Σdrms >= Σrms per (routine, thread).
    for w in workloads::full_suite(2, 1) {
        let (report, _) = drms::ProfileSession::workload(&w)
            .run()
            .expect("run")
            .into_parts()
            .expect("run");
        for (&(r, t), p) in report.iter() {
            assert!(
                p.sum_drms >= p.sum_rms,
                "{}: routine {r} thread {t} violates drms >= rms",
                w.name
            );
        }
    }
}

#[test]
fn block_tracing_mode_delivers_block_events() {
    use drms::trace::{BlockId, EventSink, RoutineId, ThreadId};
    #[derive(Default)]
    struct BlockCounter(u64);
    impl EventSink for BlockCounter {
        fn on_block(&mut self, _: ThreadId, _: RoutineId, _: BlockId) {
            self.0 += 1;
        }
    }
    impl drms::vm::Tool for BlockCounter {
        fn name(&self) -> &str {
            "block-counter"
        }
    }
    let w = workloads::patterns::producer_consumer(5);
    let mut cfg = w.run_config();
    cfg.trace_blocks = true;
    let mut counter = BlockCounter::default();
    let stats = run_program(&w.program, cfg, &mut counter).expect("run");
    assert!(counter.0 > 0);
    assert!(
        counter.0 <= stats.basic_blocks,
        "block events never exceed counted blocks"
    );
}

#[test]
fn full_suite_is_robust_across_thread_counts() {
    // Partitioning logic must hold at the extremes the paper sweeps
    // (Figure 16 uses 1..8 threads).
    for threads in [1u32, 3, 8] {
        for w in workloads::full_suite(threads, 1) {
            let (report, stats) = drms::ProfileSession::workload(&w)
                .run()
                .expect("setup")
                .into_parts()
                .unwrap_or_else(|e| panic!("{} at {threads} threads: {e}", w.name));
            assert!(stats.basic_blocks > 0, "{} at {threads}", w.name);
            assert!(!report.is_empty(), "{} at {threads}", w.name);
        }
    }
}

#[test]
fn cct_profiler_matches_routine_sums_on_workloads() {
    use drms::core::CctProfiler;
    use drms::core::DrmsConfig;
    for w in [
        workloads::patterns::producer_consumer(8),
        workloads::minidb::minidb_scaling(&[32, 64]),
        workloads::imgpipe::vips(2, 4, 1),
    ] {
        let mut prof = CctProfiler::new(DrmsConfig::full());
        run_program(&w.program, w.run_config(), &mut prof)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        for rid in 0..w.program.routines().len() as u32 {
            let routine = drms::trace::RoutineId::new(rid);
            let merged = prof.inner().report().merged_routine(routine);
            let ctx_calls: u64 = prof.contexts_of(routine).iter().map(|(_, p)| p.calls).sum();
            assert_eq!(
                ctx_calls, merged.calls,
                "{}: context calls partition routine calls",
                w.name
            );
            let ctx_drms: u64 = prof
                .contexts_of(routine)
                .iter()
                .map(|(_, p)| p.sum_drms)
                .sum();
            assert_eq!(ctx_drms, merged.sum_drms, "{}", w.name);
        }
    }
}

#[test]
fn report_roundtrips_through_text_for_all_pattern_workloads() {
    use drms::core::report_io;
    for w in [
        workloads::patterns::producer_consumer(10),
        workloads::patterns::stream_reader(10),
        workloads::parsec::dedup(3, 1),
    ] {
        let (report, _) = drms::ProfileSession::workload(&w)
            .run()
            .expect("run")
            .into_parts()
            .expect("run");
        let text = report_io::to_text(&report);
        let back = report_io::from_text(&text).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(back, report, "{}", w.name);
    }
}
