//! The vips case study (paper Figures 5 and 6) on the bundled imgpipe.
//!
//! A threaded image pipeline: a loader decodes strips, workers run
//! `im_generate` over them, and a write-behind thread
//! (`wbuffer_write_thread`) drains finished strips to a sink. The
//! workloads of both routines are produced by *other threads*, so the
//! rms collapses their cost plots while the drms separates the calls.
//!
//! ```sh
//! cargo run --example image_pipeline
//! ```

use drms::analysis::{CostPlot, InputMetric};
use drms::core::DrmsConfig;
use drms::workloads::imgpipe;

fn main() {
    let tasks = 110; // the paper's Figure 6 run observes 110 calls
    let w = imgpipe::vips(2, tasks, 1);

    let (full, stats) = drms::ProfileSession::workload(&w)
        .run()
        .expect("run")
        .into_parts()
        .expect("run");
    let (ext, _) = drms::ProfileSession::workload(&w)
        .drms(DrmsConfig::external_only())
        .run()
        .expect("run")
        .into_parts()
        .expect("run");
    println!(
        "pipeline ran {} threads, {} thread switches, {} syscalls\n",
        stats.threads, stats.thread_switches, stats.syscalls
    );

    // Figure 5: im_generate.
    let im = full.merged_routine(w.focus.expect("im_generate"));
    let im_rms = CostPlot::of(&im, InputMetric::Rms);
    let im_drms = CostPlot::of(&im, InputMetric::Drms);
    println!("im_generate: {} calls", im.calls);
    println!(
        "  rms  plot: {:>3} points, span {:>6}",
        im_rms.len(),
        im_rms.input_span()
    );
    println!(
        "  drms plot: {:>3} points, span {:>6}",
        im_drms.len(),
        im_drms.input_span()
    );
    println!(
        "  input provenance: {:.0}% thread, {:.0}% external\n",
        im.breakdown.thread_fraction() * 100.0,
        im.breakdown.kernel_fraction() * 100.0
    );

    // Figure 6: wbuffer_write_thread under three metric variants.
    let wb_id = w
        .program
        .routine_by_name("wbuffer_write_thread")
        .expect("wbuffer_write_thread");
    let wb_full = full.merged_routine(wb_id);
    let wb_ext = ext.merged_routine(wb_id);
    let a = CostPlot::of(&wb_full, InputMetric::Rms);
    let b = CostPlot::of(&wb_ext, InputMetric::Drms);
    let c = CostPlot::of(&wb_full, InputMetric::Drms);
    println!("wbuffer_write_thread: {} calls", wb_full.calls);
    println!(
        "  (a) rms:                {:>4} distinct input sizes",
        a.len()
    );
    println!(
        "  (b) drms external only: {:>4} distinct input sizes",
        b.len()
    );
    println!(
        "  (c) drms ext+thread:    {:>4} distinct input sizes",
        c.len()
    );
    assert!(
        a.len() <= 3,
        "rms collapses the calls onto a couple of sizes"
    );
    assert!(c.len() >= b.len() && b.len() >= a.len());
    assert!(
        c.len() as u64 >= wb_full.calls / 2,
        "full drms separates (nearly) every call"
    );
}
