//! The paper's Pattern 1 (Figure 2): a semaphore-based producer/consumer
//! whose entire workload is dynamically generated.
//!
//! The consumer repeatedly reads one shared cell the producer rewrites,
//! so the classical read memory size (rms) reports a single input cell no
//! matter how many values flow through — while the dynamic read memory
//! size (drms) counts every handoff.
//!
//! ```sh
//! cargo run --example producer_consumer
//! ```

use drms::workloads::patterns;

fn main() {
    println!("n        rms(consumer)  drms(consumer)");
    for n in [4i64, 16, 64, 256] {
        let w = patterns::producer_consumer(n);
        let (report, _) = drms::ProfileSession::workload(&w)
            .run()
            .expect("run")
            .into_parts()
            .expect("run");
        let consumer = report.merged_routine(w.focus.expect("consumer"));
        let rms = consumer.rms_plot().last().map(|&(x, _)| x).unwrap_or(0);
        let drms = consumer.drms_plot().last().map(|&(x, _)| x).unwrap_or(0);
        println!("{n:<8} {rms:<14} {drms}");
        assert_eq!(rms, 1, "rms is blind to the handoffs");
        assert_eq!(drms, n as u64, "drms counts one input per handoff");
    }

    // The induced first-reads are classified as *thread input*: they were
    // caused by stores of the producer thread.
    let w = patterns::producer_consumer(32);
    let (report, _) = drms::ProfileSession::workload(&w)
        .run()
        .expect("run")
        .into_parts()
        .expect("run");
    let consume_data = w
        .program
        .routine_by_name("consume_data")
        .expect("consume_data");
    let p = report.merged_routine(consume_data);
    println!(
        "\nconsume_data first reads: {} plain, {} thread-induced, {} kernel-induced",
        p.breakdown.plain, p.breakdown.thread_induced, p.breakdown.kernel_induced
    );
    println!(
        "thread input share: {:.0}%",
        p.breakdown.thread_fraction() * 100.0
    );
}
