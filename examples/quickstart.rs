//! Quickstart: build a guest program, profile it with the drms metric,
//! and fit its empirical cost function.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use drms::analysis::{ascii_plot, CostPlot, InputMetric};
use drms::prelude::*;

fn main() {
    // A routine with linear cost: sum an n-cell array. The driver calls
    // it on arrays of several sizes so the profiler can observe the cost
    // at many distinct input sizes in a single run.
    let mut pb = ProgramBuilder::new();
    let sum_array = pb.function("sum_array", 2, |f| {
        let base = f.param(0);
        let n = f.param(1);
        let acc = f.copy(0);
        f.for_range(0, n, |f, i| {
            let v = f.load(base, i);
            let s = f.add(acc, v);
            f.assign(acc, s);
        });
        f.ret_val(acc);
    });
    let fill = pb.function("fill", 2, |f| {
        let base = f.param(0);
        let n = f.param(1);
        f.for_range(0, n, |f, i| {
            let v = f.mul(i, 3);
            f.store(base, i, v);
        });
        f.ret(None);
    });
    let main_r = pb.function("main", 0, |f| {
        f.for_range(1, 25, |f, step| {
            let n = f.mul(step, 16);
            let buf = f.alloc(n);
            f.call_void(fill, &[Operand::Reg(buf), Operand::Reg(n)]);
            let _ = f.call(sum_array, &[Operand::Reg(buf), Operand::Reg(n)]);
        });
        f.ret(None);
    });
    let program = pb.finish(main_r).expect("valid program");

    // Profile one execution with the full drms metric.
    let outcome = ProfileSession::new(&program).run().expect("run");
    println!(
        "executed {} basic blocks across {} thread(s)\n",
        outcome.stats.basic_blocks, outcome.stats.threads
    );
    let report = outcome.report;

    // Inspect the focus routine's cost plot and fitted cost function.
    let profile = report.merged_routine(sum_array);
    let plot = CostPlot::of(&profile, InputMetric::Drms);
    println!(
        "{}",
        ascii_plot(
            &plot.as_f64(),
            60,
            12,
            "sum_array: worst-case cost vs input size"
        )
    );
    let fit = plot.fit(0.01);
    println!("sum_array was called {} times", profile.calls);
    println!("distinct input sizes observed: {}", plot.len());
    println!("fitted empirical cost function: {fit}");
    println!("predicted cost at n = 10_000: {:.0}", fit.predict(10_000.0));
}
