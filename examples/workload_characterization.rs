//! Dynamic workload characterization (paper Figures 13–15): where does
//! each benchmark's input come from — other threads or the kernel?
//!
//! ```sh
//! cargo run --example workload_characterization
//! ```

use drms::analysis::{induced_split, routine_metrics, to_table};
use drms::workloads;

fn main() {
    // Whole-benchmark split of induced first reads (Figure 15).
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for w in workloads::full_suite(4, 1) {
        let (report, _) = drms::ProfileSession::workload(&w)
            .run()
            .expect("run")
            .into_parts()
            .expect("run");
        let (thread, external) = induced_split(&report);
        rows.push((w.name.clone(), thread, external));
    }
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(n, t, e)| vec![n.clone(), format!("{t:.1}"), format!("{e:.1}")])
        .collect();
    println!("Induced first-read split per benchmark (cf. paper Fig. 15):\n");
    println!(
        "{}",
        to_table(&["benchmark", "thread %", "external %"], &table)
    );

    // Routine-level drill-down for one benchmark (Figure 13 style).
    let w = workloads::parsec::dedup(4, 1);
    let (report, _) = drms::ProfileSession::workload(&w)
        .run()
        .expect("run")
        .into_parts()
        .expect("run");
    let names = w.program.name_table();
    let mut metrics = routine_metrics(&report);
    metrics.retain(|m| m.first_reads > 0);
    metrics.sort_by(|a, b| b.thread_input.partial_cmp(&a.thread_input).expect("finite"));
    let rows: Vec<Vec<String>> = metrics
        .iter()
        .map(|m| {
            vec![
                names.get(m.routine).unwrap_or("?").to_owned(),
                format!("{:.1}", m.thread_input * 100.0),
                format!("{:.1}", m.external_input * 100.0),
                m.first_reads.to_string(),
            ]
        })
        .collect();
    println!("\ndedup, routine by routine (cf. paper Fig. 13):\n");
    println!(
        "{}",
        to_table(&["routine", "thread %", "external %", "first reads"], &rows)
    );
}
