//! Calling-context-sensitive profiling: separate cost functions for the
//! same routine reached from different call sites.
//!
//! Routine-level profiling merges every `memset`-style helper into one
//! cost plot; the calling-context tree keeps one plot per context, so a
//! helper with linear cost shows distinct, cleaner fits per caller.
//!
//! ```sh
//! cargo run --example context_sensitivity
//! ```

use drms::analysis::{CostPlot, InputMetric};
use drms::core::{CctProfiler, DrmsConfig};
use drms::prelude::*;

fn main() {
    // `fill` is used by two subsystems: one always passes small buffers,
    // the other scales with the driver's loop index.
    let mut pb = ProgramBuilder::new();
    let fill = pb.function("fill", 2, |f| {
        let base = f.param(0);
        let n = f.param(1);
        f.for_range(0, n, |f, i| {
            let v = f.load(base, i); // read-modify-write: counts as input
            let v2 = f.add(v, 1);
            f.store(base, i, v2);
        });
    });
    let small_user = pb.function("small_user", 0, |f| {
        let buf = f.alloc(4);
        f.call_void(fill, &[Operand::Reg(buf), Operand::Imm(4)]);
    });
    let big_user = pb.function("big_user", 1, |f| {
        let k = f.param(0);
        let n = f.mul(k, 32);
        let buf = f.alloc(n);
        f.call_void(fill, &[Operand::Reg(buf), Operand::Reg(n)]);
    });
    let main_r = pb.function("main", 0, |f| {
        f.for_range(1, 12, |f, k| {
            f.call_void(small_user, &[]);
            f.call_void(big_user, &[Operand::Reg(k)]);
        });
    });
    let program = pb.finish(main_r).expect("valid program");

    let mut prof = CctProfiler::new(DrmsConfig::full());
    drms::vm::run_program(&program, RunConfig::default(), &mut prof).expect("run");

    // Routine-level view: one merged plot mixing both behaviours.
    let merged = prof.inner().report().merged_routine(fill);
    println!(
        "routine-level:  fill called {} times, {} distinct input sizes\n",
        merged.calls,
        merged.distinct_drms()
    );

    // Context-level view: one plot per calling context.
    for (ctx, profile) in prof.contexts_of(fill) {
        let path = prof
            .tree()
            .render(ctx, |r| program.routine_name(r).to_owned());
        let plot = CostPlot::of(&profile, InputMetric::Drms);
        let fit = plot.fit(0.02);
        println!("context {path}");
        println!(
            "  {} calls, {} distinct input sizes, fit {fit}",
            profile.calls,
            plot.len()
        );
    }
}
