//! The MySQL case study (paper §2.1, Figure 4) on the bundled minidb.
//!
//! A table scan loads tuples group-by-group into one reused buffer via
//! `pread64`. The rms of `mysql_select` therefore "roughly coincides with
//! the buffer size" for every table, while the true workload — and the
//! cost — grows linearly with the table. Estimating the empirical cost
//! function from the rms plot suggests a false superlinear bottleneck;
//! the drms plot recovers the real Θ(n) behaviour.
//!
//! ```sh
//! cargo run --example minidb_scaling
//! ```

use drms::analysis::{ascii_plot, CostPlot, InputMetric, Model};
use drms::workloads::minidb;

fn main() {
    let sizes: Vec<i64> = (1..=12).map(|i| i * 100).collect();
    let w = minidb::minidb_scaling(&sizes);
    let (report, stats) = drms::ProfileSession::workload(&w)
        .run()
        .expect("run")
        .into_parts()
        .expect("run");
    println!(
        "profiled {} syscalls, {} basic blocks\n",
        stats.syscalls, stats.basic_blocks
    );

    let select = report.merged_routine(w.focus.expect("mysql_select"));
    let rms = CostPlot::of(&select, InputMetric::Rms);
    let drms = CostPlot::of(&select, InputMetric::Drms);

    println!(
        "{}",
        ascii_plot(&rms.as_f64(), 60, 12, "mysql_select: cost vs RMS")
    );
    println!(
        "{}",
        ascii_plot(&drms.as_f64(), 60, 12, "mysql_select: cost vs DRMS")
    );

    println!(
        "rms:  {} distinct input sizes spanning {} cells",
        rms.len(),
        rms.input_span()
    );
    println!(
        "drms: {} distinct input sizes spanning {} cells",
        drms.len(),
        drms.input_span()
    );

    let fit = drms.fit(0.02);
    println!("\ndrms-based empirical cost function: {fit}");
    assert_eq!(
        fit.model,
        Model::Linear,
        "the drms plot exposes the linear scan"
    );
    println!(
        "predicted cost for a 1M-row table: {:.2e} basic blocks",
        fit.predict(1_000_000.0 * minidb::ROW_CELLS as f64)
    );
}
