//! The paper's Pattern 2 (Figure 3): buffered reads from a data stream.
//!
//! `stream_reader` refills a two-cell buffer from an external device `n`
//! times and processes only the first cell of each refill. The rms of the
//! routine stays 1 (one buffer location is ever read), while the drms
//! equals `n` — the kernel-induced first-reads reveal the streamed
//! workload.
//!
//! ```sh
//! cargo run --example stream_reader
//! ```

use drms::core::DrmsConfig;

use drms::workloads::patterns;

fn main() {
    println!("n        rms   drms  drms(external input disabled)");
    for n in [8i64, 32, 128] {
        let w = patterns::stream_reader(n);
        let (full, _) = drms::ProfileSession::workload(&w)
            .run()
            .expect("run")
            .into_parts()
            .expect("run");
        let (blind, _) = drms::ProfileSession::workload(&w)
            .drms(DrmsConfig::static_only())
            .run()
            .expect("run")
            .into_parts()
            .expect("run");
        let focus = w.focus.expect("stream_reader");
        let rms = full.merged_routine(focus).rms_plot().last().unwrap().0;
        let drms = full.merged_routine(focus).drms_plot().last().unwrap().0;
        let off = blind.merged_routine(focus).drms_plot().last().unwrap().0;
        println!("{n:<8} {rms:<5} {drms:<5} {off}");
        assert_eq!(rms, 1);
        assert_eq!(drms, n as u64);
        assert_eq!(off, 1, "without kernel events drms degenerates to rms");
    }

    // The profiler also tells us the input is external (I/O), not
    // thread communication.
    let w = patterns::stream_reader(64);
    let (report, _) = drms::ProfileSession::workload(&w)
        .run()
        .expect("run")
        .into_parts()
        .expect("run");
    let cd = w.program.routine_by_name("consume_data").expect("routine");
    let b = report.merged_routine(cd).breakdown;
    println!(
        "\nconsume_data: {:.0}% of first reads are external input",
        b.kernel_fraction() * 100.0
    );
}
