#!/usr/bin/env bash
# Offline CI gate for the drms workspace: build, tests, lints, formatting.
# The build must never touch the network — everything resolves in-tree.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all -- --check

# Schedule-fuzz smoke gate: chaos-scan the fuzz workloads, replay every
# failure strictly and shrink it. Exits non-zero on any panic, any
# non-reproducible failure, or any unshrinkable failure.
cargo run --release -q -p drms-bench --bin repro -- sched-fuzz --seeds 16 --quick

# Bench smoke gate: a tiny parallel sweep. The binary validates its own
# BENCH_sweep.json against the drms-sweep-v2 schema (accounting:
# completed + retries + quarantined == attempts) and exits non-zero
# if the serial and parallel sweeps diverge, the serial and parallel
# merged metrics diverge, the metrics audit fails, or the schema check
# fails.
cargo run --release -q -p drms-bench --bin repro -- sweep --quick --jobs 2 \
    --bench-out target/repro/BENCH_sweep.json

# Perf gate: the fast interpreter core must stay fast and observably
# equivalent. The quick sweep runs once decoded (the default: fused
# dispatch, batched delivery) and once legacy (--decode off --batch 1);
# the two deterministic bench artifacts must be byte-identical, and the
# decoded run must clear the sustained instructions/sec floor (the
# pre-decode baseline was ~34.5M/s; the floor is set conservatively
# below the ~180M/s this grid sustains, to ride out container timing
# noise). The jobs=4 speedup floor only applies on multi-core hosts: a
# single core caps the parallel pass at ~1.0x by construction (see
# EXPERIMENTS.md "Parallel sweep benchmark").
mkdir -p target/repro/perf
repro=target/release/repro
"$repro" sweep --quick --jobs 4 \
    --bench-out target/repro/perf/BENCH_decoded.json > /dev/null
"$repro" sweep --quick --jobs 4 --decode off --batch 1 \
    --bench-out target/repro/perf/BENCH_legacy.json > /dev/null
cmp target/repro/perf/BENCH_decoded.json target/repro/perf/BENCH_legacy.json \
    || { echo "ci: decoded and legacy sweeps are not byte-identical" >&2; exit 1; }
cmp target/repro/perf/BENCH_decoded.metrics.json target/repro/perf/BENCH_legacy.metrics.json \
    || { echo "ci: decoded and legacy sweep metrics are not byte-identical" >&2; exit 1; }
ips=$(grep -o '"instructions_per_sec": [0-9.]*' target/repro/perf/BENCH_decoded.timings.json \
    | awk '{print $2}')
awk -v v="$ips" 'BEGIN { exit !(v >= 100000000) }' \
    || { echo "ci: decoded sweep sustained only $ips instr/sec (floor 100M)" >&2; exit 1; }
if [ "$(nproc)" -ge 2 ]; then
    sp=$(grep -o '"speedup": [0-9.]*' target/repro/perf/BENCH_decoded.timings.json \
        | head -1 | awk '{print $2}')
    awk -v v="$sp" 'BEGIN { exit !(v >= 1.5) }' \
        || { echo "ci: jobs=4 sweep speedup $sp below the 1.5x floor" >&2; exit 1; }
fi

# Crash-safety gate: journal a sweep, SIGKILL it mid-grid, resume from
# the salvaged journal, and require the resumed BENCH_sweep.json and
# audited .metrics.json to be byte-identical to an uninterrupted run of
# the same grid (the v2 bench artifact is deterministic by design; only
# the .timings.json sibling may differ). If the victim finishes before
# the kill lands, the resume degrades to a pure journal replay — the
# byte-identity requirement is the same either way.
mkdir -p target/repro/crash
repro=target/release/repro
"$repro" sweep --quick --jobs 2 \
    --bench-out target/repro/crash/BENCH_base.json > /dev/null
rm -f target/repro/crash/sweep.journal
"$repro" sweep --quick --jobs 2 \
    --journal target/repro/crash/sweep.journal \
    --bench-out target/repro/crash/BENCH_killed.json > /dev/null &
victim=$!
for _ in $(seq 1 500); do
    cells=$(grep -c '^@rec cell' target/repro/crash/sweep.journal 2>/dev/null) || cells=0
    [ "$cells" -ge 2 ] && break
    kill -0 "$victim" 2>/dev/null || break
    sleep 0.01
done
kill -KILL "$victim" 2>/dev/null || true
wait "$victim" 2>/dev/null || true
"$repro" sweep --quick --jobs 2 \
    --resume target/repro/crash/sweep.journal \
    --bench-out target/repro/crash/BENCH_resumed.json > /dev/null
cmp target/repro/crash/BENCH_base.json target/repro/crash/BENCH_resumed.json \
    || { echo "ci: resumed sweep bench JSON differs from uninterrupted run" >&2; exit 1; }
cmp target/repro/crash/BENCH_base.metrics.json target/repro/crash/BENCH_resumed.metrics.json \
    || { echo "ci: resumed sweep metrics differ from uninterrupted run" >&2; exit 1; }

# Service crash-safety gate: run one sweep job through the aprofd
# daemon uninterrupted, then the same submission against a fresh state
# dir with the daemon SIGKILLed mid-grid and restarted. Deterministic
# job IDs line the two state dirs up by path, and the resumed
# .bench.json / .metrics.json must be byte-identical to the
# uninterrupted run's.
aprofd=target/release/aprofd
aprofctl=target/release/aprofctl
rm -rf target/repro/aprofd
mkdir -p target/repro/aprofd/state-a target/repro/aprofd/state-b
spec=target/repro/aprofd/job.spec
printf 'family stream\nsizes 6,10,14\nseeds 1,2\njobs 2\n' > "$spec"

"$aprofd" --state-dir target/repro/aprofd/state-a \
    --addr-file target/repro/aprofd/addr-a --workers 2 > /dev/null &
daemon_a=$!
for _ in $(seq 1 500); do [ -s target/repro/aprofd/addr-a ] && break; sleep 0.01; done
job=$("$aprofctl" --addr-file target/repro/aprofd/addr-a submit "$spec")
"$aprofctl" --addr-file target/repro/aprofd/addr-a wait "$job" > /dev/null
"$aprofctl" --addr-file target/repro/aprofd/addr-a shutdown > /dev/null
wait "$daemon_a"

"$aprofd" --state-dir target/repro/aprofd/state-b \
    --addr-file target/repro/aprofd/addr-b --workers 2 > /dev/null &
daemon_b=$!
for _ in $(seq 1 500); do [ -s target/repro/aprofd/addr-b ] && break; sleep 0.01; done
job_b=$("$aprofctl" --addr-file target/repro/aprofd/addr-b submit "$spec")
[ "$job" = "$job_b" ] \
    || { echo "ci: aprofd job ids are not deterministic ($job vs $job_b)" >&2; exit 1; }
for _ in $(seq 1 500); do
    cells=$(grep -c '^@rec cell' "target/repro/aprofd/state-b/job-$job_b.journal" 2>/dev/null) || cells=0
    [ "$cells" -ge 2 ] && break
    kill -0 "$daemon_b" 2>/dev/null || break
    sleep 0.01
done
kill -KILL "$daemon_b" 2>/dev/null || true
wait "$daemon_b" 2>/dev/null || true
"$aprofd" --state-dir target/repro/aprofd/state-b \
    --addr-file target/repro/aprofd/addr-b2 --workers 2 > /dev/null &
daemon_b2=$!
for _ in $(seq 1 500); do [ -s target/repro/aprofd/addr-b2 ] && break; sleep 0.01; done
"$aprofctl" --addr-file target/repro/aprofd/addr-b2 wait "$job_b" > /dev/null
"$aprofctl" --addr-file target/repro/aprofd/addr-b2 shutdown > /dev/null
wait "$daemon_b2"
cmp "target/repro/aprofd/state-a/job-$job.bench.json" \
    "target/repro/aprofd/state-b/job-$job_b.bench.json" \
    || { echo "ci: daemon-resumed bench JSON differs from uninterrupted run" >&2; exit 1; }
cmp "target/repro/aprofd/state-a/job-$job.metrics.json" \
    "target/repro/aprofd/state-b/job-$job_b.metrics.json" \
    || { echo "ci: daemon-resumed metrics differ from uninterrupted run" >&2; exit 1; }

# Load-shedding gate: an admit-only daemon (no workers) with a 2-slot
# queue takes two submissions, then sheds the third with the typed
# retry-after refusal (aprofctl exit code 3), and stays healthy.
rm -rf target/repro/aprofd/state-shed
"$aprofd" --state-dir target/repro/aprofd/state-shed \
    --addr-file target/repro/aprofd/addr-shed --workers 0 --queue-cap 2 > /dev/null &
daemon_shed=$!
for _ in $(seq 1 500); do [ -s target/repro/aprofd/addr-shed ] && break; sleep 0.01; done
ctl_shed="$aprofctl --addr-file target/repro/aprofd/addr-shed"
$ctl_shed submit "$spec" > /dev/null
$ctl_shed submit "$spec" > /dev/null
shed_rc=0
shed_msg=$($ctl_shed --retries 1 submit "$spec" 2>&1) || shed_rc=$?
[ "$shed_rc" -eq 3 ] \
    || { echo "ci: full-queue submission should shed with exit 3, got $shed_rc" >&2; exit 1; }
echo "$shed_msg" | grep -q "queue full" \
    || { echo "ci: shed refusal lacks the typed reason: $shed_msg" >&2; exit 1; }
$ctl_shed health | grep -q "queued 2" \
    || { echo "ci: shed submission perturbed the queue" >&2; exit 1; }
$ctl_shed shutdown > /dev/null
wait "$daemon_shed"

# Host-fault chaos gate: a journaled sweep with a seeded ENOSPC landing
# mid-journal (write op 5 is a cell checkpoint) must degrade gracefully
# — journaling disables with an attributed warning, the run still exits
# clean — and a resume of the salvaged journal on healthy I/O must be
# byte-identical to the fault-free BENCH_base.json from the crash gate
# above (same grid flags, same deterministic artifact).
rm -f target/repro/crash/chaos.journal
"$repro" sweep --quick --jobs 2 \
    --journal target/repro/crash/chaos.journal \
    --bench-out target/repro/crash/BENCH_chaos.json \
    --host-faults write:enospc:once=5 > /dev/null 2> target/repro/crash/chaos.err || true
grep -q "injected host fault" target/repro/crash/chaos.err \
    || { echo "ci: chaos sweep never attributed the injected fault" >&2; exit 1; }
[ -s target/repro/crash/chaos.journal ] \
    || { echo "ci: chaos sweep left no journal to salvage" >&2; exit 1; }
"$repro" sweep --quick --jobs 2 \
    --resume target/repro/crash/chaos.journal \
    --bench-out target/repro/crash/BENCH_chaos_resumed.json > /dev/null
cmp target/repro/crash/BENCH_base.json target/repro/crash/BENCH_chaos_resumed.json \
    || { echo "ci: ENOSPC-resumed sweep bench JSON differs from fault-free run" >&2; exit 1; }

# A fault on the artifact rename itself must fail *typed* (nonzero exit,
# the injection named on stderr) and must never leave a corrupt or
# partial bench artifact behind.
denied_rc=0
"$repro" sweep --quick --jobs 2 \
    --bench-out target/repro/crash/BENCH_denied.json \
    --host-faults rename:eio:once=1 > /dev/null 2> target/repro/crash/denied.err || denied_rc=$?
[ "$denied_rc" -ne 0 ] \
    || { echo "ci: faulted artifact rename should exit nonzero" >&2; exit 1; }
grep -q "injected host fault" target/repro/crash/denied.err \
    || { echo "ci: faulted rename did not fail typed" >&2; exit 1; }
[ ! -e target/repro/crash/BENCH_denied.json ] \
    || { echo "ci: faulted rename left an artifact behind" >&2; exit 1; }

# Slow-loris gate: a client that opens a connection, sends half a
# request line, and stalls must not wedge the daemon — /healthz keeps
# answering throughout, and the loris itself is answered with a typed
# 408 when the read deadline expires.
rm -rf target/repro/aprofd/state-loris
"$aprofd" --state-dir target/repro/aprofd/state-loris \
    --addr-file target/repro/aprofd/addr-loris --workers 0 \
    --read-timeout-ms 500 > /dev/null &
daemon_loris=$!
for _ in $(seq 1 500); do [ -s target/repro/aprofd/addr-loris ] && break; sleep 0.01; done
IFS=: read -r loris_host loris_port < target/repro/aprofd/addr-loris
(
    exec 3<>"/dev/tcp/${loris_host}/${loris_port}"
    printf 'GET /heal' >&3
    sleep 2
    cat <&3 > target/repro/aprofd/loris.out
) &
loris=$!
sleep 0.1
"$aprofctl" --addr-file target/repro/aprofd/addr-loris --timeout-ms 2000 health \
    | grep -q "^ok" \
    || { echo "ci: daemon unresponsive while a slow loris holds a socket" >&2; exit 1; }
wait "$loris"
grep -q "408" target/repro/aprofd/loris.out \
    || { echo "ci: slow loris was not answered with a typed 408" >&2; exit 1; }
"$aprofctl" --addr-file target/repro/aprofd/addr-loris shutdown > /dev/null
wait "$daemon_loris"

# Out-of-core trace gate: a run that spills its event stream to binary
# shards must (a) produce the same report as the in-memory run —
# attaching the shard recorder cannot perturb the profile — and (b)
# replay offline (repro replay-shards) to a byte-identical report.
aprof=target/release/aprof
rm -rf target/repro/shards
mkdir -p target/repro/shards
"$aprof" --workload minidb --scale 1 \
    --report target/repro/shards/live.report > /dev/null
"$aprof" --workload minidb --scale 1 --trace-out target/repro/shards/spill \
    --report target/repro/shards/spill.report > /dev/null
cmp target/repro/shards/live.report target/repro/shards/spill.report \
    || { echo "ci: spilling trace shards perturbed the profile report" >&2; exit 1; }
"$repro" replay-shards target/repro/shards/spill --jobs 2 \
    --report target/repro/shards/replayed.report \
    --metrics target/repro/shards/replayed.metrics.json > /dev/null
cmp target/repro/shards/live.report target/repro/shards/replayed.report \
    || { echo "ci: offline shard replay differs from the in-memory report" >&2; exit 1; }

# ENOSPC mid-shard: the run must fail typed (nonzero exit, the injected
# fault attributed on stderr), and the flushed shard prefix must stay
# salvageable — replay-shards loads it, accounts the loss under the
# salvaged + dropped == total law (its metrics audit runs before the
# export), and exits clean.
shard_rc=0
"$aprof" --workload minidb --scale 1 --trace-out target/repro/shards/faulted \
    --host-faults write:enospc:once=4 \
    > /dev/null 2> target/repro/shards/fault.err || shard_rc=$?
[ "$shard_rc" -ne 0 ] \
    || { echo "ci: ENOSPC mid-shard should exit nonzero" >&2; exit 1; }
grep -q "injected host fault" target/repro/shards/fault.err \
    || { echo "ci: mid-shard fault was not attributed on stderr" >&2; exit 1; }
"$repro" replay-shards target/repro/shards/faulted --jobs 2 \
    --metrics target/repro/shards/faulted.metrics.json > /dev/null \
    || { echo "ci: salvaging the faulted shard prefix failed" >&2; exit 1; }
grep -q '"trace.shard.lines.total"' target/repro/shards/faulted.metrics.json \
    || { echo "ci: salvage accounting missing from the replayed metrics" >&2; exit 1; }

# Metrics smoke gate: the same workload + seed twice must render a
# byte-identical metrics export (aprof exits non-zero if the registry
# fails its self-consistency audit).
mkdir -p target/repro
cargo run --release -q -p drms-bench --bin aprof -- --workload producer_consumer \
    --sched random:7 --metrics target/repro/metrics_a.json > /dev/null
cargo run --release -q -p drms-bench --bin aprof -- --workload producer_consumer \
    --sched random:7 --metrics target/repro/metrics_b.json > /dev/null
cmp target/repro/metrics_a.json target/repro/metrics_b.json \
    || { echo "ci: metrics export is not deterministic" >&2; exit 1; }

# Priority-preemption gate: a one-worker daemon mid-way through a
# low-priority sweep takes a high-priority quick job. The running sweep
# must yield at its next grid-cell boundary (observable in the
# preemption counters), the high job must finish while the preempted
# one is still unfinished, and the preempted job — resumed from its own
# journal checkpoint — must publish artifacts byte-identical to the
# same spec run solo on an undisturbed daemon.
rm -rf target/repro/aprofd/state-solo target/repro/aprofd/state-pre
low_spec=target/repro/aprofd/low.spec
high_spec=target/repro/aprofd/high.spec
printf 'family stream\nsizes 200000,400000\nseeds 1,2,3,4,5,6,7,8,9,10\njobs 1\npriority 0\n' \
    > "$low_spec"
printf 'tenant fastlane\nfamily stream\nsizes 4\nseeds 1\njobs 1\npriority 9\n' > "$high_spec"

"$aprofd" --state-dir target/repro/aprofd/state-solo \
    --addr-file target/repro/aprofd/addr-solo --workers 1 > /dev/null &
daemon_solo=$!
for _ in $(seq 1 500); do [ -s target/repro/aprofd/addr-solo ] && break; sleep 0.01; done
low_solo=$("$aprofctl" --addr-file target/repro/aprofd/addr-solo submit "$low_spec")
"$aprofctl" --addr-file target/repro/aprofd/addr-solo wait "$low_solo" > /dev/null
"$aprofctl" --addr-file target/repro/aprofd/addr-solo shutdown > /dev/null
wait "$daemon_solo"

"$aprofd" --state-dir target/repro/aprofd/state-pre \
    --addr-file target/repro/aprofd/addr-pre --workers 1 > /dev/null &
daemon_pre=$!
for _ in $(seq 1 500); do [ -s target/repro/aprofd/addr-pre ] && break; sleep 0.01; done
ctl_pre="$aprofctl --addr-file target/repro/aprofd/addr-pre"
low_job=$($ctl_pre submit "$low_spec")
[ "$low_job" = "$low_solo" ] \
    || { echo "ci: the preemption gate's job ids diverged ($low_solo vs $low_job)" >&2; exit 1; }
for _ in $(seq 1 500); do
    $ctl_pre status "$low_job" | grep -q "^state running" && break
    sleep 0.01
done
high_job=$($ctl_pre submit "$high_spec")
$ctl_pre wait "$high_job" > /dev/null
if $ctl_pre status "$low_job" | grep -q "^state done"; then
    echo "ci: the high-priority job did not finish first" >&2
    exit 1
fi
$ctl_pre wait "$low_job" | grep -q "^resumed 1" \
    || { echo "ci: the preempted job did not resume from its journal" >&2; exit 1; }
$ctl_pre metrics | grep -q "drms_aprofd_jobs_preempted 1" \
    || { echo "ci: the preemption was not counted" >&2; exit 1; }
$ctl_pre shutdown > /dev/null
wait "$daemon_pre"
cmp "target/repro/aprofd/state-solo/job-$low_job.bench.json" \
    "target/repro/aprofd/state-pre/job-$low_job.bench.json" \
    || { echo "ci: preempted bench JSON differs from the solo run" >&2; exit 1; }
cmp "target/repro/aprofd/state-solo/job-$low_job.metrics.json" \
    "target/repro/aprofd/state-pre/job-$low_job.metrics.json" \
    || { echo "ci: preempted metrics differ from the solo run" >&2; exit 1; }

# Keep-alive soak gate: one raw connection, pipelined sequential
# requests, a connection cap of one — the daemon must answer every
# /healthz on that single persistent socket (the cap leaves no room for
# per-request connections) and still serve a fresh client afterwards.
rm -rf target/repro/aprofd/state-ka
"$aprofd" --state-dir target/repro/aprofd/state-ka \
    --addr-file target/repro/aprofd/addr-ka --workers 0 --max-conns 1 > /dev/null &
daemon_ka=$!
for _ in $(seq 1 500); do [ -s target/repro/aprofd/addr-ka ] && break; sleep 0.01; done
IFS=: read -r ka_host ka_port < target/repro/aprofd/addr-ka
(
    exec 3<>"/dev/tcp/${ka_host}/${ka_port}"
    for _ in $(seq 1 19); do
        printf 'GET /healthz HTTP/1.1\r\n\r\n' >&3
    done
    printf 'GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n' >&3
    cat <&3 > target/repro/aprofd/ka.out
)
ka_ok=$(grep -c "HTTP/1.1 200" target/repro/aprofd/ka.out) || ka_ok=0
[ "$ka_ok" -eq 20 ] \
    || { echo "ci: keep-alive soak got $ka_ok/20 responses on one connection" >&2; exit 1; }
"$aprofctl" --addr-file target/repro/aprofd/addr-ka health | grep -q "^ok" \
    || { echo "ci: daemon unhealthy after the keep-alive soak" >&2; exit 1; }
"$aprofctl" --addr-file target/repro/aprofd/addr-ka shutdown > /dev/null
wait "$daemon_ka"

echo "ci: all green"
