#!/usr/bin/env bash
# Offline CI gate for the drms workspace: build, tests, lints, formatting.
# The build must never touch the network — everything resolves in-tree.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all -- --check

# Schedule-fuzz smoke gate: chaos-scan the fuzz workloads, replay every
# failure strictly and shrink it. Exits non-zero on any panic, any
# non-reproducible failure, or any unshrinkable failure.
cargo run --release -q -p drms-bench --bin repro -- sched-fuzz --seeds 16 --quick

# Bench smoke gate: a tiny parallel sweep. The binary validates its own
# BENCH_sweep.json against the drms-sweep-v1 schema and exits non-zero
# if the serial and parallel sweeps diverge or the schema check fails.
cargo run --release -q -p drms-bench --bin repro -- sweep --quick --jobs 2 \
    --bench-out target/repro/BENCH_sweep.json

echo "ci: all green"
