#!/usr/bin/env bash
# Offline CI gate for the drms workspace: build, tests, lints, formatting.
# The build must never touch the network — everything resolves in-tree.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all -- --check

echo "ci: all green"
