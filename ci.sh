#!/usr/bin/env bash
# Offline CI gate for the drms workspace: build, tests, lints, formatting.
# The build must never touch the network — everything resolves in-tree.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all -- --check

# Schedule-fuzz smoke gate: chaos-scan the fuzz workloads, replay every
# failure strictly and shrink it. Exits non-zero on any panic, any
# non-reproducible failure, or any unshrinkable failure.
cargo run --release -q -p drms-bench --bin repro -- sched-fuzz --seeds 16 --quick

# Bench smoke gate: a tiny parallel sweep. The binary validates its own
# BENCH_sweep.json against the drms-sweep-v2 schema (accounting:
# completed + retries + quarantined == attempts) and exits non-zero
# if the serial and parallel sweeps diverge, the serial and parallel
# merged metrics diverge, the metrics audit fails, or the schema check
# fails.
cargo run --release -q -p drms-bench --bin repro -- sweep --quick --jobs 2 \
    --bench-out target/repro/BENCH_sweep.json

# Crash-safety gate: journal a sweep, SIGKILL it mid-grid, resume from
# the salvaged journal, and require the resumed BENCH_sweep.json and
# audited .metrics.json to be byte-identical to an uninterrupted run of
# the same grid (the v2 bench artifact is deterministic by design; only
# the .timings.json sibling may differ). If the victim finishes before
# the kill lands, the resume degrades to a pure journal replay — the
# byte-identity requirement is the same either way.
mkdir -p target/repro/crash
repro=target/release/repro
"$repro" sweep --quick --jobs 2 \
    --bench-out target/repro/crash/BENCH_base.json > /dev/null
rm -f target/repro/crash/sweep.journal
"$repro" sweep --quick --jobs 2 \
    --journal target/repro/crash/sweep.journal \
    --bench-out target/repro/crash/BENCH_killed.json > /dev/null &
victim=$!
for _ in $(seq 1 500); do
    cells=$(grep -c '^@rec cell' target/repro/crash/sweep.journal 2>/dev/null) || cells=0
    [ "$cells" -ge 2 ] && break
    kill -0 "$victim" 2>/dev/null || break
    sleep 0.01
done
kill -KILL "$victim" 2>/dev/null || true
wait "$victim" 2>/dev/null || true
"$repro" sweep --quick --jobs 2 \
    --resume target/repro/crash/sweep.journal \
    --bench-out target/repro/crash/BENCH_resumed.json > /dev/null
cmp target/repro/crash/BENCH_base.json target/repro/crash/BENCH_resumed.json \
    || { echo "ci: resumed sweep bench JSON differs from uninterrupted run" >&2; exit 1; }
cmp target/repro/crash/BENCH_base.metrics.json target/repro/crash/BENCH_resumed.metrics.json \
    || { echo "ci: resumed sweep metrics differ from uninterrupted run" >&2; exit 1; }

# Metrics smoke gate: the same workload + seed twice must render a
# byte-identical metrics export (aprof exits non-zero if the registry
# fails its self-consistency audit).
mkdir -p target/repro
cargo run --release -q -p drms-bench --bin aprof -- --workload producer_consumer \
    --sched random:7 --metrics target/repro/metrics_a.json > /dev/null
cargo run --release -q -p drms-bench --bin aprof -- --workload producer_consumer \
    --sched random:7 --metrics target/repro/metrics_b.json > /dev/null
cmp target/repro/metrics_a.json target/repro/metrics_b.json \
    || { echo "ci: metrics export is not deterministic" >&2; exit 1; }

echo "ci: all green"
