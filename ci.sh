#!/usr/bin/env bash
# Offline CI gate for the drms workspace: build, tests, lints, formatting.
# The build must never touch the network — everything resolves in-tree.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all -- --check

# Schedule-fuzz smoke gate: chaos-scan the fuzz workloads, replay every
# failure strictly and shrink it. Exits non-zero on any panic, any
# non-reproducible failure, or any unshrinkable failure.
cargo run --release -q -p drms-bench --bin repro -- sched-fuzz --seeds 16 --quick

# Bench smoke gate: a tiny parallel sweep. The binary validates its own
# BENCH_sweep.json against the drms-sweep-v1 schema and exits non-zero
# if the serial and parallel sweeps diverge, the serial and parallel
# merged metrics diverge, the metrics audit fails, or the schema check
# fails.
cargo run --release -q -p drms-bench --bin repro -- sweep --quick --jobs 2 \
    --bench-out target/repro/BENCH_sweep.json

# Metrics smoke gate: the same workload + seed twice must render a
# byte-identical metrics export (aprof exits non-zero if the registry
# fails its self-consistency audit).
mkdir -p target/repro
cargo run --release -q -p drms-bench --bin aprof -- --workload producer_consumer \
    --sched random:7 --metrics target/repro/metrics_a.json > /dev/null
cargo run --release -q -p drms-bench --bin aprof -- --workload producer_consumer \
    --sched random:7 --metrics target/repro/metrics_b.json > /dev/null
cmp target/repro/metrics_a.json target/repro/metrics_b.json \
    || { echo "ci: metrics export is not deterministic" >&2; exit 1; }

echo "ci: all green"
