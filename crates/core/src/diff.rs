//! Comparing profile reports across runs.
//!
//! Input-sensitive profiles are most useful longitudinally: did a code
//! change alter a routine's empirical cost function, or shift workload
//! between threads and the kernel? [`diff_reports`] compares two
//! thread-merged reports routine by routine and classifies the changes.

use crate::profile::{ProfileReport, RoutineProfile};
use drms_trace::RoutineId;
use std::collections::BTreeMap;

/// The change observed for one routine between two reports.
#[derive(Clone, Debug, PartialEq)]
pub enum RoutineChange {
    /// Present only in the new report.
    Appeared,
    /// Present only in the old report.
    Disappeared,
    /// Present in both; carries the measured deltas.
    Changed(RoutineDelta),
}

/// Deltas of the key per-routine quantities.
#[derive(Clone, Debug, PartialEq)]
pub struct RoutineDelta {
    /// Calls in the old and new reports.
    pub calls: (u64, u64),
    /// Distinct drms values in the old and new reports.
    pub distinct_drms: (usize, usize),
    /// Dynamic input volume (`1 − Σrms/Σdrms`) old → new.
    pub volume: (f64, f64),
    /// Worst-case cost at the largest common drms input size, old → new,
    /// if the two runs share any input size.
    pub cost_at_common_input: Option<(u64, u64)>,
}

impl RoutineDelta {
    /// Ratio `new/old` of the worst cost at the largest shared input
    /// size; `None` when the runs share no input size or old cost is 0.
    pub fn cost_ratio(&self) -> Option<f64> {
        match self.cost_at_common_input {
            Some((old, new)) if old > 0 => Some(new as f64 / old as f64),
            _ => None,
        }
    }

    /// Whether anything beyond call counts moved by more than `epsilon`
    /// (relative, for the cost ratio; absolute, for the volume).
    pub fn is_significant(&self, epsilon: f64) -> bool {
        if (self.volume.1 - self.volume.0).abs() > epsilon {
            return true;
        }
        match self.cost_ratio() {
            Some(r) => (r - 1.0).abs() > epsilon,
            None => self.distinct_drms.0 != self.distinct_drms.1,
        }
    }
}

fn volume_of(p: &RoutineProfile) -> f64 {
    if p.sum_drms == 0 {
        0.0
    } else {
        1.0 - p.sum_rms as f64 / p.sum_drms as f64
    }
}

fn delta(old: &RoutineProfile, new: &RoutineProfile) -> RoutineDelta {
    let common = old
        .by_drms
        .keys()
        .rev()
        .find(|n| new.by_drms.contains_key(*n));
    let cost_at_common_input = common.map(|n| (old.by_drms[n].max, new.by_drms[n].max));
    RoutineDelta {
        calls: (old.calls, new.calls),
        distinct_drms: (old.distinct_drms(), new.distinct_drms()),
        volume: (volume_of(old), volume_of(new)),
        cost_at_common_input,
    }
}

/// Compares two reports (thread-merged), returning one entry per routine
/// that appears in either.
///
/// # Example
/// ```
/// use drms_core::diff::{diff_reports, RoutineChange};
/// use drms_core::ProfileReport;
/// use drms_trace::{RoutineId, ThreadId};
///
/// let mut old = ProfileReport::new();
/// old.entry(RoutineId::new(0), ThreadId::MAIN).record(4, 4, 100);
/// let mut new = ProfileReport::new();
/// new.entry(RoutineId::new(0), ThreadId::MAIN).record(4, 4, 250);
/// new.entry(RoutineId::new(1), ThreadId::MAIN).record(1, 1, 5);
///
/// let changes = diff_reports(&old, &new);
/// assert!(matches!(changes[&RoutineId::new(1)], RoutineChange::Appeared));
/// if let RoutineChange::Changed(d) = &changes[&RoutineId::new(0)] {
///     assert_eq!(d.cost_ratio(), Some(2.5));
/// } else {
///     unreachable!();
/// }
/// ```
pub fn diff_reports(
    old: &ProfileReport,
    new: &ProfileReport,
) -> BTreeMap<RoutineId, RoutineChange> {
    let old_merged = old.merged_by_routine();
    let new_merged = new.merged_by_routine();
    let mut out = BTreeMap::new();
    for (&r, op) in &old_merged {
        match new_merged.get(&r) {
            Some(np) => {
                out.insert(r, RoutineChange::Changed(delta(op, np)));
            }
            None => {
                out.insert(r, RoutineChange::Disappeared);
            }
        }
    }
    for &r in new_merged.keys() {
        out.entry(r).or_insert(RoutineChange::Appeared);
    }
    out
}

/// Routines whose delta is significant at `epsilon`, worst cost ratio
/// first — the "what regressed" view.
pub fn regressions(
    old: &ProfileReport,
    new: &ProfileReport,
    epsilon: f64,
) -> Vec<(RoutineId, RoutineDelta)> {
    let mut out: Vec<(RoutineId, RoutineDelta)> = diff_reports(old, new)
        .into_iter()
        .filter_map(|(r, c)| match c {
            RoutineChange::Changed(d) if d.is_significant(epsilon) => Some((r, d)),
            _ => None,
        })
        .collect();
    out.sort_by(|a, b| {
        let ra = a.1.cost_ratio().unwrap_or(1.0);
        let rb = b.1.cost_ratio().unwrap_or(1.0);
        rb.partial_cmp(&ra).expect("finite ratios")
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_trace::ThreadId;

    fn report(entries: &[(u32, u64, u64, u64)]) -> ProfileReport {
        let mut rep = ProfileReport::new();
        for &(r, rms, drms, cost) in entries {
            rep.entry(RoutineId::new(r), ThreadId::MAIN)
                .record(rms, drms, cost);
        }
        rep
    }

    #[test]
    fn classifies_appeared_and_disappeared() {
        let old = report(&[(0, 1, 1, 10)]);
        let new = report(&[(1, 1, 1, 10)]);
        let changes = diff_reports(&old, &new);
        assert_eq!(changes[&RoutineId::new(0)], RoutineChange::Disappeared);
        assert_eq!(changes[&RoutineId::new(1)], RoutineChange::Appeared);
    }

    #[test]
    fn detects_cost_regressions_at_common_input() {
        let old = report(&[(0, 8, 8, 100), (0, 16, 16, 200)]);
        let new = report(&[(0, 8, 8, 100), (0, 16, 16, 800)]);
        let regs = regressions(&old, &new, 0.1);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].0, RoutineId::new(0));
        assert_eq!(regs[0].1.cost_ratio(), Some(4.0));
        assert_eq!(regs[0].1.cost_at_common_input, Some((200, 800)));
    }

    #[test]
    fn stable_routines_are_not_significant() {
        let old = report(&[(0, 8, 8, 100)]);
        let new = report(&[(0, 8, 8, 103)]);
        assert!(regressions(&old, &new, 0.1).is_empty());
        let changes = diff_reports(&old, &new);
        if let RoutineChange::Changed(d) = &changes[&RoutineId::new(0)] {
            assert!(!d.is_significant(0.1));
            assert!((d.cost_ratio().unwrap() - 1.03).abs() < 1e-9);
        } else {
            unreachable!();
        }
    }

    #[test]
    fn volume_shift_is_significant_without_cost_change() {
        // Same costs, but the new run attributes the input dynamically.
        let old = report(&[(0, 10, 10, 100)]);
        let new = report(&[(0, 1, 10, 100)]);
        let regs = regressions(&old, &new, 0.1);
        assert_eq!(regs.len(), 1);
        assert!((regs[0].1.volume.1 - 0.9).abs() < 1e-9);
    }

    #[test]
    fn disjoint_input_sizes_fall_back_to_point_counts() {
        let old = report(&[(0, 4, 4, 10)]);
        let new = report(&[(0, 9, 9, 10), (0, 11, 11, 12)]);
        let changes = diff_reports(&old, &new);
        if let RoutineChange::Changed(d) = &changes[&RoutineId::new(0)] {
            assert_eq!(d.cost_at_common_input, None);
            assert!(d.is_significant(0.5), "point count changed 1 -> 2");
        } else {
            unreachable!();
        }
    }
}
