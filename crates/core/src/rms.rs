//! The rms-only profiler — the `aprof` baseline (PLDI'12 latest-access
//! algorithm).
//!
//! Unlike [`DrmsProfiler`](crate::DrmsProfiler), this tool maintains *no*
//! global write-timestamp shadow: it tracks only per-thread access
//! timestamps and shadow stacks, so it cannot see dynamic workloads. It
//! exists for measurement fairness — Table 1 of the paper compares
//! `aprof` and `aprof-drms` head to head, and the rms tool must not pay
//! for the global shadow memory it does not use.

use crate::profile::ProfileReport;
use drms_trace::{Addr, EventSink, RoutineId, ThreadId};
use drms_vm::{ShadowMemory, Tool};

struct Frame {
    routine: RoutineId,
    ts: u64,
    partial_rms: i64,
    entry_cost: u64,
}

struct ThreadState {
    /// 32-bit per-cell access timestamps, as in the original tool.
    ts: ShadowMemory<u32>,
    stack: Vec<Frame>,
}

/// The `aprof` baseline: computes the read memory size of every routine
/// activation using the latest-access timestamping algorithm.
///
/// Reports fill only the rms side of each
/// [`RoutineProfile`](crate::profile::RoutineProfile); drms fields mirror
/// the rms values (for this tool the two metrics coincide by
/// construction, as no dynamic input is observed).
///
/// # Example
/// ```
/// use drms_core::RmsProfiler;
/// use drms_vm::{ProgramBuilder, run_program, RunConfig};
///
/// let mut pb = ProgramBuilder::new();
/// let g = pb.global(4);
/// let main = pb.function("main", 0, |f| {
///     let _ = f.load(g.raw() as i64, 0);
///     let _ = f.load(g.raw() as i64, 1);
///     f.ret(None);
/// });
/// let program = pb.finish(main).unwrap();
/// let mut prof = RmsProfiler::new();
/// run_program(&program, RunConfig::default(), &mut prof).unwrap();
/// let p = prof.into_report().merged_routine(main);
/// assert_eq!(p.rms_plot()[0].0, 2);
/// ```
#[derive(Default)]
pub struct RmsProfiler {
    count: u64,
    threads: Vec<Option<ThreadState>>,
    report: ProfileReport,
}

impl RmsProfiler {
    /// Creates an rms profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// The report collected so far.
    pub fn report(&self) -> &ProfileReport {
        &self.report
    }

    /// Consumes the profiler, yielding its report.
    pub fn into_report(self) -> ProfileReport {
        self.report
    }

    fn thread_mut(&mut self, t: ThreadId) -> &mut ThreadState {
        let idx = t.index() as usize;
        while self.threads.len() <= idx {
            self.threads.push(None);
        }
        self.threads[idx].get_or_insert_with(|| ThreadState {
            ts: ShadowMemory::new(),
            stack: Vec::new(),
        })
    }

    fn read_cell(&mut self, t: ThreadId, cell: Addr) {
        let count = self.count as u32;
        let state = self.thread_mut(t);
        let Some(top_idx) = state.stack.len().checked_sub(1) else {
            state.ts.set(cell, count);
            return;
        };
        let ts_l = state.ts.get(cell) as u64;
        if ts_l < state.stack[top_idx].ts {
            state.stack[top_idx].partial_rms += 1;
            if ts_l != 0 {
                let pp = state.stack.partition_point(|f| f.ts <= ts_l);
                if let Some(i) = pp.checked_sub(1) {
                    state.stack[i].partial_rms -= 1;
                }
            }
            let routine = state.stack[top_idx].routine;
            state.ts.set(cell, count);
            self.report.entry(routine, t).breakdown.plain += 1;
            return;
        }
        state.ts.set(cell, count);
    }
}

impl EventSink for RmsProfiler {
    fn on_thread_start(&mut self, thread: ThreadId, _parent: Option<ThreadId>) {
        self.thread_mut(thread);
    }

    fn on_thread_switch(&mut self, _from: Option<ThreadId>, _to: ThreadId) {
        self.count += 1;
    }

    fn on_call(&mut self, thread: ThreadId, routine: RoutineId, cost: u64) {
        self.count += 1;
        // The baseline tool has no renumbering pass; its 32-bit stored
        // timestamps bound the executions it can observe (the full drms
        // profiler renumbers instead).
        assert!(
            self.count < u32::MAX as u64,
            "rms baseline exceeded its 32-bit timestamp budget"
        );
        let count = self.count;
        self.thread_mut(thread).stack.push(Frame {
            routine,
            ts: count,
            partial_rms: 0,
            entry_cost: cost,
        });
    }

    fn on_return(&mut self, thread: ThreadId, routine: RoutineId, cost: u64) {
        let state = self.thread_mut(thread);
        let Some(frame) = state.stack.pop() else {
            return;
        };
        debug_assert_eq!(frame.routine, routine, "unbalanced call stack");
        if let Some(parent) = state.stack.last_mut() {
            parent.partial_rms += frame.partial_rms;
        }
        let rms = frame.partial_rms.max(0) as u64;
        self.report.entry(frame.routine, thread).record(
            rms,
            rms,
            cost.saturating_sub(frame.entry_cost),
        );
    }

    fn on_read(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        for cell in addr.range(len) {
            self.read_cell(thread, cell);
        }
    }

    fn on_write(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        let count = self.count as u32;
        let state = self.thread_mut(thread);
        for cell in addr.range(len) {
            state.ts.set(cell, count);
        }
    }

    fn on_user_to_kernel(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        self.on_read(thread, addr, len);
    }

    // kernelToUser is intentionally ignored: aprof cannot observe kernel
    // writes into user buffers, which is the limitation drms removes.

    fn on_thread_exit(&mut self, thread: ThreadId, cost: u64) {
        loop {
            let state = self.thread_mut(thread);
            let Some(frame) = state.stack.last() else {
                break;
            };
            let routine = frame.routine;
            self.on_return(thread, routine, cost);
        }
    }
}

impl Tool for RmsProfiler {
    fn name(&self) -> &str {
        "aprof"
    }

    fn shadow_bytes(&self) -> u64 {
        let mut bytes = 0;
        for state in self.threads.iter().flatten() {
            bytes += state.ts.bytes();
            bytes += (state.stack.capacity() * std::mem::size_of::<Frame>()) as u64;
        }
        bytes + self.report.approx_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drms::{DrmsConfig, DrmsProfiler};
    use drms_trace::{Event, ThreadTrace};

    const R0: RoutineId = RoutineId::new(0);
    const T0: ThreadId = ThreadId::new(0);
    const T1: ThreadId = ThreadId::new(1);

    fn drive(events: Vec<(ThreadId, Event)>) -> ProfileReport {
        let mut traces: Vec<ThreadTrace> = Vec::new();
        for (i, (t, e)) in events.into_iter().enumerate() {
            let idx = t.index() as usize;
            while traces.len() <= idx {
                traces.push(ThreadTrace::new(ThreadId::new(traces.len() as u32)));
            }
            traces[idx].push(i as u64 + 1, 0, e);
        }
        let merged = drms_trace::merge_traces(traces);
        let mut prof = RmsProfiler::new();
        drms_trace::replay(&merged, &mut prof);
        prof.into_report()
    }

    #[test]
    fn rms_ignores_cross_thread_writes() {
        let report = drive(vec![
            (T0, Event::Call { routine: R0 }),
            (
                T0,
                Event::Read {
                    addr: Addr::new(5),
                    len: 1,
                },
            ),
            (
                T1,
                Event::Call {
                    routine: RoutineId::new(1),
                },
            ),
            (
                T1,
                Event::Write {
                    addr: Addr::new(5),
                    len: 1,
                },
            ),
            (
                T1,
                Event::Return {
                    routine: RoutineId::new(1),
                },
            ),
            (
                T0,
                Event::Read {
                    addr: Addr::new(5),
                    len: 1,
                },
            ),
            (T0, Event::Return { routine: R0 }),
        ]);
        let p = report.get(R0, T0).unwrap();
        assert_eq!(p.rms_plot(), vec![(1, 0)], "second read is not new input");
    }

    #[test]
    fn rms_ignores_kernel_fills() {
        let report = drive(vec![
            (T0, Event::Call { routine: R0 }),
            (
                T0,
                Event::KernelToUser {
                    addr: Addr::new(8),
                    len: 2,
                },
            ),
            (
                T0,
                Event::Read {
                    addr: Addr::new(8),
                    len: 1,
                },
            ),
            (
                T0,
                Event::KernelToUser {
                    addr: Addr::new(8),
                    len: 2,
                },
            ),
            (
                T0,
                Event::Read {
                    addr: Addr::new(8),
                    len: 1,
                },
            ),
            (T0, Event::Return { routine: R0 }),
        ]);
        let p = report.get(R0, T0).unwrap();
        assert_eq!(p.rms_plot(), vec![(1, 0)]);
    }

    /// On single-threaded executions without kernel input, rms (aprof)
    /// and drms (aprof-drms) agree on every activation.
    #[test]
    fn agrees_with_drms_on_static_workloads() {
        let mk = || {
            let mut evs = vec![(T0, Event::Call { routine: R0 })];
            for i in 0..30u64 {
                evs.push((
                    T0,
                    Event::Call {
                        routine: RoutineId::new(1),
                    },
                ));
                evs.push((
                    T0,
                    Event::Read {
                        addr: Addr::new(100 + i % 11),
                        len: 1,
                    },
                ));
                evs.push((
                    T0,
                    Event::Write {
                        addr: Addr::new(200 + i % 7),
                        len: 1,
                    },
                ));
                evs.push((
                    T0,
                    Event::Read {
                        addr: Addr::new(200 + i % 7),
                        len: 1,
                    },
                ));
                evs.push((
                    T0,
                    Event::Return {
                        routine: RoutineId::new(1),
                    },
                ));
            }
            evs.push((T0, Event::Return { routine: R0 }));
            evs
        };
        let rms_report = drive(mk());
        let mut traces: Vec<ThreadTrace> = vec![ThreadTrace::new(T0)];
        for (i, (_, e)) in mk().into_iter().enumerate() {
            traces[0].push(i as u64 + 1, 0, e);
        }
        let merged = drms_trace::merge_traces(traces);
        let mut drms = DrmsProfiler::new(DrmsConfig::full());
        drms_trace::replay(&merged, &mut drms);
        let drms_report = drms.into_report();
        for (&(r, t), p) in rms_report.iter() {
            let q = drms_report.get(r, t).expect("same routines profiled");
            assert_eq!(p.by_rms, q.by_rms, "rms tables agree");
            assert_eq!(p.by_rms, q.by_drms, "drms degenerates to rms");
        }
    }

    #[test]
    fn tool_metadata() {
        let mut p = RmsProfiler::new();
        p.on_call(T0, R0, 0);
        p.on_write(T0, Addr::new(64), 16);
        assert_eq!(p.name(), "aprof");
        assert!(p.shadow_bytes() > 0);
        p.on_thread_exit(T0, 5);
        assert_eq!(p.report().get(R0, T0).unwrap().calls, 1);
    }
}
