//! A minimal FNV-1a hasher for small integer keys.
//!
//! The profilers key hash maps by tiny tuples such as
//! `(RoutineId, ThreadId)` — at most 16 bytes of id material — and hit
//! those maps on every routine return. `std`'s default SipHash is
//! DoS-resistant but an order of magnitude slower than needed for keys
//! the guest program cannot choose adversarially (ids are assigned
//! densely by the VM). FNV-1a folds one byte per step with a multiply
//! and xor, which the compiler unrolls to a handful of instructions for
//! fixed-size keys.

use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a streaming hasher (64-bit).
#[derive(Clone, Copy, Debug)]
pub struct FnvHasher(u64);

/// `BuildHasher` plugging [`FnvHasher`] into `HashMap`.
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Hasher for FnvHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::hash::Hash;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a test vectors (64-bit).
        let hash = |s: &[u8]| {
            let mut h = FnvHasher::default();
            h.write(s);
            h.finish()
        };
        assert_eq!(hash(b""), 0xcbf29ce484222325);
        assert_eq!(hash(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(hash(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn usable_as_map_hasher() {
        let mut m: HashMap<(u32, u32), u64, FnvBuildHasher> = HashMap::default();
        for i in 0..100u32 {
            m.insert((i, i ^ 7), u64::from(i));
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m[&(42, 42 ^ 7)], 42);
        // Distinct tuples hash distinctly enough to be found again.
        let mut h1 = FnvHasher::default();
        (1u32, 2u32).hash(&mut h1);
        let mut h2 = FnvHasher::default();
        (2u32, 1u32).hash(&mut h2);
        assert_ne!(h1.finish(), h2.finish());
    }
}
