//! Input-sensitive profiling algorithms: the core contribution of the
//! CGO'14 paper *Estimating the Empirical Cost Function of Routines with
//! Dynamic Workloads*, reimplemented over the `drms-vm` instrumentation
//! substrate.
//!
//! Three interchangeable profilers consume the same event stream:
//!
//! * [`DrmsProfiler`] — the paper's read/write timestamping algorithm
//!   (Figures 8–9): computes the **dynamic read memory size** (first-reads
//!   plus induced first-reads from other threads and from the kernel) and
//!   the classical rms in one fused pass, with periodic timestamp
//!   renumbering against counter overflow;
//! * [`RmsProfiler`] — the `aprof` baseline (PLDI'12), blind to dynamic
//!   workloads;
//! * [`NaiveProfiler`] — the explicit set-based formulation (Figure 7),
//!   used as a differential-testing oracle.
//!
//! All three produce a [`ProfileReport`]: per (routine, thread), the set
//! of distinct observed input sizes with worst-case cost statistics, plus
//! the first-read provenance counters backing the paper's workload
//! characterization metrics.
//!
//! # Example
//!
//! ```
//! use drms_core::{DrmsProfiler, DrmsConfig};
//! use drms_vm::{ProgramBuilder, run_program, RunConfig};
//!
//! // consumer repeatedly reads a cell the producer rewrites: rms = 1,
//! // drms = number of handoffs (paper Figure 2).
//! let mut pb = ProgramBuilder::new();
//! let cell = pb.global(1);
//! let full = pb.semaphore(0);
//! let empty = pb.semaphore(1);
//! let consumer = pb.function("consumer", 0, |f| {
//!     f.for_range(0, 5, |f, _| {
//!         f.sem_wait(full);
//!         let _ = f.load(cell.raw() as i64, 0);
//!         f.sem_signal(empty);
//!     });
//! });
//! let main = pb.function("main", 0, |f| {
//!     let t = f.spawn(consumer, &[]);
//!     f.for_range(0, 5, |f, i| {
//!         f.sem_wait(empty);
//!         f.store(cell.raw() as i64, 0, i);
//!         f.sem_signal(full);
//!     });
//!     f.join(t);
//! });
//! let program = pb.finish(main).unwrap();
//! let mut prof = DrmsProfiler::new(DrmsConfig::full());
//! run_program(&program, RunConfig::default(), &mut prof).unwrap();
//! let p = prof.into_report().merged_routine(consumer);
//! assert_eq!(p.drms_plot().last().unwrap().0, 5);
//! assert_eq!(p.rms_plot().last().unwrap().0, 1);
//! ```

pub mod context;
pub mod diff;
pub mod drms;
pub mod fnv;
pub mod naive;
pub mod profile;
pub mod report_io;
pub mod rms;
pub mod variance;

pub use context::{CctProfiler, ContextId, ContextTree};
pub use diff::{diff_reports, regressions, RoutineChange, RoutineDelta};
pub use drms::{DrmsConfig, DrmsProfiler};
pub use naive::NaiveProfiler;
pub use profile::{CostStats, InputBreakdown, ProfileReport, RoutineProfile};
pub use report_io::ParseReportError;
pub use rms::RmsProfiler;
pub use variance::{drms_variance, RoutineVariance, VarianceReport};
