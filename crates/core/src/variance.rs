//! Cross-run drms variance: how schedule-sensitive each routine's
//! measured input sizes are.
//!
//! The drms of a routine depends on the interleaving the scheduler
//! produced (§4.2 of the paper: induced first reads appear where another
//! thread's store lands between two reads). Profiling the same program
//! under N chaos seeds and aggregating the per-routine terminal drms
//! values quantifies that sensitivity: a routine whose drms is identical
//! across seeds has a schedule-independent cost function; a large spread
//! flags a routine whose cost plot should be read as one sample of a
//! distribution.

use crate::profile::ProfileReport;
use drms_trace::RoutineId;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The drms spread of one routine across a set of runs.
#[derive(Clone, Debug, PartialEq)]
pub struct RoutineVariance {
    /// The routine.
    pub routine: RoutineId,
    /// Runs in which the routine was activated at least once.
    pub runs: usize,
    /// Smallest terminal (largest-observed) drms across runs.
    pub min_drms: u64,
    /// Largest terminal drms across runs.
    pub max_drms: u64,
    /// Mean terminal drms across runs.
    pub mean_drms: f64,
    /// Per-run terminal drms values, in run order (runs where the
    /// routine never ran are absent).
    pub samples: Vec<u64>,
}

impl RoutineVariance {
    /// Relative spread `(max − min) / mean`, `0` for degenerate data.
    /// Zero means the routine's drms is schedule-independent over the
    /// sampled seeds.
    pub fn spread(&self) -> f64 {
        if self.mean_drms <= 0.0 {
            0.0
        } else {
            (self.max_drms - self.min_drms) as f64 / self.mean_drms
        }
    }

    /// Whether every sampled run observed the same terminal drms.
    pub fn is_stable(&self) -> bool {
        self.min_drms == self.max_drms
    }
}

/// Per-routine drms spread across N runs of one program (typically one
/// chaos seed per run). Produced by [`drms_variance`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VarianceReport {
    /// One entry per routine observed in any run, in routine-id order.
    pub per_routine: Vec<RoutineVariance>,
    /// Number of reports aggregated.
    pub runs: usize,
}

impl VarianceReport {
    /// The entry of one routine, if it was ever activated.
    pub fn routine(&self, routine: RoutineId) -> Option<&RoutineVariance> {
        self.per_routine.iter().find(|v| v.routine == routine)
    }

    /// Routines whose drms differed between runs, worst spread first.
    pub fn unstable(&self) -> Vec<&RoutineVariance> {
        let mut out: Vec<&RoutineVariance> =
            self.per_routine.iter().filter(|v| !v.is_stable()).collect();
        out.sort_by(|a, b| {
            b.spread()
                .partial_cmp(&a.spread())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        out
    }

    /// Renders the `drms-variance` summary table, resolving routine
    /// names through `name`.
    pub fn render(&self, name: impl Fn(RoutineId) -> String) -> String {
        let mut out = format!("drms-variance over {} run(s)\n", self.runs);
        let _ = writeln!(
            out,
            "{:<24} {:>5} {:>10} {:>10} {:>12} {:>8}",
            "routine", "runs", "min drms", "max drms", "mean drms", "spread"
        );
        for v in &self.per_routine {
            let _ = writeln!(
                out,
                "{:<24} {:>5} {:>10} {:>10} {:>12.1} {:>8.3}",
                name(v.routine),
                v.runs,
                v.min_drms,
                v.max_drms,
                v.mean_drms,
                v.spread()
            );
        }
        out
    }
}

/// Aggregates the per-routine terminal drms of each report: for every
/// routine, the largest drms value any activation observed in that run
/// (the rightmost point of its cost plot), summarized across runs.
pub fn drms_variance(reports: &[ProfileReport]) -> VarianceReport {
    let mut samples: BTreeMap<RoutineId, Vec<u64>> = BTreeMap::new();
    for report in reports {
        for (routine, profile) in report.merged_by_routine() {
            if let Some((&drms, _)) = profile.by_drms.iter().next_back() {
                samples.entry(routine).or_default().push(drms);
            }
        }
    }
    let per_routine = samples
        .into_iter()
        .map(|(routine, samples)| {
            let min_drms = samples.iter().copied().min().unwrap_or(0);
            let max_drms = samples.iter().copied().max().unwrap_or(0);
            let mean_drms = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
            RoutineVariance {
                routine,
                runs: samples.len(),
                min_drms,
                max_drms,
                mean_drms,
                samples,
            }
        })
        .collect();
    VarianceReport {
        per_routine,
        runs: reports.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_trace::ThreadId;

    fn report_with(drms_values: &[(u32, u64)]) -> ProfileReport {
        let mut rep = ProfileReport::new();
        for &(r, d) in drms_values {
            rep.entry(RoutineId::new(r), ThreadId::MAIN)
                .record(1, d, 10);
        }
        rep
    }

    #[test]
    fn stable_routine_has_zero_spread() {
        let reports = vec![report_with(&[(0, 8)]), report_with(&[(0, 8)])];
        let v = drms_variance(&reports);
        assert_eq!(v.runs, 2);
        let r = v.routine(RoutineId::new(0)).unwrap();
        assert!(r.is_stable());
        assert_eq!(r.spread(), 0.0);
        assert_eq!((r.min_drms, r.max_drms), (8, 8));
        assert!(v.unstable().is_empty());
    }

    #[test]
    fn unstable_routine_reports_its_spread() {
        let reports = vec![
            report_with(&[(0, 4), (1, 100)]),
            report_with(&[(0, 4), (1, 60)]),
            report_with(&[(0, 4), (1, 80)]),
        ];
        let v = drms_variance(&reports);
        let r1 = v.routine(RoutineId::new(1)).unwrap();
        assert_eq!((r1.min_drms, r1.max_drms), (60, 100));
        assert!((r1.mean_drms - 80.0).abs() < 1e-9);
        assert!((r1.spread() - 0.5).abs() < 1e-9);
        assert_eq!(r1.samples, vec![100, 60, 80]);
        let unstable = v.unstable();
        assert_eq!(unstable.len(), 1);
        assert_eq!(unstable[0].routine, RoutineId::new(1));
    }

    #[test]
    fn routines_missing_from_some_runs_count_only_observed_runs() {
        let reports = vec![report_with(&[(0, 4)]), report_with(&[(1, 9)])];
        let v = drms_variance(&reports);
        assert_eq!(v.routine(RoutineId::new(0)).unwrap().runs, 1);
        assert_eq!(v.routine(RoutineId::new(1)).unwrap().runs, 1);
    }

    #[test]
    fn render_lists_every_routine() {
        let reports = vec![report_with(&[(0, 4), (1, 7)])];
        let text = drms_variance(&reports).render(|r| format!("fn{}", r.index()));
        assert!(text.contains("fn0"));
        assert!(text.contains("fn1"));
        assert!(text.starts_with("drms-variance over 1 run(s)"));
    }

    #[test]
    fn empty_input_yields_empty_report() {
        let v = drms_variance(&[]);
        assert_eq!(v.runs, 0);
        assert!(v.per_routine.is_empty());
    }
}
