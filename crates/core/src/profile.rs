//! Profile data produced by the input-sensitive profilers.
//!
//! A profiler's output is, per (routine, thread) pair, a set of
//! *performance tuples* relating observed input sizes to activation costs.
//! For each distinct input size the collector keeps worst-case (and
//! auxiliary) cost statistics — the paper's cost plots show, for each
//! distinct input size `n` of routine `r`, the maximum cost of an
//! activation of `r` on input size `n`.

use crate::fnv::FnvBuildHasher;
use drms_trace::{RoutineId, ThreadId};
use std::collections::{BTreeMap, HashMap};

/// Aggregated cost statistics of all activations sharing one input size.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CostStats {
    /// Number of activations observed.
    pub count: u64,
    /// Worst-case cost.
    pub max: u64,
    /// Best-case cost.
    pub min: u64,
    /// Sum of costs (for means).
    pub sum: u64,
}

impl CostStats {
    /// Folds one activation cost into the statistics.
    pub fn observe(&mut self, cost: u64) {
        if self.count == 0 {
            self.min = cost;
            self.max = cost;
        } else {
            self.min = self.min.min(cost);
            self.max = self.max.max(cost);
        }
        self.count += 1;
        self.sum += cost;
    }

    /// Mean cost across observed activations.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Relative cost spread `(max − min) / mean` of the activations
    /// sharing this input size — the paper's indicator that "some kind
    /// of information might not be captured correctly" when large.
    pub fn spread(&self) -> f64 {
        let mean = self.mean();
        if mean <= 0.0 {
            0.0
        } else {
            (self.max - self.min) as f64 / mean
        }
    }

    /// Merges another statistics record into this one.
    pub fn merge(&mut self, other: &CostStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// Operation-level classification of (possibly induced) first reads,
/// attributed to the topmost pending routine at the time of the read.
///
/// Backs the paper's *thread input* and *external input* metrics
/// (Figures 13–15).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct InputBreakdown {
    /// Plain first reads: the location's first access by the activation.
    pub plain: u64,
    /// Induced first reads caused by a store of another thread.
    pub thread_induced: u64,
    /// Induced first reads caused by kernel writes (external input).
    pub kernel_induced: u64,
}

impl InputBreakdown {
    /// Total (possibly induced) first-read operations.
    pub fn total(&self) -> u64 {
        self.plain + self.thread_induced + self.kernel_induced
    }

    /// Total induced first reads (thread + kernel).
    pub fn induced(&self) -> u64 {
        self.thread_induced + self.kernel_induced
    }

    /// Fraction of first reads induced by other threads, in `[0, 1]`.
    pub fn thread_fraction(&self) -> f64 {
        ratio(self.thread_induced, self.total())
    }

    /// Fraction of first reads induced by the kernel, in `[0, 1]`.
    pub fn kernel_fraction(&self) -> f64 {
        ratio(self.kernel_induced, self.total())
    }

    /// Adds another breakdown.
    pub fn merge(&mut self, other: &InputBreakdown) {
        self.plain += other.plain;
        self.thread_induced += other.thread_induced;
        self.kernel_induced += other.kernel_induced;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The profile of one routine as observed by one thread.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RoutineProfile {
    /// Number of collected activations.
    pub calls: u64,
    /// For each distinct rms value: cost statistics.
    pub by_rms: BTreeMap<u64, CostStats>,
    /// For each distinct drms value: cost statistics.
    pub by_drms: BTreeMap<u64, CostStats>,
    /// Σ rms over activations (dynamic-input-volume numerator).
    pub sum_rms: u64,
    /// Σ drms over activations (dynamic-input-volume denominator).
    pub sum_drms: u64,
    /// Operation-level first-read classification.
    pub breakdown: InputBreakdown,
}

impl RoutineProfile {
    /// Records one completed activation.
    pub fn record(&mut self, rms: u64, drms: u64, cost: u64) {
        self.calls += 1;
        self.by_rms.entry(rms).or_default().observe(cost);
        self.by_drms.entry(drms).or_default().observe(cost);
        self.sum_rms += rms;
        self.sum_drms += drms;
    }

    /// Number of distinct rms values collected (`|rms_r|` in the paper).
    pub fn distinct_rms(&self) -> usize {
        self.by_rms.len()
    }

    /// Number of distinct drms values collected (`|drms_r|`).
    pub fn distinct_drms(&self) -> usize {
        self.by_drms.len()
    }

    /// Worst-case cost plot keyed by rms: `(input size, max cost)`.
    pub fn rms_plot(&self) -> Vec<(u64, u64)> {
        self.by_rms.iter().map(|(&n, s)| (n, s.max)).collect()
    }

    /// Worst-case cost plot keyed by drms: `(input size, max cost)`.
    pub fn drms_plot(&self) -> Vec<(u64, u64)> {
        self.by_drms.iter().map(|(&n, s)| (n, s.max)).collect()
    }

    /// Merges another profile of the same routine (e.g. another thread's).
    pub fn merge(&mut self, other: &RoutineProfile) {
        self.calls += other.calls;
        for (&n, s) in &other.by_rms {
            self.by_rms.entry(n).or_default().merge(s);
        }
        for (&n, s) in &other.by_drms {
            self.by_drms.entry(n).or_default().merge(s);
        }
        self.sum_rms += other.sum_rms;
        self.sum_drms += other.sum_drms;
        self.breakdown.merge(&other.breakdown);
    }

    /// Rough host bytes used by this profile's tables.
    pub fn approx_bytes(&self) -> u64 {
        ((self.by_rms.len() + self.by_drms.len())
            * (std::mem::size_of::<u64>() + std::mem::size_of::<CostStats>() + 32)) as u64
    }
}

/// A full profiling report: thread-sensitive routine profiles.
///
/// Profiles generated by different threads are kept distinct (as in the
/// paper) and may be merged afterwards with
/// [`ProfileReport::merged_by_routine`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileReport {
    profiles: HashMap<(RoutineId, ThreadId), RoutineProfile, FnvBuildHasher>,
}

impl ProfileReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// The profile of `(routine, thread)`, created on demand.
    pub fn entry(&mut self, routine: RoutineId, thread: ThreadId) -> &mut RoutineProfile {
        self.profiles.entry((routine, thread)).or_default()
    }

    /// The profile of `(routine, thread)`, if any activation was recorded.
    pub fn get(&self, routine: RoutineId, thread: ThreadId) -> Option<&RoutineProfile> {
        self.profiles.get(&(routine, thread))
    }

    /// Iterates `((routine, thread), profile)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&(RoutineId, ThreadId), &RoutineProfile)> {
        self.profiles.iter()
    }

    /// Number of `(routine, thread)` profiles.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether no activation was recorded.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Merges the per-thread profiles of each routine into one profile per
    /// routine, returned in routine-id order.
    pub fn merged_by_routine(&self) -> BTreeMap<RoutineId, RoutineProfile> {
        let mut out: BTreeMap<RoutineId, RoutineProfile> = BTreeMap::new();
        for (&(routine, _), profile) in &self.profiles {
            out.entry(routine).or_default().merge(profile);
        }
        out
    }

    /// The merged profile of one routine across all threads.
    pub fn merged_routine(&self, routine: RoutineId) -> RoutineProfile {
        let mut out = RoutineProfile::default();
        for (&(r, _), profile) in &self.profiles {
            if r == routine {
                out.merge(profile);
            }
        }
        out
    }

    /// Global dynamic input volume (paper metric 2):
    /// `1 − Σ rms / Σ drms` over all routine activations, in `[0, 1)`.
    pub fn dynamic_input_volume(&self) -> f64 {
        let (mut rms, mut drms) = (0u64, 0u64);
        for p in self.profiles.values() {
            rms += p.sum_rms;
            drms += p.sum_drms;
        }
        if drms == 0 {
            0.0
        } else {
            1.0 - rms as f64 / drms as f64
        }
    }

    /// Rough host bytes used by all profile tables.
    pub fn approx_bytes(&self) -> u64 {
        self.profiles
            .values()
            .map(RoutineProfile::approx_bytes)
            .sum::<u64>()
            + (self.profiles.len() * 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_stats_observe_and_merge() {
        let mut s = CostStats::default();
        s.observe(10);
        s.observe(4);
        s.observe(7);
        assert_eq!((s.count, s.min, s.max, s.sum), (3, 4, 10, 21));
        assert!((s.mean() - 7.0).abs() < 1e-9);
        let mut t = CostStats::default();
        t.observe(100);
        s.merge(&t);
        assert_eq!((s.count, s.max), (4, 100));
        let mut empty = CostStats::default();
        empty.merge(&s);
        assert_eq!(empty, s);
        s.merge(&CostStats::default());
        assert_eq!(s.count, 4);
    }

    #[test]
    fn breakdown_fractions() {
        let b = InputBreakdown {
            plain: 50,
            thread_induced: 25,
            kernel_induced: 25,
        };
        assert_eq!(b.total(), 100);
        assert_eq!(b.induced(), 50);
        assert!((b.thread_fraction() - 0.25).abs() < 1e-9);
        assert!((b.kernel_fraction() - 0.25).abs() < 1e-9);
        assert_eq!(InputBreakdown::default().thread_fraction(), 0.0);
    }

    #[test]
    fn routine_profile_plots_are_worst_case() {
        let mut p = RoutineProfile::default();
        p.record(5, 10, 100);
        p.record(5, 10, 300);
        p.record(5, 20, 200);
        assert_eq!(p.calls, 3);
        assert_eq!(p.distinct_rms(), 1);
        assert_eq!(p.distinct_drms(), 2);
        assert_eq!(p.rms_plot(), vec![(5, 300)]);
        assert_eq!(p.drms_plot(), vec![(10, 300), (20, 200)]);
        assert_eq!(p.sum_rms, 15);
        assert_eq!(p.sum_drms, 40);
    }

    #[test]
    fn report_merging_across_threads() {
        let mut rep = ProfileReport::new();
        let r = RoutineId::new(1);
        rep.entry(r, ThreadId::new(0)).record(1, 2, 10);
        rep.entry(r, ThreadId::new(1)).record(1, 3, 30);
        rep.entry(RoutineId::new(2), ThreadId::new(0))
            .record(4, 4, 5);
        assert_eq!(rep.len(), 3);
        let merged = rep.merged_by_routine();
        assert_eq!(merged.len(), 2);
        let m = &merged[&r];
        assert_eq!(m.calls, 2);
        assert_eq!(m.drms_plot(), vec![(2, 10), (3, 30)]);
        assert_eq!(rep.merged_routine(r).calls, 2);
        assert_eq!(rep.merged_routine(RoutineId::new(9)).calls, 0);
    }

    #[test]
    fn dynamic_input_volume_bounds() {
        let mut rep = ProfileReport::new();
        assert_eq!(rep.dynamic_input_volume(), 0.0);
        rep.entry(RoutineId::new(0), ThreadId::MAIN)
            .record(10, 10, 1);
        assert!(rep.dynamic_input_volume().abs() < 1e-9);
        rep.entry(RoutineId::new(1), ThreadId::MAIN)
            .record(0, 30, 1);
        // Σrms = 10, Σdrms = 40 → volume = 0.75
        assert!((rep.dynamic_input_volume() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn report_bytes_grow_with_content() {
        let mut rep = ProfileReport::new();
        let before = rep.approx_bytes();
        for i in 0..50 {
            rep.entry(RoutineId::new(0), ThreadId::MAIN).record(i, i, i);
        }
        assert!(rep.approx_bytes() > before);
    }
}
