//! The naive set-based algorithm (paper §3.1, Figure 7) — a slow but
//! obviously-correct oracle for differential testing.
//!
//! For every pending routine activation `r` of every thread `t` it keeps
//! an explicit set `L(r,t)` of memory locations, updated per the paper's
//! table: reads and writes by `t` insert into all of `t`'s pending sets;
//! writes by other threads (and kernel fills) remove from them. A read of
//! `ℓ` increments `drms(r,t)` exactly when `ℓ ∉ L(r,t)`.
//!
//! The rms oracle is the same construction without cross-thread removal.
//! Property tests assert that the timestamping algorithm matches this
//! oracle event-for-event on arbitrary interleavings.

use crate::profile::ProfileReport;
use drms_trace::{Addr, EventSink, RoutineId, ThreadId};
use drms_vm::Tool;
use std::collections::HashSet;

struct Frame {
    routine: RoutineId,
    /// `L(r,t)`: locations accessed since activation, minus foreign-write
    /// invalidations.
    live: HashSet<u64>,
    /// Locations accessed since activation (never removed) — rms oracle.
    accessed: HashSet<u64>,
    drms: u64,
    rms: u64,
    entry_cost: u64,
}

#[derive(Default)]
struct ThreadState {
    stack: Vec<Frame>,
}

/// The naive oracle profiler.
///
/// Time is `O(stack depth)` per access and `O(threads × stack depth)` per
/// write, and space is proportional to the footprint times the stack
/// depth — use on small workloads only.
#[derive(Default)]
pub struct NaiveProfiler {
    threads: Vec<ThreadState>,
    report: ProfileReport,
}

impl NaiveProfiler {
    /// Creates a naive profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// The report collected so far.
    pub fn report(&self) -> &ProfileReport {
        &self.report
    }

    /// Consumes the profiler, yielding its report.
    pub fn into_report(self) -> ProfileReport {
        self.report
    }

    fn thread_mut(&mut self, t: ThreadId) -> &mut ThreadState {
        let idx = t.index() as usize;
        while self.threads.len() <= idx {
            self.threads.push(ThreadState::default());
        }
        &mut self.threads[idx]
    }

    fn read_cell(&mut self, t: ThreadId, cell: Addr) {
        let raw = cell.raw();
        let state = self.thread_mut(t);
        for frame in &mut state.stack {
            if frame.live.insert(raw) {
                frame.drms += 1;
            }
            if frame.accessed.insert(raw) {
                frame.rms += 1;
            }
        }
    }

    fn write_cell(&mut self, t: ThreadId, cell: Addr) {
        let raw = cell.raw();
        let own = t.index() as usize;
        for (idx, state) in self.threads.iter_mut().enumerate() {
            if idx == own {
                for frame in &mut state.stack {
                    frame.live.insert(raw);
                    frame.accessed.insert(raw);
                }
            } else {
                for frame in &mut state.stack {
                    frame.live.remove(&raw);
                }
            }
        }
    }

    fn kernel_write_cell(&mut self, cell: Addr) {
        let raw = cell.raw();
        // The kernel acts as a separate thread: invalidate everywhere.
        for state in &mut self.threads {
            for frame in &mut state.stack {
                frame.live.remove(&raw);
            }
        }
    }
}

impl EventSink for NaiveProfiler {
    fn on_thread_start(&mut self, thread: ThreadId, _parent: Option<ThreadId>) {
        self.thread_mut(thread);
    }

    fn on_call(&mut self, thread: ThreadId, routine: RoutineId, cost: u64) {
        self.thread_mut(thread).stack.push(Frame {
            routine,
            live: HashSet::new(),
            accessed: HashSet::new(),
            drms: 0,
            rms: 0,
            entry_cost: cost,
        });
    }

    fn on_return(&mut self, thread: ThreadId, routine: RoutineId, cost: u64) {
        let state = self.thread_mut(thread);
        let Some(frame) = state.stack.pop() else {
            return;
        };
        debug_assert_eq!(frame.routine, routine, "unbalanced call stack");
        self.report.entry(frame.routine, thread).record(
            frame.rms,
            frame.drms,
            cost.saturating_sub(frame.entry_cost),
        );
    }

    fn on_read(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        for cell in addr.range(len) {
            self.read_cell(thread, cell);
        }
    }

    fn on_write(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        for cell in addr.range(len) {
            self.write_cell(thread, cell);
        }
    }

    fn on_user_to_kernel(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        self.on_read(thread, addr, len);
    }

    fn on_kernel_to_user(&mut self, _thread: ThreadId, addr: Addr, len: u32) {
        for cell in addr.range(len) {
            self.kernel_write_cell(cell);
        }
    }

    fn on_thread_exit(&mut self, thread: ThreadId, cost: u64) {
        loop {
            let state = self.thread_mut(thread);
            let Some(frame) = state.stack.last() else {
                break;
            };
            let routine = frame.routine;
            self.on_return(thread, routine, cost);
        }
    }
}

impl Tool for NaiveProfiler {
    fn name(&self) -> &str {
        "naive-drms"
    }

    fn shadow_bytes(&self) -> u64 {
        let mut bytes = 0u64;
        for state in &self.threads {
            for frame in &state.stack {
                bytes += ((frame.live.len() + frame.accessed.len())
                    * std::mem::size_of::<u64>()
                    * 2) as u64;
            }
        }
        bytes + self.report.approx_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R0: RoutineId = RoutineId::new(0);
    const R1: RoutineId = RoutineId::new(1);
    const T0: ThreadId = ThreadId::new(0);
    const T1: ThreadId = ThreadId::new(1);

    #[test]
    fn figure_1a_oracle() {
        let mut p = NaiveProfiler::new();
        p.on_call(T0, R0, 0);
        p.on_read(T0, Addr::new(10), 1);
        p.on_call(T1, R1, 0);
        p.on_write(T1, Addr::new(10), 1);
        p.on_return(T1, R1, 0);
        p.on_read(T0, Addr::new(10), 1);
        p.on_return(T0, R0, 0);
        let report = p.into_report();
        let f = report.get(R0, T0).unwrap();
        assert_eq!(f.drms_plot(), vec![(2, 0)]);
        assert_eq!(f.rms_plot(), vec![(1, 0)]);
    }

    #[test]
    fn own_writes_do_not_invalidate() {
        let mut p = NaiveProfiler::new();
        p.on_call(T0, R0, 0);
        p.on_write(T0, Addr::new(4), 1);
        p.on_read(T0, Addr::new(4), 1);
        p.on_return(T0, R0, 2);
        let report = p.into_report();
        let f = report.get(R0, T0).unwrap();
        assert_eq!(f.drms_plot(), vec![(0, 2)]);
        assert_eq!(f.rms_plot(), vec![(0, 2)]);
    }

    #[test]
    fn kernel_fill_invalidates_all_threads() {
        let mut p = NaiveProfiler::new();
        p.on_call(T0, R0, 0);
        p.on_call(T1, R1, 0);
        p.on_read(T0, Addr::new(9), 1);
        p.on_read(T1, Addr::new(9), 1);
        p.on_kernel_to_user(T0, Addr::new(9), 1);
        p.on_read(T0, Addr::new(9), 1);
        p.on_read(T1, Addr::new(9), 1);
        p.on_return(T0, R0, 0);
        p.on_return(T1, R1, 0);
        let report = p.into_report();
        assert_eq!(report.get(R0, T0).unwrap().drms_plot(), vec![(2, 0)]);
        assert_eq!(report.get(R1, T1).unwrap().drms_plot(), vec![(2, 0)]);
    }

    #[test]
    fn event_sink_trait_object_usable() {
        let mut p = NaiveProfiler::new();
        {
            let sink: &mut dyn EventSink = &mut p;
            sink.on_call(T0, R0, 0);
            sink.on_read(T0, Addr::new(1), 3);
            sink.on_thread_exit(T0, 9);
        }
        assert_eq!(p.name(), "naive-drms");
        let f = p.report().get(R0, T0).unwrap();
        assert_eq!(f.drms_plot(), vec![(3, 9)]);
    }
}
