//! The read/write timestamping algorithm (paper §3.2, Figures 8 and 9).
//!
//! [`DrmsProfiler`] computes, for every routine activation of every
//! thread, the **dynamic read memory size** — the number of first-reads
//! and induced first-reads — together with the classical **read memory
//! size** in a single fused pass, plus the activation's cost.
//!
//! Data structures mirror the paper exactly:
//!
//! * a global counter `count`, incremented at each thread switch and
//!   routine activation (and at each `kernelToUser` transfer);
//! * a global shadow memory `wts` holding, per cell, the timestamp of the
//!   latest write by *any* thread (or by the kernel);
//! * per thread, a shadow memory `ts_t` holding the timestamp of the
//!   thread's latest access to each cell, and a shadow run-time stack
//!   whose entries carry the invocation timestamp and *partial* rms/drms
//!   values maintained under the paper's Invariant 2;
//! * the ancestor search of `read` (line 7) runs in `O(log d)` via binary
//!   search on the strictly increasing invocation timestamps.
//!
//! Counter overflow is handled by periodic global renumbering: when
//! `count` reaches a configurable limit, all live timestamps are
//! rank-compressed, preserving every pairwise order relation among
//! `ts_t[ℓ]`, `wts[ℓ]` and the shadow-stack entries.

use crate::profile::ProfileReport;
use drms_trace::{Addr, EventSink, Metrics, RoutineId, ThreadId};
use drms_vm::{BatchKind, EventBatch, ShadowCacheStats, ShadowMemory, Tool};

/// Which write source a `wts` entry came from (provenance of induced
/// first-reads, backing the thread/external input split of Figs. 13–15).
#[allow(dead_code)]
const SRC_NONE: u8 = 0;
const SRC_THREAD: u8 = 1;
const SRC_KERNEL: u8 = 2;

/// Configuration of the drms profiler.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DrmsConfig {
    /// Count induced first-reads caused by stores of other threads.
    ///
    /// Disabling this (with `external_input` on) reproduces the paper's
    /// "drms with external input only" variant (Figure 6b).
    pub thread_input: bool,
    /// Count induced first-reads caused by kernel transfers (Figure 9).
    pub external_input: bool,
    /// Renumber timestamps when `count` reaches this value.
    ///
    /// The default mimics a 32-bit counter. Tests force tiny limits to
    /// exercise renumbering aggressively.
    pub count_limit: u64,
}

impl Default for DrmsConfig {
    fn default() -> Self {
        DrmsConfig {
            thread_input: true,
            external_input: true,
            count_limit: u32::MAX as u64,
        }
    }
}

impl DrmsConfig {
    /// Both dynamic input sources enabled (the full metric).
    pub fn full() -> Self {
        Self::default()
    }

    /// Only external (kernel) input counts as induced (Figure 6b).
    pub fn external_only() -> Self {
        DrmsConfig {
            thread_input: false,
            ..Self::default()
        }
    }

    /// No dynamic input sources: drms degenerates to rms.
    pub fn static_only() -> Self {
        DrmsConfig {
            thread_input: false,
            external_input: false,
            ..Self::default()
        }
    }
}

/// Number of slots in the [`SuppressCache`]; a power of two.
const SUPPRESS_SLOTS: usize = 8192;

#[derive(Clone, Copy)]
struct SuppressSlot {
    addr: u64,
    gen: u64,
    /// Whether a *write* to this cell is also a no-op (set by a write,
    /// cleared by a read: a read does not stamp `wts`/`wsrc`, so a
    /// later write at the same count still has work to do).
    write_ok: bool,
}

/// Hot-loop redundancy suppression: a direct-mapped, generation-tagged
/// cache of cells the current thread has already accessed at the
/// current global `count`.
///
/// Soundness rests on the timestamping algorithm itself: after
/// `read(ℓ)` by thread `t` at count `c`, `ts_t[ℓ] = c`, and since every
/// frame's invocation timestamp and every `wts` entry is ≤ `c`, a
/// second `read(ℓ)` by `t` at the same `c` takes neither the induced
/// nor the rms-first branch and rewrites `ts_t[ℓ] = c` — a complete
/// no-op. Likewise a repeated `write(ℓ)` restores the identical
/// `ts`/`wts`/`wsrc` values, and a read after a write is a no-op too
/// (the reverse is not: a read does not stamp `wts`, hence `write_ok`).
/// The cache is therefore invalidated *only* when `count` moves
/// (thread switch, routine call, kernel fill — all call `bump_count`)
/// or when events from a different thread arrive without an
/// intervening switch (trace replays); both are O(1) generation bumps.
/// Returns never invalidate: the no-op argument is stack-independent.
///
/// A collision merely evicts — the slow path re-runs the (idempotent)
/// event handler — so the cache can never change the profile, only
/// skip shadow-memory walks. The hit/lookup counters land in the
/// metrics registry and are byte-identical across dispatch modes,
/// because delivery order (and thus the cache's state machine) is.
struct SuppressCache {
    slots: Vec<SuppressSlot>,
    gen: u64,
    owner: ThreadId,
    read_hits: u64,
    write_hits: u64,
    lookups: u64,
    flushes: u64,
}

impl SuppressCache {
    fn new() -> Self {
        SuppressCache {
            slots: vec![
                SuppressSlot {
                    addr: 0,
                    gen: 0,
                    write_ok: false,
                };
                SUPPRESS_SLOTS
            ],
            // Generation 0 is reserved for "never written" slots.
            gen: 1,
            owner: ThreadId::MAIN,
            read_hits: 0,
            write_hits: 0,
            lookups: 0,
            flushes: 0,
        }
    }

    #[inline(always)]
    fn idx(cell: Addr) -> usize {
        let a = cell.raw();
        ((a ^ (a >> 13)) as usize) & (SUPPRESS_SLOTS - 1)
    }

    /// Invalidates every entry (generation bump; storage untouched).
    #[inline]
    fn flush(&mut self) {
        self.gen += 1;
        self.flushes += 1;
    }

    /// Re-homes the cache when events arrive from a different thread
    /// than the one that filled it. VM streams flush on the thread
    /// switch anyway; this guards direct trace replays.
    #[inline(always)]
    fn retarget(&mut self, t: ThreadId) {
        if t != self.owner {
            self.flush();
            self.owner = t;
        }
    }

    #[inline(always)]
    fn read_suppressed(&mut self, t: ThreadId, cell: Addr) -> bool {
        self.retarget(t);
        self.lookups += 1;
        let s = &self.slots[Self::idx(cell)];
        let hit = s.gen == self.gen && s.addr == cell.raw();
        self.read_hits += hit as u64;
        hit
    }

    #[inline(always)]
    fn write_suppressed(&mut self, t: ThreadId, cell: Addr) -> bool {
        self.retarget(t);
        self.lookups += 1;
        let s = &self.slots[Self::idx(cell)];
        let hit = s.gen == self.gen && s.addr == cell.raw() && s.write_ok;
        self.write_hits += hit as u64;
        hit
    }

    #[inline(always)]
    fn insert_read(&mut self, cell: Addr) {
        let s = &mut self.slots[Self::idx(cell)];
        let write_ok = s.gen == self.gen && s.addr == cell.raw() && s.write_ok;
        *s = SuppressSlot {
            addr: cell.raw(),
            gen: self.gen,
            write_ok,
        };
    }

    #[inline(always)]
    fn insert_write(&mut self, cell: Addr) {
        self.slots[Self::idx(cell)] = SuppressSlot {
            addr: cell.raw(),
            gen: self.gen,
            write_ok: true,
        };
    }
}

struct Frame {
    routine: RoutineId,
    /// Invocation timestamp (`St[i].ts`).
    ts: u64,
    /// Partial rms under Invariant 2 (may be transiently negative).
    partial_rms: i64,
    /// Partial drms under Invariant 2 (may be transiently negative).
    partial_drms: i64,
    /// Thread cost when the activation began (`St[i].cost`).
    entry_cost: u64,
}

struct ThreadState {
    /// 32-bit per-cell timestamps, as in the original tool — the reason
    /// periodic renumbering is needed at all.
    ts: ShadowMemory<u32>,
    stack: Vec<Frame>,
    last_cost: u64,
}

impl ThreadState {
    fn new() -> Self {
        ThreadState {
            ts: ShadowMemory::new(),
            stack: Vec::new(),
            last_cost: 0,
        }
    }
}

/// The aprof-drms profiler: computes rms and drms per routine activation
/// in one pass over the instrumentation event stream.
///
/// Attach it to a live VM run as a [`Tool`], or feed it a merged trace via
/// [`drms_trace::replay()`] — both produce identical profiles.
///
/// # Example
/// ```
/// use drms_core::{DrmsProfiler, DrmsConfig};
/// use drms_vm::{ProgramBuilder, run_program, RunConfig};
///
/// let mut pb = ProgramBuilder::new();
/// let g = pb.global(8);
/// let work = pb.function("work", 0, |f| {
///     f.for_range(0, 8, |f, i| { let _ = f.load(g.raw() as i64, i); });
///     f.ret(None);
/// });
/// let main = pb.function("main", 0, |f| {
///     f.call_void(work, &[]);
///     f.ret(None);
/// });
/// let program = pb.finish(main).unwrap();
/// let mut prof = DrmsProfiler::new(DrmsConfig::full());
/// run_program(&program, RunConfig::default(), &mut prof).unwrap();
/// let report = prof.into_report();
/// let p = report.merged_routine(work);
/// assert_eq!(p.drms_plot().len(), 1);
/// assert_eq!(p.drms_plot()[0].0, 8); // eight distinct cells read
/// ```
pub struct DrmsProfiler {
    config: DrmsConfig,
    count: u64,
    wts: ShadowMemory<u32>,
    wsrc: ShadowMemory<u8>,
    threads: Vec<Option<ThreadState>>,
    report: ProfileReport,
    renumberings: u64,
    suppress: SuppressCache,
}

impl DrmsProfiler {
    /// Creates a profiler with the given configuration.
    pub fn new(config: DrmsConfig) -> Self {
        let config = DrmsConfig {
            // Stored timestamps are 32-bit; renumber before they overflow.
            count_limit: config.count_limit.min(u32::MAX as u64),
            ..config
        };
        DrmsProfiler {
            config,
            count: 0,
            wts: ShadowMemory::new(),
            wsrc: ShadowMemory::new(),
            threads: Vec::new(),
            report: ProfileReport::new(),
            renumberings: 0,
            suppress: SuppressCache::new(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> DrmsConfig {
        self.config
    }

    /// Number of global renumbering passes performed so far.
    pub fn renumberings(&self) -> u64 {
        self.renumberings
    }

    /// Current value of the global timestamp counter.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The report collected so far (activations still pending on some
    /// shadow stack are not included).
    pub fn report(&self) -> &ProfileReport {
        &self.report
    }

    /// Consumes the profiler, yielding its report.
    pub fn into_report(self) -> ProfileReport {
        self.report
    }

    fn bump_count(&mut self) {
        // Any count move invalidates the redundancy cache: "already
        // accessed at the current count" stops being true.
        self.suppress.flush();
        self.count += 1;
        if self.count >= self.config.count_limit {
            self.renumber();
        }
    }

    fn thread_mut(&mut self, t: ThreadId) -> &mut ThreadState {
        let idx = t.index() as usize;
        while self.threads.len() <= idx {
            self.threads.push(None);
        }
        self.threads[idx].get_or_insert_with(ThreadState::new)
    }

    /// The `read(ℓ, t)` event handler, short-circuited through the
    /// redundancy cache: a cell this thread already touched at the
    /// current count needs no shadow-memory walk (see [`SuppressCache`]).
    #[inline]
    fn read_cell(&mut self, t: ThreadId, cell: Addr) {
        if self.suppress.read_suppressed(t, cell) {
            return;
        }
        self.read_cell_slow(t, cell);
        self.suppress.insert_read(cell);
    }

    /// Core of the `read(ℓ, t)` event handler (Figure 8), fused with the
    /// rms ("latest access", PLDI'12) update.
    fn read_cell_slow(&mut self, t: ThreadId, cell: Addr) {
        let count = self.count as u32;
        let wts_l = self.wts.get(cell) as u64;
        let state = self.thread_mut(t);
        let Some(top_idx) = state.stack.len().checked_sub(1) else {
            // Access outside any routine activation: only refresh ts_t.
            state.ts.set(cell, count);
            return;
        };
        // One walk for the ts_t read-modify-write: every exit path stamps
        // the cell with the current count, so write it up front and keep
        // the old stamp for the first-read tests below.
        let slot = state.ts.slot_mut(cell);
        let ts_l = *slot as u64;
        *slot = count;
        let top_ts = state.stack[top_idx].ts;

        // rms side: a first access *by this thread's topmost activation*
        // is one whose last thread-local access predates the activation.
        let rms_first = ts_l < top_ts;

        if ts_l < wts_l {
            // Induced first-read: ℓ was written (by another thread or by
            // the kernel) after this thread's latest access.
            state.stack[top_idx].partial_drms += 1;
            if rms_first {
                state.stack[top_idx].partial_rms += 1;
                if ts_l != 0 {
                    if let Some(i) = ancestor_index(&state.stack, ts_l) {
                        state.stack[i].partial_rms -= 1;
                    }
                }
            }
            let routine = state.stack[top_idx].routine;
            // The write source only matters on this (rare) branch, so
            // its shadow walk is deferred to here.
            let src = self.wsrc.get(cell);
            let breakdown = self.report.entry(routine, t);
            match src {
                SRC_KERNEL => breakdown.breakdown.kernel_induced += 1,
                _ => breakdown.breakdown.thread_induced += 1,
            }
            return;
        }

        if rms_first {
            // Plain first read for the topmost activation; ancestors that
            // already saw ℓ give one unit back (Invariant 2).
            state.stack[top_idx].partial_drms += 1;
            state.stack[top_idx].partial_rms += 1;
            if ts_l != 0 {
                if let Some(i) = ancestor_index(&state.stack, ts_l) {
                    state.stack[i].partial_drms -= 1;
                    state.stack[i].partial_rms -= 1;
                }
            }
            let routine = state.stack[top_idx].routine;
            self.report.entry(routine, t).breakdown.plain += 1;
        }
    }

    /// The `write(ℓ, t)` event handler. Suppressible only when the
    /// previous access at this count was itself a write (`write_ok`):
    /// a repeated write restores identical `ts`/`wts`/`wsrc` stamps.
    #[inline]
    fn write_cell(&mut self, t: ThreadId, cell: Addr) {
        if self.suppress.write_suppressed(t, cell) {
            return;
        }
        let count = self.count as u32;
        self.thread_mut(t).ts.set(cell, count);
        if self.config.thread_input {
            self.wts.set(cell, count);
            self.wsrc.set(cell, SRC_THREAD);
        }
        self.suppress.insert_write(cell);
    }

    /// Global timestamp renumbering (paper §3.2, "Counter Overflows").
    ///
    /// All timestamps live in `wts`, the per-thread `ts_t` shadows and the
    /// shadow stacks; rank-compressing them preserves every pairwise
    /// order relation while shrinking the counter back towards zero.
    fn renumber(&mut self) {
        let mut live: Vec<u64> = Vec::new();
        self.wts.for_each_mut(|_, v| {
            if *v != 0 {
                live.push(*v as u64);
            }
        });
        for state in self.threads.iter_mut().flatten() {
            state.ts.for_each_mut(|_, v| {
                if *v != 0 {
                    live.push(*v as u64);
                }
            });
            for frame in &state.stack {
                live.push(frame.ts);
            }
        }
        live.push(self.count);
        live.sort_unstable();
        live.dedup();
        let rank_of = |v: u64| -> u64 {
            match live.binary_search(&v) {
                Ok(i) => i as u64 + 1,
                Err(_) => unreachable!("renumbering a timestamp that was not collected"),
            }
        };
        self.wts.for_each_mut(|_, v| {
            if *v != 0 {
                *v = match live.binary_search(&(*v as u64)) {
                    Ok(i) => i as u32 + 1,
                    Err(_) => unreachable!(),
                };
            }
        });
        for state in self.threads.iter_mut().flatten() {
            state.ts.for_each_mut(|_, v| {
                if *v != 0 {
                    *v = match live.binary_search(&(*v as u64)) {
                        Ok(i) => i as u32 + 1,
                        Err(_) => unreachable!(),
                    };
                }
            });
            for frame in &mut state.stack {
                frame.ts = rank_of(frame.ts);
            }
        }
        self.count = rank_of(self.count);
        self.renumberings += 1;
    }
}

/// `max i such that stack[i].ts <= ts` — the paper's line 7, in
/// `O(log d)` thanks to strictly increasing invocation timestamps.
fn ancestor_index(stack: &[Frame], ts: u64) -> Option<usize> {
    let pp = stack.partition_point(|f| f.ts <= ts);
    pp.checked_sub(1)
}

impl EventSink for DrmsProfiler {
    fn on_thread_start(&mut self, thread: ThreadId, _parent: Option<ThreadId>) {
        self.thread_mut(thread);
    }

    fn on_thread_switch(&mut self, _from: Option<ThreadId>, _to: ThreadId) {
        self.bump_count();
    }

    fn on_call(&mut self, thread: ThreadId, routine: RoutineId, cost: u64) {
        self.bump_count();
        let count = self.count;
        let state = self.thread_mut(thread);
        state.stack.push(Frame {
            routine,
            ts: count,
            partial_rms: 0,
            partial_drms: 0,
            entry_cost: cost,
        });
        state.last_cost = cost;
    }

    fn on_return(&mut self, thread: ThreadId, routine: RoutineId, cost: u64) {
        let state = self.thread_mut(thread);
        let Some(frame) = state.stack.pop() else {
            return;
        };
        debug_assert_eq!(frame.routine, routine, "unbalanced call stack");
        if let Some(parent) = state.stack.last_mut() {
            parent.partial_rms += frame.partial_rms;
            parent.partial_drms += frame.partial_drms;
        }
        state.last_cost = cost;
        let rms = frame.partial_rms.max(0) as u64;
        let drms = frame.partial_drms.max(0) as u64;
        debug_assert!(frame.partial_rms >= 0, "rms must be non-negative at return");
        debug_assert!(
            frame.partial_drms >= 0,
            "drms must be non-negative at return"
        );
        self.report.entry(frame.routine, thread).record(
            rms,
            drms,
            cost.saturating_sub(frame.entry_cost),
        );
    }

    fn on_read(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        for cell in addr.range(len) {
            self.read_cell(thread, cell);
        }
    }

    fn on_write(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        for cell in addr.range(len) {
            self.write_cell(thread, cell);
        }
    }

    fn on_user_to_kernel(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        // The kernel reads the buffer on the thread's behalf, "as if the
        // system call were a normal subroutine" (Figure 9).
        self.on_read(thread, addr, len);
    }

    fn on_kernel_to_user(&mut self, _thread: ThreadId, addr: Addr, len: u32) {
        if !self.config.external_input {
            return;
        }
        // Figure 9: bump the counter once, then stamp the buffer with a
        // global write timestamp larger than any thread-local one.
        self.bump_count();
        let count = self.count as u32;
        for cell in addr.range(len) {
            self.wts.set(cell, count);
            self.wsrc.set(cell, SRC_KERNEL);
        }
    }

    fn on_thread_exit(&mut self, thread: ThreadId, cost: u64) {
        // Defensive unwind: collect any activations still pending (the VM
        // normally returns from the root routine before exiting).
        loop {
            let state = self.thread_mut(thread);
            let Some(frame) = state.stack.last() else {
                break;
            };
            let routine = frame.routine;
            self.on_return(thread, routine, cost);
        }
    }

    fn on_finish(&mut self) {
        // An aborted run (watchdog, deadlock, corrupt stack) leaves
        // activations open on some shadow stacks. Flush them at each
        // thread's latest observed cost so the partial profile is still
        // valid; on a clean run every stack is already empty.
        for idx in 0..self.threads.len() {
            let cost = match &self.threads[idx] {
                Some(s) if !s.stack.is_empty() => s.last_cost,
                _ => continue,
            };
            self.on_thread_exit(ThreadId::new(idx as u32), cost);
        }
    }
}

impl Tool for DrmsProfiler {
    fn name(&self) -> &str {
        "aprof-drms"
    }

    fn shadow_bytes(&self) -> u64 {
        let mut bytes = self.wts.bytes() + self.wsrc.bytes();
        for state in self.threads.iter().flatten() {
            bytes += state.ts.bytes();
            bytes += (state.stack.capacity() * std::mem::size_of::<Frame>()) as u64;
        }
        bytes + self.report.approx_bytes()
    }

    /// Adds the profiler's shadow-memory pressure to the registry: the
    /// summed last-leaf cache counters of every shadow (`wts`, `wsrc`
    /// and the per-thread `ts_t`), leaf/byte gauges, and the
    /// renumbering count. `Metrics::audit` cross-checks
    /// `shadow.cache.hit + miss == lookups` over the summed values.
    fn observe_metrics(&self, metrics: &mut Metrics) {
        metrics.set_gauge(
            format!("tool.{}.shadow_bytes", self.name()),
            self.shadow_bytes(),
        );
        let mut cache = ShadowCacheStats::default();
        cache.absorb(self.wts.cache_stats());
        cache.absorb(self.wsrc.cache_stats());
        let mut leaves = (self.wts.leaf_count() + self.wsrc.leaf_count()) as u64;
        for state in self.threads.iter().flatten() {
            cache.absorb(state.ts.cache_stats());
            leaves += state.ts.leaf_count() as u64;
        }
        metrics.add("shadow.cache.hit", cache.hits);
        metrics.add("shadow.cache.miss", cache.misses);
        metrics.add("shadow.cache.lookups", cache.lookups);
        metrics.add("shadow.cache.invalidate", cache.invalidations);
        metrics.add("shadow.leaf_allocs", cache.leaf_allocs);
        metrics.set_gauge("shadow.leaves", leaves);
        metrics.set_gauge("shadow.bytes", self.shadow_bytes());
        metrics.add("drms.renumberings", self.renumberings);
        metrics.add("drms.suppress.lookups", self.suppress.lookups);
        metrics.add("drms.suppress.read_hits", self.suppress.read_hits);
        metrics.add("drms.suppress.write_hits", self.suppress.write_hits);
        metrics.add("drms.suppress.flushes", self.suppress.flushes);
    }

    /// Native batch path: one virtual dispatch delivers the whole
    /// read/write batch; each entry runs the same `read_cell` /
    /// `write_cell` state machine as per-event delivery (the VM flushes
    /// before every other event kind, so order is preserved exactly).
    fn observe_batch(&mut self, batch: &EventBatch) {
        let thread = batch.thread();
        let (kinds, addrs, lens) = batch.arrays();
        for i in 0..kinds.len() {
            match kinds[i] {
                BatchKind::Read => {
                    for cell in addrs[i].range(lens[i]) {
                        self.read_cell(thread, cell);
                    }
                }
                BatchKind::Write => {
                    for cell in addrs[i].range(lens[i]) {
                        self.write_cell(thread, cell);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_trace::{Event, RoutineId, ThreadTrace};

    const R0: RoutineId = RoutineId::new(0);
    const R1: RoutineId = RoutineId::new(1);
    const T0: ThreadId = ThreadId::new(0);
    const T1: ThreadId = ThreadId::new(1);

    fn a(x: u64) -> Addr {
        Addr::new(x)
    }

    /// Drives a hand-written interleaved event sequence into a profiler.
    fn drive(events: Vec<(ThreadId, Event)>, config: DrmsConfig) -> ProfileReport {
        let mut traces: Vec<ThreadTrace> = Vec::new();
        for (i, (t, e)) in events.into_iter().enumerate() {
            let idx = t.index() as usize;
            while traces.len() <= idx {
                traces.push(ThreadTrace::new(ThreadId::new(traces.len() as u32)));
            }
            traces[idx].push(i as u64 + 1, 0, e);
        }
        let merged = drms_trace::merge_traces(traces);
        let mut prof = DrmsProfiler::new(config);
        drms_trace::replay(&merged, &mut prof);
        prof.into_report()
    }

    fn call(r: RoutineId) -> Event {
        Event::Call { routine: r }
    }
    fn ret(r: RoutineId) -> Event {
        Event::Return { routine: r }
    }
    fn rd(x: u64) -> Event {
        Event::Read { addr: a(x), len: 1 }
    }
    fn wr(x: u64) -> Event {
        Event::Write { addr: a(x), len: 1 }
    }

    /// Figure 1a: f in T1 reads x twice; g in T2 overwrites x in between.
    /// rms(f) = 1, drms(f) = 2.
    #[test]
    fn figure_1a_interleaved_write() {
        let report = drive(
            vec![
                (T0, call(R0)),
                (T0, rd(10)),
                (T1, call(R1)),
                (T1, wr(10)),
                (T1, ret(R1)),
                (T0, rd(10)),
                (T0, ret(R0)),
            ],
            DrmsConfig::full(),
        );
        let f = report.get(R0, T0).unwrap();
        assert_eq!(f.drms_plot(), vec![(2, 0)]);
        assert_eq!(f.rms_plot(), vec![(1, 0)]);
        assert_eq!(f.breakdown.plain, 1);
        assert_eq!(f.breakdown.thread_induced, 1);
    }

    /// Figure 1b: f reads x, calls h which reads x (after T2 writes x),
    /// then T2 writes x again and f reads x a third time… the paper's
    /// exact interleaving: rms(h)=1, rms(f)=1, drms(h)=1, drms(f)=2.
    #[test]
    fn figure_1b_subroutine_induced_read() {
        // Interleaving: f: read x; T2 writes x; h: read x (induced for f
        // via h); T2 does NOT write again; f: read x → between the latest
        // T2 write and this read, T1 already accessed x through h, so the
        // third read is not induced.
        let h = RoutineId::new(2);
        let report = drive(
            vec![
                (T0, call(R0)), // f
                (T0, rd(10)),   // first-read for f
                (T1, call(R1)),
                (T1, wr(10)), // T2 write
                (T1, ret(R1)),
                (T0, call(h)),
                (T0, rd(10)), // induced first-read (also first for h)
                (T0, ret(h)),
                (T0, rd(10)), // NOT induced: T1 accessed x via h already
                (T0, ret(R0)),
            ],
            DrmsConfig::full(),
        );
        let f = report.get(R0, T0).unwrap();
        let hp = report.get(h, T0).unwrap();
        assert_eq!(hp.drms_plot(), vec![(1, 0)], "drms(h) = 1");
        assert_eq!(hp.rms_plot(), vec![(1, 0)], "rms(h) = 1");
        assert_eq!(f.drms_plot(), vec![(2, 0)], "drms(f) = 2");
        assert_eq!(f.rms_plot(), vec![(1, 0)], "rms(f) = 1");
    }

    /// First access that is a write suppresses later reads from the rms
    /// and the drms alike.
    #[test]
    fn write_then_read_is_not_input() {
        let report = drive(
            vec![(T0, call(R0)), (T0, wr(5)), (T0, rd(5)), (T0, ret(R0))],
            DrmsConfig::full(),
        );
        let p = report.get(R0, T0).unwrap();
        assert_eq!(p.drms_plot(), vec![(0, 0)]);
        assert_eq!(p.rms_plot(), vec![(0, 0)]);
    }

    /// Nested activations: the child's first-read is also the parent's;
    /// a later parent read of the same cell must not double-count
    /// (Invariant 2's ancestor decrement).
    #[test]
    fn nested_first_reads_propagate_once() {
        let report = drive(
            vec![
                (T0, call(R0)),
                (T0, call(R1)),
                (T0, rd(7)),
                (T0, ret(R1)),
                (T0, rd(7)), // parent already counted via child
                (T0, ret(R0)),
            ],
            DrmsConfig::full(),
        );
        let parent = report.get(R0, T0).unwrap();
        let child = report.get(R1, T0).unwrap();
        assert_eq!(child.drms_plot(), vec![(1, 0)]);
        assert_eq!(parent.drms_plot(), vec![(1, 0)]);
        assert_eq!(parent.rms_plot(), vec![(1, 0)]);
    }

    /// A sibling call's accesses count once for the parent; the second
    /// sibling reading the same cell counts for itself but not again for
    /// the parent.
    #[test]
    fn sibling_calls_share_parent_input() {
        let report = drive(
            vec![
                (T0, call(R0)),
                (T0, call(R1)),
                (T0, rd(7)),
                (T0, ret(R1)),
                (T0, call(R1)),
                (T0, rd(7)),
                (T0, ret(R1)),
                (T0, ret(R0)),
            ],
            DrmsConfig::full(),
        );
        let parent = report.get(R0, T0).unwrap();
        let child = report.get(R1, T0).unwrap();
        assert_eq!(
            parent.drms_plot(),
            vec![(1, 0)],
            "parent counts the cell once"
        );
        assert_eq!(child.calls, 2);
        // Both sibling activations observed drms = 1.
        assert_eq!(child.by_drms.get(&1).map(|s| s.count), Some(2));
    }

    /// Kernel input: kernelToUser stamps the buffer; the subsequent read
    /// is an induced first-read every time (data streaming, Figure 3).
    #[test]
    fn kernel_to_user_induces_reads() {
        let mut events = vec![(T0, call(R0))];
        for _ in 0..5 {
            events.push((
                T0,
                Event::KernelToUser {
                    addr: a(20),
                    len: 2,
                },
            ));
            events.push((T0, rd(20))); // only b[0] is consumed
        }
        events.push((T0, ret(R0)));
        let report = drive(events, DrmsConfig::full());
        let p = report.get(R0, T0).unwrap();
        assert_eq!(p.drms_plot(), vec![(5, 0)], "drms = n (5 induced reads)");
        assert_eq!(p.rms_plot(), vec![(1, 0)], "rms = 1 (same location)");
        // Every read follows a kernel fill, so all five are kernel-induced.
        assert_eq!(p.breakdown.kernel_induced, 5);
        assert_eq!(p.breakdown.plain, 0);
    }

    /// With external input disabled, kernel transfers are invisible.
    #[test]
    fn external_input_can_be_disabled() {
        let events = vec![
            (T0, call(R0)),
            (
                T0,
                Event::KernelToUser {
                    addr: a(20),
                    len: 1,
                },
            ),
            (T0, rd(20)),
            (
                T0,
                Event::KernelToUser {
                    addr: a(20),
                    len: 1,
                },
            ),
            (T0, rd(20)),
            (T0, ret(R0)),
        ];
        let report = drive(events, DrmsConfig::static_only());
        let p = report.get(R0, T0).unwrap();
        assert_eq!(p.drms_plot(), vec![(1, 0)], "degenerates to rms");
    }

    /// With thread input disabled but external enabled (Fig. 6b variant),
    /// cross-thread writes do not induce reads but kernel fills do.
    #[test]
    fn external_only_config() {
        let report = drive(
            vec![
                (T0, call(R0)),
                (T0, rd(10)),
                (T1, call(R1)),
                (T1, wr(10)),
                (T1, ret(R1)),
                (T0, rd(10)), // not induced under external-only
                (
                    T0,
                    Event::KernelToUser {
                        addr: a(10),
                        len: 1,
                    },
                ),
                (T0, rd(10)), // induced (kernel)
                (T0, ret(R0)),
            ],
            DrmsConfig::external_only(),
        );
        let p = report.get(R0, T0).unwrap();
        assert_eq!(p.drms_plot(), vec![(2, 0)]);
        assert_eq!(p.breakdown.kernel_induced, 1);
        assert_eq!(p.breakdown.thread_induced, 0);
    }

    /// userToKernel counts as a read performed by the thread.
    #[test]
    fn user_to_kernel_is_a_read() {
        let report = drive(
            vec![
                (T0, call(R0)),
                (
                    T0,
                    Event::UserToKernel {
                        addr: a(30),
                        len: 3,
                    },
                ),
                (T0, ret(R0)),
            ],
            DrmsConfig::full(),
        );
        let p = report.get(R0, T0).unwrap();
        assert_eq!(p.drms_plot(), vec![(3, 0)]);
        assert_eq!(p.rms_plot(), vec![(3, 0)]);
    }

    /// drms ≥ rms on every activation (paper Inequality 1).
    #[test]
    fn drms_dominates_rms() {
        let report = drive(
            vec![
                (T0, call(R0)),
                (T0, rd(1)),
                (T0, wr(2)),
                (T1, call(R1)),
                (T1, wr(1)),
                (T1, rd(2)),
                (T1, ret(R1)),
                (T0, rd(1)),
                (T0, rd(2)),
                (T0, ret(R0)),
            ],
            DrmsConfig::full(),
        );
        for (_, p) in report.iter() {
            assert!(p.sum_drms >= p.sum_rms);
        }
    }

    /// Renumbering with a tiny counter limit must not change results.
    #[test]
    fn renumbering_preserves_profiles() {
        let mk_events = || {
            let mut evs = vec![(T0, call(R0)), (T1, call(R1))];
            for i in 0..40 {
                evs.push((T0, rd(100 + (i % 7))));
                evs.push((T1, wr(100 + (i % 5))));
                evs.push((T0, wr(200 + (i % 3))));
                evs.push((T1, rd(200 + (i % 3))));
            }
            evs.push((T0, ret(R0)));
            evs.push((T1, ret(R1)));
            evs
        };
        let baseline = drive(mk_events(), DrmsConfig::full());
        let tiny = DrmsConfig {
            count_limit: 13,
            ..DrmsConfig::full()
        };
        // Drive manually to also check the renumbering counter.
        let mut traces: Vec<ThreadTrace> = Vec::new();
        for (i, (t, e)) in mk_events().into_iter().enumerate() {
            let idx = t.index() as usize;
            while traces.len() <= idx {
                traces.push(ThreadTrace::new(ThreadId::new(traces.len() as u32)));
            }
            traces[idx].push(i as u64 + 1, 0, e);
        }
        let merged = drms_trace::merge_traces(traces);
        let mut prof = DrmsProfiler::new(tiny);
        drms_trace::replay(&merged, &mut prof);
        assert!(
            prof.renumberings() > 0,
            "tiny limit must trigger renumbering"
        );
        assert!(prof.count() < 200);
        assert_eq!(prof.into_report(), baseline);
    }

    /// Producer/consumer pattern (paper Figure 2): at iteration n the
    /// consumer's drms is n while its rms is 1.
    #[test]
    fn producer_consumer_pattern() {
        let n = 6;
        let mut events = vec![(T0, call(R0)), (T1, call(R1))];
        for _ in 0..n {
            events.push((T0, wr(50))); // produceData writes x
            events.push((T1, rd(50))); // consumeData reads x
        }
        events.push((T0, ret(R0)));
        events.push((T1, ret(R1)));
        let report = drive(events, DrmsConfig::full());
        let consumer = report.get(R1, T1).unwrap();
        assert_eq!(consumer.drms_plot(), vec![(n, 0)]);
        assert_eq!(consumer.rms_plot(), vec![(1, 0)]);
    }

    #[test]
    fn shadow_bytes_grow_with_footprint() {
        let mut prof = DrmsProfiler::new(DrmsConfig::full());
        let before = prof.shadow_bytes();
        prof.on_call(T0, R0, 0);
        prof.on_write(T0, a(1000), 64);
        assert!(prof.shadow_bytes() > before);
        assert_eq!(prof.name(), "aprof-drms");
    }

    /// Hot-loop redundancy suppression: repeated same-count accesses
    /// hit the cache, never reach the shadow walk, and leave the
    /// profile exactly where the unsuppressed algebra puts it.
    #[test]
    fn redundant_rereads_hit_the_suppression_cache() {
        let mut prof = DrmsProfiler::new(DrmsConfig::full());
        prof.on_call(T0, R0, 0);
        for _ in 0..5 {
            prof.on_read(T0, a(100), 1); // 1 slow read + 4 suppressed
        }
        for _ in 0..3 {
            prof.on_write(T0, a(200), 1); // 1 slow write + 2 suppressed
        }
        prof.on_read(T0, a(200), 1); // read-after-write: suppressed too
        prof.on_write(T0, a(100), 1); // write-after-read: NOT suppressible
        assert_eq!(prof.suppress.read_hits, 5);
        assert_eq!(prof.suppress.write_hits, 2);
        assert_eq!(prof.suppress.lookups, 10);
        // A count bump (here: a nested call) invalidates everything.
        prof.on_call(T0, R1, 4);
        prof.on_read(T0, a(100), 1);
        assert_eq!(prof.suppress.read_hits, 5, "flushed on bump_count");
        // Events from another thread without a switch re-home the cache.
        prof.on_read(T1, a(100), 1);
        assert_eq!(prof.suppress.read_hits, 5, "flushed on owner change");
        prof.on_return(T0, R1, 8);
        prof.on_return(T0, R0, 9);
        let report = prof.into_report();
        let p = report.get(R0, T0).unwrap();
        // Only cell 100 is a first read for R0 (200 was self-written
        // before it was read back) — exactly as without the cache.
        assert_eq!(p.rms_plot(), vec![(1, 9)]);
    }

    /// The suppressed and unsuppressed event streams produce identical
    /// profiles on a workload with heavy re-reading (the cache is
    /// always on, so this pins the algebra the suppression relies on:
    /// replaying each read N times must change nothing).
    #[test]
    fn repeated_accesses_do_not_change_any_profile() {
        let base = vec![
            (T0, call(R0)),
            (T0, rd(10)),
            (T0, wr(20)),
            (T1, call(R1)),
            (T1, wr(10)),
            (T1, ret(R1)),
            (T0, rd(10)),
            (T0, ret(R0)),
        ];
        let mut tripled = Vec::new();
        for (t, e) in &base {
            let reps = match e {
                Event::Read { .. } | Event::Write { .. } => 3,
                _ => 1,
            };
            for _ in 0..reps {
                tripled.push((*t, *e));
            }
        }
        let a = drive(base, DrmsConfig::full());
        let b = drive(tripled, DrmsConfig::full());
        assert_eq!(
            a.get(R0, T0).unwrap().drms_plot(),
            b.get(R0, T0).unwrap().drms_plot()
        );
        assert_eq!(
            a.get(R0, T0).unwrap().rms_plot(),
            b.get(R0, T0).unwrap().rms_plot()
        );
    }

    #[test]
    fn thread_exit_unwinds_pending_frames() {
        let mut prof = DrmsProfiler::new(DrmsConfig::full());
        prof.on_call(T0, R0, 0);
        prof.on_call(T0, R1, 3);
        prof.on_read(T0, a(9), 1);
        prof.on_thread_exit(T0, 10);
        let report = prof.into_report();
        assert_eq!(report.get(R1, T0).unwrap().calls, 1);
        assert_eq!(report.get(R0, T0).unwrap().calls, 1);
        assert_eq!(report.get(R0, T0).unwrap().drms_plot(), vec![(1, 10)]);
    }
}
