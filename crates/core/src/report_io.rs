//! Plain-text serialization of profile reports.
//!
//! The original tool writes per-process report files that its plotting
//! front end consumes offline; this module provides the same workflow: a
//! stable, line-oriented dump of a [`ProfileReport`] and its parser.
//!
//! Format (one record per `(routine, thread)` pair):
//!
//! ```text
//! # drms profile report v1
//! profile routine=<id> thread=<id>
//! calls <n> <sum_rms> <sum_drms>
//! breakdown <plain> <thread_induced> <kernel_induced>
//! rms <input> <count> <min> <max> <sum>
//! drms <input> <count> <min> <max> <sum>
//! ```

use crate::profile::{CostStats, ProfileReport};
use drms_trace::{RoutineId, ThreadId};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Error produced when parsing a serialized report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseReportError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseReportError {}

/// Serializes a report to the line-oriented text format.
///
/// Records are emitted in `(routine, thread)` order so dumps are stable
/// and diff-friendly.
///
/// # Example
/// ```
/// use drms_core::{ProfileReport, report_io};
/// use drms_trace::{RoutineId, ThreadId};
///
/// let mut rep = ProfileReport::new();
/// rep.entry(RoutineId::new(1), ThreadId::MAIN).record(3, 7, 100);
/// let text = report_io::to_text(&rep);
/// assert_eq!(report_io::from_text(&text).unwrap(), rep);
/// ```
pub fn to_text(report: &ProfileReport) -> String {
    let mut out = String::from("# drms profile report v1\n");
    let mut keys: Vec<(RoutineId, ThreadId)> = report.iter().map(|(&k, _)| k).collect();
    keys.sort();
    for (routine, thread) in keys {
        let p = report.get(routine, thread).expect("key from iter");
        let _ = writeln!(
            out,
            "profile routine={} thread={}",
            routine.index(),
            thread.index()
        );
        let _ = writeln!(out, "calls {} {} {}", p.calls, p.sum_rms, p.sum_drms);
        let _ = writeln!(
            out,
            "breakdown {} {} {}",
            p.breakdown.plain, p.breakdown.thread_induced, p.breakdown.kernel_induced
        );
        for (label, map) in [("rms", &p.by_rms), ("drms", &p.by_drms)] {
            for (&input, s) in map {
                let _ = writeln!(
                    out,
                    "{label} {input} {} {} {} {}",
                    s.count, s.min, s.max, s.sum
                );
            }
        }
    }
    out
}

/// Parses the text format back into a report.
///
/// Blank lines and `#` comments are skipped; records may appear in any
/// order.
///
/// # Errors
/// Returns a [`ParseReportError`] naming the first malformed line.
pub fn from_text(text: &str) -> Result<ProfileReport, ParseReportError> {
    let mut report = ProfileReport::new();
    let mut current: Option<(RoutineId, ThreadId)> = None;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| ParseReportError {
            line: line_no,
            message,
        };
        let mut parts = line.split_ascii_whitespace();
        let kind = parts.next().expect("non-empty line");
        match kind {
            "profile" => {
                let mut routine = None;
                let mut thread = None;
                for field in parts {
                    if let Some(v) = field.strip_prefix("routine=") {
                        routine = v.parse::<u32>().ok();
                    } else if let Some(v) = field.strip_prefix("thread=") {
                        thread = v.parse::<u32>().ok();
                    } else {
                        return Err(err(format!("unknown field `{field}`")));
                    }
                }
                let (Some(r), Some(t)) = (routine, thread) else {
                    return Err(err("profile line needs routine= and thread=".into()));
                };
                current = Some((RoutineId::new(r), ThreadId::new(t)));
                // Materialize the entry even if it stays empty.
                let (r, t) = current.expect("just set");
                report.entry(r, t);
            }
            "calls" | "breakdown" | "rms" | "drms" => {
                let Some((routine, thread)) = current else {
                    return Err(err(format!("`{kind}` before any profile header")));
                };
                let nums: Result<Vec<u64>, _> = parts
                    .map(|s| s.parse::<u64>().map_err(|e| e.to_string()))
                    .collect();
                let nums = nums.map_err(|e| err(format!("bad number: {e}")))?;
                let p = report.entry(routine, thread);
                match kind {
                    "calls" => {
                        if nums.len() != 3 {
                            return Err(err("calls needs 3 numbers".into()));
                        }
                        p.calls = nums[0];
                        p.sum_rms = nums[1];
                        p.sum_drms = nums[2];
                    }
                    "breakdown" => {
                        if nums.len() != 3 {
                            return Err(err("breakdown needs 3 numbers".into()));
                        }
                        p.breakdown.plain = nums[0];
                        p.breakdown.thread_induced = nums[1];
                        p.breakdown.kernel_induced = nums[2];
                    }
                    "rms" | "drms" => {
                        if nums.len() != 5 {
                            return Err(err(format!("{kind} needs 5 numbers")));
                        }
                        let stats = CostStats {
                            count: nums[1],
                            min: nums[2],
                            max: nums[3],
                            sum: nums[4],
                        };
                        let map: &mut BTreeMap<u64, CostStats> = if kind == "rms" {
                            &mut p.by_rms
                        } else {
                            &mut p.by_drms
                        };
                        map.insert(nums[0], stats);
                    }
                    _ => unreachable!(),
                }
            }
            other => return Err(err(format!("unknown record `{other}`"))),
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ProfileReport {
        let mut rep = ProfileReport::new();
        let p = rep.entry(RoutineId::new(3), ThreadId::new(1));
        p.record(2, 5, 100);
        p.record(2, 9, 250);
        p.record(4, 9, 80);
        p.breakdown.plain = 6;
        p.breakdown.thread_induced = 4;
        p.breakdown.kernel_induced = 2;
        rep.entry(RoutineId::new(0), ThreadId::new(0))
            .record(1, 1, 7);
        rep
    }

    #[test]
    fn roundtrip_empty() {
        let rep = ProfileReport::new();
        assert_eq!(from_text(&to_text(&rep)).unwrap(), rep);
    }

    #[test]
    fn roundtrip_populated_report() {
        let rep = sample_report();
        let text = to_text(&rep);
        assert!(text.starts_with("# drms profile report v1"));
        assert_eq!(from_text(&text).unwrap(), rep);
    }

    #[test]
    fn dumps_are_stable_and_sorted() {
        let rep = sample_report();
        assert_eq!(to_text(&rep), to_text(&rep.clone()));
        let text = to_text(&rep);
        let first = text.find("routine=0").unwrap();
        let second = text.find("routine=3").unwrap();
        assert!(first < second, "records sorted by (routine, thread)");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_text("calls 1 2 3")
            .unwrap_err()
            .message
            .contains("before any profile"));
        assert!(from_text("profile routine=0").is_err());
        assert!(from_text("profile routine=0 thread=0\ncalls 1 2").is_err());
        assert!(from_text("profile routine=0 thread=0\nbreakdown 1 2").is_err());
        assert!(from_text("profile routine=0 thread=0\nrms 1 2 3").is_err());
        assert!(from_text("bogus").is_err());
        assert!(from_text("profile routine=0 thread=0 junk=1").is_err());
        let e = from_text("profile routine=0 thread=0\nrms a b c d e").unwrap_err();
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn roundtrip_real_workload_report() {
        use crate::drms::{DrmsConfig, DrmsProfiler};
        use drms_trace::{Event, EventSink};
        // Drive a small synthetic trace through the profiler and check
        // that serialization preserves the collected report exactly.
        let mut prof = DrmsProfiler::new(DrmsConfig::full());
        let t = ThreadId::MAIN;
        prof.on_call(t, RoutineId::new(0), 0);
        for i in 0..20u64 {
            prof.on_read(t, drms_trace::Addr::new(100 + i % 7), 1);
            prof.on_write(t, drms_trace::Addr::new(200 + i % 3), 1);
        }
        prof.on_kernel_to_user(t, drms_trace::Addr::new(100), 4);
        prof.on_read(t, drms_trace::Addr::new(100), 4);
        prof.on_return(t, RoutineId::new(0), 55);
        let _ = Event::ThreadExit;
        let rep = prof.into_report();
        assert_eq!(from_text(&to_text(&rep)).unwrap(), rep);
    }
}
