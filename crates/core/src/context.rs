//! Calling-context-sensitive profiles.
//!
//! The paper aggregates performance tuples per *routine*; its conclusions
//! point towards characterizing workloads "at routine activation rather
//! than thread granularity". This module provides the natural middle
//! ground: profiles keyed by **calling context** — the chain of pending
//! routines at activation time — organised as a calling-context tree
//! (CCT). The same activation tuples `(rms, drms, cost)` are collected,
//! but two `memcpy` calls reached from different parents no longer share
//! a cost plot.
//!
//! [`ContextTree`] is a standalone, reusable CCT; [`CctProfiler`] couples
//! it with the drms event handling by wrapping [`DrmsProfiler`]'s
//! event stream and re-keying collected activations by context.

use crate::drms::{DrmsConfig, DrmsProfiler};
use crate::fnv::FnvBuildHasher;
use crate::profile::RoutineProfile;
use drms_trace::{Addr, EventSink, RoutineId, SyncOp, ThreadId};
use drms_vm::Tool;
use std::collections::HashMap;

/// Identifier of a calling-context node (dense, root = 0).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContextId(u32);

impl ContextId {
    /// The synthetic root context (no routine pending).
    pub const ROOT: ContextId = ContextId(0);

    /// Dense index of this node.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for ContextId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ctx{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct Node {
    parent: ContextId,
    routine: Option<RoutineId>,
    children: HashMap<RoutineId, ContextId, FnvBuildHasher>,
    depth: u32,
}

/// A calling-context tree: interned chains of routine activations.
///
/// # Example
/// ```
/// use drms_core::context::{ContextTree, ContextId};
/// use drms_trace::RoutineId;
///
/// let mut cct = ContextTree::new();
/// let main = cct.child_of(ContextId::ROOT, RoutineId::new(0));
/// let f_from_main = cct.child_of(main, RoutineId::new(1));
/// assert_eq!(cct.parent(f_from_main), Some(main));
/// assert_eq!(cct.depth(f_from_main), 2);
/// // Re-interning the same edge yields the same node.
/// assert_eq!(cct.child_of(main, RoutineId::new(1)), f_from_main);
/// ```
#[derive(Clone, Debug)]
pub struct ContextTree {
    nodes: Vec<Node>,
}

impl Default for ContextTree {
    fn default() -> Self {
        Self::new()
    }
}

impl ContextTree {
    /// Creates a tree holding only the root context.
    pub fn new() -> Self {
        ContextTree {
            nodes: vec![Node {
                parent: ContextId::ROOT,
                routine: None,
                children: HashMap::default(),
                depth: 0,
            }],
        }
    }

    /// Interns (or finds) the child of `parent` labelled `routine`.
    pub fn child_of(&mut self, parent: ContextId, routine: RoutineId) -> ContextId {
        if let Some(&c) = self.nodes[parent.0 as usize].children.get(&routine) {
            return c;
        }
        let id = ContextId(self.nodes.len() as u32);
        let depth = self.nodes[parent.0 as usize].depth + 1;
        self.nodes.push(Node {
            parent,
            routine: Some(routine),
            children: HashMap::default(),
            depth,
        });
        self.nodes[parent.0 as usize].children.insert(routine, id);
        id
    }

    /// The parent of `ctx`, or `None` for the root.
    pub fn parent(&self, ctx: ContextId) -> Option<ContextId> {
        if ctx == ContextId::ROOT {
            None
        } else {
            Some(self.nodes[ctx.0 as usize].parent)
        }
    }

    /// The routine labelling `ctx`, or `None` for the root.
    pub fn routine(&self, ctx: ContextId) -> Option<RoutineId> {
        self.nodes[ctx.0 as usize].routine
    }

    /// Depth of `ctx` (root = 0).
    pub fn depth(&self, ctx: ContextId) -> u32 {
        self.nodes[ctx.0 as usize].depth
    }

    /// Number of interned contexts (root included).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The full chain of routines from the root to `ctx` (outermost
    /// first).
    pub fn path(&self, ctx: ContextId) -> Vec<RoutineId> {
        let mut out = Vec::new();
        let mut cur = ctx;
        while let Some(r) = self.routine(cur) {
            out.push(r);
            cur = self.parent(cur).expect("non-root has a parent");
        }
        out.reverse();
        out
    }

    /// Renders `ctx` as `main → f → g` using a name resolver.
    pub fn render(&self, ctx: ContextId, name: impl Fn(RoutineId) -> String) -> String {
        let parts: Vec<String> = self.path(ctx).into_iter().map(name).collect();
        if parts.is_empty() {
            "<root>".to_owned()
        } else {
            parts.join(" → ")
        }
    }

    /// Rough host bytes used by the tree.
    pub fn approx_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| (std::mem::size_of::<Node>() + n.children.len() * 16) as u64)
            .sum()
    }
}

/// A context-sensitive drms profiler: the drms/rms metrics of the paper,
/// collected per (calling context, thread) instead of per routine.
///
/// Internally the events are forwarded unchanged to a [`DrmsProfiler`]
/// (whose routine-level report remains available); call/return events
/// additionally walk the [`ContextTree`], and each collected activation
/// is re-keyed by its context.
///
/// # Example
/// ```
/// use drms_core::context::CctProfiler;
/// use drms_core::DrmsConfig;
/// use drms_vm::{ProgramBuilder, run_program, RunConfig, Operand};
///
/// // `leaf` is called from two different parents.
/// let mut pb = ProgramBuilder::new();
/// let g = pb.global(8);
/// let leaf = pb.function("leaf", 1, |f| {
///     let n = f.param(0);
///     f.for_range(0, n, |f, i| { let _ = f.load(g.raw() as i64, i); });
/// });
/// let small = pb.function("small", 0, |f| f.call_void(leaf, &[Operand::Imm(2)]));
/// let big = pb.function("big", 0, |f| f.call_void(leaf, &[Operand::Imm(8)]));
/// let main = pb.function("main", 0, |f| {
///     f.call_void(small, &[]);
///     f.call_void(big, &[]);
/// });
/// let program = pb.finish(main).unwrap();
/// let mut prof = CctProfiler::new(DrmsConfig::full());
/// run_program(&program, RunConfig::default(), &mut prof).unwrap();
/// // Routine-level profiling merges both call sites…
/// assert_eq!(prof.inner().report().merged_routine(leaf).distinct_drms(), 2);
/// // …while the context-sensitive report keeps them apart.
/// let contexts = prof.contexts_of(leaf);
/// assert_eq!(contexts.len(), 2);
/// ```
pub struct CctProfiler {
    inner: DrmsProfiler,
    tree: ContextTree,
    /// Per-thread cursor into the tree.
    cursors: Vec<ContextId>,
    /// Per-(context, thread) profiles.
    profiles: HashMap<(ContextId, ThreadId), RoutineProfile, FnvBuildHasher>,
    /// Activation bookkeeping: entry cost per frame, per thread.
    entry_costs: Vec<Vec<u64>>,
    /// Snapshot of (sum_rms, sum_drms) per frame to derive per-activation
    /// values from the inner profiler's routine report.
    pending: Vec<Vec<(u64, u64)>>,
}

impl CctProfiler {
    /// Creates a context-sensitive profiler with the given drms config.
    pub fn new(config: DrmsConfig) -> Self {
        CctProfiler {
            inner: DrmsProfiler::new(config),
            tree: ContextTree::new(),
            cursors: Vec::new(),
            profiles: HashMap::default(),
            entry_costs: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// The underlying routine-level profiler.
    pub fn inner(&self) -> &DrmsProfiler {
        &self.inner
    }

    /// The calling-context tree built so far.
    pub fn tree(&self) -> &ContextTree {
        &self.tree
    }

    /// The profile of one (context, thread), if collected.
    pub fn profile(&self, ctx: ContextId, thread: ThreadId) -> Option<&RoutineProfile> {
        self.profiles.get(&(ctx, thread))
    }

    /// All contexts whose label is `routine`, with their thread-merged
    /// profiles, in context-id order.
    pub fn contexts_of(&self, routine: RoutineId) -> Vec<(ContextId, RoutineProfile)> {
        let mut by_ctx: HashMap<ContextId, RoutineProfile, FnvBuildHasher> = HashMap::default();
        for (&(ctx, _), p) in &self.profiles {
            if self.tree.routine(ctx) == Some(routine) {
                by_ctx.entry(ctx).or_default().merge(p);
            }
        }
        let mut out: Vec<(ContextId, RoutineProfile)> = by_ctx.into_iter().collect();
        out.sort_by_key(|(c, _)| *c);
        out
    }

    /// Iterates all `(context, thread)` profiles.
    pub fn iter(&self) -> impl Iterator<Item = (&(ContextId, ThreadId), &RoutineProfile)> {
        self.profiles.iter()
    }

    fn cursor_mut(&mut self, t: ThreadId) -> &mut ContextId {
        let idx = t.index() as usize;
        while self.cursors.len() <= idx {
            self.cursors.push(ContextId::ROOT);
            self.entry_costs.push(Vec::new());
            self.pending.push(Vec::new());
        }
        &mut self.cursors[idx]
    }

    /// Current (sum_rms, sum_drms) of `routine` in the inner report — a
    /// cheap monotone counter pair used to difference per activation.
    fn sums(&self, routine: RoutineId, t: ThreadId) -> (u64, u64) {
        self.inner
            .report()
            .get(routine, t)
            .map(|p| (p.sum_rms, p.sum_drms))
            .unwrap_or((0, 0))
    }
}

impl EventSink for CctProfiler {
    fn on_thread_start(&mut self, thread: ThreadId, parent: Option<ThreadId>) {
        self.cursor_mut(thread);
        self.inner.on_thread_start(thread, parent);
    }

    fn on_thread_switch(&mut self, from: Option<ThreadId>, to: ThreadId) {
        self.inner.on_thread_switch(from, to);
    }

    fn on_call(&mut self, thread: ThreadId, routine: RoutineId, cost: u64) {
        let cur = *self.cursor_mut(thread);
        let child = self.tree.child_of(cur, routine);
        let idx = thread.index() as usize;
        self.cursors[idx] = child;
        self.entry_costs[idx].push(cost);
        let sums = self.sums(routine, thread);
        self.pending[idx].push(sums);
        self.inner.on_call(thread, routine, cost);
    }

    fn on_return(&mut self, thread: ThreadId, routine: RoutineId, cost: u64) {
        self.inner.on_return(thread, routine, cost);
        let idx = thread.index() as usize;
        let ctx = self.cursors[idx];
        if let (Some(entry_cost), Some((rms0, drms0))) =
            (self.entry_costs[idx].pop(), self.pending[idx].pop())
        {
            // The inner profiler just recorded this activation; its sum
            // deltas are exactly the activation's rms/drms.
            let (rms1, drms1) = self.sums(routine, thread);
            self.profiles.entry((ctx, thread)).or_default().record(
                rms1 - rms0,
                drms1 - drms0,
                cost.saturating_sub(entry_cost),
            );
        }
        self.cursors[idx] = self.tree.parent(ctx).unwrap_or(ContextId::ROOT);
    }

    fn on_read(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        self.inner.on_read(thread, addr, len);
    }

    fn on_write(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        self.inner.on_write(thread, addr, len);
    }

    fn on_user_to_kernel(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        self.inner.on_user_to_kernel(thread, addr, len);
    }

    fn on_kernel_to_user(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        self.inner.on_kernel_to_user(thread, addr, len);
    }

    fn on_sync(&mut self, thread: ThreadId, op: SyncOp) {
        self.inner.on_sync(thread, op);
    }

    fn on_thread_exit(&mut self, thread: ThreadId, cost: u64) {
        // Unwind pending contexts like the inner profiler unwinds frames.
        let idx = thread.index() as usize;
        while let Some(ctx) = {
            let c = self.cursors[idx];
            (c != ContextId::ROOT).then_some(c)
        } {
            let routine = self.tree.routine(ctx).expect("non-root context");
            self.on_return(thread, routine, cost);
        }
        self.inner.on_thread_exit(thread, cost);
    }
}

impl Tool for CctProfiler {
    fn name(&self) -> &str {
        "aprof-drms-cct"
    }

    fn shadow_bytes(&self) -> u64 {
        self.inner.shadow_bytes()
            + self.tree.approx_bytes()
            + self
                .profiles
                .values()
                .map(RoutineProfile::approx_bytes)
                .sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_vm::{run_program, Operand, ProgramBuilder, RunConfig};

    #[test]
    fn tree_interning_and_paths() {
        let mut t = ContextTree::new();
        assert!(t.is_empty());
        let a = t.child_of(ContextId::ROOT, RoutineId::new(0));
        let b = t.child_of(a, RoutineId::new(1));
        let b2 = t.child_of(a, RoutineId::new(1));
        assert_eq!(b, b2);
        assert_eq!(t.len(), 3);
        assert_eq!(t.path(b), vec![RoutineId::new(0), RoutineId::new(1)]);
        assert_eq!(t.depth(b), 2);
        assert_eq!(t.render(ContextId::ROOT, |_| unreachable!()), "<root>");
        let rendered = t.render(b, |r| format!("r{}", r.index()));
        assert_eq!(rendered, "r0 → r1");
        assert!(t.approx_bytes() > 0);
    }

    #[test]
    fn recursion_creates_one_context_per_depth() {
        let mut t = ContextTree::new();
        let r = RoutineId::new(5);
        let mut cur = ContextId::ROOT;
        for depth in 1..=4 {
            cur = t.child_of(cur, r);
            assert_eq!(t.depth(cur), depth);
        }
        assert_eq!(t.len(), 5, "one node per recursion depth");
    }

    #[test]
    fn separates_call_sites_that_routine_profiling_merges() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global(16);
        let leaf = pb.function("leaf", 1, |f| {
            let n = f.param(0);
            f.for_range(0, n, |f, i| {
                let _ = f.load(g.raw() as i64, i);
            });
        });
        let small = pb.function("small", 0, |f| {
            f.call_void(leaf, &[Operand::Imm(3)]);
        });
        let big = pb.function("big", 0, |f| {
            f.call_void(leaf, &[Operand::Imm(12)]);
        });
        let main = pb.function("main", 0, |f| {
            f.for_range(0, 4, |f, _| {
                f.call_void(small, &[]);
                f.call_void(big, &[]);
            });
        });
        let program = pb.finish(main).unwrap();
        let mut prof = CctProfiler::new(DrmsConfig::full());
        run_program(&program, RunConfig::default(), &mut prof).unwrap();

        let contexts = prof.contexts_of(leaf);
        assert_eq!(contexts.len(), 2, "two distinct calling contexts");
        let mut maxima: Vec<u64> = contexts
            .iter()
            .map(|(_, p)| p.drms_plot().last().unwrap().0)
            .collect();
        maxima.sort_unstable();
        assert_eq!(maxima, vec![3, 12], "each context keeps its own input size");
        // Each context saw 4 activations.
        for (_, p) in &contexts {
            assert_eq!(p.calls, 4);
        }
        // The inner routine-level report still merges them.
        let merged = prof.inner().report().merged_routine(leaf);
        assert_eq!(merged.calls, 8);
    }

    #[test]
    fn context_paths_render_with_program_names() {
        let mut pb = ProgramBuilder::new();
        let inner = pb.function("inner", 0, |f| {
            let _ = f.add(1, 1);
        });
        let outer = pb.function("outer", 0, |f| f.call_void(inner, &[]));
        let main = pb.function("main", 0, |f| f.call_void(outer, &[]));
        let program = pb.finish(main).unwrap();
        let mut prof = CctProfiler::new(DrmsConfig::full());
        run_program(&program, RunConfig::default(), &mut prof).unwrap();
        let contexts = prof.contexts_of(inner);
        assert_eq!(contexts.len(), 1);
        let rendered = prof
            .tree()
            .render(contexts[0].0, |r| program.routine_name(r).to_owned());
        assert_eq!(rendered, "main → outer → inner");
    }

    #[test]
    fn cct_profile_sums_match_routine_sums() {
        // Σ over contexts of a routine == the routine-level sums.
        let w = drms_workloads_smoke();
        let mut prof = CctProfiler::new(DrmsConfig::full());
        run_program(&w.0, RunConfig::default(), &mut prof).unwrap();
        for rid in 0..w.0.routines().len() as u32 {
            let routine = RoutineId::new(rid);
            let merged = prof.inner().report().merged_routine(routine);
            let ctx_sum: u64 = prof
                .contexts_of(routine)
                .iter()
                .map(|(_, p)| p.sum_drms)
                .sum();
            assert_eq!(ctx_sum, merged.sum_drms, "routine {routine}");
        }
        assert_eq!(prof.name(), "aprof-drms-cct");
        assert!(prof.shadow_bytes() > 0);
        assert!(prof.iter().count() >= prof.tree().len() - 1);
    }

    /// A small nested-call program exercised by several tests.
    fn drms_workloads_smoke() -> (drms_vm::Program,) {
        let mut pb = ProgramBuilder::new();
        let g = pb.global(8);
        let c = pb.function("c", 0, |f| {
            let _ = f.load(g.raw() as i64, 0);
        });
        let b = pb.function("b", 0, |f| {
            f.call_void(c, &[]);
            let _ = f.load(g.raw() as i64, 1);
        });
        let a = pb.function("a", 0, |f| {
            f.call_void(b, &[]);
            f.call_void(c, &[]);
        });
        let main = pb.function("main", 0, |f| {
            f.call_void(a, &[]);
            f.call_void(b, &[]);
        });
        (pb.finish(main).unwrap(),)
    }
}
