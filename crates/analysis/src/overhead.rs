//! Slowdown and space-overhead accounting (Table 1, Figure 16).
//!
//! The paper reports, per tool and benchmark suite, the geometric mean of
//! the wall-clock slowdown relative to native execution and of the space
//! overhead relative to the guest's own memory footprint. This module
//! holds the raw measurements and computes the aggregates.

use std::collections::BTreeMap;
use std::fmt;

/// One tool's measurement on one benchmark.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Measurement {
    /// Wall-clock of the instrumented run, in seconds.
    pub tool_seconds: f64,
    /// Wall-clock of the native (uninstrumented) run, in seconds.
    pub native_seconds: f64,
    /// Host bytes of analysis metadata (shadow memories, tables).
    pub shadow_bytes: u64,
    /// Host bytes backing guest memory (the "native" footprint).
    pub guest_bytes: u64,
}

impl Measurement {
    /// Slowdown factor relative to native.
    pub fn slowdown(&self) -> f64 {
        if self.native_seconds <= 0.0 {
            1.0
        } else {
            (self.tool_seconds / self.native_seconds).max(1e-9)
        }
    }

    /// Space overhead factor: `(guest + shadow) / guest`.
    pub fn space_overhead(&self) -> f64 {
        if self.guest_bytes == 0 {
            1.0
        } else {
            (self.guest_bytes + self.shadow_bytes) as f64 / self.guest_bytes as f64
        }
    }
}

/// Geometric mean of a sequence of overhead factors.
///
/// Edge cases are defined, not accidental:
///
/// * **Empty input → `1.0`** — the neutral overhead factor ("no
///   measurements" reads as "no overhead", and an empty suite's Table-1
///   row prints `1.0x` rather than a misleading `0.0x`).
/// * **Zero or negative values** are clamped to `1e-12` before taking
///   logs, so a degenerate measurement (zero wall-clock) yields a tiny
///   but finite contribution instead of `-inf`/NaN poisoning the mean.
///
/// # Example
/// ```
/// use drms_analysis::overhead::geometric_mean;
/// assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
/// assert_eq!(geometric_mean(&[]), 1.0);
/// ```
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// A Table-1 style matrix: per (tool, benchmark) measurements grouped by
/// suite, with geometric-mean aggregation.
#[derive(Clone, Debug, Default)]
pub struct OverheadTable {
    /// `(suite, tool, benchmark) → measurement`
    cells: BTreeMap<(String, String, String), Measurement>,
}

impl OverheadTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one measurement.
    pub fn record(&mut self, suite: &str, tool: &str, benchmark: &str, m: Measurement) {
        self.cells
            .insert((suite.to_owned(), tool.to_owned(), benchmark.to_owned()), m);
    }

    /// Tools present, in first-recorded order preserved by name sort.
    pub fn tools(&self) -> Vec<String> {
        let mut v: Vec<String> = self.cells.keys().map(|(_, t, _)| t.clone()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Suites present.
    pub fn suites(&self) -> Vec<String> {
        let mut v: Vec<String> = self.cells.keys().map(|(s, _, _)| s.clone()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Geometric-mean slowdown of `tool` over the benchmarks of `suite`.
    /// A (suite, tool) pair with no recorded cells reports the neutral
    /// factor `1.0` (see [`geometric_mean`]).
    pub fn mean_slowdown(&self, suite: &str, tool: &str) -> f64 {
        let vals: Vec<f64> = self
            .cells
            .iter()
            .filter(|((s, t, _), _)| s == suite && t == tool)
            .map(|(_, m)| m.slowdown())
            .collect();
        geometric_mean(&vals)
    }

    /// Geometric-mean space overhead of `tool` over `suite`. Empty
    /// (suite, tool) pairs report `1.0`, like [`mean_slowdown`](Self::mean_slowdown).
    pub fn mean_space(&self, suite: &str, tool: &str) -> f64 {
        let vals: Vec<f64> = self
            .cells
            .iter()
            .filter(|((s, t, _), _)| s == suite && t == tool)
            .map(|(_, m)| m.space_overhead())
            .collect();
        geometric_mean(&vals)
    }

    /// Individual measurement, if recorded.
    pub fn get(&self, suite: &str, tool: &str, benchmark: &str) -> Option<&Measurement> {
        self.cells
            .get(&(suite.to_owned(), tool.to_owned(), benchmark.to_owned()))
    }

    /// Number of recorded cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

impl fmt::Display for OverheadTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for suite in self.suites() {
            writeln!(f, "[{suite}] slowdown (geom. mean) / space overhead")?;
            for tool in self.tools() {
                writeln!(
                    f,
                    "  {tool:<12} {:>8.1}x {:>8.2}x",
                    self.mean_slowdown(&suite, &tool),
                    self.mean_space(&suite, &tool)
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(tool_s: f64, native_s: f64, shadow: u64, guest: u64) -> Measurement {
        Measurement {
            tool_seconds: tool_s,
            native_seconds: native_s,
            shadow_bytes: shadow,
            guest_bytes: guest,
        }
    }

    #[test]
    fn slowdown_and_space_factors() {
        let x = m(10.0, 2.0, 3000, 1000);
        assert!((x.slowdown() - 5.0).abs() < 1e-9);
        assert!((x.space_overhead() - 4.0).abs() < 1e-9);
        assert_eq!(m(1.0, 0.0, 0, 0).slowdown(), 1.0);
        assert_eq!(m(1.0, 1.0, 5, 0).space_overhead(), 1.0);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[3.0]) - 3.0).abs() < 1e-9);
        assert!((geometric_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn geometric_mean_edge_cases_are_defined() {
        assert_eq!(
            geometric_mean(&[]),
            1.0,
            "empty input is the neutral factor, not 0.0"
        );
        let degenerate = geometric_mean(&[0.0, 4.0]);
        assert!(
            degenerate.is_finite() && degenerate > 0.0,
            "zero values clamp instead of producing -inf: {degenerate}"
        );
        let negative = geometric_mean(&[-3.0, 2.0]);
        assert!(negative.is_finite() && negative > 0.0, "{negative}");
    }

    #[test]
    fn empty_suite_rows_report_neutral_overhead() {
        let t = OverheadTable::new();
        assert_eq!(t.mean_slowdown("parsec", "drms"), 1.0);
        assert_eq!(t.mean_space("parsec", "drms"), 1.0);
        let mut t = OverheadTable::new();
        t.record("omp", "drms", "c", m(30.0, 1.0, 200, 100));
        assert_eq!(
            t.mean_slowdown("parsec", "drms"),
            1.0,
            "tool recorded under another suite only"
        );
    }

    #[test]
    fn table_aggregates_per_suite_and_tool() {
        let mut t = OverheadTable::new();
        t.record("parsec", "nulgrind", "a", m(2.0, 1.0, 0, 100));
        t.record("parsec", "nulgrind", "b", m(8.0, 1.0, 0, 100));
        t.record("parsec", "drms", "a", m(20.0, 1.0, 400, 100));
        t.record("omp", "drms", "c", m(30.0, 1.0, 200, 100));
        assert!((t.mean_slowdown("parsec", "nulgrind") - 4.0).abs() < 1e-9);
        assert!((t.mean_slowdown("parsec", "drms") - 20.0).abs() < 1e-9);
        assert!((t.mean_space("parsec", "drms") - 5.0).abs() < 1e-9);
        assert_eq!(t.suites(), vec!["omp".to_string(), "parsec".to_string()]);
        assert!(t.tools().contains(&"drms".to_string()));
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        let shown = t.to_string();
        assert!(shown.contains("nulgrind"));
        assert!(t.get("parsec", "drms", "a").is_some());
        assert!(t.get("parsec", "drms", "zz").is_none());
    }
}
