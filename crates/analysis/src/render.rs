//! Rendering of series and plots: ASCII scatter plots for the terminal,
//! plus CSV and gnuplot-compatible `.dat` emitters for offline charting.

use std::fmt::Write as _;

/// Renders `(x, y)` points as an ASCII scatter plot.
///
/// # Example
/// ```
/// use drms_analysis::render::ascii_plot;
/// let pts: Vec<(f64, f64)> = (1..30).map(|i| (i as f64, (i * i) as f64)).collect();
/// let chart = ascii_plot(&pts, 40, 10, "quadratic");
/// assert!(chart.contains("quadratic"));
/// assert!(chart.lines().count() > 10);
/// ```
pub fn ascii_plot(points: &[(f64, f64)], width: usize, height: usize, title: &str) -> String {
    let width = width.max(8);
    let height = height.max(4);
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    if points.is_empty() {
        let _ = writeln!(out, "  (no data)");
        return out;
    }
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in points {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    let span_x = (max_x - min_x).max(1e-12);
    let span_y = (max_y - min_y).max(1e-12);
    let mut grid = vec![vec![b' '; width]; height];
    for &(x, y) in points {
        let cx = (((x - min_x) / span_x) * (width - 1) as f64).round() as usize;
        let cy = (((y - min_y) / span_y) * (height - 1) as f64).round() as usize;
        grid[height - 1 - cy][cx] = b'*';
    }
    let label_w = format!("{max_y:.0}").len().max(format!("{min_y:.0}").len());
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{max_y:.0}")
        } else if i == height - 1 {
            format!("{min_y:.0}")
        } else {
            String::new()
        };
        let _ = writeln!(out, "{label:>label_w$} |{}", String::from_utf8_lossy(row));
    }
    let _ = writeln!(out, "{:label_w$} +{}", "", "-".repeat(width));
    let _ = writeln!(
        out,
        "{:label_w$}  {:<w2$}{max_x:.0}",
        "",
        format!("{min_x:.0}"),
        w2 = width.saturating_sub(format!("{max_x:.0}").len())
    );
    out
}

/// Emits `(x, y)` series as a two-column CSV with a header.
pub fn to_csv(header: (&str, &str), points: &[(f64, f64)]) -> String {
    let mut out = format!("{},{}\n", header.0, header.1);
    for &(x, y) in points {
        let _ = writeln!(out, "{x},{y}");
    }
    out
}

/// Emits multiple named series in gnuplot's indexed `.dat` format
/// (blank-line separated blocks with `# name` headers).
pub fn to_gnuplot(series: &[(&str, &[(f64, f64)])]) -> String {
    let mut out = String::new();
    for (i, (name, pts)) in series.iter().enumerate() {
        if i > 0 {
            out.push_str("\n\n");
        }
        let _ = writeln!(out, "# {name}");
        for &(x, y) in pts.iter() {
            let _ = writeln!(out, "{x} {y}");
        }
    }
    out
}

/// Formats a table: header row plus aligned columns, markdown-flavoured.
pub fn to_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(c.len());
            let _ = write!(line, " {c:<w$} |");
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    let _ = writeln!(out, "{}", fmt_row(&header_cells, &widths));
    let mut sep = String::from("|");
    for w in &widths {
        let _ = write!(sep, "{}|", "-".repeat(w + 2));
    }
    let _ = writeln!(out, "{sep}");
    for row in rows {
        let _ = writeln!(out, "{}", fmt_row(row, &widths));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_plot_marks_extremes() {
        let pts = vec![(0.0, 0.0), (10.0, 100.0)];
        let chart = ascii_plot(&pts, 20, 5, "t");
        assert!(chart.contains('*'));
        assert!(chart.contains("100"));
        assert!(chart.contains('0'));
    }

    #[test]
    fn ascii_plot_handles_empty_and_single() {
        assert!(ascii_plot(&[], 10, 5, "e").contains("no data"));
        let one = ascii_plot(&[(3.0, 3.0)], 10, 5, "s");
        assert!(one.contains('*'));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let csv = to_csv(("n", "cost"), &[(1.0, 2.0), (3.0, 4.0)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines, vec!["n,cost", "1,2", "3,4"]);
    }

    #[test]
    fn gnuplot_blocks_are_separated() {
        let a = [(1.0, 1.0)];
        let b = [(2.0, 2.0)];
        let g = to_gnuplot(&[("first", &a), ("second", &b)]);
        assert!(g.contains("# first"));
        assert!(g.contains("\n\n# second"));
    }

    #[test]
    fn table_is_aligned() {
        let t = to_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.starts_with('|')));
        assert_eq!(lines[0].len(), lines[3].len());
    }
}

/// Renders a per-routine summary table of a profile report: calls,
/// distinct input sizes under both metrics, dynamic input volume and the
/// thread/external split — the quick-look view of a profiling run.
pub fn report_summary(
    report: &drms_core::ProfileReport,
    name_of: impl Fn(drms_trace::RoutineId) -> String,
) -> String {
    let mut metrics = crate::metrics::routine_metrics(report);
    metrics.retain(|m| m.calls > 0);
    metrics.sort_by(|a, b| {
        b.input_volume
            .partial_cmp(&a.input_volume)
            .expect("finite volumes")
    });
    let rows: Vec<Vec<String>> = metrics
        .iter()
        .map(|m| {
            vec![
                name_of(m.routine),
                m.calls.to_string(),
                m.distinct_rms.to_string(),
                m.distinct_drms.to_string(),
                format!("{:.1}", m.input_volume * 100.0),
                format!("{:.1}", m.thread_input * 100.0),
                format!("{:.1}", m.external_input * 100.0),
            ]
        })
        .collect();
    to_table(
        &[
            "routine",
            "calls",
            "|rms|",
            "|drms|",
            "volume %",
            "thread %",
            "external %",
        ],
        &rows,
    )
}

/// Renders an in-flight sweep snapshot: completion ratio, the current
/// best-fit cost model over the cells that have landed so far, and the
/// partial drms plot. Meant to be re-rendered as cells complete — a
/// live profiling service calls this on every `/jobs/{id}/report`
/// request, so polling it is watching the cost model converge.
///
/// # Example
/// ```
/// use drms_analysis::render::sweep_snapshot;
/// let pts = [(4u64, 16u64), (8, 64)];
/// let text = sweep_snapshot("stream", &pts, 2, 6);
/// assert!(text.contains("2/6 cells"));
/// assert!(text.contains("fit so far"));
/// ```
pub fn sweep_snapshot(title: &str, points: &[(u64, u64)], done: usize, total: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "snapshot {title}: {done}/{total} cells");
    if points.len() >= 2 {
        let fit = crate::fit::best_fit(points, 0.02);
        let _ = writeln!(out, "fit so far: {fit}");
    } else {
        let _ = writeln!(out, "fit so far: (need at least 2 points)");
    }
    let f: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x as f64, y as f64)).collect();
    out.push_str(&ascii_plot(&f, 48, 12, title));
    out
}

#[cfg(test)]
mod summary_tests {
    use super::*;
    use drms_trace::{RoutineId, ThreadId};

    #[test]
    fn summary_lists_called_routines_by_volume() {
        let mut rep = drms_core::ProfileReport::new();
        let a = rep.entry(RoutineId::new(0), ThreadId::MAIN);
        a.record(1, 10, 5); // high volume
        let b = rep.entry(RoutineId::new(1), ThreadId::MAIN);
        b.record(4, 4, 5); // zero volume
        let text = report_summary(&rep, |r| format!("r{}", r.index()));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "header + separator + 2 rows");
        assert!(
            lines[2].contains("r0"),
            "high-volume routine first:\n{text}"
        );
        assert!(lines[3].contains("r1"));
        assert!(text.contains("90.0"), "volume of r0");
    }
}
