//! Cost plots: the bridge between profile reports and charts/fits.

use crate::fit::{best_fit, FitResult};
use drms_core::RoutineProfile;

/// Which input-size metric keys a cost plot.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum InputMetric {
    /// Read memory size (the aprof baseline).
    Rms,
    /// Dynamic read memory size (this paper's metric).
    Drms,
}

/// A worst-case cost plot of one routine: for each distinct observed
/// input size, the maximum activation cost.
#[derive(Clone, Debug, PartialEq)]
pub struct CostPlot {
    /// Which metric keys the x axis.
    pub metric: InputMetric,
    /// `(input size, worst-case cost)` sorted by input size.
    pub points: Vec<(u64, u64)>,
}

impl CostPlot {
    /// Builds the plot of `profile` under the chosen metric.
    pub fn of(profile: &RoutineProfile, metric: InputMetric) -> Self {
        let points = match metric {
            InputMetric::Rms => profile.rms_plot(),
            InputMetric::Drms => profile.drms_plot(),
        };
        CostPlot { metric, points }
    }

    /// Number of distinct input sizes (chart points).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the plot has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The x span `max − min` of observed input sizes.
    pub fn input_span(&self) -> u64 {
        match (self.points.first(), self.points.last()) {
            (Some(&(lo, _)), Some(&(hi, _))) => hi - lo,
            _ => 0,
        }
    }

    /// Fits the empirical cost function (see [`best_fit`]).
    pub fn fit(&self, tolerance: f64) -> FitResult {
        best_fit(&self.points, tolerance)
    }

    /// The points as `f64` pairs, for rendering.
    pub fn as_f64(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|&(x, y)| (x as f64, y as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::Model;

    fn profile(acts: &[(u64, u64, u64)]) -> RoutineProfile {
        let mut p = RoutineProfile::default();
        for &(rms, drms, cost) in acts {
            p.record(rms, drms, cost);
        }
        p
    }

    #[test]
    fn plots_select_the_metric() {
        let p = profile(&[(1, 10, 5), (1, 20, 9), (2, 30, 14)]);
        let rms = CostPlot::of(&p, InputMetric::Rms);
        let drms = CostPlot::of(&p, InputMetric::Drms);
        assert_eq!(rms.len(), 2);
        assert_eq!(drms.len(), 3);
        assert_eq!(rms.input_span(), 1);
        assert_eq!(drms.input_span(), 20);
        assert!(!drms.is_empty());
    }

    #[test]
    fn fit_goes_through_cost_plot() {
        let acts: Vec<(u64, u64, u64)> = (1..=20).map(|n| (n, n, 4 * n + 3)).collect();
        let p = profile(&acts);
        let fit = CostPlot::of(&p, InputMetric::Drms).fit(0.01);
        assert_eq!(fit.model, Model::Linear);
    }

    #[test]
    fn as_f64_preserves_order() {
        let p = profile(&[(3, 3, 1), (1, 1, 2)]);
        let pts = CostPlot::of(&p, InputMetric::Drms).as_f64();
        assert_eq!(pts, vec![(1.0, 2.0), (3.0, 1.0)]);
    }

    #[test]
    fn empty_profile_yields_empty_plot() {
        let p = RoutineProfile::default();
        let plot = CostPlot::of(&p, InputMetric::Rms);
        assert!(plot.is_empty());
        assert_eq!(plot.input_span(), 0);
    }
}
