//! Post-processing of input-sensitive profiles: cost plots, empirical
//! cost-function fitting and the paper's evaluation metrics.
//!
//! * [`plot`] — worst-case cost plots keyed by rms or drms;
//! * [`fit`] — least-squares fitting of growth models (constant … cubic,
//!   plus a log-log power law), with parsimony-biased model selection;
//! * [`metrics`] — routine profile richness, dynamic input volume,
//!   thread/external input shares, and the "x% of routines ≥ y" curves
//!   of Figures 11, 12 and 14;
//! * [`overhead`] — slowdown / space-overhead bookkeeping with geometric
//!   means (Table 1, Figure 16);
//! * [`render`] — ASCII scatter plots, CSV / gnuplot emitters, and
//!   aligned text tables.
//!
//! # Example
//!
//! ```
//! use drms_analysis::plot::{CostPlot, InputMetric};
//! use drms_analysis::fit::Model;
//! use drms_core::RoutineProfile;
//!
//! let mut p = RoutineProfile::default();
//! for n in 1..30u64 {
//!     p.record(n, n, 7 * n + 2); // linear routine
//! }
//! let fit = CostPlot::of(&p, InputMetric::Drms).fit(0.01);
//! assert_eq!(fit.model, Model::Linear);
//! ```

pub mod fit;
pub mod metrics;
pub mod overhead;
pub mod plot;
pub mod predict;
pub mod render;

pub use fit::{best_fit, fit_model, fit_power_law, FitResult, Model};
pub use metrics::{
    induced_split, input_share_curves, richness_curve, routine_metrics, tail_curve, variance_flags,
    volume_curve, RoutineMetrics, VarianceFlag,
};
pub use overhead::{geometric_mean, Measurement, OverheadTable};
pub use plot::{CostPlot, InputMetric};
pub use predict::{crossover, predict, validation_error, Prediction};
pub use render::{ascii_plot, report_summary, sweep_snapshot, to_csv, to_gnuplot, to_table};
