//! Performance prediction from fitted cost functions.
//!
//! The paper's motivation is that estimating a routine's empirical cost
//! function lets developers "predict the runtime on larger workloads and
//! pinpoint asymptotic inefficiencies". This module provides that last
//! mile: extrapolation with an explicit trust horizon, comparison of two
//! fits, and crossover search (at which input size does implementation B
//! start beating implementation A?).

use crate::fit::FitResult;

/// An extrapolated prediction, annotated with how far beyond the
/// observed data it reaches.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Prediction {
    /// Input size the prediction is for.
    pub input: f64,
    /// Predicted cost.
    pub cost: f64,
    /// `input / max observed input` — how far out on a limb the
    /// prediction stands (1.0 = interpolation boundary).
    pub extrapolation_factor: f64,
}

/// Predicts the cost at `input`, annotating the extrapolation factor
/// relative to the largest observed input size.
///
/// # Example
/// ```
/// use drms_analysis::fit::best_fit;
/// use drms_analysis::predict::predict;
///
/// let pts: Vec<(u64, u64)> = (1..=20).map(|n| (n * 10, 5 * n * 10)).collect();
/// let fit = best_fit(&pts, 0.01);
/// let p = predict(&fit, &pts, 2000.0);
/// assert!((p.cost - 10_000.0).abs() / 10_000.0 < 0.05);
/// assert!((p.extrapolation_factor - 10.0).abs() < 1e-9);
/// ```
pub fn predict(fit: &FitResult, observed: &[(u64, u64)], input: f64) -> Prediction {
    let max_obs = observed.iter().map(|&(n, _)| n).max().unwrap_or(0) as f64;
    Prediction {
        input,
        cost: fit.predict(input),
        extrapolation_factor: if max_obs > 0.0 {
            input / max_obs
        } else {
            f64::INFINITY
        },
    }
}

/// The smallest input size in `[lo, hi]` at which `b` becomes at least
/// as cheap as `a`, found by bisection on `a.predict − b.predict`.
/// Returns `None` if no crossover exists in the range.
///
/// Useful for algorithm-selection questions ("from which n on is the
/// n·log n implementation worth its constant factor?").
///
/// # Example
/// ```
/// use drms_analysis::fit::{fit_model, Model};
/// use drms_analysis::predict::crossover;
///
/// // a: 2·n² (cheap constants), b: 200·n (expensive constants).
/// let quad: Vec<(u64, u64)> = (1..40).map(|n| (n, 2 * n * n)).collect();
/// let lin: Vec<(u64, u64)> = (1..40).map(|n| (n, 200 * n)).collect();
/// let a = fit_model(&quad, Model::Quadratic);
/// let b = fit_model(&lin, Model::Linear);
/// let x = crossover(&a, &b, 1.0, 1e6).unwrap();
/// assert!((x - 100.0).abs() < 2.0, "2n² ≥ 200n from n = 100");
/// ```
pub fn crossover(a: &FitResult, b: &FitResult, lo: f64, hi: f64) -> Option<f64> {
    let diff = |x: f64| a.predict(x) - b.predict(x);
    let (mut lo, mut hi) = (lo.max(1.0), hi);
    if hi <= lo {
        return None;
    }
    // b must be losing at lo and winning (or tied) at hi.
    if diff(lo) >= 0.0 {
        return Some(lo);
    }
    if diff(hi) < 0.0 {
        return None;
    }
    for _ in 0..200 {
        let mid = (lo + hi) / 2.0;
        if diff(mid) >= 0.0 {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi - lo <= 1e-9 * hi.max(1.0) {
            break;
        }
    }
    Some(hi)
}

/// Relative prediction error of `fit` against held-out points:
/// mean of `|predicted − actual| / actual`.
///
/// Fitting on a prefix of a sweep and validating on the suffix gives an
/// honest estimate of how trustworthy an extrapolation is.
pub fn validation_error(fit: &FitResult, held_out: &[(u64, u64)]) -> f64 {
    if held_out.is_empty() {
        return 0.0;
    }
    let total: f64 = held_out
        .iter()
        .filter(|&&(_, y)| y > 0)
        .map(|&(x, y)| ((fit.predict(x as f64) - y as f64) / y as f64).abs())
        .sum();
    total / held_out.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::{best_fit, fit_model, Model};

    #[test]
    fn prediction_on_linear_data() {
        let pts: Vec<(u64, u64)> = (1..=30).map(|n| (n, 7 * n + 3)).collect();
        let fit = best_fit(&pts, 0.01);
        let p = predict(&fit, &pts, 300.0);
        assert!((p.cost - 2103.0).abs() < 30.0, "cost {}", p.cost);
        assert!((p.extrapolation_factor - 10.0).abs() < 1e-9);
        let q = predict(&fit, &[], 10.0);
        assert!(q.extrapolation_factor.is_infinite());
    }

    #[test]
    fn crossover_edge_cases() {
        let lin_cheap: Vec<(u64, u64)> = (1..40).map(|n| (n, n)).collect();
        let lin_dear: Vec<(u64, u64)> = (1..40).map(|n| (n, 10 * n)).collect();
        let a = fit_model(&lin_cheap, Model::Linear);
        let b = fit_model(&lin_dear, Model::Linear);
        // b never beats a.
        assert_eq!(crossover(&a, &b, 1.0, 1e9), None);
        // a already loses at lo.
        assert_eq!(crossover(&b, &a, 1.0, 1e9), Some(1.0));
        // empty range
        assert_eq!(crossover(&a, &b, 10.0, 5.0), None);
    }

    #[test]
    fn validation_error_detects_wrong_model() {
        let quad: Vec<(u64, u64)> = (1..=40).map(|n| (n * 5, 3 * n * n * 25)).collect();
        let (train, test) = quad.split_at(20);
        let right = best_fit(train, 0.005);
        let wrong = fit_model(train, Model::Linear);
        let e_right = validation_error(&right, test);
        let e_wrong = validation_error(&wrong, test);
        assert!(e_right < 0.05, "right model extrapolates: {e_right}");
        assert!(e_wrong > 0.3, "wrong model diverges: {e_wrong}");
        assert_eq!(validation_error(&right, &[]), 0.0);
    }
}
