//! The paper's evaluation metrics (§4.1).
//!
//! * **Routine profile richness** — `(|drms_r| − |rms_r|) / |rms_r|`: the
//!   relative gain in distinct input-size values when using drms;
//! * **Dynamic input volume** — `1 − Σrms / Σdrms` over activations;
//! * **Thread / external input** — the share of (possibly induced)
//!   first-read operations caused by other threads / by the kernel;
//! * the *"x% of routines have value ≥ y"* curves of Figures 11, 12
//!   and 14.

use drms_core::{ProfileReport, RoutineProfile};
use drms_trace::RoutineId;
use std::collections::BTreeMap;

/// A *"x% of routines have value ≥ y"* curve: `(percent, value)` points.
pub type TailCurve = Vec<(f64, f64)>;

/// Per-routine metric record, computed from thread-merged profiles.
#[derive(Clone, Debug, PartialEq)]
pub struct RoutineMetrics {
    /// The routine.
    pub routine: RoutineId,
    /// Distinct rms values collected (`|rms_r|`).
    pub distinct_rms: usize,
    /// Distinct drms values collected (`|drms_r|`).
    pub distinct_drms: usize,
    /// `(|drms_r| − |rms_r|) / |rms_r|` — may be negative.
    pub profile_richness: f64,
    /// `1 − Σrms / Σdrms` for this routine's activations, in `[0, 1)`.
    pub input_volume: f64,
    /// Share of first reads induced by other threads, in `[0, 1]`.
    pub thread_input: f64,
    /// Share of first reads induced by the kernel, in `[0, 1]`.
    pub external_input: f64,
    /// Total (possibly induced) first-read operations observed.
    pub first_reads: u64,
    /// Activations collected.
    pub calls: u64,
}

impl RoutineMetrics {
    fn from_profile(routine: RoutineId, p: &RoutineProfile) -> Self {
        let distinct_rms = p.distinct_rms();
        let distinct_drms = p.distinct_drms();
        let profile_richness = if distinct_rms == 0 {
            0.0
        } else {
            (distinct_drms as f64 - distinct_rms as f64) / distinct_rms as f64
        };
        let input_volume = if p.sum_drms == 0 {
            0.0
        } else {
            1.0 - p.sum_rms as f64 / p.sum_drms as f64
        };
        RoutineMetrics {
            routine,
            distinct_rms,
            distinct_drms,
            profile_richness,
            input_volume,
            thread_input: p.breakdown.thread_fraction(),
            external_input: p.breakdown.kernel_fraction(),
            first_reads: p.breakdown.total(),
            calls: p.calls,
        }
    }
}

/// Computes per-routine metrics from a report, merging threads first.
pub fn routine_metrics(report: &ProfileReport) -> Vec<RoutineMetrics> {
    let merged: BTreeMap<RoutineId, RoutineProfile> = report.merged_by_routine();
    merged
        .iter()
        .map(|(&r, p)| RoutineMetrics::from_profile(r, p))
        .collect()
}

/// A *"x% of routines have value ≥ y"* curve: given one value per
/// routine, returns `(percent, value)` points sorted by decreasing value
/// (the shape of Figures 11, 12 and 14).
///
/// # Example
/// ```
/// use drms_analysis::metrics::tail_curve;
/// let curve = tail_curve(&[1.0, 3.0, 2.0, 4.0]);
/// assert_eq!(curve[0], (25.0, 4.0)); // 25% of routines have value >= 4
/// assert_eq!(curve[3], (100.0, 1.0));
/// ```
pub fn tail_curve(values: &[f64]) -> TailCurve {
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("no NaN metric values"));
    let n = sorted.len() as f64;
    sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| ((i as f64 + 1.0) / n * 100.0, v))
        .collect()
}

/// Profile-richness curve of one benchmark (Figure 11): percent of
/// routines (x) vs. richness ≥ y. Routines with no activation are
/// excluded.
pub fn richness_curve(report: &ProfileReport) -> TailCurve {
    let vals: Vec<f64> = routine_metrics(report)
        .iter()
        .filter(|m| m.calls > 0)
        .map(|m| m.profile_richness)
        .collect();
    tail_curve(&vals)
}

/// Dynamic-input-volume curve of one benchmark (Figure 12), with values
/// scaled to percent (`×100` as the paper's axis).
pub fn volume_curve(report: &ProfileReport) -> TailCurve {
    let vals: Vec<f64> = routine_metrics(report)
        .iter()
        .filter(|m| m.calls > 0)
        .map(|m| m.input_volume * 100.0)
        .collect();
    tail_curve(&vals)
}

/// Thread-input and external-input curves (Figure 14): percent of
/// routines (x) vs. percent of first reads that are thread/kernel
/// induced (y).
pub fn input_share_curves(report: &ProfileReport) -> (TailCurve, TailCurve) {
    let metrics = routine_metrics(report);
    let with_reads: Vec<&RoutineMetrics> = metrics.iter().filter(|m| m.first_reads > 0).collect();
    let thread: Vec<f64> = with_reads.iter().map(|m| m.thread_input * 100.0).collect();
    let external: Vec<f64> = with_reads
        .iter()
        .map(|m| m.external_input * 100.0)
        .collect();
    (tail_curve(&thread), tail_curve(&external))
}

/// Whole-benchmark split of induced first reads between thread and
/// external input (Figure 15): returns `(thread%, external%)` of the
/// total induced first reads, summing to 100 (or `(0, 0)` if none).
pub fn induced_split(report: &ProfileReport) -> (f64, f64) {
    let (mut th, mut ke) = (0u64, 0u64);
    for (_, p) in report.iter() {
        th += p.breakdown.thread_induced;
        ke += p.breakdown.kernel_induced;
    }
    let total = th + ke;
    if total == 0 {
        (0.0, 0.0)
    } else {
        (
            th as f64 / total as f64 * 100.0,
            ke as f64 / total as f64 * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_trace::ThreadId;

    type Activations<'a> = &'a [(u64, u64, u64)];

    fn report_with(entries: &[(u32, Activations<'_>)]) -> ProfileReport {
        let mut rep = ProfileReport::new();
        for &(rid, acts) in entries {
            for &(rms, drms, cost) in acts {
                rep.entry(RoutineId::new(rid), ThreadId::MAIN)
                    .record(rms, drms, cost);
            }
        }
        rep
    }

    #[test]
    fn richness_positive_when_drms_separates() {
        let rep = report_with(&[(0, &[(5, 10, 1), (5, 20, 2), (5, 30, 3)])]);
        let m = &routine_metrics(&rep)[0];
        assert_eq!(m.distinct_rms, 1);
        assert_eq!(m.distinct_drms, 3);
        assert!((m.profile_richness - 2.0).abs() < 1e-9);
    }

    #[test]
    fn richness_can_be_negative() {
        // Two rms values collapse onto one drms value.
        let rep = report_with(&[(0, &[(1, 9, 1), (2, 9, 2)])]);
        let m = &routine_metrics(&rep)[0];
        assert!(m.profile_richness < 0.0);
    }

    #[test]
    fn volume_matches_definition() {
        let rep = report_with(&[(0, &[(10, 40, 1)])]);
        let m = &routine_metrics(&rep)[0];
        assert!((m.input_volume - 0.75).abs() < 1e-9);
    }

    #[test]
    fn tail_curve_is_monotone() {
        let c = tail_curve(&[0.5, 0.9, 0.1, 0.7]);
        assert_eq!(c.len(), 4);
        assert!(c.windows(2).all(|w| w[0].1 >= w[1].1 && w[0].0 < w[1].0));
        assert!((c.last().unwrap().0 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn induced_split_sums_to_100() {
        let mut rep = ProfileReport::new();
        rep.entry(RoutineId::new(0), ThreadId::MAIN)
            .breakdown
            .thread_induced = 30;
        rep.entry(RoutineId::new(1), ThreadId::MAIN)
            .breakdown
            .kernel_induced = 10;
        let (th, ke) = induced_split(&rep);
        assert!((th + ke - 100.0).abs() < 1e-9);
        assert!((th - 75.0).abs() < 1e-9);
        assert_eq!(induced_split(&ProfileReport::new()), (0.0, 0.0));
    }

    #[test]
    fn curves_skip_uncalled_routines() {
        let mut rep = report_with(&[(0, &[(1, 2, 3)])]);
        // A routine that only has breakdown counters but no calls.
        rep.entry(RoutineId::new(9), ThreadId::MAIN).breakdown.plain = 5;
        assert_eq!(richness_curve(&rep).len(), 1);
        assert_eq!(volume_curve(&rep).len(), 1);
        // Only routine 9 has first-read operations recorded; routine 0
        // has activations but an empty breakdown.
        let (th, ke) = input_share_curves(&rep);
        assert_eq!(th.len(), 1, "share curves keep routines with reads");
        assert_eq!(ke.len(), 1);
    }
}

/// A diagnostic flag: a routine whose cost plot shows high cost variance
/// at some input size — the paper's indicator that the input metric is
/// missing information (the Figure 6 discussion observes "a high cost
/// variance for these rms values: this is a good indicator that some
/// kind of information might not be captured correctly").
#[derive(Clone, Debug, PartialEq)]
pub struct VarianceFlag {
    /// The suspicious routine.
    pub routine: RoutineId,
    /// The input size whose activations disagree the most.
    pub input: u64,
    /// Activations collapsed onto that input size.
    pub collapsed_calls: u64,
    /// Relative cost spread `(max − min) / mean` at that input size.
    pub spread: f64,
}

/// Scans the **rms** side of a report for routines whose activations
/// collapse onto few input sizes with widely varying costs, returning
/// one flag per suspicious routine (worst input size first). Routines
/// flagged here are precisely the ones whose workload the drms is likely
/// to reveal.
pub fn variance_flags(report: &ProfileReport, min_spread: f64) -> Vec<VarianceFlag> {
    let mut out = Vec::new();
    for (routine, p) in report.merged_by_routine() {
        let mut worst: Option<VarianceFlag> = None;
        for (&input, stats) in &p.by_rms {
            if stats.count < 2 {
                continue;
            }
            let spread = stats.spread();
            if spread >= min_spread && worst.as_ref().map(|w| spread > w.spread).unwrap_or(true) {
                worst = Some(VarianceFlag {
                    routine,
                    input,
                    collapsed_calls: stats.count,
                    spread,
                });
            }
        }
        if let Some(flag) = worst {
            out.push(flag);
        }
    }
    out.sort_by(|a, b| b.spread.partial_cmp(&a.spread).expect("finite spreads"));
    out
}

#[cfg(test)]
mod variance_tests {
    use super::*;
    use drms_trace::ThreadId;

    #[test]
    fn flags_high_variance_rms_collapses() {
        let mut rep = ProfileReport::new();
        // Routine 0: rms collapses 4 calls onto input 67 with costs
        // spanning 10..1000 — suspicious.
        let p = rep.entry(RoutineId::new(0), ThreadId::MAIN);
        for cost in [10, 200, 600, 1000] {
            p.record(67, cost, cost);
        }
        // Routine 1: tight costs — fine.
        let q = rep.entry(RoutineId::new(1), ThreadId::MAIN);
        for cost in [100, 101, 102] {
            q.record(5, cost, cost);
        }
        let flags = variance_flags(&rep, 0.5);
        assert_eq!(flags.len(), 1);
        assert_eq!(flags[0].routine, RoutineId::new(0));
        assert_eq!(flags[0].input, 67);
        assert_eq!(flags[0].collapsed_calls, 4);
        assert!(flags[0].spread > 1.0);
    }

    #[test]
    fn single_activations_are_never_flagged() {
        let mut rep = ProfileReport::new();
        rep.entry(RoutineId::new(0), ThreadId::MAIN)
            .record(1, 1, 1_000_000);
        assert!(variance_flags(&rep, 0.1).is_empty());
    }

    #[test]
    fn flags_sorted_by_spread() {
        let mut rep = ProfileReport::new();
        let a = rep.entry(RoutineId::new(0), ThreadId::MAIN);
        a.record(7, 1, 100);
        a.record(7, 2, 200);
        let b = rep.entry(RoutineId::new(1), ThreadId::MAIN);
        b.record(7, 1, 100);
        b.record(7, 2, 900);
        let flags = variance_flags(&rep, 0.1);
        assert_eq!(flags.len(), 2);
        assert_eq!(flags[0].routine, RoutineId::new(1), "worst first");
    }
}
