//! Empirical cost-function fitting.
//!
//! Given the `(input size, worst-case cost)` points of a routine's cost
//! plot, fit a small library of growth models (constant, logarithmic,
//! linear, linearithmic, quadratic, cubic) by least squares, plus a free
//! power law via log-log regression, and select the best model with a
//! parsimony bias: a more complex model must improve adjusted R² by a
//! margin to displace a simpler one.

use std::fmt;

/// A growth model `cost(n) ≈ a·g(n) + b` (or `a·n^p` for the power law).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Model {
    /// `g(n) = 1`
    Constant,
    /// `g(n) = log₂ n`
    Logarithmic,
    /// `g(n) = n`
    Linear,
    /// `g(n) = n·log₂ n`
    Linearithmic,
    /// `g(n) = n²`
    Quadratic,
    /// `g(n) = n³`
    Cubic,
    /// `cost(n) = a·n^p` fitted in log-log space.
    PowerLaw,
}

impl Model {
    /// All fixed-shape models, simplest first.
    pub const FIXED: [Model; 6] = [
        Model::Constant,
        Model::Logarithmic,
        Model::Linear,
        Model::Linearithmic,
        Model::Quadratic,
        Model::Cubic,
    ];

    fn g(self, n: f64) -> f64 {
        let n = n.max(1.0);
        match self {
            Model::Constant => 1.0,
            Model::Logarithmic => n.log2(),
            Model::Linear => n,
            Model::Linearithmic => n * n.log2().max(1e-9),
            Model::Quadratic => n * n,
            Model::Cubic => n * n * n,
            Model::PowerLaw => unreachable!("power law uses log-log regression"),
        }
    }

    /// Complexity rank used by the parsimony rule (lower = simpler).
    /// The free-exponent power law ranks last so a fixed shape wins ties
    /// and the power law only surfaces genuinely fractional exponents.
    fn rank(self) -> u8 {
        match self {
            Model::Constant => 0,
            Model::Logarithmic => 1,
            Model::Linear => 2,
            Model::Linearithmic => 3,
            Model::Quadratic => 4,
            Model::Cubic => 5,
            Model::PowerLaw => 6,
        }
    }

    /// Big-Theta style name.
    pub fn asymptotic_name(self) -> &'static str {
        match self {
            Model::Constant => "Θ(1)",
            Model::Logarithmic => "Θ(log n)",
            Model::Linear => "Θ(n)",
            Model::Linearithmic => "Θ(n log n)",
            Model::Quadratic => "Θ(n²)",
            Model::Cubic => "Θ(n³)",
            Model::PowerLaw => "Θ(n^p)",
        }
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.asymptotic_name())
    }
}

/// Result of fitting one model to a cost plot.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FitResult {
    /// The fitted model.
    pub model: Model,
    /// Scale coefficient `a`.
    pub a: f64,
    /// Intercept `b` (fixed-shape models) or unused for the power law.
    pub b: f64,
    /// Exponent `p` (power law only; 0 otherwise).
    pub p: f64,
    /// Coefficient of determination on the fitted data.
    pub r2: f64,
}

impl FitResult {
    /// Predicted cost at input size `n`.
    pub fn predict(&self, n: f64) -> f64 {
        match self.model {
            Model::PowerLaw => self.a * n.max(1.0).powf(self.p),
            m => self.a * m.g(n) + self.b,
        }
    }
}

impl fmt::Display for FitResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.model {
            Model::PowerLaw => write!(f, "≈ {:.3}·n^{:.2} (R²={:.3})", self.a, self.p, self.r2),
            m => write!(
                f,
                "{} ≈ {:.3}·g(n) + {:.1} (R²={:.3})",
                m, self.a, self.b, self.r2
            ),
        }
    }
}

fn r_squared(points: &[(f64, f64)], predict: impl Fn(f64) -> f64) -> f64 {
    let n = points.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let mean_y = points.iter().map(|&(_, y)| y).sum::<f64>() / n;
    let ss_tot: f64 = points.iter().map(|&(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = points.iter().map(|&(x, y)| (y - predict(x)).powi(2)).sum();
    if ss_tot <= f64::EPSILON {
        // Degenerate (constant) data: perfect iff residuals vanish.
        return if ss_res <= 1e-9 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Least-squares fit of `y = a·g(x) + b` for one fixed-shape model.
pub fn fit_model(points: &[(u64, u64)], model: Model) -> FitResult {
    let pts: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x as f64, y as f64)).collect();
    let n = pts.len() as f64;
    let gx: Vec<f64> = pts.iter().map(|&(x, _)| model.g(x)).collect();
    let sum_g: f64 = gx.iter().sum();
    let sum_y: f64 = pts.iter().map(|&(_, y)| y).sum();
    let sum_gg: f64 = gx.iter().map(|g| g * g).sum();
    let sum_gy: f64 = gx.iter().zip(&pts).map(|(g, &(_, y))| g * y).sum();
    let denom = n * sum_gg - sum_g * sum_g;
    let (a, b) = if denom.abs() < 1e-12 {
        (0.0, sum_y / n.max(1.0))
    } else {
        let a = (n * sum_gy - sum_g * sum_y) / denom;
        let b = (sum_y - a * sum_g) / n;
        (a, b)
    };
    let r2 = r_squared(&pts, |x| a * model.g(x) + b);
    FitResult {
        model,
        a,
        b,
        p: 0.0,
        r2,
    }
}

/// Power-law fit `y = a·x^p` via linear regression in log-log space
/// (the approach of Goldsmith et al.'s empirical complexity measurement).
pub fn fit_power_law(points: &[(u64, u64)]) -> FitResult {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0 && y > 0)
        .map(|&(x, y)| ((x as f64).ln(), (y as f64).ln()))
        .collect();
    let n = pts.len() as f64;
    if n < 2.0 {
        return FitResult {
            model: Model::PowerLaw,
            a: points.first().map(|&(_, y)| y as f64).unwrap_or(0.0),
            b: 0.0,
            p: 0.0,
            r2: 0.0,
        };
    }
    let sx: f64 = pts.iter().map(|&(x, _)| x).sum();
    let sy: f64 = pts.iter().map(|&(_, y)| y).sum();
    let sxx: f64 = pts.iter().map(|&(x, _)| x * x).sum();
    let sxy: f64 = pts.iter().map(|&(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    let (p, ln_a) = if denom.abs() < 1e-12 {
        (0.0, sy / n)
    } else {
        let p = (n * sxy - sx * sy) / denom;
        (p, (sy - p * sx) / n)
    };
    let a = ln_a.exp();
    let raw: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x as f64, y as f64)).collect();
    let r2 = r_squared(&raw, |x| a * x.max(1.0).powf(p));
    FitResult {
        model: Model::PowerLaw,
        a,
        b: 0.0,
        p,
        r2,
    }
}

/// Fits every model and returns the best by adjusted preference: among
/// fits whose R² is within `tolerance` of the maximum, the simplest model
/// wins.
///
/// # Example
/// ```
/// use drms_analysis::fit::{best_fit, Model};
/// let quad: Vec<(u64, u64)> = (1..20).map(|n| (n, 3 * n * n + 7)).collect();
/// let fit = best_fit(&quad, 0.01);
/// assert_eq!(fit.model, Model::Quadratic);
/// assert!(fit.r2 > 0.999);
/// ```
pub fn best_fit(points: &[(u64, u64)], tolerance: f64) -> FitResult {
    let mut fits: Vec<FitResult> = Model::FIXED.iter().map(|&m| fit_model(points, m)).collect();
    fits.push(fit_power_law(points));
    let best_r2 = fits.iter().map(|f| f.r2).fold(f64::NEG_INFINITY, f64::max);
    fits.into_iter()
        .filter(|f| f.r2 >= best_r2 - tolerance)
        .min_by_key(|f| f.model.rank())
        .expect("at least one model")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(f: impl Fn(u64) -> u64) -> Vec<(u64, u64)> {
        (1..=30).map(|n| (n * 10, f(n * 10))).collect()
    }

    #[test]
    fn recovers_linear() {
        let fit = best_fit(&series(|n| 5 * n + 100), 0.01);
        assert_eq!(fit.model, Model::Linear);
        assert!((fit.a - 5.0).abs() < 0.2, "a = {}", fit.a);
        assert!(fit.r2 > 0.999);
    }

    #[test]
    fn recovers_quadratic() {
        let fit = best_fit(&series(|n| 2 * n * n + n), 0.01);
        assert_eq!(fit.model, Model::Quadratic);
        assert!(fit.r2 > 0.999);
    }

    #[test]
    fn recovers_constant() {
        let fit = best_fit(&series(|_| 42), 0.01);
        assert_eq!(fit.model, Model::Constant);
        assert!(fit.r2 > 0.99);
    }

    #[test]
    fn recovers_nlogn_over_linear() {
        let pts: Vec<(u64, u64)> = (1..=40)
            .map(|i| {
                let n = i * 50;
                let nf = n as f64;
                (n, (3.0 * nf * nf.log2()) as u64)
            })
            .collect();
        let fit = best_fit(&pts, 0.0005);
        assert_eq!(fit.model, Model::Linearithmic);
    }

    #[test]
    fn power_law_recovers_exponent() {
        let pts: Vec<(u64, u64)> = (1..=25)
            .map(|i| {
                let n = i * 8;
                (n, ((n as f64).powf(1.5) * 2.0) as u64)
            })
            .collect();
        let fit = fit_power_law(&pts);
        assert!((fit.p - 1.5).abs() < 0.05, "p = {}", fit.p);
        assert!((fit.a - 2.0).abs() < 0.3, "a = {}", fit.a);
        assert!(fit.r2 > 0.99);
    }

    #[test]
    fn parsimony_prefers_simpler_on_ties() {
        // Pure linear data: quadratic fits it perfectly too (a≈0 on n²
        // term won't happen with single-term models, but cubic etc. reach
        // similar R²); linear must win under tolerance.
        let fit = best_fit(&series(|n| 7 * n), 0.005);
        assert_eq!(fit.model, Model::Linear);
    }

    #[test]
    fn handles_degenerate_inputs() {
        assert_eq!(best_fit(&[], 0.01).model, Model::Constant);
        let single = [(5u64, 17u64)];
        let fit = best_fit(&single, 0.01);
        assert!(fit.predict(5.0).is_finite());
        let two = [(1u64, 1u64), (2, 4)];
        assert!(best_fit(&two, 0.01).r2.is_finite());
    }

    #[test]
    fn display_forms_are_informative() {
        let fit = best_fit(&series(|n| n * n), 0.01);
        let s = fit.to_string();
        assert!(s.contains("R²"));
        let pl = fit_power_law(&series(|n| n * 3));
        assert!(pl.to_string().contains("n^"));
    }

    #[test]
    fn predict_matches_model() {
        let fit = fit_model(&series(|n| 2 * n + 1), Model::Linear);
        let y = fit.predict(1000.0);
        assert!((y - 2001.0).abs() < 20.0, "prediction {y}");
    }
}
