//! Micro-benchmark of the three-level shadow memory (§4.1 of the paper)
//! against a `HashMap` baseline, over sequential and strided access
//! patterns — the data structure every per-access event handler hits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drms::trace::Addr;
use drms::vm::ShadowMemory;
use std::collections::HashMap;

const N: u64 = 1 << 14;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("shadow_memory");

    for stride in [1u64, 64] {
        group.bench_with_input(
            BenchmarkId::new("shadow_set_get", stride),
            &stride,
            |b, &stride| {
                b.iter(|| {
                    let mut s: ShadowMemory<u64> = ShadowMemory::new();
                    let mut acc = 0u64;
                    for i in 0..N {
                        let a = Addr::new(1 + i * stride);
                        s.set(a, i);
                        acc = acc.wrapping_add(s.get(a));
                    }
                    acc
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("hashmap_set_get", stride),
            &stride,
            |b, &stride| {
                b.iter(|| {
                    let mut s: HashMap<u64, u64> = HashMap::new();
                    let mut acc = 0u64;
                    for i in 0..N {
                        let a = 1 + i * stride;
                        s.insert(a, i);
                        acc = acc.wrapping_add(*s.get(&a).unwrap());
                    }
                    acc
                })
            },
        );
    }
    group.finish();

    // Space accounting sanity: sparse chunks only.
    let mut s: ShadowMemory<u64> = ShadowMemory::new();
    for i in 0..N {
        s.set(Addr::new(1 + i), i);
    }
    println!(
        "\nshadow_memory: {} cells -> {} leaf chunks, {} KiB",
        N,
        s.leaf_count(),
        s.bytes() / 1024
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench
}
criterion_main!(benches);
