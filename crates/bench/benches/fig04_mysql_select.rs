//! Figure 4: the mysql_select cost plots. The bench measures the full
//! profile-and-analyze path on growing table sweeps; the printed summary
//! shows that the drms plot is linear while the rms plot collapses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drms::analysis::{best_fit, CostPlot, InputMetric, Model};
use drms::workloads::minidb;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig04");
    for steps in [4usize, 8] {
        let sizes: Vec<i64> = (1..=steps as i64).map(|i| i * 64).collect();
        let w = minidb::minidb_scaling(&sizes);
        group.bench_with_input(BenchmarkId::new("profile", steps), &w, |b, w| {
            b.iter(|| {
                drms::ProfileSession::workload(w)
                    .run()
                    .expect("run")
                    .into_parts()
                    .expect("run")
            })
        });
    }
    group.finish();

    let sizes: Vec<i64> = (1..=10).map(|i| i * 64).collect();
    let w = minidb::minidb_scaling(&sizes);
    let (report, _) = drms::ProfileSession::workload(&w)
        .run()
        .expect("run")
        .into_parts()
        .expect("run");
    let p = report.merged_routine(w.focus.expect("mysql_select"));
    let rms = CostPlot::of(&p, InputMetric::Rms);
    let drms = CostPlot::of(&p, InputMetric::Drms);
    let fit = best_fit(&drms.points, 0.02);
    println!(
        "\nfig04: rms {} points (span {}), drms {} points (span {}), drms fit {fit}",
        rms.len(),
        rms.input_span(),
        drms.len(),
        drms.input_span()
    );
    assert_eq!(
        fit.model,
        Model::Linear,
        "paper: drms shows the linear trend"
    );
    assert!(drms.len() >= rms.len());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench
}
criterion_main!(benches);
