//! Figures 13–15: workload characterization. The bench measures the
//! characterization pipeline; the summary reproduces the headline
//! qualitative results: MySQL is external-input dominated, vips is
//! thread-input dominated, and the OMP-like suite clusters at the
//! thread-input end.

use criterion::{criterion_group, criterion_main, Criterion};
use drms::analysis::{induced_split, input_share_curves, routine_metrics};
use drms::workloads;

fn bench(c: &mut Criterion) {
    let w = workloads::minidb::mysqlslap(4, 4, 60);
    let (report, _) = drms::ProfileSession::workload(&w)
        .run()
        .expect("run")
        .into_parts()
        .expect("run");
    c.benchmark_group("fig13_14_15")
        .bench_function("characterize_mysqlslap", |b| {
            b.iter(|| {
                let m = routine_metrics(&report);
                let curves = input_share_curves(&report);
                let split = induced_split(&report);
                (m.len(), curves.0.len(), split)
            })
        });

    // Fig 13: MySQL external-dominated, vips thread-dominated.
    let (mysql_th, mysql_ext) = induced_split(&report);
    let vips = workloads::imgpipe::vips(2, 10, 1);
    let (vips_report, _) = drms::ProfileSession::workload(&vips)
        .run()
        .expect("run")
        .into_parts()
        .expect("run");
    let (vips_th, vips_ext) = induced_split(&vips_report);
    println!(
        "\nfig13: mysqlslap thread {mysql_th:.0}% / external {mysql_ext:.0}%; \
         vips thread {vips_th:.0}% / external {vips_ext:.0}%"
    );
    assert!(mysql_ext > mysql_th, "MySQL uses network and I/O heavily");
    assert!(vips_th > vips_ext, "vips is a data-parallel image app");

    // Fig 15: the OMP-like cluster is thread-input dominated (>69% in
    // the paper; we check a dominant majority).
    for w in workloads::spec_omp_suite(4, 1) {
        let (report, _) = drms::ProfileSession::workload(&w)
            .run()
            .expect("run")
            .into_parts()
            .expect("run");
        let (th, ext) = induced_split(&report);
        println!("fig15: {:<10} thread {th:.0}% external {ext:.0}%", w.name);
        assert!(th > 60.0, "{}: OMP cluster is thread-dominated", w.name);
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench
}
criterion_main!(benches);
