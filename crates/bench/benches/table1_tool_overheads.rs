//! Table 1: slowdown of each tool relative to native execution, measured
//! on a reduced benchmark suite (both PARSEC-like and OMP-like members).
//!
//! Criterion measures each tool's end-to-end run time on the same
//! workloads; the summary printed at the end reports the geometric-mean
//! slowdown and space overhead exactly as Table 1 does. Absolute numbers
//! differ from the paper (different substrate); the ordering —
//! nulgrind < callgrind < memcheck < aprof < aprof-drms < helgrind —
//! is the reproduced result.

use criterion::{criterion_group, criterion_main, Criterion};
use drms::analysis::OverheadTable;
use drms::workloads::{self, Workload};
use drms_bench::{measure_suite, run_native, run_tool, TOOLS};

fn suite() -> Vec<Workload> {
    vec![
        workloads::parsec::dedup(4, 1),
        workloads::parsec::fluidanimate(4, 1),
        workloads::specomp::smithwa(4, 1),
        workloads::specomp::nab(4, 1),
    ]
}

fn bench(c: &mut Criterion) {
    let workloads = suite();
    let mut group = c.benchmark_group("table1");
    for w in &workloads {
        group.bench_function(format!("native/{}", w.name), |b| b.iter(|| run_native(w)));
        for tool in TOOLS {
            group.bench_function(format!("{tool}/{}", w.name), |b| {
                b.iter(|| run_tool(w, tool))
            });
        }
    }
    group.finish();

    // Print the aggregated table once.
    let mut table = OverheadTable::new();
    measure_suite(&mut table, "reduced", &workloads, 3);
    println!("\n{table}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench
}
criterion_main!(benches);
