//! Cost of run-level observability: the profiling counters bumped in
//! the VM hot loop (per-event kind tallies, scheduler slice buckets,
//! kernel transfer buckets, shadow-cache hit/miss cells) are plain
//! integer increments, and building the [`Metrics`] registry happens
//! once per run at finalization. This bench pins both claims:
//!
//! * `run_only` — the instrumented run as-is; the counters are always
//!   on, so this *includes* every hot-loop increment. The acceptance
//!   bar (≤5% over the pre-observability hot loop) is tracked by
//!   comparing this series against `tool_dispatch`'s history across
//!   commits.
//! * `run_plus_registry` — the same run plus `Vm::metrics()` +
//!   `Metrics::to_json()`, measuring the one-shot finalization cost a
//!   `--metrics` export adds on top.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use drms::vm::{NullTool, Tool, Vm};
use drms::workloads::patterns;

fn bench(c: &mut Criterion) {
    let w = patterns::stream_reader(64);
    let events = {
        let mut vm = Vm::new(&w.program, w.run_config()).expect("valid workload");
        vm.run(&mut NullTool).expect("warm-up run").events
    };
    println!("metrics workload: {events} events per run");

    let mut group = c.benchmark_group("metrics");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events));
    group.bench_function("run_only", |b| {
        b.iter(|| {
            let mut vm = Vm::new(&w.program, w.run_config()).expect("valid workload");
            vm.run(&mut NullTool).expect("run").basic_blocks
        })
    });
    group.bench_function("run_plus_registry", |b| {
        b.iter(|| {
            let mut tool = NullTool;
            let mut vm = Vm::new(&w.program, w.run_config()).expect("valid workload");
            vm.run(&mut tool).expect("run");
            let mut metrics = vm.metrics();
            tool.observe_metrics(&mut metrics);
            metrics.to_json().len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
