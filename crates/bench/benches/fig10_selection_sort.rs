//! Figure 10: selection sort profiled under basic-block counting versus
//! simulated-nanosecond timing. The bench measures both profiling modes;
//! the summary verifies the quadratic fit is cleaner under BB counting
//! (higher R², the paper's argument for the BB cost measure).

use criterion::{criterion_group, criterion_main, Criterion};
use drms::analysis::{best_fit, CostPlot, InputMetric, Model};
use drms::vm::CostKind;
use drms::workloads::sorting;
use drms_bench::profile_with_config;

fn bench(c: &mut Criterion) {
    let w = sorting::selection_sort_default(10);
    let mut group = c.benchmark_group("fig10");
    group.bench_function("profile_bb_cost", |b| {
        b.iter(|| profile_with_config(&w, w.run_config()))
    });
    group.bench_function("profile_nanos_cost", |b| {
        let mut cfg = w.run_config();
        cfg.cost = CostKind::SimNanos { jitter_seed: 7 };
        b.iter(|| profile_with_config(&w, cfg.clone()))
    });
    group.finish();

    let w = sorting::selection_sort_default(20);
    let focus = w.focus.expect("selection_sort");
    let bb = profile_with_config(&w, w.run_config());
    let mut cfg = w.run_config();
    cfg.cost = CostKind::SimNanos { jitter_seed: 7 };
    let ns = profile_with_config(&w, cfg);
    let bb_fit = best_fit(
        &CostPlot::of(&bb.merged_routine(focus), InputMetric::Drms).points,
        0.01,
    );
    let ns_fit = best_fit(
        &CostPlot::of(&ns.merged_routine(focus), InputMetric::Drms).points,
        0.01,
    );
    println!("\nfig10: BB fit {bb_fit}; nanos fit {ns_fit}");
    assert_eq!(bb_fit.model, Model::Quadratic, "selection sort is Θ(n²)");
    assert!(
        bb_fit.r2 >= ns_fit.r2 - 1e-6,
        "BB counting is at least as clean as timing (paper's point)"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench
}
criterion_main!(benches);
