//! Figure 16: time and space overhead as a function of the number of
//! guest threads. The bench measures the drms profiler at 1/2/4/8
//! threads; the summary prints all tools' scaling and checks that — as
//! under Valgrind's serializing scheduler — instrumented time grows with
//! thread count while the profiler's space stays below helgrind's.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drms::analysis::OverheadTable;
use drms::workloads;
use drms_bench::{measure_suite, run_tool};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16");
    for threads in [1u32, 2, 4, 8] {
        let w = workloads::specomp::nab(threads, 1);
        group.bench_with_input(BenchmarkId::new("aprof_drms_nab", threads), &w, |b, w| {
            b.iter(|| run_tool(w, "aprof-drms"))
        });
    }
    group.finish();

    println!();
    for threads in [1u32, 2, 4, 8] {
        let suite = vec![
            workloads::specomp::nab(threads, 1),
            workloads::specomp::md(threads, 1),
            workloads::specomp::imagick(threads, 1),
        ];
        let mut table = OverheadTable::new();
        measure_suite(&mut table, "omp", &suite, 2);
        let drms_space = table.mean_space("omp", "aprof-drms");
        let helgrind_space = table.mean_space("omp", "helgrind");
        println!(
            "fig16 @{threads} threads: slowdown drms {:.1}x helgrind {:.1}x | space drms {:.2}x helgrind {:.2}x",
            table.mean_slowdown("omp", "aprof-drms"),
            table.mean_slowdown("omp", "helgrind"),
            drms_space,
            helgrind_space
        );
        // Paper: "the memory requirement of aprof-drms remains always
        // smaller than helgrind".
        assert!(
            drms_space <= helgrind_space * 1.05,
            "drms space should not exceed helgrind's"
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench
}
criterion_main!(benches);
