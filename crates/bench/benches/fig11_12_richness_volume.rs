//! Figures 11 and 12: routine profile richness and dynamic input volume
//! over the benchmark suite. The bench measures the metric-extraction
//! pipeline; the summary prints both curves' heads per benchmark and
//! checks the paper's qualitative claims.

use criterion::{criterion_group, criterion_main, Criterion};
use drms::analysis::{richness_curve, volume_curve};
use drms::workloads;

fn bench(c: &mut Criterion) {
    let w = workloads::parsec::dedup(4, 1);
    let (report, _) = drms::ProfileSession::workload(&w)
        .run()
        .expect("run")
        .into_parts()
        .expect("run");
    c.benchmark_group("fig11_12")
        .bench_function("metric_extraction", |b| {
            b.iter(|| (richness_curve(&report), volume_curve(&report)))
        });

    println!();
    let mut negative_richness = 0usize;
    let mut total_routines = 0usize;
    for w in [
        workloads::parsec::fluidanimate(4, 1),
        workloads::minidb::mysqlslap(4, 4, 60),
        workloads::specomp::smithwa(4, 1),
        workloads::parsec::dedup(4, 1),
        workloads::specomp::nab(4, 1),
        workloads::parsec::swaptions(4, 1),
        workloads::imgpipe::vips(2, 10, 1),
    ] {
        let (report, _) = drms::ProfileSession::workload(&w)
            .run()
            .expect("run")
            .into_parts()
            .expect("run");
        let rich = richness_curve(&report);
        let vol = volume_curve(&report);
        negative_richness += rich.iter().filter(|p| p.1 < 0.0).count();
        total_routines += rich.len();
        println!(
            "fig11/12 {:<14} max richness {:>7.2}, max volume {:>6.1}%",
            w.name,
            rich.first().map(|p| p.1).unwrap_or(0.0),
            vol.first().map(|p| p.1).unwrap_or(0.0),
        );
    }
    // Paper: "only a statistically intangible number of routines has
    // negative profile richness".
    assert!(
        (negative_richness as f64) < 0.1 * total_routines as f64,
        "negative richness should be rare: {negative_richness}/{total_routines}"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench
}
criterion_main!(benches);
