//! Hot-path event dispatch: the same NullTool run driven through the
//! monomorphized [`run_program_with`] entry point vs through a
//! `&mut dyn Tool` reference, isolating the per-event virtual-call
//! overhead the single-tool fast path removes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use drms::vm::{run_program_with, NullTool, Tool, Vm};
use drms::workloads::patterns;

fn bench(c: &mut Criterion) {
    let w = patterns::stream_reader(64);
    let events = run_program_with(&w.program, w.run_config(), &mut NullTool)
        .expect("warm-up run")
        .events;
    println!("dispatch workload: {events} events per run");

    let mut group = c.benchmark_group("dispatch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events));
    group.bench_function("null_static", |b| {
        b.iter(|| {
            run_program_with(&w.program, w.run_config(), &mut NullTool)
                .expect("run")
                .basic_blocks
        })
    });
    group.bench_function("null_dyn", |b| {
        b.iter(|| {
            let mut tool = NullTool;
            let tool: &mut dyn Tool = &mut tool;
            Vm::new(&w.program, w.run_config())
                .expect("valid workload")
                .run(tool)
                .expect("run")
                .basic_blocks
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
