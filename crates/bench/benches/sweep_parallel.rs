//! Parallel sweep engine: the same size×seed grid swept serially and
//! with 4 worker threads. On multi-core hosts the 4-job sweep should
//! approach the core count (the acceptance gate asks for ≥2×); on a
//! single-core host the two variants tie, which is itself evidence the
//! engine adds no overhead. Before timing anything the bench asserts
//! the determinism gate: both variants must merge byte-identically.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use drms_bench::sweep::{run_sweep, SweepSpec};

fn bench(c: &mut Criterion) {
    let sizes: Vec<i64> = (1..=6).map(|i| i * 32).collect();
    let serial = SweepSpec::new("minidb", &sizes, 1).seeds(&[1, 2]);
    let parallel = SweepSpec::new("minidb", &sizes, 4).seeds(&[1, 2]);
    let cells = serial.grid().len() as u64;

    let a = run_sweep(&serial);
    let b = run_sweep(&parallel);
    assert_eq!(
        a.merged_report_text(),
        b.merged_report_text(),
        "serial and parallel sweeps diverged"
    );
    println!(
        "sweep grid: {cells} cells, fingerprint {:#018x}",
        a.fingerprint()
    );

    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cells));
    group.bench_function("jobs_1", |b| b.iter(|| run_sweep(&serial).fingerprint()));
    group.bench_function("jobs_4", |b| b.iter(|| run_sweep(&parallel).fingerprint()));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
