//! Figure 6: wbuffer_write_thread under the three metric variants
//! (rms / drms external-only / full drms). The printed summary counts the
//! distinct input sizes each variant collects over 110 calls.

use criterion::{criterion_group, criterion_main, Criterion};
use drms::analysis::{CostPlot, InputMetric};
use drms::core::DrmsConfig;
use drms::workloads::imgpipe;

fn bench(c: &mut Criterion) {
    let small = imgpipe::vips(2, 16, 1);
    let mut group = c.benchmark_group("fig06");
    group.bench_function("drms_full", |b| {
        b.iter(|| {
            drms::ProfileSession::workload(&small)
                .run()
                .expect("run")
                .into_parts()
                .expect("run")
        })
    });
    group.bench_function("drms_external_only", |b| {
        b.iter(|| {
            drms::ProfileSession::workload(&small)
                .drms(DrmsConfig::external_only())
                .run()
                .expect("run")
                .into_parts()
                .expect("run")
        })
    });
    group.finish();

    let w = imgpipe::vips(2, 110, 1);
    let wb = w
        .program
        .routine_by_name("wbuffer_write_thread")
        .expect("routine");
    let (full, _) = drms::ProfileSession::workload(&w)
        .run()
        .expect("run")
        .into_parts()
        .expect("run");
    let (ext, _) = drms::ProfileSession::workload(&w)
        .drms(DrmsConfig::external_only())
        .run()
        .expect("run")
        .into_parts()
        .expect("run");
    let pf = full.merged_routine(wb);
    let pe = ext.merged_routine(wb);
    let a = CostPlot::of(&pf, InputMetric::Rms).len();
    let b = CostPlot::of(&pe, InputMetric::Drms).len();
    let c3 = CostPlot::of(&pf, InputMetric::Drms).len();
    println!(
        "\nfig06: {} calls -> rms {} sizes, drms(ext) {} sizes, drms(full) {} sizes",
        pf.calls, a, b, c3
    );
    assert!(a <= 3, "rms collapses onto ~2 values (paper Fig 6a)");
    assert!(b >= a && c3 >= b, "monotone refinement (Fig 6a..6c)");
    assert!(c3 as u64 >= pf.calls / 2, "full drms separates the calls");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench
}
criterion_main!(benches);
