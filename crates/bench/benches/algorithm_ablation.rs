//! Ablation of the design choices called out in DESIGN.md:
//!
//! * the read/write timestamping algorithm vs the naive set-based
//!   formulation (paper §3.1 vs §3.2) on the same event stream;
//! * the drms profiler vs the rms-only baseline (the +29% the paper
//!   attributes to recognizing induced first-reads);
//! * the cost of aggressive timestamp renumbering (tiny counter limit)
//!   vs effectively none.

use criterion::{criterion_group, criterion_main, Criterion};
use drms::core::{DrmsConfig, DrmsProfiler, NaiveProfiler, RmsProfiler};
use drms::trace::{merge_traces, replay, TimedEvent};
use drms::vm::TraceRecorder;
use drms::workloads;

fn recorded_stream() -> Vec<TimedEvent> {
    let w = workloads::parsec::dedup(4, 2);
    let mut rec = TraceRecorder::new();
    drms::vm::run_program(&w.program, w.run_config(), &mut rec).expect("record");
    merge_traces(rec.into_traces())
}

fn bench(c: &mut Criterion) {
    let stream = recorded_stream();
    println!("ablation stream: {} events", stream.len());
    let mut group = c.benchmark_group("ablation");

    group.bench_function("timestamping_drms", |b| {
        b.iter(|| {
            let mut p = DrmsProfiler::new(DrmsConfig::full());
            replay(&stream, &mut p);
            p.into_report().len()
        })
    });
    group.bench_function("naive_sets", |b| {
        b.iter(|| {
            let mut p = NaiveProfiler::new();
            replay(&stream, &mut p);
            p.into_report().len()
        })
    });
    group.bench_function("rms_only", |b| {
        b.iter(|| {
            let mut p = RmsProfiler::new();
            replay(&stream, &mut p);
            p.into_report().len()
        })
    });
    group.bench_function("drms_external_only", |b| {
        b.iter(|| {
            let mut p = DrmsProfiler::new(DrmsConfig::external_only());
            replay(&stream, &mut p);
            p.into_report().len()
        })
    });
    group.bench_function("drms_tiny_renumber_limit", |b| {
        b.iter(|| {
            let cfg = DrmsConfig {
                count_limit: 32,
                ..DrmsConfig::full()
            };
            let mut p = DrmsProfiler::new(cfg);
            replay(&stream, &mut p);
            (p.renumberings(), p.into_report().len())
        })
    });
    group.finish();

    // Differential check: the three drms computations agree.
    let mut fast = DrmsProfiler::new(DrmsConfig::full());
    replay(&stream, &mut fast);
    let mut tiny = DrmsProfiler::new(DrmsConfig {
        count_limit: 32,
        ..DrmsConfig::full()
    });
    replay(&stream, &mut tiny);
    let mut naive = NaiveProfiler::new();
    replay(&stream, &mut naive);
    assert!(tiny.renumberings() > 0);
    let (a, b, c3) = (fast.into_report(), tiny.into_report(), naive.into_report());
    assert_eq!(a, b, "renumbering must not change profiles");
    for (&(r, t), p) in a.iter() {
        let q = c3.get(r, t).expect("same routines");
        assert_eq!(p.by_drms, q.by_drms, "timestamping == naive oracle");
        assert_eq!(p.by_rms, q.by_rms);
    }
    println!(
        "ablation: all three algorithms agree on {} profiles",
        a.len()
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench
}
criterion_main!(benches);
