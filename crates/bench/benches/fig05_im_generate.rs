//! Figure 5: im_generate of the vips-like pipeline — profiling
//! throughput plus the rms-vs-drms plot-shape check.

use criterion::{criterion_group, criterion_main, Criterion};
use drms::analysis::{CostPlot, InputMetric};
use drms::workloads::imgpipe;

fn bench(c: &mut Criterion) {
    let w = imgpipe::vips(2, 12, 1);
    c.benchmark_group("fig05")
        .sample_size(10)
        .bench_function("profile_vips", |b| {
            b.iter(|| {
                drms::ProfileSession::workload(&w)
                    .run()
                    .expect("run")
                    .into_parts()
                    .expect("run")
            })
        });

    let (report, _) = drms::ProfileSession::workload(&w)
        .run()
        .expect("run")
        .into_parts()
        .expect("run");
    let p = report.merged_routine(w.focus.expect("im_generate"));
    let rms = CostPlot::of(&p, InputMetric::Rms);
    let drms = CostPlot::of(&p, InputMetric::Drms);
    println!(
        "\nfig05: im_generate called {} times; rms span {}, drms span {} (thread input {:.0}%)",
        p.calls,
        rms.input_span(),
        drms.input_span(),
        p.breakdown.thread_fraction() * 100.0
    );
    assert!(
        drms.input_span() >= rms.input_span(),
        "drms spreads at least as far as rms"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench
}
criterion_main!(benches);
