//! Integration tests for the crash-safe sweep supervisor: panic
//! isolation, deterministic retry/backoff, quarantine accounting, and
//! the journal's kill-anywhere resume guarantee.

use drms_bench::supervisor::{
    profile_cell, resume_sweep, resume_sweep_with, run_supervised, run_supervised_with, Attempt,
    CellCtx, JournalWriter, SupervisorOptions,
};
use drms_bench::sweep::{FamilyBench, SweepBench, SweepSpec};
use std::path::PathBuf;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("drms-supervisor-{name}-{}", std::process::id()))
}

fn fast_opts() -> SupervisorOptions {
    SupervisorOptions {
        backoff_base_ms: 0,
        ..SupervisorOptions::default()
    }
}

/// A deliberately panicking cell no longer takes the sweep down (the
/// old collection path shared a mutex that one panic poisoned for the
/// whole grid). The poisoned cell is retried, quarantined, and every
/// other cell completes — identically for any worker count.
#[test]
fn panicking_cell_is_isolated_and_quarantined() {
    let spec = SweepSpec::new("stream", &[4, 8, 12], 4).seeds(&[1]);
    let runner = |ctx: &CellCtx| -> Attempt {
        if ctx.size == 8 {
            panic!("injected panic for size {}", ctx.size);
        }
        profile_cell(ctx)
    };
    let run = |jobs: usize| {
        let spec = SweepSpec {
            jobs,
            ..spec.clone()
        };
        run_supervised_with(&spec, &fast_opts(), None, &runner)
    };
    let (serial, parallel) = (run(1), run(4));
    for result in [&serial, &parallel] {
        assert_eq!(result.cells.len(), 2, "the healthy cells completed");
        assert_eq!(result.quarantined.len(), 1);
        let q = &result.quarantined[0];
        assert_eq!((q.size, q.seed), (8, 1));
        assert_eq!(q.attempts, 3, "transient failures retry to exhaustion");
        assert_eq!(q.panics, 3, "every attempt panicked");
        assert!(q.error.contains("injected panic"), "{}", q.error);
        let m = result.merged_metrics();
        assert_eq!(m.audit(), Ok(()), "{:?}", m.audit());
        assert_eq!(m.counter("sweep.panics"), 3);
        assert_eq!(m.counter("sweep.quarantined"), 1);
    }
    assert_eq!(
        serial.merged_report_text(),
        parallel.merged_report_text(),
        "quarantine placement is jobs-invariant"
    );
    assert_eq!(
        serial.merged_metrics().to_json(),
        parallel.merged_metrics().to_json()
    );
}

/// A flaky cell that succeeds on its second attempt completes with the
/// retry recorded — and the attempt counts are identical no matter how
/// many workers raced over the grid.
#[test]
fn flaky_cell_retries_deterministically_across_jobs() {
    let spec = SweepSpec::new("stream", &[4, 8], 1).seeds(&[1, 2]);
    // Deterministic flakiness: cells with odd seed fail their first
    // attempt (a function of cell identity and attempt only, never of
    // wall clock or thread timing).
    let runner = |ctx: &CellCtx| -> Attempt {
        if ctx.seed % 2 == 1 && ctx.attempt == 1 {
            return Attempt::Transient("injected transient failure".to_string());
        }
        profile_cell(ctx)
    };
    let run = |jobs: usize| {
        let spec = SweepSpec {
            jobs,
            ..spec.clone()
        };
        run_supervised_with(&spec, &fast_opts(), None, &runner)
    };
    let (serial, parallel) = (run(1), run(4));
    for result in [&serial, &parallel] {
        assert_eq!(result.cells.len(), 4);
        assert!(result.quarantined.is_empty());
        for cell in &result.cells {
            let expected = if cell.seed % 2 == 1 { 2 } else { 1 };
            assert_eq!(
                cell.attempts, expected,
                "size {} seed {}",
                cell.size, cell.seed
            );
        }
        let m = result.merged_metrics();
        assert_eq!(m.audit(), Ok(()), "{:?}", m.audit());
        assert_eq!(m.counter("sweep.attempts"), 6);
        assert_eq!(m.counter("sweep.completed"), 4);
        assert_eq!(m.counter("sweep.retries"), 2);
    }
    assert_eq!(
        serial.merged_metrics().to_json(),
        parallel.merged_metrics().to_json(),
        "attempt accounting must not depend on worker count"
    );
}

/// An instruction budget plus an injected fault plan — the production
/// failure path — quarantines deterministically: the same spec renders
/// the identical v2 bench JSON and merged metrics for any `--jobs`.
#[test]
fn budget_and_faults_quarantine_identically_for_any_jobs() {
    let opts = SupervisorOptions {
        max_attempts: 2,
        backoff_base_ms: 0,
        // Tight enough that larger sizes exhaust the watchdog, small
        // ones complete: a mixed completed/quarantined grid.
        max_instructions: Some(500),
        ..SupervisorOptions::default()
    };
    let run = |jobs: usize| {
        let spec = SweepSpec::new("producer-consumer", &[2, 64], jobs).seeds(&[1, 2]);
        run_supervised(&spec, &opts)
    };
    let (serial, parallel) = (run(1), run(4));
    assert!(
        !serial.quarantined.is_empty(),
        "the tight budget quarantined the large cells"
    );
    assert!(
        !serial.cells.is_empty(),
        "the small cells fit the budget and completed"
    );
    for q in &serial.quarantined {
        assert_eq!(
            q.attempts, 2,
            "budget exhaustion is transient: retried once"
        );
        assert!(q.error.contains("instruction"), "{}", q.error);
    }
    let bench_of = |result: drms_bench::sweep::SweepResult, jobs| SweepBench {
        jobs,
        resumed: false,
        families: vec![FamilyBench::from_resumed(result)],
    };
    assert_eq!(
        bench_of(serial.clone(), 1).to_json(),
        bench_of(parallel.clone(), 4).to_json(),
        "v2 bench JSON is byte-identical across worker counts"
    );
    assert_eq!(
        serial.merged_metrics().to_json(),
        parallel.merged_metrics().to_json()
    );
    assert_eq!(serial.merged_metrics().audit(), Ok(()));
}

/// A wall-clock deadline of zero quarantines every cell — and the sweep
/// still returns normally with clean accounting.
#[test]
fn zero_deadline_quarantines_the_grid() {
    let opts = SupervisorOptions {
        max_attempts: 2,
        backoff_base_ms: 0,
        deadline: Some(std::time::Duration::ZERO),
        ..SupervisorOptions::default()
    };
    let spec = SweepSpec::new("stream", &[4, 8], 2).seeds(&[1]);
    let result = run_supervised(&spec, &opts);
    assert!(result.cells.is_empty());
    assert_eq!(result.quarantined.len(), 2);
    for q in &result.quarantined {
        assert!(q.error.contains("deadline"), "{}", q.error);
    }
    assert_eq!(result.merged_metrics().audit(), Ok(()));
}

/// Resuming a complete journal re-runs nothing and reproduces the
/// original result byte-for-byte.
#[test]
fn resume_of_a_complete_journal_is_a_pure_replay() {
    let path = temp_path("complete");
    let spec = SweepSpec::new("stream", &[4, 8], 1).seeds(&[1]);
    let opts = fast_opts();
    let mut writer = JournalWriter::create(&path).unwrap();
    let baseline = run_supervised_with(&spec, &opts, Some(&mut writer), &profile_cell);
    let panicking_runner = |_: &CellCtx| -> Attempt {
        panic!("resume must not re-run any cell of a complete journal");
    };
    let (resumed, report) = resume_sweep_with(&spec, &opts, &path, &panicking_runner).unwrap();
    assert_eq!(report.salvaged_cells, 2);
    assert_eq!(report.rerun_cells, 0);
    assert_eq!(resumed.merged_report_text(), baseline.merged_report_text());
    assert_eq!(
        resumed.merged_metrics().to_json(),
        baseline.merged_metrics().to_json()
    );
    assert_eq!(
        report.metrics.audit(),
        Ok(()),
        "{:?}",
        report.metrics.audit()
    );
    let _ = std::fs::remove_file(&path);
}

/// The crash-anywhere property: truncate the journal at every sampled
/// byte offset, resume, and the merged report and metrics must come out
/// byte-identical to the uninterrupted `--jobs 1` run. A torn tail may
/// cost re-runs, never correctness.
#[test]
fn truncated_journal_resumes_to_identical_results() {
    let path = temp_path("truncate-base");
    let spec = SweepSpec::new("stream", &[4, 8], 1).seeds(&[1]);
    let opts = fast_opts();
    let mut writer = JournalWriter::create(&path).unwrap();
    let baseline = run_supervised_with(&spec, &opts, Some(&mut writer), &profile_cell);
    let baseline_report = baseline.merged_report_text();
    let baseline_metrics = baseline.merged_metrics().to_json();
    let journal = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);

    // Sample points: every record-header boundary +/- 1 byte, plus a
    // fixed stride through the interior (payload middles, checksum
    // bytes, separators).
    let mut cuts = vec![0usize, journal.len().saturating_sub(1)];
    let text = String::from_utf8_lossy(&journal);
    let mut offset = 0usize;
    for line in text.split_inclusive('\n') {
        if line.starts_with("@rec ") || line.starts_with("@end ") {
            cuts.extend([offset.saturating_sub(1), offset, offset + 1]);
        }
        offset += line.len();
    }
    cuts.extend((0..journal.len()).step_by(97));
    cuts.retain(|&c| c <= journal.len());
    cuts.sort_unstable();
    cuts.dedup();

    for (i, &cut) in cuts.iter().enumerate() {
        let path = temp_path(&format!("truncate-{i}"));
        std::fs::write(&path, &journal[..cut]).unwrap();
        let (resumed, report) =
            resume_sweep(&spec, &opts, &path).unwrap_or_else(|e| panic!("cut at byte {cut}: {e}"));
        assert_eq!(
            resumed.merged_report_text(),
            baseline_report,
            "cut at byte {cut}: merged report diverged"
        );
        assert_eq!(
            resumed.merged_metrics().to_json(),
            baseline_metrics,
            "cut at byte {cut}: merged metrics diverged"
        );
        assert_eq!(
            report.salvaged_cells + report.rerun_cells,
            2,
            "cut at byte {cut}: grid accounting"
        );
        let _ = std::fs::remove_file(&path);
    }
}

/// Quarantined cells recorded in the journal get a fresh chance on
/// resume; if they succeed this time the final result is
/// indistinguishable from a run that never failed.
#[test]
fn resume_retries_journaled_quarantines() {
    let path = temp_path("requarantine");
    let spec = SweepSpec::new("stream", &[4, 8], 1).seeds(&[1]);
    let opts = SupervisorOptions {
        max_attempts: 1,
        backoff_base_ms: 0,
        ..SupervisorOptions::default()
    };
    let flaky = |ctx: &CellCtx| -> Attempt {
        if ctx.size == 8 {
            return Attempt::Transient("flaky environment".to_string());
        }
        profile_cell(ctx)
    };
    let mut writer = JournalWriter::create(&path).unwrap();
    let crashed = run_supervised_with(&spec, &opts, Some(&mut writer), &flaky);
    drop(writer);
    assert_eq!(crashed.quarantined.len(), 1);
    let (resumed, report) = resume_sweep(&spec, &opts, &path).unwrap();
    assert!(resumed.quarantined.is_empty(), "the flake healed on resume");
    assert_eq!(resumed.cells.len(), 2);
    assert_eq!(report.salvaged_cells, 1);
    assert_eq!(report.rerun_cells, 1);
    assert_eq!(report.metrics.counter("journal.cells_requarantined"), 1);
    let healthy = run_supervised(&spec, &opts);
    assert_eq!(resumed.merged_report_text(), healthy.merged_report_text());
    let _ = std::fs::remove_file(&path);
}

/// Resuming under a different grid or failure policy than the journal
/// records is an error, not a silent mix of semantics.
#[test]
fn resume_rejects_a_mismatched_spec() {
    let path = temp_path("mismatch");
    let spec = SweepSpec::new("stream", &[4], 1).seeds(&[1]);
    let opts = fast_opts();
    let mut writer = JournalWriter::create(&path).unwrap();
    let _ = run_supervised_with(&spec, &opts, Some(&mut writer), &profile_cell);
    drop(writer);
    let other_grid = SweepSpec::new("stream", &[4, 8], 1).seeds(&[1]);
    let err = resume_sweep(&other_grid, &opts, &path).unwrap_err();
    assert!(matches!(err, drms::Error::Journal(_)), "{err:?}");
    let other_policy = SupervisorOptions {
        max_attempts: 7,
        ..fast_opts()
    };
    let err = resume_sweep(&spec, &other_policy, &path).unwrap_err();
    assert!(matches!(err, drms::Error::Journal(_)), "{err:?}");
    // A different jobs count is NOT a mismatch: resume may use any
    // worker count and still reproduce the bytes.
    let more_jobs = SweepSpec {
        jobs: 8,
        ..spec.clone()
    };
    assert!(resume_sweep(&more_jobs, &opts, &path).is_ok());
    let _ = std::fs::remove_file(&path);
}

/// One journal carries a multi-family sweep: a family the crash never
/// reached has no spec record and simply starts fresh on resume.
#[test]
fn resume_runs_unstarted_families_from_scratch() {
    let path = temp_path("unstarted");
    let started = SweepSpec::new("stream", &[4], 1).seeds(&[1]);
    let unstarted = SweepSpec::new("producer-consumer", &[4], 1).seeds(&[1]);
    let opts = fast_opts();
    let mut writer = JournalWriter::create(&path).unwrap();
    let _ = run_supervised_with(&started, &opts, Some(&mut writer), &profile_cell);
    drop(writer);
    let (result, report) = resume_sweep(&unstarted, &opts, &path).unwrap();
    assert_eq!(result.cells.len(), 1);
    assert_eq!(report.salvaged_cells, 0);
    assert_eq!(report.rerun_cells, 1);
    // And now both families are journaled: either resumes as a replay.
    let (_, report) = resume_sweep(&unstarted, &opts, &path).unwrap();
    assert_eq!(report.salvaged_cells, 1);
    let (_, report) = resume_sweep(&started, &opts, &path).unwrap();
    assert_eq!(report.salvaged_cells, 1);
    let _ = std::fs::remove_file(&path);
}

/// A resumed writer must never append behind a torn tail: resume
/// rewrites the journal to its salvaged prefix before appending, so the
/// file stays strictly parsable and a *second* crash + resume cannot
/// lose the records the first resume appended to the damage.
#[test]
fn resume_heals_torn_journals_before_appending() {
    let spec = SweepSpec::new("stream", &[4, 8], 1).seeds(&[1]);
    let opts = fast_opts();
    let base = temp_path("heal-base");
    let mut writer = JournalWriter::create(&base).unwrap();
    let baseline = run_supervised_with(&spec, &opts, Some(&mut writer), &profile_cell);
    let baseline_report = baseline.merged_report_text();
    let bytes = std::fs::read(&base).unwrap();
    let _ = std::fs::remove_file(&base);

    // First crash: tear mid-way through the last record's trailer.
    let path = temp_path("heal");
    std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
    let (first, report) = resume_sweep(&spec, &opts, &path).unwrap();
    assert_eq!(first.merged_report_text(), baseline_report);
    assert_eq!(report.metrics.counter("journal.rewritten"), 1);
    let healed = std::fs::read_to_string(&path).unwrap();
    drms::trace::journal::from_text(&healed)
        .expect("resume leaves a strictly-parsable journal behind");

    // Second crash on the healed file: resume again; byte-identical
    // output and a clean journal, every time.
    std::fs::write(&path, &healed[..healed.len() - 7]).unwrap();
    let (second, _) = resume_sweep(&spec, &opts, &path).unwrap();
    assert_eq!(second.merged_report_text(), baseline_report);
    drms::trace::journal::from_text(&std::fs::read_to_string(&path).unwrap())
        .expect("second resume also leaves a clean journal");
    let _ = std::fs::remove_file(&path);
}
