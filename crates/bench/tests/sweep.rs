//! Integration tests for the parallel sweep engine: the determinism
//! gate (serial and parallel sweeps merge byte-identically) and the
//! `BENCH_sweep.json` schema contract.

use drms_bench::sweep::{
    run_sweep, validate_bench_json, FamilyBench, SweepBench, SweepSpec, BENCH_SCHEMA,
};

/// `--jobs 1` vs `--jobs 4` over the same grid must produce
/// byte-identical merged reports: parallelism may only change wall
/// time, never the profiles.
#[test]
fn parallel_sweep_is_deterministic() {
    for family in ["minidb", "stream", "producer-consumer"] {
        let sizes = [8, 16, 24];
        let serial = run_sweep(&SweepSpec::new(family, &sizes, 1).seeds(&[1, 2]));
        let parallel = run_sweep(&SweepSpec::new(family, &sizes, 4).seeds(&[1, 2]));
        assert_eq!(
            serial.merged_report_text(),
            parallel.merged_report_text(),
            "{family}: serial and parallel sweeps diverged"
        );
        assert_eq!(serial.fingerprint(), parallel.fingerprint(), "{family}");
        assert_eq!(serial.cells.len(), sizes.len() * 2, "{family}");
    }
}

/// Repeating the same sweep twice yields the same fingerprint: the
/// engine itself adds no hidden run-to-run state.
#[test]
fn repeated_sweeps_fingerprint_identically() {
    let spec = SweepSpec::new("minidb", &[16, 32], 4);
    assert_eq!(
        run_sweep(&spec).fingerprint(),
        run_sweep(&spec).fingerprint()
    );
}

/// The emitted benchmark JSON validates against its own schema checker
/// and carries the documented top-level fields.
#[test]
fn bench_json_round_trips_through_the_validator() {
    let specs = [
        SweepSpec::new("minidb", &[16, 32], 2),
        SweepSpec::new("stream", &[8, 16], 2),
    ];
    let bench = SweepBench {
        jobs: 2,
        resumed: false,
        families: specs.iter().map(FamilyBench::measure).collect(),
    };
    let json = bench.to_json();
    assert!(json.contains(BENCH_SCHEMA));
    validate_bench_json(&json).expect("emitted JSON validates");
    assert!(!bench.diverged());
}

/// The validator rejects payloads that are not a sweep benchmark.
#[test]
fn validator_rejects_foreign_json() {
    assert!(validate_bench_json("{}").is_err());
    assert!(validate_bench_json("not json at all").is_err());
    assert!(validate_bench_json(&format!(
        "{{\"schema\": \"{BENCH_SCHEMA}\", \"attempts\": -1}}"
    ))
    .is_err());
}
