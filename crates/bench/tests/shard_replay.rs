//! Differential suite for the out-of-core trace pipeline: for every
//! workload family, an in-memory profiling run and a spill-to-disk run
//! replayed offline must be **byte-identical** — same report text, same
//! drms curves, same profiler counters.
//!
//! This is also the [`SuppressCache`] retarget audit: the live VM
//! delivers events with explicit thread switches and the replay driver
//! delivers the recorded frames in the same global order, so the
//! direct-mapped suppression cache must see the identical
//! lookup/hit/flush sequence — checked here through the
//! `drms.suppress.*` counters, which would diverge on any delivery-
//! order difference.
//!
//! [`SuppressCache`]: drms::core::DrmsProfiler

use drms::core::{report_io, DrmsConfig, DrmsProfiler};
use drms::prelude::*;
use drms::vm::DecodeMode;
use drms_bench::sweep::{family_workload, FAMILIES};
use std::path::PathBuf;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("drms-shard-replay-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The family's sweep-cell size for this suite: small enough to keep
/// the matrix fast, big enough that every family streams batches
/// through multiple spill flushes.
fn family_size(family: &str) -> i64 {
    match family {
        "imgpipe" => 6,
        "sort" => 10,
        _ => 24,
    }
}

/// Live in-memory run vs spill-then-offline-replay, for one family.
/// Returns (live report text, replayed report text, live metrics,
/// replay metrics).
fn run_family(family: &str) -> (String, String, Metrics, Metrics) {
    let w = family_workload(family, family_size(family)).expect("known family");
    let mut config = w.run_config();
    config.decode = DecodeMode::Fused;
    config.event_batch = 16;

    // In-memory reference run.
    let live = ProfileSession::new(&w.program)
        .config(config.clone())
        .run()
        .expect("live run");
    assert!(live.error.is_none(), "suite families run to completion");

    // Spill run: identical configuration plus a shard directory with a
    // small threshold, so every family crosses flush boundaries.
    let dir = scratch(family);
    let spill = ProfileSession::new(&w.program)
        .config(config)
        .trace_dir(&dir)
        .spill_threshold(256)
        .run()
        .expect("spill run");
    let live_text = report_io::to_text(&live.report);
    assert_eq!(
        live_text,
        report_io::to_text(&spill.report),
        "{family}: attaching the shard recorder must not perturb the profile"
    );

    // Offline replay through a fresh profiler.
    let set = ShardSet::load(&dir, 2).expect("load shards");
    assert_eq!(set.dropped, 0, "{family}: clean spill drops nothing");
    let mut profiler = DrmsProfiler::new(DrmsConfig::full());
    replay_shards_into(&set, &mut profiler);
    let mut replay_metrics = Metrics::new();
    profiler.observe_metrics(&mut replay_metrics);
    let replayed_text = report_io::to_text(&profiler.into_report());

    // Focus drms curves, point by point (redundant with the text
    // equality, but this is the curve the paper's figures plot).
    let live_report = report_io::from_text(&live_text).expect("reparse");
    let replay_report = report_io::from_text(&replayed_text).expect("reparse");
    if let Some(focus) = w.focus {
        assert_eq!(
            live_report.merged_routine(focus).drms_plot(),
            replay_report.merged_routine(focus).drms_plot(),
            "{family}: drms curve must survive the disk round trip"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
    (live_text, replayed_text, live.metrics, replay_metrics)
}

#[test]
fn every_family_replays_byte_identical_from_shards() {
    for family in FAMILIES {
        let (live_text, replayed_text, live_metrics, replay_metrics) = run_family(family);
        assert_eq!(
            live_text, replayed_text,
            "{family}: offline replay must reproduce the in-memory report byte for byte"
        );
        // The SuppressCache retarget audit: identical delivery order ⇒
        // identical cache behaviour, counter for counter. The live
        // registry holds the VM's counters too, so compare exactly the
        // profiler-owned names.
        for name in [
            "drms.suppress.lookups",
            "drms.suppress.read_hits",
            "drms.suppress.write_hits",
            "drms.suppress.flushes",
        ] {
            assert_eq!(
                live_metrics.counter(name),
                replay_metrics.counter(name),
                "{family}: {name} diverged between live delivery and shard replay"
            );
        }
        replay_metrics
            .audit()
            .expect("replay registry audits clean");
    }
}
