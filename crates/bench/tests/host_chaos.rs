//! Host-fault chaos suite: the property the [`HostIo`] layer exists to
//! prove.
//!
//! A journaled sweep performs a fixed, deterministic sequence of host
//! I/O operations (journal create/append/fsync, artifact temp + fsync +
//! rename + dir-sync). This suite enumerates **every one of those fault
//! points** by running a fault-free baseline under a counting plan,
//! then re-running the sweep once per (operation, index) with a seeded
//! injected fault at exactly that point. The property:
//!
//! > every injected fault either leaves a run that *resumes to
//! > byte-identical artifacts* on clean I/O, or fails with a **typed,
//! > attributable error** and a salvageable journal — never a corrupt
//! > artifact, never a silent loss.

use drms::trace::hostio::{is_injected, HostIo, HostOp};
use drms::trace::journal;
use drms::trace::Metrics;
use drms_bench::artifact::atomic_write_with;
use drms_bench::supervisor::{
    profile_cell, resume_sweep_with_io, run_supervised_with, JournalWriter, SupervisorOptions,
};
use drms_bench::sweep::{FamilyBench, SweepBench, SweepSpec};
use std::path::{Path, PathBuf};

fn chaos_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("drms-chaos-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("chaos dir");
    dir
}

fn spec() -> SweepSpec {
    SweepSpec::new("stream", &[4, 6], 2).seeds(&[1])
}

/// Assembles the deterministic bench artifact the same way `repro
/// sweep` and `aprofd` do — wall-clock lives in a separate artifact, so
/// this JSON is byte-stable across runs and resumes.
fn bench_json(result: drms_bench::sweep::SweepResult) -> String {
    SweepBench {
        jobs: 2,
        resumed: false,
        families: vec![FamilyBench::from_resumed(result)],
    }
    .to_json()
}

/// One journaled sweep + artifact write through `io`, exactly the
/// production sequence: create the journal, run the grid (checkpointing
/// each cell), atomically write the bench artifact.
fn journaled_run(io: &HostIo, journal_path: &Path, bench_out: &Path) -> std::io::Result<()> {
    let sup = SupervisorOptions::default();
    let mut writer = JournalWriter::create_with(io, journal_path)?;
    let result = run_supervised_with(&spec(), &sup, Some(&mut writer), &profile_cell);
    atomic_write_with(io, bench_out, &bench_json(result))
}

/// The chaos property, exhaustively: a fault injected at every single
/// host-I/O operation of the run either still converges to the baseline
/// bytes after a clean-I/O resume, or fails typed with the journal's
/// valid prefix intact.
#[test]
fn every_fault_point_resumes_byte_identical_or_fails_typed() {
    // Baseline under a counting plan whose only rule can never fire:
    // same artifact bytes as a real run, plus the per-op totals that
    // enumerate the fault points.
    let base = chaos_dir("baseline");
    let counter = HostIo::from_spec("write:enospc:once=1000000000").expect("counting plan");
    journaled_run(
        &counter,
        &base.join("sweep.journal"),
        &base.join("bench.json"),
    )
    .expect("fault-free baseline");
    assert_eq!(counter.injected(), 0, "the counting plan must not fire");
    let baseline = std::fs::read_to_string(base.join("bench.json")).expect("baseline artifact");

    // Every (op, 1-based index, kind) this run can fault at. Torn
    // writes are a distinct failure shape from ENOSPC, so writes get
    // both.
    let mut points: Vec<(HostOp, u64, &str)> = Vec::new();
    for (op, kinds) in [
        (HostOp::Create, &["enospc"][..]),
        (HostOp::Write, &["enospc", "torn"][..]),
        (HostOp::Fsync, &["eio"][..]),
        (HostOp::Rename, &["eio"][..]),
        (HostOp::SyncDir, &["eio"][..]),
    ] {
        let count = counter.ops(op);
        assert!(count > 0, "baseline never performed {op:?}");
        for at in 1..=count {
            for kind in kinds {
                points.push((op, at, kind));
            }
        }
    }
    assert!(
        points.len() >= 15,
        "the run has a real fault surface, got {} points",
        points.len()
    );

    for (op, at, kind) in points {
        let label = format!("{}:{kind}:once={at}", op.name());
        let dir = chaos_dir(&format!("pt-{}-{kind}-{at}", op.name()));
        let journal_path = dir.join("sweep.journal");
        let bench_out = dir.join("bench.json");
        let io = HostIo::from_spec(&label).expect("fault plan");

        match journaled_run(&io, &journal_path, &bench_out) {
            Ok(()) => {
                // The fault was absorbed (journal appends degrade
                // gracefully): the artifact must already be the
                // baseline bytes.
                let got = std::fs::read_to_string(&bench_out).expect("artifact");
                assert_eq!(
                    got, baseline,
                    "[{label}] absorbed fault corrupted the artifact"
                );
            }
            Err(e) => {
                // Typed failure: attributable to the injection, and the
                // target artifact is never left *corrupt* — either it
                // does not exist yet, or (a dir-sync failure after the
                // rename already landed) it is the complete bytes.
                assert!(is_injected(&e), "[{label}] untyped error: {e}");
                if bench_out.exists() {
                    let got = std::fs::read_to_string(&bench_out).expect("artifact");
                    assert_eq!(
                        got, baseline,
                        "[{label}] failed write left a corrupt artifact"
                    );
                }
            }
        }

        // Recovery on clean I/O: resume from whatever the journal holds
        // (or start over if the fault beat the journal header to disk).
        let clean = HostIo::real();
        let sup = SupervisorOptions::default();
        let recovered = if journal_path.exists() {
            let (result, resume) =
                resume_sweep_with_io(&spec(), &sup, &journal_path, &profile_cell, &clean)
                    .unwrap_or_else(|e| panic!("[{label}] clean resume failed: {e}"));
            assert_eq!(
                resume.salvaged_cells + resume.rerun_cells,
                2,
                "[{label}] salvage accounting lost a cell"
            );
            resume
                .metrics
                .audit()
                .unwrap_or_else(|v| panic!("[{label}] salvage audit: {v:?}"));
            bench_json(result)
        } else {
            journaled_run(&clean, &journal_path, &bench_out)
                .unwrap_or_else(|e| panic!("[{label}] clean rerun failed: {e}"));
            std::fs::read_to_string(&bench_out).expect("artifact")
        };
        assert_eq!(
            recovered, baseline,
            "[{label}] recovery diverged from baseline"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// Salvage accounting under a short write at **every byte offset** of a
/// journal record: however many bytes of the final record actually hit
/// the disk, `journal.lines.salvaged + journal.lines.dropped ==
/// journal.lines.total` holds, the valid prefix survives intact, and a
/// resume re-runs exactly the lost cell — rewriting the damaged tail
/// (`journal.rewritten`) so later appends extend a clean file.
#[test]
fn short_writes_at_every_offset_of_a_record_salvage_with_audited_counters() {
    let dir = chaos_dir("offsets");
    let journal_path = dir.join("sweep.journal");
    let bench_out = dir.join("bench.json");
    journaled_run(&HostIo::real(), &journal_path, &bench_out).expect("baseline");
    let baseline = std::fs::read_to_string(&bench_out).expect("baseline artifact");
    let full = std::fs::read_to_string(&journal_path).expect("journal");

    // The byte range of the final record: everything before it is the
    // valid prefix a short write can never touch.
    let records = journal::from_text(&full).expect("intact journal parses");
    assert!(records.len() >= 3, "header spec + 2 cells expected");
    let prefix = journal::to_text(&records[..records.len() - 1]);
    assert!(
        full.starts_with(&prefix),
        "to_text is the file's own framing"
    );
    let prefix_cells = records[..records.len() - 1]
        .iter()
        .filter(|r| r.meta.starts_with("cell "))
        .count();

    // Counter law at every offset (cheap: pure salvage, no re-runs).
    for cut in prefix.len()..full.len() {
        let salvaged = journal::from_text_lossy(&full[..cut]);
        let mut m = Metrics::new();
        salvaged.observe_metrics(&mut m);
        m.audit()
            .unwrap_or_else(|v| panic!("cut at {cut}: salvage audit failed: {v:?}"));
        assert_eq!(
            m.counter("journal.lines.salvaged") + m.counter("journal.lines.dropped"),
            m.counter("journal.lines.total"),
            "cut at {cut}"
        );
        assert_eq!(
            salvaged.records.len(),
            records.len() - 1,
            "cut at {cut}: the valid prefix must survive exactly"
        );
        assert_eq!(
            m.counter("journal.cells_salvaged"),
            salvaged.records.len() as u64
        );
    }

    // Full resume at a bounded sample of offsets (plus both ends of the
    // record): byte-identical artifact, one cell re-run, damaged tail
    // rewritten.
    let span = full.len() - prefix.len();
    let stride = (span / 8).max(1);
    let mut cuts: Vec<usize> = (prefix.len()..full.len()).step_by(stride).collect();
    cuts.push(full.len() - 1);
    for cut in cuts {
        let case = chaos_dir(&format!("offset-{cut}"));
        let torn_path = case.join("sweep.journal");
        std::fs::write(&torn_path, &full[..cut]).expect("torn journal");
        let (result, resume) = resume_sweep_with_io(
            &spec(),
            &SupervisorOptions::default(),
            &torn_path,
            &profile_cell,
            &HostIo::real(),
        )
        .unwrap_or_else(|e| panic!("cut at {cut}: resume failed: {e}"));
        assert_eq!(resume.salvaged_cells, prefix_cells, "cut at {cut}");
        assert_eq!(
            resume.metrics.counter("journal.cells_rerun"),
            (2 - prefix_cells) as u64,
            "cut at {cut}"
        );
        // A cut exactly on a record boundary is a valid (just shorter)
        // journal — no damage, nothing to rewrite. Any other cut tears
        // the final record and must trigger the rewrite.
        let expect_rewrite = u64::from(cut != prefix.len());
        assert_eq!(
            resume.metrics.counter("journal.rewritten"),
            expect_rewrite,
            "cut at {cut}: a damaged tail must be rewritten before appending"
        );
        assert_eq!(
            bench_json(result),
            baseline,
            "cut at {cut}: artifact diverged"
        );

        // The rewritten + appended journal is clean: a second salvage
        // sees no damage and every cell.
        let healed = std::fs::read_to_string(&torn_path).expect("healed journal");
        let salvaged = journal::from_text_lossy(&healed);
        assert!(
            !salvaged.is_damaged(),
            "cut at {cut}: resume left damage behind"
        );
        let _ = std::fs::remove_dir_all(&case);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
