//! End-to-end tests of the `aprof` and `repro` command-line binaries.

use std::path::PathBuf;
use std::process::{Command, Output};

fn aprof(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_aprof"))
        .args(args)
        .output()
        .expect("spawn aprof")
}

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

#[test]
fn aprof_profiles_a_workload_with_fit() {
    let out = aprof(&["--workload", "minidb", "--fit", "--scale", "1"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("dynamic input volume"));
    assert!(text.contains("mysql_select"), "focus routine shown");
    assert!(text.contains("drms fit: Θ(n)"), "linear fit found:\n{text}");
}

#[test]
fn aprof_rejects_unknown_inputs() {
    assert!(!aprof(&["--workload", "nope"]).status.success());
    assert!(!aprof(&[]).status.success());
    assert!(!aprof(&["--workload", "minidb", "--tool", "bogus"])
        .status
        .success());
    assert!(!aprof(&["--bogus-flag"]).status.success());
}

#[test]
fn aprof_dumps_parseable_reports_and_traces() {
    let dir = std::env::temp_dir().join(format!("drms-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let report: PathBuf = dir.join("out.report");
    let trace: PathBuf = dir.join("out.trace");
    let out = aprof(&[
        "--workload",
        "producer_consumer",
        "--scale",
        "1",
        "--report",
        report.to_str().expect("utf-8 path"),
        "--trace",
        trace.to_str().expect("utf-8 path"),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report_text = std::fs::read_to_string(&report).expect("report file");
    let parsed = drms::core::report_io::from_text(&report_text).expect("parse report");
    assert!(!parsed.is_empty());
    let trace_text = std::fs::read_to_string(&trace).expect("trace file");
    let events = drms::trace::codec::from_text(&trace_text).expect("parse trace");
    assert!(!events.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn aprof_disassembles_programs() {
    let out = aprof(&["--workload", "stream_reader", "--disasm"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("routine @"));
    assert!(text.contains("syscall read"));
}

#[test]
fn aprof_context_mode_renders_paths() {
    let out = aprof(&["--workload", "vips", "--context", "--scale", "1"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("contexts of im_generate"));
    assert!(text.contains("→ im_generate"));
}

#[test]
fn aprof_rms_tool_misses_dynamic_input() {
    let drms_out = stdout(&aprof(&["--workload", "stream_reader", "--scale", "1"]));
    let rms_out = stdout(&aprof(&[
        "--workload",
        "stream_reader",
        "--scale",
        "1",
        "--tool",
        "aprof",
    ]));
    // The drms run reports a large dynamic input volume, the rms run 0%.
    assert!(
        !drms_out.contains("dynamic input volume: 0.0%"),
        "{drms_out}"
    );
    assert!(rms_out.contains("dynamic input volume: 0.0%"), "{rms_out}");
}

#[test]
fn repro_runs_a_single_experiment_and_writes_data() {
    let dir = std::env::temp_dir().join(format!("drms-repro-{}", std::process::id()));
    let out = repro(&[
        "fig4",
        "--scale",
        "1",
        "--out",
        dir.to_str().expect("utf-8 path"),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("Fig 4"));
    assert!(text.contains("fit Θ(n)"), "drms linear fit:\n{text}");
    assert!(dir.join("fig04.dat").exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repro_rejects_unknown_experiments() {
    assert!(!repro(&["fig99"]).status.success());
    assert!(!repro(&[]).status.success());
}

#[test]
fn aprof_diff_compares_saved_reports() {
    let dir = std::env::temp_dir().join(format!("drms-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let old = dir.join("rms.report");
    let new = dir.join("drms.report");
    for (tool, path) in [("aprof", &old), ("aprof-drms", &new)] {
        let out = aprof(&[
            "--workload",
            "stream_reader",
            "--scale",
            "1",
            "--tool",
            tool,
            "--report",
            path.to_str().expect("utf-8 path"),
        ]);
        assert!(out.status.success());
    }
    let out = aprof(&["--diff", old.to_str().unwrap(), new.to_str().unwrap()]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("routines compared"));
    assert!(
        text.contains("volume 0.0% -> 9"),
        "the drms run reveals the dynamic workload:\n{text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
