//! Preempt-at-every-cell chaos suite: a supervised sweep is forced to
//! yield after *each* grid-cell boundary in turn, re-dispatched through
//! the resume path, and its merged artifacts compared byte-for-byte
//! against an uninterrupted run. If preemption at any boundary changed
//! a single byte, the daemon's priority scheduling would silently
//! corrupt results — this suite is the proof it cannot.

use drms_bench::supervisor::{
    profile_cell, resume_sweep_with, run_supervised_preemptible, run_supervised_with, Attempt,
    CellCtx, JournalWriter, PreemptSignal, SupervisedRun, SupervisorOptions,
};
use drms_bench::sweep::{FamilyBench, SweepBench, SweepSpec};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("drms-preempt-{name}-{}", std::process::id()))
}

fn opts() -> SupervisorOptions {
    SupervisorOptions {
        backoff_base_ms: 0,
        ..SupervisorOptions::default()
    }
}

/// The three artifact surfaces a job publishes, rendered exactly the
/// way the daemon renders them.
fn artifacts(result: drms_bench::sweep::SweepResult) -> (String, String, String) {
    let report = result.merged_report_text();
    let metrics = result.merged_metrics().to_json();
    let bench = SweepBench {
        jobs: 1,
        resumed: false,
        families: vec![FamilyBench::from_resumed(result)],
    }
    .to_json();
    (bench, report, metrics)
}

#[test]
fn preemption_at_every_cell_boundary_resumes_byte_identically() {
    let spec = SweepSpec::new("stream", &[4, 6, 8], 1).seeds(&[1, 2]);
    let cells = spec.grid().len();
    assert_eq!(cells, 6, "the grid this suite sweeps");

    // The artifact set every interrupted run must reproduce.
    let baseline_journal = temp_path("baseline");
    let _ = std::fs::remove_file(&baseline_journal);
    let mut writer = JournalWriter::create(&baseline_journal).expect("journal");
    let baseline = artifacts(run_supervised_with(
        &spec,
        &opts(),
        Some(&mut writer),
        &profile_cell,
    ));
    let _ = std::fs::remove_file(&baseline_journal);

    for k in 1..cells {
        let journal = temp_path(&format!("cell-{k}"));
        let _ = std::fs::remove_file(&journal);

        // Raise the signal the moment the k-th cell completes: the
        // supervisor must stop at that boundary, not one cell later.
        let signal = PreemptSignal::new();
        let done = AtomicUsize::new(0);
        let counting = {
            let signal = signal.clone();
            let done = &done;
            move |ctx: &CellCtx| -> Attempt {
                let attempt = profile_cell(ctx);
                if done.fetch_add(1, Ordering::SeqCst) + 1 == k {
                    signal.raise();
                }
                attempt
            }
        };
        let preemptible = SupervisorOptions {
            preempt: Some(signal),
            ..opts()
        };
        let mut writer = JournalWriter::create(&journal).expect("journal");
        match run_supervised_preemptible(&spec, &preemptible, Some(&mut writer), &counting) {
            SupervisedRun::Yielded {
                cells_done,
                cells_total,
            } => {
                assert_eq!(cells_done, k, "yield happened at the signaled boundary");
                assert_eq!(cells_total, cells);
            }
            SupervisedRun::Completed(_) => {
                panic!("preempting after cell {k} of {cells} must yield, not complete")
            }
        }

        // Re-dispatch: the journal is the checkpoint, the resume path
        // is exactly what the daemon runs, and the merged artifacts
        // must match the uninterrupted run byte for byte.
        let (result, report) =
            resume_sweep_with(&spec, &opts(), &journal, &profile_cell).expect("resume");
        assert_eq!(
            report.salvaged_cells, k,
            "every journaled cell is adopted, none re-run"
        );
        assert_eq!(report.rerun_cells, cells - k);
        let resumed = artifacts(result);
        assert_eq!(
            resumed.0, baseline.0,
            "bench artifact diverged after preempting at cell {k}"
        );
        assert_eq!(
            resumed.1, baseline.1,
            "report diverged after preempting at cell {k}"
        );
        assert_eq!(
            resumed.2, baseline.2,
            "metrics diverged after preempting at cell {k}"
        );
        let _ = std::fs::remove_file(&journal);
    }
}

/// Preemptions stack: yield after one cell, resume-and-yield again one
/// cell later, and keep going — every dispatch makes forward progress
/// (the signal is checked at the claim, after at least the first cell
/// of the dispatch ran), and the final assembly is still byte-identical.
#[test]
fn stacked_preemptions_still_assemble_byte_identical_artifacts() {
    let spec = SweepSpec::new("stream", &[4, 6, 8], 1).seeds(&[1]);
    let cells = spec.grid().len();

    let baseline = artifacts(run_supervised_with(&spec, &opts(), None, &profile_cell));

    let journal = temp_path("stacked");
    let _ = std::fs::remove_file(&journal);

    // First dispatch: yield after the very first cell.
    let signal = PreemptSignal::new();
    let first_cell_then_yield = {
        let signal = signal.clone();
        move |ctx: &CellCtx| -> Attempt {
            let attempt = profile_cell(ctx);
            signal.raise();
            attempt
        }
    };
    let preemptible = SupervisorOptions {
        preempt: Some(signal.clone()),
        ..opts()
    };
    let mut writer = JournalWriter::create(&journal).expect("journal");
    let run = run_supervised_preemptible(
        &spec,
        &preemptible,
        Some(&mut writer),
        &first_cell_then_yield,
    );
    assert!(
        matches!(run, SupervisedRun::Yielded { cells_done: 1, .. }),
        "{run:?}"
    );
    drop(writer);

    // Each further dispatch resumes, completes one more cell, yields
    // again — until only the final dispatch can complete the grid.
    use drms_bench::supervisor::resume_sweep_preemptible_with_io;
    for dispatched in 1..cells {
        signal.clear();
        let inner = PreemptSignal::new();
        let one_more = {
            let inner = inner.clone();
            move |ctx: &CellCtx| -> Attempt {
                let attempt = profile_cell(ctx);
                inner.raise();
                attempt
            }
        };
        let preemptible = SupervisorOptions {
            preempt: Some(inner),
            ..opts()
        };
        let (run, _report) = resume_sweep_preemptible_with_io(
            &spec,
            &preemptible,
            &journal,
            &one_more,
            &drms::trace::hostio::HostIo::real(),
        )
        .expect("resume");
        match run {
            SupervisedRun::Yielded { cells_done, .. } => {
                assert_eq!(
                    cells_done,
                    dispatched + 1,
                    "each dispatch makes exactly one cell of progress here"
                );
            }
            SupervisedRun::Completed(result) => {
                assert_eq!(
                    dispatched + 1,
                    cells,
                    "completion only once every cell is journaled"
                );
                let resumed = artifacts(*result);
                assert_eq!(resumed, baseline, "stacked preemptions changed the bytes");
                let _ = std::fs::remove_file(&journal);
                return;
            }
        }
    }
    panic!("the sweep never completed");
}
