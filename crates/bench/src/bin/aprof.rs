//! `aprof` — command-line front end of the profiler, in the spirit of
//! the original tool's `valgrind --tool=aprof <prog>` workflow.
//!
//! ```text
//! aprof --workload <name> [options]
//!
//! options:
//!   --workload NAME     one of: producer_consumer, stream_reader,
//!                       lock_order_inversion, selection_sort, minidb,
//!                       mysqlslap, vips,
//!                       blackscholes, bodytrack, canneal, dedup, ferret,
//!                       fluidanimate, streamcluster, swaptions, x264,
//!                       smithwa, nab, kdtree, botsalgn, md, imagick,
//!                       swim, bt331, ilbdc
//!   --threads N         worker threads for suite workloads (default 4)
//!   --scale S           workload scale factor (default 2)
//!   --tool NAME         aprof-drms (default) | aprof | external-only
//!   --sweep SIZES       profile the workload once per comma-separated
//!                       size (e.g. `--sweep 64,128,256`) through the
//!                       crash-safe sweep supervisor and print the
//!                       merged focus plot; cells that keep failing are
//!                       quarantined and reported, not fatal; sweepable
//!                       workloads: minidb, mysqlslap, vips,
//!                       stream_reader, producer_consumer,
//!                       selection_sort
//!   --decode MODE       interpreter dispatch: off (reference
//!                       interpreter) | blocks (pre-decoded basic
//!                       blocks) | fused (blocks + superinstruction
//!                       fusion, the default); every mode produces the
//!                       same profile, report and metrics
//!   --batch N           tool event-batch capacity (default 128);
//!                       N=1 degenerates to per-event delivery
//!   --jobs N            worker threads for --sweep (default 1)
//!   --deadline-ms N     wall-clock budget per run (checked once per
//!                       scheduler slice; exceeding it aborts with
//!                       a deterministic deadline error, exit code 5);
//!                       with --sweep, bounds every cell attempt
//!   --max-attempts N    with --sweep: supervisor attempts per cell
//!                       before quarantine (default 3)
//!   --policy P          rr (default) | random:SEED | chaos,seed=N
//!   --sched P           alias of --policy (chaos fuzzing reads better as
//!                       `--sched chaos,seed=7`)
//!   --quantum N         scheduling quantum in basic blocks
//!   --record-sched FILE record every scheduling decision of the profiled
//!                       run into FILE (drms-sched text format)
//!   --replay-sched FILE drive the scheduler from a recorded schedule;
//!                       strict replay reproduces the recorded run's event
//!                       stream and report byte for byte
//!   --focus ROUTINE     print cost plots + fit for one routine
//!   --fit               fit the focus (or every) routine's cost function
//!   --faults SPEC       seeded kernel fault-injection plan, e.g.
//!                       "seed=7,fd0:shortread:p=1/4,in:eintr:every=9";
//!                       aborted runs still report a partial profile
//!   --context           context-sensitive profile of the focus routine
//!   --report FILE       dump the profile report (report_io text format)
//!   --metrics FILE      dump the run's observability registry (event,
//!                       scheduler, kernel, shadow-cache and per-tool
//!                       counters) as deterministic JSON — or prometheus
//!                       text when FILE ends in `.prom`; the registry's
//!                       self-consistency audit runs first and audit
//!                       violations fail the invocation (exit 1); with
//!                       --sweep this dumps the grid-merged registry
//!   --trace FILE        record and dump the merged execution trace
//!   --trace-stats       print event-stream statistics
//!   --trace-out DIR     spill the live event stream into per-thread
//!                       binary shards under DIR (the out-of-core trace
//!                       pipeline); replay offline with
//!                       `repro replay-shards DIR`. With --sweep, each
//!                       cell gets its own `cell-<family>-<size>-<seed>`
//!                       subdirectory
//!   --host-faults SPEC  inject storage faults into the shard writes
//!                       (same spec language as repro; e.g.
//!                       "write:enospc:once=3"); a mid-shard fault is a
//!                       typed failure and the flushed prefix stays
//!                       salvageable
//!   --disasm            print the guest program listing and exit
//!   --diff OLD NEW      compare two saved reports and print regressions
//!                       (standalone mode: no --workload needed)
//! ```
//!
//! Aborted runs still print whatever partial profile was collected, then
//! exit with a distinct documented code per abort reason (see
//! [`drms_bench::run_error_exit_code`]): 3 invalid program, 4 deadlock,
//! 5 instruction budget, 6 corrupt guest stack, 7 schedule replay
//! missing/diverged, 8 other guest errors. 0 is success, 1 generic
//! failures, 2 usage errors.

use drms::analysis::{ascii_plot, CostPlot, InputMetric};
use drms::core::{report_io, CctProfiler, DrmsConfig, ProfileReport, RmsProfiler};
use drms::trace::{merge_traces, Metrics, TraceStats};
use drms::vm::{
    disassemble, DecodeMode, FaultPlan, RunConfig, RunError, RunStats, SchedPolicy, Tool,
    TraceRecorder, Vm,
};
use drms::workloads::{self, Workload};
use drms::ProfileSession;
use drms_bench::artifact::atomic_write;
use drms_bench::run_error_exit_code;
use drms_bench::supervisor::{run_supervised, SupervisorOptions};
use drms_bench::sweep::SweepSpec;
use std::path::Path;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

struct Cli {
    workload: Option<String>,
    threads: u32,
    scale: u32,
    tool: String,
    policy: SchedPolicy,
    quantum: Option<u32>,
    focus: Option<String>,
    fit: bool,
    faults: Option<String>,
    record_sched: Option<String>,
    replay_sched: Option<String>,
    context: bool,
    report: Option<String>,
    metrics: Option<String>,
    trace: Option<String>,
    trace_stats: bool,
    disasm: bool,
    diff: Option<(String, String)>,
    sweep: Option<Vec<i64>>,
    decode: Option<DecodeMode>,
    batch: Option<usize>,
    jobs: usize,
    deadline_ms: Option<u64>,
    max_attempts: u32,
    trace_out: Option<String>,
    host_io: drms::trace::HostIo,
}

fn usage() -> ! {
    eprintln!("usage: aprof --workload <name> [--tool aprof-drms|aprof|external-only] [--focus ROUTINE] [--fit] [--faults SPEC] [--context] [--report FILE] [--metrics FILE] [--trace FILE] [--trace-stats] [--disasm] [--diff OLD NEW] [--threads N] [--scale S] [--policy|--sched rr|random:SEED|chaos,seed=N] [--quantum N] [--record-sched FILE] [--replay-sched FILE] [--sweep SIZES] [--decode off|blocks|fused] [--batch N] [--jobs N] [--deadline-ms N] [--max-attempts N] [--trace-out DIR] [--host-faults SPEC]");
    exit(2)
}

/// Parses a scheduling policy spec: `rr`, `random:SEED`, `chaos:SEED`;
/// the seed may also be written `,seed=N` (e.g. `chaos,seed=7`).
fn parse_policy(spec: &str) -> Option<SchedPolicy> {
    if spec == "rr" {
        return Some(SchedPolicy::RoundRobin);
    }
    let (name, arg) = spec.split_once([':', ','])?;
    let seed = arg.strip_prefix("seed=").unwrap_or(arg).parse().ok()?;
    match name {
        "random" => Some(SchedPolicy::Random { seed }),
        "chaos" => Some(SchedPolicy::Chaos { seed }),
        _ => None,
    }
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        workload: None,
        threads: 4,
        scale: 2,
        tool: "aprof-drms".to_owned(),
        policy: SchedPolicy::RoundRobin,
        quantum: None,
        focus: None,
        fit: false,
        faults: None,
        record_sched: None,
        replay_sched: None,
        context: false,
        report: None,
        metrics: None,
        trace: None,
        trace_stats: false,
        disasm: false,
        diff: None,
        sweep: None,
        decode: None,
        batch: None,
        jobs: 1,
        deadline_ms: None,
        max_attempts: 3,
        trace_out: None,
        host_io: drms::trace::HostIo::real(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                usage()
            })
        };
        match arg.as_str() {
            "--workload" => cli.workload = Some(value("--workload")),
            "--threads" => cli.threads = value("--threads").parse().unwrap_or_else(|_| usage()),
            "--scale" => cli.scale = value("--scale").parse().unwrap_or_else(|_| usage()),
            "--tool" => cli.tool = value("--tool"),
            "--policy" | "--sched" => {
                let v = value(&arg);
                cli.policy = parse_policy(&v).unwrap_or_else(|| {
                    eprintln!("bad policy `{v}` (rr | random:SEED | chaos,seed=N)");
                    usage()
                });
            }
            "--quantum" => {
                cli.quantum = Some(value("--quantum").parse().unwrap_or_else(|_| usage()))
            }
            "--focus" => cli.focus = Some(value("--focus")),
            "--fit" => cli.fit = true,
            "--faults" => cli.faults = Some(value("--faults")),
            "--record-sched" => cli.record_sched = Some(value("--record-sched")),
            "--replay-sched" => cli.replay_sched = Some(value("--replay-sched")),
            "--context" => cli.context = true,
            "--report" => cli.report = Some(value("--report")),
            "--metrics" => cli.metrics = Some(value("--metrics")),
            "--trace" => cli.trace = Some(value("--trace")),
            "--trace-stats" => cli.trace_stats = true,
            "--disasm" => cli.disasm = true,
            "--sweep" => {
                let spec = value("--sweep");
                let sizes: Option<Vec<i64>> =
                    spec.split(',').map(|s| s.trim().parse().ok()).collect();
                match sizes {
                    Some(s) if !s.is_empty() => cli.sweep = Some(s),
                    _ => {
                        eprintln!("bad --sweep `{spec}` (comma-separated sizes)");
                        usage()
                    }
                }
            }
            "--decode" => {
                let v = value("--decode");
                cli.decode = Some(v.parse().unwrap_or_else(|e| {
                    eprintln!("--decode: {e}");
                    usage()
                }));
            }
            "--batch" => {
                let n: usize = value("--batch").parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    eprintln!("--batch must be >= 1 (0 could never buffer an event)");
                    usage()
                }
                cli.batch = Some(n);
            }
            "--jobs" => cli.jobs = value("--jobs").parse().unwrap_or_else(|_| usage()),
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms").parse().unwrap_or_else(|_| usage());
                if ms == 0 {
                    eprintln!("--deadline-ms must be >= 1 (0 expires before the run starts)");
                    usage()
                }
                cli.deadline_ms = Some(ms);
            }
            "--max-attempts" => {
                cli.max_attempts = value("--max-attempts").parse().unwrap_or_else(|_| usage());
                if cli.max_attempts == 0 {
                    eprintln!("--max-attempts must be >= 1 (0 would never run a cell)");
                    usage()
                }
            }
            "--diff" => {
                let old = value("--diff");
                let new = value("--diff");
                cli.diff = Some((old, new));
            }
            "--trace-out" => cli.trace_out = Some(value("--trace-out")),
            "--host-faults" => {
                let spec = value("--host-faults");
                match drms::trace::hostio::HostIo::from_spec(&spec) {
                    Ok(io) => {
                        eprintln!("aprof: CHAOS MODE — injecting host faults from `{spec}`");
                        cli.host_io = io;
                    }
                    Err(e) => {
                        eprintln!("aprof: {e}");
                        exit(2)
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown option `{other}`");
                usage()
            }
        }
    }
    cli
}

fn lookup_workload(name: &str, threads: u32, scale: u32) -> Option<Workload> {
    let w = match name {
        "producer_consumer" => workloads::patterns::producer_consumer(50 * scale as i64),
        "stream_reader" => workloads::patterns::stream_reader(50 * scale as i64),
        "lock_order_inversion" => workloads::patterns::lock_order_inversion(3 * scale as i64),
        "selection_sort" => workloads::sorting::selection_sort_default(12 * scale as i64),
        "minidb" => {
            let sizes: Vec<i64> = (1..=10).map(|i| i * 50 * scale as i64).collect();
            workloads::minidb::minidb_scaling(&sizes)
        }
        "mysqlslap" => workloads::minidb::mysqlslap(threads, 4 + scale, 50 * scale as i64),
        "vips" => workloads::imgpipe::vips(threads.max(2), 10 + 2 * scale as usize, scale),
        "blackscholes" => workloads::parsec::blackscholes(threads, scale),
        "bodytrack" => workloads::parsec::bodytrack(threads, scale),
        "canneal" => workloads::parsec::canneal(threads, scale),
        "dedup" => workloads::parsec::dedup(threads, scale),
        "ferret" => workloads::parsec::ferret(threads, scale),
        "fluidanimate" => workloads::parsec::fluidanimate(threads, scale),
        "streamcluster" => workloads::parsec::streamcluster(threads, scale),
        "swaptions" => workloads::parsec::swaptions(threads, scale),
        "x264" => workloads::parsec::x264(threads, scale),
        "smithwa" => workloads::specomp::smithwa(threads, scale),
        "nab" => workloads::specomp::nab(threads, scale),
        "kdtree" => workloads::specomp::kdtree(threads, scale),
        "botsalgn" => workloads::specomp::botsalgn(threads, scale),
        "md" => workloads::specomp::md(threads, scale),
        "imagick" => workloads::specomp::imagick(threads, scale),
        "swim" => workloads::specomp::swim(threads, scale),
        "bt331" => workloads::specomp::bt331(threads, scale),
        "ilbdc" => workloads::specomp::ilbdc(threads, scale),
        _ => return None,
    };
    Some(w)
}

fn print_routine(w: &Workload, report: &ProfileReport, name: &str, fit: bool) {
    let Some(id) = w.program.routine_by_name(name) else {
        eprintln!("no routine named `{name}` in {}", w.name);
        exit(1);
    };
    let p = report.merged_routine(id);
    if p.calls == 0 {
        println!("{name}: never activated");
        return;
    }
    let rms = CostPlot::of(&p, InputMetric::Rms);
    let drms = CostPlot::of(&p, InputMetric::Drms);
    println!(
        "{name}: {} calls, |rms| = {}, |drms| = {}",
        p.calls,
        rms.len(),
        drms.len()
    );
    println!(
        "input provenance: {} plain, {} thread-induced, {} kernel-induced first reads",
        p.breakdown.plain, p.breakdown.thread_induced, p.breakdown.kernel_induced
    );
    println!(
        "{}",
        ascii_plot(&drms.as_f64(), 60, 12, "worst-case cost vs DRMS")
    );
    if fit {
        println!("rms  fit: {}", rms.fit(0.02));
        println!("drms fit: {}", drms.fit(0.02));
    }
}

fn main() {
    let cli = parse_cli();
    if let Some((old_path, new_path)) = &cli.diff {
        run_diff(old_path, new_path);
        return;
    }
    let Some(ref name) = cli.workload else {
        usage();
    };
    let Some(w) = lookup_workload(name, cli.threads, cli.scale) else {
        eprintln!("unknown workload `{name}`");
        exit(1);
    };
    if cli.disasm {
        print!("{}", disassemble(&w.program));
        return;
    }
    if let Some(sizes) = &cli.sweep {
        run_size_sweep(name, sizes, &cli);
        return;
    }
    let mut config = w.run_config();
    config.policy = cli.policy;
    if let Some(mode) = cli.decode {
        config.decode = mode;
    }
    if let Some(n) = cli.batch {
        config.event_batch = n;
    }
    if let Some(q) = cli.quantum {
        config.quantum = q;
    }
    config.deadline = cli.deadline_ms.map(Duration::from_millis);
    if let Some(spec) = &cli.faults {
        match FaultPlan::parse(spec) {
            Ok(plan) => config.faults = Some(plan),
            Err(e) => {
                eprintln!("--faults: {e}");
                exit(2)
            }
        }
    }
    if let Some(path) = &cli.replay_sched {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            exit(1)
        });
        let sched = drms::trace::sched::from_text(&text).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            exit(1)
        });
        config.policy = SchedPolicy::Replay { relaxed: false };
        config.replay = Some(Arc::new(sched));
    }
    config.record_sched = cli.record_sched.is_some();

    // Optional trace capture (a separate run with identical scheduling).
    if cli.trace.is_some() || cli.trace_stats {
        let mut rec = TraceRecorder::new();
        Vm::new(&w.program, config.clone())
            .expect("valid workload")
            .run(&mut rec)
            .unwrap_or_else(|e| abort_exit(&w.name, &e));
        let merged = merge_traces(rec.into_traces());
        if cli.trace_stats {
            println!("{}", TraceStats::of(&merged));
        }
        if let Some(path) = &cli.trace {
            atomic_write(Path::new(path), &drms::trace::codec::to_text(&merged))
                .expect("write trace");
            println!("trace written to {path} ({} events)", merged.len());
        }
    }

    // Context-sensitive mode wraps the drms profiler.
    if cli.context {
        let mut prof = CctProfiler::new(DrmsConfig::full());
        Vm::new(&w.program, config)
            .expect("valid workload")
            .run(&mut prof)
            .unwrap_or_else(|e| abort_exit(&w.name, &e));
        let focus = cli.focus.as_deref().unwrap_or_else(|| {
            w.focus_name().unwrap_or_else(|| {
                eprintln!("--context needs --focus or a workload with a focus routine");
                exit(1)
            })
        });
        let Some(id) = w.program.routine_by_name(focus) else {
            eprintln!("no routine named `{focus}`");
            exit(1);
        };
        println!("contexts of {focus}:");
        for (ctx, p) in prof.contexts_of(id) {
            let path = prof
                .tree()
                .render(ctx, |r| w.program.routine_name(r).to_owned());
            let plot = CostPlot::of(&p, InputMetric::Drms);
            print!("  {path}: {} calls, {} input sizes", p.calls, plot.len());
            if cli.fit {
                print!(", fit {}", plot.fit(0.02));
            }
            println!();
        }
        return;
    }

    // Standard run under the selected profiler.
    let record = cli.record_sched.as_deref();
    let (report, stats, abort, metrics) = match cli.tool.as_str() {
        "aprof-drms" => run_drms_tool(&w, config, DrmsConfig::full(), &cli),
        "external-only" => run_drms_tool(&w, config, DrmsConfig::external_only(), &cli),
        "aprof" => {
            let mut p = RmsProfiler::new();
            let (stats, abort, metrics) = run_vm(&w, config, &mut p, record);
            (p.into_report(), stats, abort, metrics)
        }
        // The nulgrind analogue: no analysis at all, measuring bare
        // VM + instrumentation-dispatch overhead.
        "null" | "nulgrind" => {
            let mut p = drms::vm::NullTool;
            let (stats, abort, metrics) = run_vm(&w, config, &mut p, record);
            (ProfileReport::new(), stats, abort, metrics)
        }
        other => {
            eprintln!("unknown tool `{other}` (aprof-drms | aprof | external-only | nulgrind)");
            exit(1)
        }
    };

    println!(
        "[{}] {} basic blocks, {} threads, {} syscalls, {} thread switches",
        w.name, stats.basic_blocks, stats.threads, stats.syscalls, stats.thread_switches
    );
    if cli.faults.is_some() || stats.faults.injected() > 0 {
        println!("fault injection: {}", stats.faults);
    }
    println!(
        "dynamic input volume: {:.1}%",
        report.dynamic_input_volume() * 100.0
    );
    println!(
        "{}",
        drms::analysis::report_summary(&report, |r| w.program.routine_name(r).to_owned())
    );

    if let Some(focus) = cli.focus.as_deref().or(w.focus_name()) {
        print_routine(&w, &report, focus, cli.fit);
    }

    if let Some(path) = &cli.report {
        atomic_write(Path::new(path), &report_io::to_text(&report)).expect("write report");
        println!("report written to {path} ({} profiles)", report.len());
    }
    if let Some(path) = &cli.metrics {
        write_metrics(path, &metrics);
    }
    if let Some(e) = abort {
        exit(run_error_exit_code(&e));
    }
}

/// `--metrics`: audits the registry, then dumps it to `path` —
/// prometheus text for a `.prom` extension, deterministic JSON
/// otherwise. Audit violations are a profiler bug, never workload
/// noise, so they fail the invocation loudly.
fn write_metrics(path: &str, metrics: &Metrics) {
    if let Err(violations) = metrics.audit() {
        eprintln!("metrics audit failed ({} violations):", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        exit(1);
    }
    let rendered = if path.ends_with(".prom") {
        metrics.to_prometheus()
    } else {
        metrics.to_json()
    };
    atomic_write(Path::new(path), &rendered).expect("write metrics");
    println!("metrics written to {path} (audit passed)");
}

/// Reports a fatal guest error and exits with its documented code.
fn abort_exit(workload: &str, e: &RunError) -> ! {
    eprintln!("{workload}: {e}");
    exit(run_error_exit_code(e))
}

/// Maps an aprof workload name onto a sweep family (the sweepable
/// workloads are the ones parameterized by a single size).
fn sweep_family(name: &str) -> Option<&'static str> {
    match name {
        "minidb" => Some("minidb"),
        "mysqlslap" => Some("mysqlslap"),
        "vips" => Some("imgpipe"),
        "stream_reader" => Some("stream"),
        "producer_consumer" => Some("producer-consumer"),
        "selection_sort" => Some("sort"),
        _ => None,
    }
}

/// `--sweep`: fan the workload's size grid across `--jobs` workers
/// under the crash-safe supervisor and print the per-cell summary plus
/// the merged focus plot. Cells that exhaust their retry budget are
/// quarantined and listed, never fatal. With `--metrics`, the
/// grid-merged registry is audited and dumped too.
fn run_size_sweep(name: &str, sizes: &[i64], cli: &Cli) {
    let Some(family) = sweep_family(name) else {
        eprintln!(
            "`{name}` is not sweepable (try minidb, mysqlslap, vips, \
             stream_reader, producer_consumer or selection_sort)"
        );
        exit(2);
    };
    let spec = SweepSpec::new(family, sizes, cli.jobs.max(1));
    let opts = SupervisorOptions {
        max_attempts: cli.max_attempts.max(1),
        deadline: cli.deadline_ms.map(Duration::from_millis),
        trace_dir: cli.trace_out.as_deref().map(std::path::PathBuf::from),
        trace_io: cli.host_io.clone(),
        ..SupervisorOptions::default()
    };
    let result = run_supervised(&spec, &opts);
    println!(
        "[{family}] {} cells in {:.3}s with {} jobs ({} instructions, {} events, {} retries)",
        result.cells.len(),
        result.wall_secs,
        spec.jobs,
        result.instructions(),
        result.events(),
        result.retries()
    );
    for cell in &result.cells {
        let note = cell
            .error
            .as_deref()
            .map(|e| format!(" [aborted: {e}]"))
            .unwrap_or_default();
        println!(
            "  size {:>6} seed {}: {} basic blocks, {} threads{note}",
            cell.size, cell.seed, cell.stats.basic_blocks, cell.stats.threads
        );
    }
    for q in &result.quarantined {
        println!(
            "  QUARANTINED size {:>6} seed {} after {} attempts ({} panics): {}",
            q.size, q.seed, q.attempts, q.panics, q.error
        );
    }
    let plot = result.focus_plot(InputMetric::Drms);
    if !plot.points.is_empty() {
        println!(
            "{}",
            ascii_plot(&plot.as_f64(), 60, 12, "worst-case cost vs DRMS")
        );
        if cli.fit {
            println!("drms fit: {}", plot.fit(0.02));
        }
    }
    if let Some(path) = cli.metrics.as_deref() {
        write_metrics(path, &result.merged_metrics());
    }
}

/// Builds and runs a VM under a statically-known `tool` (no `dyn`
/// dispatch in the event loop), writing the recorded schedule to
/// `record` (when given) and returning the stats plus the abort reason.
/// Setup failures exit immediately with their documented code.
fn run_vm<T: Tool>(
    w: &Workload,
    config: RunConfig,
    tool: &mut T,
    record: Option<&str>,
) -> (RunStats, Option<RunError>, Metrics) {
    let mut vm = match Vm::new(&w.program, config) {
        Ok(vm) => vm,
        Err(e) => abort_exit(&w.name, &e),
    };
    let error = vm.run(tool).err();
    let mut metrics = vm.metrics();
    tool.observe_metrics(&mut metrics);
    if error.is_some() {
        metrics.inc("run.aborts");
    }
    if let Some(path) = record {
        let sched = vm
            .take_recorded_schedule()
            .expect("--record-sched enables recording");
        atomic_write(Path::new(path), &drms::trace::sched::to_text(&sched))
            .expect("write schedule");
        println!(
            "schedule written to {path} ({} decisions, {} forced preemptions)",
            sched.len(),
            sched.preemption_points()
        );
    }
    (vm.stats().clone(), error, metrics)
}

/// Runs the drms profiler through [`ProfileSession`], keeping whatever
/// profile data an aborted run produced instead of discarding it.
/// Setup failures exit immediately with their documented code; a failed
/// shard finalize (`--trace-out` on a faulty disk) exits 1 with the
/// underlying host-I/O error on stderr — the salvageable shard prefix
/// stays on disk.
fn run_drms_tool(
    w: &Workload,
    config: RunConfig,
    drms: DrmsConfig,
    cli: &Cli,
) -> (ProfileReport, RunStats, Option<RunError>, Metrics) {
    let mut session = ProfileSession::new(&w.program).config(config).drms(drms);
    if let Some(dir) = &cli.trace_out {
        session = session
            .trace_dir(Path::new(dir))
            .trace_io(cli.host_io.clone());
    }
    let outcome = session.run().unwrap_or_else(|e| match e {
        drms::Error::Run(e) => abort_exit(&w.name, &e),
        drms::Error::Io(io_err) => {
            eprintln!("{}: trace spill failed: {io_err}", w.name);
            exit(1)
        }
        other => {
            eprintln!("{}: {other}", w.name);
            exit(1)
        }
    });
    if let Some(dir) = &cli.trace_out {
        let frames = outcome.metrics.counter("trace.shard.frames");
        let bytes = outcome.metrics.counter("trace.shard.bytes");
        println!("trace shards written to {dir} ({frames} frames, {bytes} bytes)");
    }
    if let Some(path) = cli.record_sched.as_deref() {
        let sched = outcome
            .schedule
            .as_ref()
            .expect("--record-sched enables recording");
        atomic_write(Path::new(path), &drms::trace::sched::to_text(sched)).expect("write schedule");
        println!(
            "schedule written to {path} ({} decisions, {} forced preemptions)",
            sched.len(),
            sched.preemption_points()
        );
    }
    if let Some(e) = &outcome.error {
        eprintln!(
            "{}: run aborted ({e}); reporting the partial profile",
            w.name
        );
    }
    (
        outcome.report,
        outcome.stats,
        outcome.error,
        outcome.metrics,
    )
}

/// Standalone report comparison: load two report_io dumps and print the
/// routines whose profiles changed significantly.
fn run_diff(old_path: &str, new_path: &str) {
    use drms::core::diff::{regressions, RoutineChange};
    let load = |path: &str| -> drms::core::ProfileReport {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            exit(1)
        });
        report_io::from_text(&text).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            exit(1)
        })
    };
    let old = load(old_path);
    let new = load(new_path);
    let changes = drms::core::diff::diff_reports(&old, &new);
    let appeared = changes
        .values()
        .filter(|c| matches!(c, RoutineChange::Appeared))
        .count();
    let disappeared = changes
        .values()
        .filter(|c| matches!(c, RoutineChange::Disappeared))
        .count();
    println!(
        "{} routines compared; {appeared} appeared, {disappeared} disappeared",
        changes.len()
    );
    let regs = regressions(&old, &new, 0.1);
    if regs.is_empty() {
        println!("no significant changes (epsilon 0.1)");
        return;
    }
    for (routine, delta) in regs {
        print!("{routine}: calls {} -> {}", delta.calls.0, delta.calls.1);
        if let Some(r) = delta.cost_ratio() {
            print!(", cost x{r:.2} at shared input");
        }
        println!(
            ", volume {:.1}% -> {:.1}%",
            delta.volume.0 * 100.0,
            delta.volume.1 * 100.0
        );
    }
}
