//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro <experiment> [--threads N] [--scale S] [--out DIR]
//!
//! experiments:
//!   fig4    mysql_select cost plots, rms vs drms
//!   fig5    im_generate cost plots, rms vs drms
//!   fig6    wbuffer_write_thread: rms / drms-external / drms-full
//!   fig10   selection sort: basic blocks vs simulated nanoseconds
//!   fig11   routine profile richness curves
//!   fig12   dynamic input volume curves
//!   fig13   per-routine thread vs external input (mysqlslap, vips)
//!   fig14   thread/external input tail curves
//!   fig15   induced first-read split per benchmark
//!   fig16   slowdown & space overhead vs number of threads
//!   table1  tool slowdown/space comparison on both suites
//!   sched   scheduler-sensitivity study (§4.2)
//!   faults  robustness study: minidb under injected kernel faults
//!   all     everything above
//!
//!   sched-fuzz    chaos-fuzz the scheduler: N seeds per workload
//!                 ([--seeds N] [--quick]); prints the drms-variance
//!                 summary, strict-replays every failure, shrinks its
//!                 schedule, and exits nonzero if any failure cannot be
//!                 replayed or shrunk
//!   sched-shrink  minimize a failing schedule ([--sched FILE] from
//!                 sched-fuzz/aprof --record-sched, or self-seeded);
//!                 writes the minimized .sched and prints the wait-graph
//!   sweep         parallel sweep benchmark over the minidb/imgpipe size
//!                 grids ([--jobs N] [--quick] [--bench-out FILE]
//!                 [--journal FILE] [--resume FILE] [--max-attempts N]
//!                 [--deadline-ms N]): each family is swept serially and
//!                 with N workers under the crash-safe supervisor, the
//!                 merged reports and merged metrics are checked
//!                 byte-identical, and the deterministic measurements
//!                 land in BENCH_sweep.json (wall-clock in its
//!                 .timings.json sibling, audited metrics in its
//!                 .metrics.json sibling). --journal checkpoints every
//!                 finished cell; --resume salvages a journal after a
//!                 crash and re-runs only the lost cells, reproducing
//!                 the uninterrupted artifacts byte-for-byte.
//!                 --host-faults SPEC injects storage faults (chaos
//!                 testing): journal and artifact writes hit seeded
//!                 ENOSPC / fsync-EIO / torn writes and the sweep must
//!                 either finish byte-identical or exit 1 with a typed
//!                 error — never leave a corrupt artifact
//!   replay-shards DIR  offline half of the out-of-core trace pipeline:
//!                 load the per-thread binary shards a live run spilled
//!                 under DIR (`aprof --trace-out` / a session's
//!                 `trace_dir`), salvage any torn tails, replay the
//!                 merged stream through a fresh drms profiler
//!                 ([--jobs N] parallel shard loading) and print the
//!                 profile summary; [--report FILE] dumps the report
//!                 (byte-identical to the live run's for clean shards),
//!                 [--metrics FILE] dumps the shard + profiler registry
//!                 after its self-consistency audit
//! ```
//!
//! Each experiment prints its series and also writes CSV/gnuplot data
//! under `--out` (default `target/repro`).

use drms::analysis::{
    ascii_plot, best_fit, induced_split, richness_curve, routine_metrics, to_gnuplot, to_table,
    volume_curve, CostPlot, InputMetric, OverheadTable,
};
use drms::core::{DrmsConfig, ProfileReport};
use drms::vm::{CostKind, SchedPolicy};
use drms::workloads::{self, Workload};
use drms::ProfileSession;
use drms_bench::{measure_suite, profile_with_config, TOOLS};
use std::fs;
use std::path::{Path, PathBuf};

struct Options {
    threads: u32,
    scale: u32,
    out: PathBuf,
    seeds: u64,
    quick: bool,
    sched: Option<String>,
    jobs: usize,
    bench_out: PathBuf,
    journal: Option<PathBuf>,
    resume: Option<PathBuf>,
    max_attempts: u32,
    deadline_ms: Option<u64>,
    decode: Option<drms::vm::DecodeMode>,
    batch: Option<usize>,
    host_io: drms::trace::hostio::HostIo,
    report_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut experiment = None;
    let mut positional = None;
    let mut opts = Options {
        threads: 4,
        scale: 2,
        out: PathBuf::from("target/repro"),
        seeds: 16,
        quick: false,
        sched: None,
        jobs: 4,
        bench_out: PathBuf::from("BENCH_sweep.json"),
        journal: None,
        resume: None,
        max_attempts: 3,
        deadline_ms: None,
        decode: None,
        batch: None,
        host_io: drms::trace::hostio::HostIo::real(),
        report_out: None,
        metrics_out: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads N");
            }
            "--scale" => {
                opts.scale = args.next().and_then(|v| v.parse().ok()).expect("--scale S");
            }
            "--out" => {
                opts.out = PathBuf::from(args.next().expect("--out DIR"));
            }
            "--seeds" => {
                opts.seeds = args.next().and_then(|v| v.parse().ok()).expect("--seeds N");
            }
            "--quick" => opts.quick = true,
            "--sched" => opts.sched = Some(args.next().expect("--sched FILE")),
            "--jobs" => {
                opts.jobs = args.next().and_then(|v| v.parse().ok()).expect("--jobs N");
            }
            "--bench-out" => {
                opts.bench_out = PathBuf::from(args.next().expect("--bench-out FILE"));
            }
            "--journal" => {
                opts.journal = Some(PathBuf::from(args.next().expect("--journal FILE")));
            }
            "--resume" => {
                opts.resume = Some(PathBuf::from(args.next().expect("--resume FILE")));
            }
            "--max-attempts" => {
                opts.max_attempts = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-attempts N");
                if opts.max_attempts == 0 {
                    eprintln!("--max-attempts must be >= 1 (0 would never run a cell)");
                    std::process::exit(2);
                }
            }
            "--deadline-ms" => {
                let ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--deadline-ms N");
                if ms == 0 {
                    eprintln!("--deadline-ms must be >= 1 (0 expires before the run starts)");
                    std::process::exit(2);
                }
                opts.deadline_ms = Some(ms);
            }
            "--decode" => {
                let v = args.next().expect("--decode off|blocks|fused");
                opts.decode = Some(v.parse().unwrap_or_else(|e| {
                    eprintln!("--decode: {e}");
                    std::process::exit(2);
                }));
            }
            "--batch" => {
                let n: usize = args.next().and_then(|v| v.parse().ok()).expect("--batch N");
                if n == 0 {
                    eprintln!("--batch must be >= 1 (0 could never buffer an event)");
                    std::process::exit(2);
                }
                opts.batch = Some(n);
            }
            "--host-faults" => {
                let spec = args.next().expect("--host-faults SPEC");
                match drms::trace::hostio::HostIo::from_spec(&spec) {
                    Ok(io) => {
                        eprintln!("repro: CHAOS MODE — injecting host faults from `{spec}`");
                        opts.host_io = io;
                    }
                    Err(e) => {
                        eprintln!("repro: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--report" => {
                opts.report_out = Some(PathBuf::from(args.next().expect("--report FILE")));
            }
            "--metrics" => {
                opts.metrics_out = Some(PathBuf::from(args.next().expect("--metrics FILE")));
            }
            other if experiment.is_none() => experiment = Some(other.to_owned()),
            // One operand after the experiment name (the shard directory
            // of `replay-shards DIR`); the dispatch arm validates it.
            other if positional.is_none() && !other.starts_with('-') => {
                positional = Some(other.to_owned())
            }
            other => {
                eprintln!("unexpected argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let Some(experiment) = experiment else {
        eprintln!("usage: repro <fig4|fig5|fig6|fig10|fig11|fig12|fig13|fig14|fig15|fig16|table1|sched|faults|all|sched-fuzz|sched-shrink|sweep|replay-shards DIR> [--threads N] [--scale S] [--out DIR] [--seeds N] [--quick] [--sched FILE] [--jobs N] [--bench-out FILE] [--journal FILE] [--resume FILE] [--max-attempts N] [--deadline-ms N] [--decode off|blocks|fused] [--batch N] [--host-faults SPEC] [--report FILE] [--metrics FILE]");
        std::process::exit(2);
    };
    fs::create_dir_all(&opts.out).expect("create output dir");
    match experiment.as_str() {
        "fig4" => fig4(&opts),
        "fig5" => fig5(&opts),
        "fig6" => fig6(&opts),
        "fig10" => fig10(&opts),
        "fig11" => fig11_12(&opts, true),
        "fig12" => fig11_12(&opts, false),
        "fig13" => fig13(&opts),
        "fig14" => fig14(&opts),
        "fig15" => fig15(&opts),
        "fig16" => fig16(&opts),
        "table1" => table1(&opts),
        "sched" => sched(&opts),
        "faults" => faults(&opts),
        "sched-fuzz" => sched_fuzz(&opts),
        "sched-shrink" => sched_shrink(&opts),
        "sweep" => sweep_bench(&opts),
        "replay-shards" => replay_shards(&opts, positional.as_deref()),
        "all" => {
            fig4(&opts);
            fig5(&opts);
            fig6(&opts);
            fig10(&opts);
            fig11_12(&opts, true);
            fig11_12(&opts, false);
            fig13(&opts);
            fig14(&opts);
            fig15(&opts);
            fig16(&opts);
            table1(&opts);
            sched(&opts);
            faults(&opts);
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            std::process::exit(2);
        }
    }
}

fn save(out: &Path, name: &str, contents: &str) {
    let path = out.join(name);
    drms_bench::artifact::atomic_write(&path, contents).expect("write data file");
    println!("  [data written to {}]", path.display());
}

/// `replay-shards DIR`: the offline half of the out-of-core trace
/// pipeline. Loads the shard directory (salvaging torn tails), replays
/// the merged stream through a fresh full-drms profiler with native
/// batch delivery, and renders the same report/metrics artifacts a live
/// run would have — byte-identical when every shard is clean.
fn replay_shards(opts: &Options, dir: Option<&str>) {
    use drms::vm::Tool;
    let Some(dir) = dir else {
        eprintln!("replay-shards needs the shard directory: repro replay-shards DIR");
        std::process::exit(2);
    };
    let set = drms::trace::ShardSet::load(Path::new(dir), opts.jobs.max(1)).unwrap_or_else(|e| {
        eprintln!("{dir}: {e}");
        std::process::exit(1);
    });
    for warning in &set.warnings {
        eprintln!("  [salvage] {warning}");
    }
    let mut profiler = drms::core::DrmsProfiler::new(DrmsConfig::full());
    drms::vm::replay_shards_into(&set, &mut profiler);

    let mut metrics = drms::trace::Metrics::new();
    set.observe_metrics(&mut metrics);
    profiler.observe_metrics(&mut metrics);
    println!(
        "replayed {} frames from {} shards ({} bytes; {} salvaged, {} dropped)",
        set.total - set.dropped,
        set.shards.len(),
        set.bytes,
        set.salvaged,
        set.dropped,
    );
    let report = profiler.into_report();
    println!(
        "{} profiles, dynamic input volume {:.1}%",
        report.len(),
        report.dynamic_input_volume() * 100.0
    );
    if let Some(path) = &opts.report_out {
        let text = drms::core::report_io::to_text(&report);
        drms_bench::artifact::atomic_write_with(&opts.host_io, path, &text).unwrap_or_else(|e| {
            eprintln!("{}: {e}", path.display());
            std::process::exit(1);
        });
        println!("report written to {}", path.display());
    }
    if let Some(path) = &opts.metrics_out {
        if let Err(violations) = metrics.audit() {
            eprintln!("metrics audit failed ({} violations):", violations.len());
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
        drms_bench::artifact::atomic_write_with(&opts.host_io, path, &metrics.to_json())
            .unwrap_or_else(|e| {
                eprintln!("{}: {e}", path.display());
                std::process::exit(1);
            });
        println!("metrics written to {} (audit passed)", path.display());
    }
}

/// Profiles `w` through the session builder and returns the completed
/// report, aborting the process on a guest failure (repro's workloads
/// are expected to run to completion).
fn profile_full(w: &Workload) -> ProfileReport {
    let outcome = ProfileSession::workload(w).run().expect("valid workload");
    if let Some(e) = outcome.error {
        eprintln!("{}: guest aborted: {e}", w.name);
        std::process::exit(drms_bench::run_error_exit_code(&e));
    }
    outcome.report
}

fn cost_plot_pair(w: &Workload) -> (CostPlot, CostPlot) {
    let report = profile_full(w);
    let p = report.merged_routine(w.focus.expect("focus routine"));
    (
        CostPlot::of(&p, InputMetric::Rms),
        CostPlot::of(&p, InputMetric::Drms),
    )
}

fn show_pair(title: &str, rms: &CostPlot, drms: &CostPlot, out: &Path, stem: &str) {
    println!("\n=== {title} ===");
    println!(
        "{}",
        ascii_plot(&rms.as_f64(), 60, 12, &format!("{title}: cost vs RMS"))
    );
    println!(
        "{}",
        ascii_plot(&drms.as_f64(), 60, 12, &format!("{title}: cost vs DRMS"))
    );
    let rms_fit = best_fit(&rms.points, 0.02);
    let drms_fit = best_fit(&drms.points, 0.02);
    println!(
        "rms  plot: {:>4} points, span {:>8}, fit {rms_fit}",
        rms.len(),
        rms.input_span()
    );
    println!(
        "drms plot: {:>4} points, span {:>8}, fit {drms_fit}",
        drms.len(),
        drms.input_span()
    );
    save(
        out,
        &format!("{stem}.dat"),
        &to_gnuplot(&[("rms", &rms.as_f64()[..]), ("drms", &drms.as_f64()[..])]),
    );
}

/// Figure 4: mysql_select — rms suggests a false superlinear trend, drms
/// shows the true linear cost.
fn fig4(opts: &Options) {
    let sizes: Vec<i64> = (1..=10).map(|i| i * 64 * opts.scale as i64).collect();
    let w = workloads::minidb::minidb_scaling(&sizes);
    let (rms, drms) = cost_plot_pair(&w);
    show_pair(
        "Fig 4: mysql_select (minidb)",
        &rms,
        &drms,
        &opts.out,
        "fig04",
    );
}

/// Figure 5: im_generate of the vips-like pipeline.
fn fig5(opts: &Options) {
    let w = workloads::imgpipe::vips(opts.threads.max(2), 24, opts.scale);
    let (rms, drms) = cost_plot_pair(&w);
    show_pair("Fig 5: im_generate (vips)", &rms, &drms, &opts.out, "fig05");
}

/// Figure 6: wbuffer_write_thread under (a) rms, (b) drms with external
/// input only, (c) full drms.
fn fig6(opts: &Options) {
    let tasks = 110;
    let w = workloads::imgpipe::vips(opts.threads.max(2), tasks, opts.scale);
    let wb = w
        .program
        .routine_by_name("wbuffer_write_thread")
        .expect("wbuffer routine");
    let full_report = profile_full(&w);
    let ext_report = ProfileSession::workload(&w)
        .drms(DrmsConfig::external_only())
        .run()
        .expect("external-only profile")
        .report;
    let full = full_report.merged_routine(wb);
    let ext = ext_report.merged_routine(wb);
    let a = CostPlot::of(&full, InputMetric::Rms);
    let b = CostPlot::of(&ext, InputMetric::Drms);
    let c = CostPlot::of(&full, InputMetric::Drms);
    println!(
        "\n=== Fig 6: wbuffer_write_thread ({} calls) ===",
        full.calls
    );
    println!(
        "(a) rms:                 {:>4} distinct input sizes",
        a.len()
    );
    println!(
        "(b) drms external only:  {:>4} distinct input sizes",
        b.len()
    );
    println!(
        "(c) drms ext+thread:     {:>4} distinct input sizes",
        c.len()
    );
    println!("{}", ascii_plot(&a.as_f64(), 60, 10, "(a) cost vs RMS"));
    println!(
        "{}",
        ascii_plot(&b.as_f64(), 60, 10, "(b) cost vs DRMS (external)")
    );
    println!(
        "{}",
        ascii_plot(&c.as_f64(), 60, 10, "(c) cost vs DRMS (full)")
    );
    // The paper's variance indicator: rms values carrying many calls
    // with widely varying costs signal uncaptured input information.
    let names = w.program.name_table();
    for flag in drms::analysis::variance_flags(&full_report, 0.5) {
        println!(
            "  variance flag: {} collapses {} calls onto rms={} (spread {:.2})",
            names.get(flag.routine).unwrap_or("?"),
            flag.collapsed_calls,
            flag.input,
            flag.spread
        );
    }
    save(
        &opts.out,
        "fig06.dat",
        &to_gnuplot(&[
            ("rms", &a.as_f64()[..]),
            ("drms_external", &b.as_f64()[..]),
            ("drms_full", &c.as_f64()[..]),
        ]),
    );
}

/// Figure 10: selection sort under basic-block counting vs simulated
/// nanoseconds.
fn fig10(opts: &Options) {
    let w = workloads::sorting::selection_sort_default(16 * opts.scale as i64);
    let focus = w.focus.expect("selection_sort");
    let bb_report = profile_with_config(&w, w.run_config());
    let mut nanos_cfg = w.run_config();
    nanos_cfg.cost = CostKind::SimNanos { jitter_seed: 42 };
    let ns_report = profile_with_config(&w, nanos_cfg);
    let bb = CostPlot::of(&bb_report.merged_routine(focus), InputMetric::Drms);
    let ns = CostPlot::of(&ns_report.merged_routine(focus), InputMetric::Drms);
    println!("\n=== Fig 10: selection_sort, BB counting vs timing ===");
    println!("{}", ascii_plot(&bb.as_f64(), 60, 12, "cost (executed BB)"));
    println!(
        "{}",
        ascii_plot(&ns.as_f64(), 60, 12, "cost (simulated ns)")
    );
    let bb_fit = best_fit(&bb.points, 0.01);
    let ns_fit = best_fit(&ns.points, 0.01);
    println!("BB fit: {bb_fit}");
    println!("ns fit: {ns_fit}");
    save(
        &opts.out,
        "fig10.dat",
        &to_gnuplot(&[("bb", &bb.as_f64()[..]), ("nanos", &ns.as_f64()[..])]),
    );
}

fn figure_benchmarks(opts: &Options) -> Vec<Workload> {
    vec![
        workloads::parsec::fluidanimate(opts.threads, opts.scale),
        workloads::minidb::mysqlslap(opts.threads, 4 + opts.scale, 60 * opts.scale as i64),
        workloads::specomp::smithwa(opts.threads, opts.scale),
        workloads::parsec::dedup(opts.threads, opts.scale),
        workloads::specomp::nab(opts.threads, opts.scale),
        workloads::parsec::bodytrack(opts.threads, opts.scale),
        workloads::parsec::swaptions(opts.threads, opts.scale),
        workloads::imgpipe::vips(opts.threads.max(2), 10 + opts.scale as usize, opts.scale),
        workloads::parsec::x264(opts.threads, opts.scale),
    ]
}

/// Figures 11 and 12: profile richness / dynamic input volume curves.
fn fig11_12(opts: &Options, richness: bool) {
    let (name, stem) = if richness {
        ("Fig 11: routine profile richness", "fig11")
    } else {
        ("Fig 12: dynamic input volume", "fig12")
    };
    println!("\n=== {name} ===");
    let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for w in figure_benchmarks(opts) {
        let report = profile_full(&w);
        let curve = if richness {
            richness_curve(&report)
        } else {
            volume_curve(&report)
        };
        let head: Vec<String> = curve
            .iter()
            .take(4)
            .map(|(x, y)| format!("({x:.0}%, {y:.1})"))
            .collect();
        println!(
            "  {:<14} {} points; top: {}",
            w.name,
            curve.len(),
            head.join(" ")
        );
        series.push((w.name.clone(), curve));
    }
    let refs: Vec<(&str, &[(f64, f64)])> = series
        .iter()
        .map(|(n, c)| (n.as_str(), c.as_slice()))
        .collect();
    save(&opts.out, &format!("{stem}.dat"), &to_gnuplot(&refs));
}

/// Figure 13: routine-by-routine thread vs external input for mysqlslap
/// and vips.
fn fig13(opts: &Options) {
    println!("\n=== Fig 13: per-routine thread vs external input ===");
    for (label, w) in [
        (
            "mysql",
            workloads::minidb::mysqlslap(opts.threads, 4 + opts.scale, 60 * opts.scale as i64),
        ),
        (
            "vips",
            workloads::imgpipe::vips(opts.threads.max(2), 10 + opts.scale as usize, opts.scale),
        ),
    ] {
        let report = profile_full(&w);
        let names = w.program.name_table();
        let mut rows: Vec<Vec<String>> = Vec::new();
        let mut metrics = routine_metrics(&report);
        metrics.sort_by(|a, b| {
            let ia = a.thread_input + a.external_input;
            let ib = b.thread_input + b.external_input;
            ib.partial_cmp(&ia).expect("finite shares")
        });
        for m in metrics.iter().filter(|m| m.first_reads > 0) {
            rows.push(vec![
                names.get(m.routine).unwrap_or("?").to_owned(),
                format!("{:.1}", m.thread_input * 100.0),
                format!("{:.1}", m.external_input * 100.0),
            ]);
        }
        println!("\n[{label}]");
        println!(
            "{}",
            to_table(&["routine", "thread input %", "external input %"], &rows)
        );
        let csv: String = rows
            .iter()
            .map(|r| format!("{},{},{}\n", r[0], r[1], r[2]))
            .collect();
        save(
            &opts.out,
            &format!("fig13_{label}.csv"),
            &format!("routine,thread,external\n{csv}"),
        );
    }
}

/// Figure 14: thread/external input tail curves per benchmark.
fn fig14(opts: &Options) {
    println!("\n=== Fig 14: thread and external input per routine ===");
    let selected = [
        workloads::parsec::swaptions(opts.threads, opts.scale),
        workloads::parsec::bodytrack(opts.threads, opts.scale),
        workloads::specomp::smithwa(opts.threads, opts.scale),
        workloads::specomp::kdtree(opts.threads, opts.scale),
        workloads::parsec::dedup(opts.threads, opts.scale),
        workloads::parsec::x264(opts.threads, opts.scale),
    ];
    let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for w in selected {
        let report = profile_full(&w);
        let (thread, external) = drms::analysis::input_share_curves(&report);
        println!(
            "  {:<14} thread curve {} pts (max {:.0}%), external curve {} pts (max {:.0}%)",
            w.name,
            thread.len(),
            thread.first().map(|p| p.1).unwrap_or(0.0),
            external.len(),
            external.first().map(|p| p.1).unwrap_or(0.0),
        );
        series.push((format!("{}_thread", w.name), thread));
        series.push((format!("{}_external", w.name), external));
    }
    let refs: Vec<(&str, &[(f64, f64)])> = series
        .iter()
        .map(|(n, c)| (n.as_str(), c.as_slice()))
        .collect();
    save(&opts.out, "fig14.dat", &to_gnuplot(&refs));
}

/// Figure 15: 100%-stacked thread/external split of induced first reads
/// per benchmark, sorted by decreasing thread input.
fn fig15(opts: &Options) {
    println!("\n=== Fig 15: induced first-read characterization ===");
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for w in workloads::full_suite(opts.threads, opts.scale) {
        let report = profile_full(&w);
        let (th, ke) = induced_split(&report);
        rows.push((w.name.clone(), th, ke));
    }
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(n, th, ke)| vec![n.clone(), format!("{th:.1}"), format!("{ke:.1}")])
        .collect();
    println!(
        "{}",
        to_table(
            &["benchmark", "thread input %", "external input %"],
            &table_rows
        )
    );
    let csv: String = rows
        .iter()
        .map(|(n, th, ke)| format!("{n},{th:.2},{ke:.2}\n"))
        .collect();
    save(
        &opts.out,
        "fig15.csv",
        &format!("benchmark,thread,external\n{csv}"),
    );
}

/// Figure 16: slowdown and space overhead as a function of thread count.
fn fig16(opts: &Options) {
    println!("\n=== Fig 16: overhead vs number of threads ===");
    let mut slow_series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    let mut space_series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for tool in TOOLS {
        slow_series.push((tool.to_owned(), Vec::new()));
        space_series.push((tool.to_owned(), Vec::new()));
    }
    for threads in [1u32, 2, 4, 8] {
        let suite = workloads::spec_omp_suite(threads, opts.scale);
        let mut table = OverheadTable::new();
        measure_suite(&mut table, "omp", &suite, 2);
        for (i, tool) in TOOLS.iter().enumerate() {
            slow_series[i]
                .1
                .push((threads as f64, table.mean_slowdown("omp", tool)));
            space_series[i]
                .1
                .push((threads as f64, table.mean_space("omp", tool)));
        }
    }
    let mut rows = Vec::new();
    for (i, tool) in TOOLS.iter().enumerate() {
        let slows: Vec<String> = slow_series[i]
            .1
            .iter()
            .map(|p| format!("{:.1}", p.1))
            .collect();
        let spaces: Vec<String> = space_series[i]
            .1
            .iter()
            .map(|p| format!("{:.2}", p.1))
            .collect();
        rows.push(vec![
            tool.to_string(),
            slows.join(" / "),
            spaces.join(" / "),
        ]);
    }
    println!(
        "{}",
        to_table(
            &[
                "tool",
                "slowdown @1/2/4/8 threads",
                "space @1/2/4/8 threads"
            ],
            &rows
        )
    );
    let refs: Vec<(&str, &[(f64, f64)])> = slow_series
        .iter()
        .map(|(n, c)| (n.as_str(), c.as_slice()))
        .collect();
    save(&opts.out, "fig16_slowdown.dat", &to_gnuplot(&refs));
    let refs: Vec<(&str, &[(f64, f64)])> = space_series
        .iter()
        .map(|(n, c)| (n.as_str(), c.as_slice()))
        .collect();
    save(&opts.out, "fig16_space.dat", &to_gnuplot(&refs));
}

/// Table 1: tool comparison over both suites.
fn table1(opts: &Options) {
    println!("\n=== Table 1: slowdown and space overhead (geometric means) ===");
    let mut table = OverheadTable::new();
    measure_suite(
        &mut table,
        "SPEC OMP",
        &workloads::spec_omp_suite(opts.threads, opts.scale),
        2,
    );
    measure_suite(
        &mut table,
        "PARSEC 2.1",
        &workloads::parsec_suite(opts.threads, opts.scale),
        2,
    );
    let mut rows = Vec::new();
    for suite in table.suites() {
        for tool in TOOLS {
            rows.push(vec![
                suite.clone(),
                tool.to_string(),
                format!("{:.1}x", table.mean_slowdown(&suite, tool)),
                format!("{:.2}x", table.mean_space(&suite, tool)),
            ]);
        }
    }
    println!(
        "{}",
        to_table(&["suite", "tool", "slowdown", "space overhead"], &rows)
    );
    let csv: String = rows
        .iter()
        .map(|r| format!("{},{},{},{}\n", r[0], r[1], r[2], r[3]))
        .collect();
    save(
        &opts.out,
        "table1.csv",
        &format!("suite,tool,slowdown,space\n{csv}"),
    );
}

/// Robustness study: minidb under injected short reads and transient
/// EINTR errors. The workload's read loops resume short transfers and
/// retry transient errors, so the drms cost function of `mysql_select`
/// keeps its fault-free shape while the run statistics expose how many
/// faults were absorbed along the way.
fn faults(opts: &Options) {
    use drms::vm::FaultPlan;
    println!("\n=== Faults: minidb under short reads + EINTR ===");
    let sizes: Vec<i64> = (1..=10).map(|i| i * 64 * opts.scale as i64).collect();
    let w = workloads::minidb::minidb_scaling(&sizes);
    let focus = w.focus.expect("mysql_select");

    let clean = ProfileSession::workload(&w).run().expect("fault-free run");
    let (clean_report, clean_stats) = (clean.report, clean.stats);
    let spec = "seed=7,fd0:shortread:p=1/3,in:eintr:every=11";
    let outcome = ProfileSession::workload(&w)
        .faults(FaultPlan::parse(spec).expect("valid fault spec"))
        .run()
        .expect("valid workload");
    if let Some(e) = &outcome.error {
        println!("  run aborted: {e} (partial profile below)");
    }

    let clean = CostPlot::of(&clean_report.merged_routine(focus), InputMetric::Drms);
    let faulted = CostPlot::of(&outcome.report.merged_routine(focus), InputMetric::Drms);
    let clean_fit = best_fit(&clean.points, 0.02);
    let faulted_fit = best_fit(&faulted.points, 0.02);
    println!("  fault spec: {spec}");
    println!("  injected:   {}", outcome.stats.faults);
    println!(
        "  clean:   {:>6} syscalls, drms fit {clean_fit}",
        clean_stats.syscalls
    );
    println!(
        "  faulted: {:>6} syscalls, drms fit {faulted_fit}",
        outcome.stats.syscalls
    );
    if clean_fit.model == faulted_fit.model {
        println!("  fit class preserved under faults: {}", faulted_fit.model);
    } else {
        println!(
            "  WARNING: fit class changed under faults: {} -> {}",
            clean_fit.model, faulted_fit.model
        );
    }
    save(
        &opts.out,
        "faults.dat",
        &to_gnuplot(&[
            ("clean", &clean.as_f64()[..]),
            ("faulted", &faulted.as_f64()[..]),
        ]),
    );
}

/// Scheduler-sensitivity study (§4.2): external input is stable across
/// scheduling policies, thread input fluctuates mildly.
fn sched(opts: &Options) {
    println!("\n=== Scheduler sensitivity (§4.2) ===");
    let policies: Vec<(String, SchedPolicy)> = vec![
        ("round_robin".into(), SchedPolicy::RoundRobin),
        ("random_1".into(), SchedPolicy::Random { seed: 1 }),
        ("random_2".into(), SchedPolicy::Random { seed: 2 }),
        ("random_3".into(), SchedPolicy::Random { seed: 3 }),
    ];
    let mut rows = Vec::new();
    for w in [
        workloads::parsec::dedup(opts.threads, opts.scale),
        workloads::specomp::nab(opts.threads, opts.scale),
        workloads::imgpipe::vips(opts.threads.max(2), 8, opts.scale),
    ] {
        for (pname, policy) in &policies {
            let outcome = ProfileSession::workload(&w)
                .sched(*policy)
                .run()
                .expect("valid workload");
            assert!(outcome.error.is_none(), "profiled run");
            let report = outcome.report;
            let (mut th, mut ke) = (0u64, 0u64);
            for (_, p) in report.iter() {
                th += p.breakdown.thread_induced;
                ke += p.breakdown.kernel_induced;
            }
            rows.push(vec![
                w.name.clone(),
                pname.clone(),
                th.to_string(),
                ke.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        to_table(
            &["benchmark", "policy", "thread-induced", "kernel-induced"],
            &rows
        )
    );
    let csv: String = rows
        .iter()
        .map(|r| format!("{},{},{},{}\n", r[0], r[1], r[2], r[3]))
        .collect();
    save(
        &opts.out,
        "sched.csv",
        &format!("benchmark,policy,thread_induced,kernel_induced\n{csv}"),
    );
}

/// The schedule fuzzer's targets: small pattern workloads whose behavior
/// under adversarial interleavings is fully understood — one genuinely
/// racy program (the lock-order inversion) and two correct ones that
/// must survive any schedule.
fn fuzz_workloads(quick: bool) -> Vec<Workload> {
    let n: i64 = if quick { 6 } else { 12 };
    vec![
        workloads::patterns::lock_order_inversion(n),
        workloads::patterns::producer_consumer(2 * n),
        workloads::patterns::stream_reader(2 * n),
    ]
}

/// Schedule fuzzing gate: run every fuzz workload under `--seeds` chaos
/// seeds, print the per-routine drms-variance summary, and put each
/// failing seed through the full robustness pipeline — strict replay
/// must reproduce the failure exactly and the shrinker must minimize its
/// schedule. Any unreproducible or unshrinkable failure fails the run.
fn sched_fuzz(opts: &Options) {
    use drms::sched::{chaos_scan, replay_run, shrink_failing_schedule};
    use std::sync::Arc;
    println!(
        "\n=== Schedule fuzz: chaos policy, {} seeds{} ===",
        opts.seeds,
        if opts.quick { " (quick)" } else { "" }
    );
    let seeds: Vec<u64> = (0..opts.seeds).collect();
    let mut bad = 0usize;
    for w in fuzz_workloads(opts.quick) {
        let scan = chaos_scan(&w.program, &w.run_config(), &seeds).expect("valid workload");
        let failures: Vec<_> = scan.failures().collect();
        println!(
            "\n[{}] {}/{} seeds completed, {} failed",
            w.name,
            scan.completed(),
            seeds.len(),
            failures.len()
        );
        let names = w.program.name_table();
        print!(
            "{}",
            scan.variance
                .render(|r| names.get(r).unwrap_or("?").to_owned())
        );
        for f in &failures {
            let err = f.outcome.error.clone().expect("failing run has an error");
            let strict = replay_run(&w.program, &w.run_config(), Arc::clone(&f.schedule), false)
                .expect("valid workload");
            if strict.outcome.error.as_ref() != Some(&err) {
                println!(
                    "  seed {}: NOT REPRODUCIBLE under strict replay: {err}",
                    f.seed
                );
                bad += 1;
                continue;
            }
            match shrink_failing_schedule(&w.program, &w.run_config(), &f.schedule, &err) {
                Some(s) => {
                    println!(
                        "  seed {}: {err}; shrunk {} -> {} preemption points in {} replays",
                        f.seed, s.original_points, s.minimized_points, s.attempts
                    );
                    save(
                        &opts.out,
                        &format!("{}_seed{}.sched", w.name, f.seed),
                        &drms::trace::sched::to_text(&s.minimized),
                    );
                }
                None => {
                    println!("  seed {}: UNSHRINKABLE: {err}", f.seed);
                    bad += 1;
                }
            }
        }
    }
    if bad > 0 {
        eprintln!("sched-fuzz: {bad} failure(s) did not replay deterministically or shrink");
        std::process::exit(1);
    }
    println!("\nsched-fuzz: every failure replayed deterministically and shrank");
}

/// Minimize one failing schedule. With `--sched FILE` the schedule comes
/// from a previous `sched-fuzz` / `aprof --record-sched` run (against
/// the same fuzz workload and `--quick` setting); without it, the
/// command hunts a failing chaos seed itself. Writes the minimized
/// `.sched` next to the other outputs and prints the deadlock
/// wait-graph.
fn sched_shrink(opts: &Options) {
    use drms::sched::{chaos_scan, replay_run, shrink_failing_schedule};
    use drms::vm::RunError;
    use std::sync::Arc;
    let w = fuzz_workloads(opts.quick)
        .into_iter()
        .next()
        .expect("fuzz workloads are non-empty");
    println!("\n=== Schedule shrink on {} ===", w.name);
    let (schedule, err) = match &opts.sched {
        Some(path) => {
            let text = fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("{path}: {e}");
                std::process::exit(1)
            });
            let schedule = Arc::new(drms::trace::sched::from_text(&text).unwrap_or_else(|e| {
                eprintln!("{path}: {e}");
                std::process::exit(2)
            }));
            let run = replay_run(&w.program, &w.run_config(), Arc::clone(&schedule), true)
                .expect("valid workload");
            let Some(err) = run.outcome.error else {
                eprintln!(
                    "{path}: schedule does not reproduce a failure on {}",
                    w.name
                );
                std::process::exit(1)
            };
            (schedule, err)
        }
        None => {
            let seeds: Vec<u64> = (0..opts.seeds.max(16)).collect();
            let scan = chaos_scan(&w.program, &w.run_config(), &seeds).expect("valid workload");
            let Some(f) = scan
                .failures()
                .max_by_key(|r| r.schedule.preemption_points())
            else {
                eprintln!("no chaos seed in 0..{} fails {}", seeds.len(), w.name);
                std::process::exit(1)
            };
            println!("  seed {} fails; using its recorded schedule", f.seed);
            (
                Arc::clone(&f.schedule),
                f.outcome.error.clone().expect("failing run has an error"),
            )
        }
    };
    let Some(s) = shrink_failing_schedule(&w.program, &w.run_config(), &schedule, &err) else {
        eprintln!("the schedule does not reproduce its own failure");
        std::process::exit(1)
    };
    println!(
        "  shrunk {} -> {} decisions, {} -> {} preemption points ({} replays)",
        schedule.len(),
        s.minimized.len(),
        s.original_points,
        s.minimized_points,
        s.attempts
    );
    println!("  minimized failure: {}", s.error);
    if let RunError::Deadlock { blocked } = &s.error {
        println!("  wait-graph:");
        for b in blocked {
            println!("    {b}");
        }
    }
    save(
        &opts.out,
        "minimized.sched",
        &drms::trace::sched::to_text(&s.minimized),
    );
}

/// Parallel sweep benchmark: sweep the minidb and imgpipe families over
/// their size grids under the crash-safe supervisor, verify the merged
/// reports **and merged metrics** are byte-identical between serial and
/// parallel runs, and write the deterministic measurements to
/// `--bench-out` (default `BENCH_sweep.json`) plus the wall-clock side
/// to a `.timings.json` sibling and the audited grid-merged metrics to
/// a `.metrics.json` sibling — all through atomic temp+fsync+rename
/// writes.
///
/// `--journal FILE` checkpoints every finished cell; after a crash,
/// `--resume FILE` (with the same grid flags) salvages the journal,
/// re-runs only the lost cells, and produces artifacts byte-identical
/// to an uninterrupted run. `--max-attempts` / `--deadline-ms` tune the
/// supervisor's retry and deadline policy; cells that exhaust their
/// attempts are quarantined and reported, and the sweep still exits 0.
/// `--quick` shrinks the grids for smoke testing.
fn sweep_bench(opts: &Options) {
    use drms::analysis::InputMetric;
    use drms_bench::artifact::atomic_write_with;
    use drms_bench::supervisor::{resume_sweep_with_io, JournalWriter, SupervisorOptions};
    use drms_bench::sweep::{validate_bench_json, FamilyBench, SweepBench, SweepSpec};
    // Artifact writes must fail typed, not panic: under --host-faults
    // the CI chaos gate asserts a clean nonzero exit with the fault
    // named, and the atomic temp+rename discipline guarantees the
    // previous artifact (if any) is still intact.
    let write_artifact = |path: &Path, contents: &str, what: &str| {
        if let Err(e) = atomic_write_with(&opts.host_io, path, contents) {
            eprintln!("sweep: cannot write {what} `{}`: {e}", path.display());
            std::process::exit(1);
        }
    };
    println!("\n=== Parallel sweep benchmark ({} jobs) ===", opts.jobs);
    let scale = opts.scale as i64;
    // The sort family's size is the Figure-10 step count (arrays of
    // 10..=10·size elements), so a cell costs Θ(size³) instructions;
    // sizes stay fixed rather than scaling with `--scale` because the
    // VM watchdog (500M instructions) caps the step count near 140.
    // Sizes are listed descending: workers pull cells off a shared
    // cursor in grid order, so the longest quadratic arrays start first
    // and the small minidb/imgpipe cells backfill the stragglers.
    let (sort_sizes, minidb_sizes, imgpipe_sizes, seeds): (Vec<i64>, Vec<i64>, Vec<i64>, Vec<u64>) =
        if opts.quick {
            (
                vec![64, 56, 48],
                (1..=3).map(|i| i * 32).collect(),
                vec![4, 8],
                vec![1],
            )
        } else {
            (
                vec![112, 96, 80],
                (1..=8).map(|i| i * 64 * scale).collect(),
                (1..=6).map(|i| 4 * i * scale).collect(),
                vec![1, 2],
            )
        };
    let specs = [
        SweepSpec::new("sort", &sort_sizes, opts.jobs).seeds(&seeds),
        SweepSpec::new("minidb", &minidb_sizes, opts.jobs).seeds(&seeds),
        SweepSpec::new("imgpipe", &imgpipe_sizes, opts.jobs).seeds(&seeds),
    ];
    let sup = SupervisorOptions {
        max_attempts: opts.max_attempts.max(1),
        deadline: opts.deadline_ms.map(std::time::Duration::from_millis),
        decode: opts.decode,
        event_batch: opts.batch,
        ..SupervisorOptions::default()
    };
    let resumed = opts.resume.is_some();
    let mut families = Vec::new();
    if let Some(path) = &opts.resume {
        println!("  resuming from journal {}", path.display());
        let cache = drms_bench::supervisor::CellCache::new();
        let runner = |ctx: &drms_bench::supervisor::CellCtx| {
            drms_bench::supervisor::profile_cell_cached(ctx, &cache)
        };
        for spec in &specs {
            match resume_sweep_with_io(spec, &sup, path, &runner, &opts.host_io) {
                Ok((result, resume)) => {
                    println!(
                        "  {:<8} salvaged {} cells, re-ran {} ({:.3}s)",
                        spec.family, resume.salvaged_cells, resume.rerun_cells, result.wall_secs,
                    );
                    for w in &resume.warnings {
                        println!("           note: {w}");
                    }
                    if let Err(violations) = resume.metrics.audit() {
                        eprintln!("sweep: resume accounting audit failed:");
                        for v in &violations {
                            eprintln!("  {v}");
                        }
                        std::process::exit(1);
                    }
                    families.push(FamilyBench::from_resumed(result));
                }
                Err(e) => {
                    eprintln!("sweep: cannot resume family `{}`: {e}", spec.family);
                    let mut source = std::error::Error::source(&e);
                    while let Some(s) = source {
                        eprintln!("  caused by: {s}");
                        source = s.source();
                    }
                    std::process::exit(1);
                }
            }
        }
    } else {
        let mut writer = opts.journal.as_ref().map(|p| {
            let w = match JournalWriter::create_with(&opts.host_io, p) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!(
                        "sweep: cannot create checkpoint journal `{}`: {e}",
                        p.display()
                    );
                    std::process::exit(1);
                }
            };
            println!("  journaling checkpoints to {}", p.display());
            w
        });
        for spec in &specs {
            let fam = FamilyBench::measure_with(spec, &sup, writer.as_mut());
            let p = &fam.parallel;
            println!(
                "  {:<8} {:>2} cells: serial {:.3}s, parallel {:.3}s ({:.2}x), fingerprint {:#018x}{}",
                spec.family,
                p.cells.len(),
                fam.serial_secs,
                p.wall_secs,
                fam.speedup(),
                p.fingerprint(),
                if fam.diverged() { "  DIVERGED" } else { "" },
            );
            if fam.metrics_diverged() {
                eprintln!(
                    "sweep: family `{}`: serial and parallel merged metrics diverged",
                    spec.family
                );
                std::process::exit(1);
            }
            families.push(fam);
        }
    }
    let mut merged_metrics = drms::trace::Metrics::new();
    for fam in &families {
        let p = &fam.parallel;
        merged_metrics
            .merge(&p.merged_metrics())
            .expect("families share one bucket layout per histogram name");
        for q in &p.quarantined {
            println!(
                "  QUARANTINED {} size={} seed={} after {} attempt(s): {}",
                p.spec.family, q.size, q.seed, q.attempts, q.error
            );
        }
        let plot = p.focus_plot(InputMetric::Drms);
        let fit = best_fit(&plot.points, 0.02);
        println!(
            "           focus drms plot: {} points, fit {fit}",
            plot.points.len()
        );
    }
    let bench = SweepBench {
        jobs: opts.jobs,
        resumed,
        families,
    };
    if bench.diverged() {
        eprintln!("sweep: serial and parallel merged reports diverged");
        std::process::exit(1);
    }
    let json = bench.to_json();
    if let Err(e) = validate_bench_json(&json) {
        eprintln!("sweep: emitted JSON fails its own schema: {e}");
        std::process::exit(1);
    }
    println!(
        "  total: serial {:.3}s, parallel {:.3}s, speedup {:.2}x",
        bench.serial_secs(),
        bench.parallel_secs(),
        bench.speedup()
    );
    write_artifact(&opts.bench_out, &json, "bench artifact");
    println!("  [benchmark written to {}]", opts.bench_out.display());
    let timings_out = opts.bench_out.with_extension("timings.json");
    write_artifact(&timings_out, &bench.timings_json(), "sweep timings");
    println!("  [timings written to {}]", timings_out.display());
    if let Err(violations) = merged_metrics.audit() {
        eprintln!(
            "sweep: metrics audit failed ({} violations):",
            violations.len()
        );
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
    let metrics_out = opts.bench_out.with_extension("metrics.json");
    write_artifact(&metrics_out, &merged_metrics.to_json(), "sweep metrics");
    println!("  [audited metrics written to {}]", metrics_out.display());
}
