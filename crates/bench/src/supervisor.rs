//! The crash-safe sweep supervisor.
//!
//! [`run_sweep`](crate::sweep::run_sweep) used to fan cells out over a
//! shared `Mutex<Vec<Option<SweepCell>>>`; one panicking cell poisoned
//! the mutex and killed the whole grid, and a killed process threw away
//! every finished cell. This module is the survival layer wrapped around
//! the same embarrassingly-parallel grid:
//!
//! * **Panic isolation** — every cell attempt runs under
//!   [`catch_unwind`](std::panic::catch_unwind); a panic is a recorded
//!   failure of that attempt, never a poisoned lock (collection is a
//!   channel drained by the supervising thread — there is no lock left
//!   to poison).
//! * **Deadlines** — [`SupervisorOptions::deadline`] (wall-clock,
//!   checked by the VM once per scheduler slice) and
//!   [`SupervisorOptions::max_instructions`] (the VM watchdog budget)
//!   bound each attempt.
//! * **Retry with deterministic backoff** — transient failures (panics,
//!   deadline/budget aborts, guest aborts under an injected fault plan)
//!   are retried up to [`SupervisorOptions::max_attempts`] times with
//!   exponential backoff whose jitter derives from the cell's
//!   `(family, size, seed, attempt)` via FNV-1a — no wall-clock or RNG
//!   nondeterminism reaches the merged output.
//! * **Quarantine** — a cell that exhausts its attempts (or fails
//!   fatally, e.g. a family name that no longer exists after config
//!   drift) lands in [`SweepResult::quarantined`] instead of aborting
//!   the sweep; the rest of the grid completes and the sweep exits
//!   cleanly.
//! * **Checkpoint journal** — with a [`JournalWriter`] attached, every
//!   finished cell is appended (checksummed, fsynced) as it completes;
//!   [`resume_sweep`] salvages the journal after a crash and re-runs
//!   only the missing and quarantined cells, producing a result
//!   byte-identical to an uninterrupted run.

use crate::sweep::{family_workload, QuarantinedCell, SweepCell, SweepResult, SweepSpec};
use drms::core::report_io;
use drms::sched::fnv1a;
use drms::trace::hostio::HostIo;
use drms::trace::journal::{self, ParseJournalError};
use drms::trace::Metrics;
use drms::vm::{
    DecodeMode, DecodedProgram, EventBatch, EventCounters, FaultCounters, FaultPlan, RunConfig,
    RunError, RunStats,
};
use drms::workloads::Workload;
use drms::{Error, ProfileSession};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// A cooperative preemption flag shared between a scheduler (the
/// `aprofd` daemon's dispatcher) and a running supervised sweep.
///
/// Raising the signal asks the sweep to yield at its **next grid-cell
/// boundary**: cells already in flight finish and journal normally, no
/// new cell starts, and the run returns [`SupervisedRun::Yielded`].
/// The fsync'd checkpoint journal *is* the preemption checkpoint — a
/// later [`resume_sweep`] of the same journal completes the grid to
/// artifacts byte-identical to an uninterrupted run (the same property
/// the crash-safety machinery already proves for arbitrary prefixes).
///
/// The signal is level-triggered and sticky until [`clear`]ed; clone
/// handles share one flag.
///
/// [`clear`]: PreemptSignal::clear
#[derive(Clone, Debug, Default)]
pub struct PreemptSignal(Arc<AtomicBool>);

impl PreemptSignal {
    /// A fresh, un-raised signal.
    pub fn new() -> PreemptSignal {
        PreemptSignal::default()
    }

    /// Asks the sweep holding this signal to yield at its next cell
    /// boundary.
    pub fn raise(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether a yield has been requested.
    pub fn is_raised(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }

    /// Re-arms the signal (a re-dispatched job starts un-preempted).
    pub fn clear(&self) {
        self.0.store(false, Ordering::SeqCst);
    }
}

/// Failure-handling policy of a supervised sweep.
#[derive(Clone, Debug)]
pub struct SupervisorOptions {
    /// Attempts per cell before quarantine (minimum 1).
    pub max_attempts: u32,
    /// Base backoff before the second attempt, in milliseconds; doubles
    /// per retry. `0` disables sleeping (tests).
    pub backoff_base_ms: u64,
    /// Upper bound on any single backoff sleep, in milliseconds.
    pub backoff_cap_ms: u64,
    /// Per-attempt wall-clock budget (see
    /// [`RunConfig::deadline`](drms::vm::RunConfig)).
    pub deadline: Option<Duration>,
    /// Per-attempt instruction budget override (the VM watchdog).
    pub max_instructions: Option<u64>,
    /// Kernel fault plan injected into every cell. Guest aborts under an
    /// injected plan are treated as transient (the flaky-I/O world the
    /// plan simulates), so they retry instead of landing in the cell.
    pub faults: Option<FaultPlan>,
    /// Interpreter dispatch mode override for every cell; `None` keeps
    /// the workload's default ([`DecodeMode::Fused`]). A pure
    /// performance knob — all modes profile identically — so, like
    /// `jobs`, it does not bind the journal: a resume may switch modes.
    pub decode: Option<DecodeMode>,
    /// Tool event-batch capacity override for every cell; `None` keeps
    /// the [`RunConfig`] default. Clamped to at least 1. Like
    /// [`decode`](Self::decode), a perf knob that does not bind the
    /// journal.
    pub event_batch: Option<usize>,
    /// Spill every cell's event stream to binary trace shards under
    /// `<trace_dir>/cell-<family>-<size>-<seed>/` (see
    /// [`drms::trace::shard`]). An observability knob, not a semantic
    /// one — the profile is unchanged and replaying the shards offline
    /// reproduces it byte-for-byte — so, like `decode`, it does not
    /// bind the journal.
    pub trace_dir: Option<std::path::PathBuf>,
    /// Host I/O seam the shard spill writes through; fault-injected
    /// under chaos testing. Defaults to the real host.
    pub trace_io: drms::trace::HostIo,
    /// Cooperative preemption signal checked at every grid-cell
    /// boundary (see [`PreemptSignal`]). `None` runs to completion.
    /// Like `jobs` and [`decode`](Self::decode), scheduling does not
    /// bind the journal: a preempted run and its resume share one
    /// journal and one spec record.
    pub preempt: Option<PreemptSignal>,
}

impl Default for SupervisorOptions {
    fn default() -> Self {
        SupervisorOptions {
            max_attempts: 3,
            backoff_base_ms: 5,
            backoff_cap_ms: 250,
            deadline: None,
            max_instructions: None,
            faults: None,
            decode: None,
            event_batch: None,
            trace_dir: None,
            trace_io: drms::trace::HostIo::real(),
            preempt: None,
        }
    }
}

impl SupervisorOptions {
    /// The options rendered as deterministic spec lines — part of the
    /// journal's spec record, so a resume with different failure policy
    /// is rejected instead of silently mixing semantics.
    ///
    /// [`decode`](Self::decode), [`event_batch`](Self::event_batch) and
    /// [`preempt`](Self::preempt) are deliberately absent, like `jobs`:
    /// they change how fast (or whether) cells run *now*, never what
    /// they produce, so a resume may retune or re-signal them.
    fn spec_lines(&self) -> String {
        fn opt<T: std::fmt::Display>(v: &Option<T>) -> String {
            v.as_ref().map_or("-".to_string(), T::to_string)
        }
        format!(
            "max_attempts {}\nbackoff_base_ms {}\nbackoff_cap_ms {}\n\
             deadline_ms {}\nmax_instructions {}\nfaults {}\n",
            self.max_attempts.max(1),
            self.backoff_base_ms,
            self.backoff_cap_ms,
            opt(&self.deadline.map(|d| d.as_millis())),
            opt(&self.max_instructions),
            opt(&self.faults),
        )
    }
}

/// Outcome of one *attempt* at a cell, as classified by the runner.
pub enum Attempt {
    /// The attempt produced a cell (possibly with a recorded guest
    /// abort — deterministic aborts are data, not failures). Boxed:
    /// a cell carries a full report + metrics registry, and the error
    /// variants should stay cheap to move.
    Done(Box<SweepCell>),
    /// Transient failure: retry with backoff, quarantine when attempts
    /// are exhausted.
    Transient(String),
    /// Permanent failure: quarantine immediately, retrying cannot help
    /// (unknown family after config drift, setup errors).
    Fatal(String),
}

/// Everything a cell runner gets to see about its attempt.
pub struct CellCtx<'a> {
    /// Workload family name.
    pub family: &'a str,
    /// Workload size of the cell.
    pub size: i64,
    /// Guest seed of the cell.
    pub seed: u64,
    /// 1-based attempt number.
    pub attempt: u32,
    /// The supervisor's failure policy.
    pub opts: &'a SupervisorOptions,
}

/// A cell runner: maps one attempt to an [`Attempt`] outcome. The
/// supervisor catches panics around the call, so a runner (or the
/// workload underneath it) may panic freely. Tests inject flaky or
/// panicking runners; production uses [`profile_cell`].
pub type Runner<'a> = dyn Fn(&CellCtx) -> Attempt + Sync + 'a;

/// Shared per-sweep state the production runner draws on: built
/// workloads with their pre-decoded programs, keyed by `(family, size)`,
/// plus a pool of recycled event batches.
///
/// A sweep grid re-profiles the same `(family, size)` workload once per
/// seed, and the supervisor may re-run a cell several times (retries,
/// resume). Without the cache every attempt rebuilt the guest program
/// and re-decoded it — pure overhead that scaled with `seeds ×
/// attempts` and was the dominant fixed cost of small cells at high
/// `--jobs`. The cache builds each workload and its
/// [`DecodedProgram`] once; results are unaffected (workload
/// construction is deterministic and takes no seed — the seed enters
/// through [`RunConfig`]).
///
/// Thread-safe: workers share one cache behind internal mutexes, held
/// only for lookups and (on miss) the one-time build.
#[derive(Default)]
pub struct CellCache {
    entries: Mutex<HashMap<(String, i64), Arc<CacheEntry>>>,
    batch_pool: Mutex<Vec<EventBatch>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// One cached workload: the built guest program plus its pre-decoded
/// image (absent under [`DecodeMode::Off`]).
pub struct CacheEntry {
    /// The built workload of this `(family, size)` cell.
    pub workload: Workload,
    /// The shared pre-decoded image, `None` when decoding is off.
    pub decoded: Option<Arc<DecodedProgram>>,
    mode: DecodeMode,
}

impl CellCache {
    /// An empty cache.
    pub fn new() -> CellCache {
        CellCache::default()
    }

    /// The cached workload of `(family, size)` pre-decoded under
    /// `mode`, building it on first use. `None` for unknown families.
    pub fn entry(&self, family: &str, size: i64, mode: DecodeMode) -> Option<Arc<CacheEntry>> {
        let key = (family.to_string(), size);
        // A panic while building a workload is caught by the supervisor;
        // recover the map rather than poisoning every later cell.
        let mut map = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(e) = map.get(&key) {
            if e.mode == mode {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(Arc::clone(e));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let workload = family_workload(family, size)?;
        let decoded = match mode {
            DecodeMode::Off => None,
            m => Some(DecodedProgram::decode(&workload.program, m)),
        };
        let entry = Arc::new(CacheEntry {
            workload,
            decoded,
            mode,
        });
        map.insert(key, Arc::clone(&entry));
        Some(entry)
    }

    /// A pooled event batch (or a fresh empty one); hand it back with
    /// [`recycle`](Self::recycle) so the next cell on any worker reuses
    /// its storage.
    pub fn take_batch(&self) -> EventBatch {
        self.batch_pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default()
    }

    /// Returns a batch to the pool.
    pub fn recycle(&self, batch: EventBatch) {
        self.batch_pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(batch);
    }

    /// Cache lookups served from an existing entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache lookups that had to build the workload.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total buffer allocations across every pooled batch — with W
    /// workers this stays at W no matter how many cells ran.
    pub fn batch_allocations(&self) -> u64 {
        self.batch_pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(EventBatch::allocations)
            .sum()
    }
}

/// The production cell runner: builds the family workload, applies the
/// supervisor's budgets, and profiles it under a [`ProfileSession`].
/// Stateless — every sweep entry point routes through
/// [`profile_cell_cached`] instead; this remains for callers that hold
/// no cache.
pub fn profile_cell(ctx: &CellCtx) -> Attempt {
    profile_cell_cached(ctx, &CellCache::new())
}

/// [`profile_cell`] drawing the workload, its pre-decoded program and
/// the event batch from `cache`.
pub fn profile_cell_cached(ctx: &CellCtx, cache: &CellCache) -> Attempt {
    let mode = ctx.opts.decode.unwrap_or_default();
    let Some(entry) = cache.entry(ctx.family, ctx.size, mode) else {
        return Attempt::Fatal(format!(
            "unknown workload family `{}` (config drift?)",
            ctx.family
        ));
    };
    let w = &entry.workload;
    let mut config = RunConfig {
        seed: ctx.seed,
        decode: mode,
        ..w.run_config()
    };
    if let Some(n) = ctx.opts.event_batch {
        config.event_batch = n.max(1);
    }
    if let Some(limit) = ctx.opts.max_instructions {
        config.max_instructions = limit;
    }
    config.deadline = ctx.opts.deadline;
    if ctx.opts.faults.is_some() {
        config.faults = ctx.opts.faults.clone();
    }
    let mut batch = cache.take_batch();
    let start = Instant::now();
    let mut session = ProfileSession::new(&w.program)
        .config(config)
        .batch_buffer(&mut batch);
    if let Some(d) = &entry.decoded {
        session = session.decoded(Arc::clone(d));
    }
    if let Some(dir) = &ctx.opts.trace_dir {
        session = session
            .trace_dir(dir.join(format!("cell-{}-{}-{}", ctx.family, ctx.size, ctx.seed)))
            .trace_io(ctx.opts.trace_io.clone());
    }
    let result = session.run();
    cache.recycle(batch);
    let outcome = match result {
        Ok(o) => o,
        // Setup failures and shard-trace finalize failures both land
        // here; neither leaves a profile worth keeping.
        Err(e) => return Attempt::Fatal(format!("session failed: {e}")),
    };
    match &outcome.error {
        // Budget exhaustion is what the supervisor's deadlines are for:
        // retry, then quarantine.
        Some(e @ (RunError::DeadlineExceeded { .. } | RunError::InstructionLimit { .. })) => {
            return Attempt::Transient(e.to_string());
        }
        // Under an injected fault plan, guest aborts model a flaky
        // environment — transient by definition.
        Some(e) if ctx.opts.faults.is_some() => return Attempt::Transient(e.to_string()),
        _ => {}
    }
    Attempt::Done(Box::new(SweepCell {
        size: ctx.size,
        seed: ctx.seed,
        secs: start.elapsed().as_secs_f64(),
        shadow_bytes: outcome.shadow_bytes,
        stats: outcome.stats,
        report: outcome.report,
        metrics: outcome.metrics,
        error: outcome.error.map(|e| e.to_string()),
        attempts: ctx.attempt,
        panics: 0,
    }))
}

/// One cell's final fate.
#[derive(Clone, Debug)]
pub enum CellOutcome {
    /// The cell completed (its `attempts`/`panics` fields record the
    /// retries it took). Boxed for the same reason as
    /// [`Attempt::Done`].
    Completed(Box<SweepCell>),
    /// The cell exhausted its attempts or failed fatally.
    Quarantined(QuarantinedCell),
}

/// Deterministic backoff before attempt `attempt + 1`: exponential in
/// the attempt number, jittered by an FNV-1a hash of the cell identity —
/// reproducible for a given spec, decorrelated across cells.
fn backoff_ms(opts: &SupervisorOptions, family: &str, size: i64, seed: u64, attempt: u32) -> u64 {
    if opts.backoff_base_ms == 0 {
        return 0;
    }
    let exp = opts
        .backoff_base_ms
        .saturating_mul(1u64 << (attempt - 1).min(16));
    let capped = exp.min(opts.backoff_cap_ms).max(1);
    let key = format!("{family}:{size}:{seed}:{attempt}");
    let jitter = fnv1a(key.as_bytes()) % (capped / 2 + 1);
    (capped / 2 + jitter).min(opts.backoff_cap_ms)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs one cell to completion or quarantine: attempt, classify, back
/// off, repeat. Panics in the runner are caught and treated as
/// transient failures.
fn supervise_cell(
    family: &str,
    size: i64,
    seed: u64,
    opts: &SupervisorOptions,
    runner: &Runner<'_>,
) -> CellOutcome {
    let max_attempts = opts.max_attempts.max(1);
    let mut panics = 0u32;
    for attempt in 1..=max_attempts {
        let ctx = CellCtx {
            family,
            size,
            seed,
            attempt,
            opts,
        };
        let failure = match catch_unwind(AssertUnwindSafe(|| runner(&ctx))) {
            Ok(Attempt::Done(mut cell)) => {
                cell.attempts = attempt;
                cell.panics = panics;
                return CellOutcome::Completed(cell);
            }
            Ok(Attempt::Fatal(error)) => {
                return CellOutcome::Quarantined(QuarantinedCell {
                    size,
                    seed,
                    attempts: attempt,
                    panics,
                    error,
                });
            }
            Ok(Attempt::Transient(e)) => e,
            Err(payload) => {
                panics += 1;
                format!("panic: {}", panic_message(payload))
            }
        };
        if attempt == max_attempts {
            return CellOutcome::Quarantined(QuarantinedCell {
                size,
                seed,
                attempts: attempt,
                panics,
                error: failure,
            });
        }
        let ms = backoff_ms(opts, family, size, seed, attempt);
        if ms > 0 {
            std::thread::sleep(Duration::from_millis(ms));
        }
    }
    unreachable!("the attempt loop always returns")
}

// ---------------------------------------------------------------------------
// Journal I/O.

/// An append-only, durably-flushed writer for the checkpoint journal.
///
/// Append errors (disk full, permissions yanked) degrade gracefully:
/// the writer warns on stderr once, stops journaling, and the sweep
/// itself carries on — losing checkpoints must never lose the run.
pub struct JournalWriter {
    file: Option<File>,
    io: HostIo,
}

impl JournalWriter {
    /// Creates (truncates) the journal at `path`, writes the file
    /// header, and syncs the parent directory so the journal's
    /// existence survives a crash.
    pub fn create(path: &Path) -> std::io::Result<JournalWriter> {
        JournalWriter::create_with(&HostIo::real(), path)
    }

    /// [`JournalWriter::create`] through `io`, so chaos suites can fail
    /// any step of journal creation.
    pub fn create_with(io: &HostIo, path: &Path) -> std::io::Result<JournalWriter> {
        let mut file = io.create(path)?;
        io.write_all(&mut file, journal::FILE_HEADER.as_bytes())?;
        io.write_all(&mut file, b"\n")?;
        io.fsync(&file)?;
        // The file's *name* lives in the directory; without this a
        // crash can lose the freshly-created journal entirely.
        io.sync_parent_dir(path)?;
        Ok(JournalWriter {
            file: Some(file),
            io: io.clone(),
        })
    }

    /// Opens the journal at `path` for appending (resume).
    pub fn append_to(path: &Path) -> std::io::Result<JournalWriter> {
        JournalWriter::append_to_with(&HostIo::real(), path)
    }

    /// [`JournalWriter::append_to`] with appended records written
    /// through `io`.
    pub fn append_to_with(io: &HostIo, path: &Path) -> std::io::Result<JournalWriter> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(JournalWriter {
            file: Some(file),
            io: io.clone(),
        })
    }

    /// Appends one record and flushes it to disk. Best-effort: on I/O
    /// failure the writer disables itself (see the type docs).
    pub fn append(&mut self, meta: &str, payload: &str) {
        let Some(file) = self.file.as_mut() else {
            return;
        };
        let encoded = journal::encode_record(meta, payload);
        let result = self
            .io
            .write_all(file, encoded.as_bytes())
            .and_then(|()| self.io.fdatasync(file));
        if let Err(e) = result {
            eprintln!("warning: journal append failed ({e}); journaling disabled for this sweep");
            self.file = None;
        }
    }

    /// Whether the writer is still journaling (an append failure
    /// disables it for the rest of the sweep).
    pub fn is_active(&self) -> bool {
        self.file.is_some()
    }
}

fn csv(values: &[u64]) -> String {
    if values.is_empty() {
        return "-".to_string();
    }
    values
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

fn uncsv(tok: &str) -> Result<Vec<u64>, String> {
    if tok == "-" {
        return Ok(Vec::new());
    }
    tok.split(',')
        .map(|v| v.parse().map_err(|_| format!("bad number `{v}`")))
        .collect()
}

/// One line of error text: abort reasons are single-line by
/// construction, but the journal's line-oriented cell codec must not
/// trust that.
fn one_line(s: &str) -> String {
    s.replace(['\n', '\r'], " ")
}

fn spec_meta(family: &str) -> String {
    format!("spec {family}")
}

fn spec_payload(spec: &SweepSpec, opts: &SupervisorOptions) -> String {
    let sizes: Vec<u64> = spec.sizes.iter().map(|&s| s.max(0) as u64).collect();
    format!(
        "family {}\nsizes {}\nseeds {}\n{}",
        spec.family,
        csv(&sizes),
        csv(&spec.seeds),
        opts.spec_lines()
    )
}

fn cell_meta(family: &str, index: usize, outcome: &CellOutcome) -> String {
    let status = match outcome {
        CellOutcome::Completed(_) => "ok",
        CellOutcome::Quarantined(_) => "quarantined",
    };
    format!("cell {family} {index} {status}")
}

fn encode_cell_payload(cell: &SweepCell) -> String {
    let mut out = String::new();
    let s = &cell.stats;
    let e = &s.events_by_kind;
    let f = &s.faults;
    let _ = writeln!(out, "size {}", cell.size);
    let _ = writeln!(out, "seed {}", cell.seed);
    let _ = writeln!(out, "secs {}", cell.secs);
    let _ = writeln!(out, "shadow_bytes {}", cell.shadow_bytes);
    let _ = writeln!(out, "attempts {}", cell.attempts);
    let _ = writeln!(out, "panics {}", cell.panics);
    let _ = writeln!(
        out,
        "error {}",
        cell.error.as_deref().map_or("-".to_string(), one_line)
    );
    let _ = writeln!(out, "stats.instructions {}", s.instructions);
    let _ = writeln!(out, "stats.basic_blocks {}", s.basic_blocks);
    let _ = writeln!(out, "stats.per_thread_blocks {}", csv(&s.per_thread_blocks));
    let _ = writeln!(out, "stats.per_thread_nanos {}", csv(&s.per_thread_nanos));
    let _ = writeln!(out, "stats.thread_switches {}", s.thread_switches);
    let _ = writeln!(out, "stats.syscalls {}", s.syscalls);
    let _ = writeln!(out, "stats.threads {}", s.threads);
    let _ = writeln!(out, "stats.guest_pages {}", s.guest_pages);
    let _ = writeln!(out, "stats.guest_bytes {}", s.guest_bytes);
    let _ = writeln!(out, "stats.events {}", s.events);
    let by_kind: Vec<u64> = e.by_kind().iter().map(|&(_, v)| v).collect();
    let _ = writeln!(out, "stats.events_by_kind {}", csv(&by_kind));
    let faults = [
        f.short_reads,
        f.short_writes,
        f.transient_errors,
        f.device_failures,
        f.errno_returns,
    ];
    let _ = writeln!(out, "stats.faults {}", csv(&faults));
    let metrics = cell.metrics.to_lines();
    let _ = writeln!(out, "metrics {}", metrics.lines().count());
    out.push_str(&metrics);
    out.push_str("report\n");
    out.push_str(&report_io::to_text(&cell.report));
    out
}

fn encode_quarantine_payload(q: &QuarantinedCell) -> String {
    format!(
        "size {}\nseed {}\nattempts {}\npanics {}\nerror {}\n",
        q.size,
        q.seed,
        q.attempts,
        q.panics,
        one_line(&q.error)
    )
}

fn encode_outcome(outcome: &CellOutcome) -> String {
    match outcome {
        CellOutcome::Completed(c) => encode_cell_payload(c),
        CellOutcome::Quarantined(q) => encode_quarantine_payload(q),
    }
}

struct PayloadLines<'a> {
    lines: std::str::Lines<'a>,
    consumed: usize,
}

impl<'a> PayloadLines<'a> {
    fn new(text: &'a str) -> Self {
        PayloadLines {
            lines: text.lines(),
            consumed: 0,
        }
    }

    fn field(&mut self, key: &str) -> Result<&'a str, String> {
        let line = self
            .lines
            .next()
            .ok_or_else(|| format!("missing `{key}` line"))?;
        self.consumed += 1;
        line.strip_prefix(key)
            .and_then(|rest| rest.strip_prefix(' '))
            .ok_or_else(|| format!("expected `{key}`, found `{line}`"))
    }

    fn num<T: std::str::FromStr>(&mut self, key: &str) -> Result<T, String> {
        let v = self.field(key)?;
        v.parse().map_err(|_| format!("bad `{key}` value `{v}`"))
    }
}

/// Decodes one journaled `cell … ok` payload back into a [`SweepCell`].
///
/// Public for journal consumers beyond resume: the `aprofd` daemon
/// renders live snapshot/delta reports and per-job metrics straight
/// from the on-disk journal of a running sweep.
pub fn decode_cell_payload(payload: &str) -> Result<SweepCell, String> {
    let mut p = PayloadLines::new(payload);
    let size: i64 = p.num("size")?;
    let seed: u64 = p.num("seed")?;
    let secs: f64 = p.num("secs")?;
    let shadow_bytes: u64 = p.num("shadow_bytes")?;
    let attempts: u32 = p.num("attempts")?;
    let panics: u32 = p.num("panics")?;
    let error = match p.field("error")? {
        "-" => None,
        e => Some(e.to_string()),
    };
    let mut stats = RunStats {
        instructions: p.num("stats.instructions")?,
        basic_blocks: p.num("stats.basic_blocks")?,
        per_thread_blocks: uncsv(p.field("stats.per_thread_blocks")?)?,
        per_thread_nanos: uncsv(p.field("stats.per_thread_nanos")?)?,
        thread_switches: p.num("stats.thread_switches")?,
        syscalls: p.num("stats.syscalls")?,
        threads: p.num("stats.threads")?,
        guest_pages: p.num("stats.guest_pages")?,
        guest_bytes: p.num("stats.guest_bytes")?,
        events: p.num("stats.events")?,
        ..RunStats::default()
    };
    let by_kind = uncsv(p.field("stats.events_by_kind")?)?;
    if by_kind.len() != 11 {
        return Err(format!("expected 11 event kinds, got {}", by_kind.len()));
    }
    stats.events_by_kind = EventCounters {
        thread_start: by_kind[0],
        thread_exit: by_kind[1],
        thread_switch: by_kind[2],
        call: by_kind[3],
        ret: by_kind[4],
        read: by_kind[5],
        write: by_kind[6],
        sync: by_kind[7],
        block: by_kind[8],
        kernel_to_user: by_kind[9],
        user_to_kernel: by_kind[10],
    };
    let faults = uncsv(p.field("stats.faults")?)?;
    if faults.len() != 5 {
        return Err(format!("expected 5 fault counters, got {}", faults.len()));
    }
    stats.faults = FaultCounters {
        short_reads: faults[0],
        short_writes: faults[1],
        transient_errors: faults[2],
        device_failures: faults[3],
        errno_returns: faults[4],
    };
    let metric_lines: usize = p.num("metrics")?;
    let mut metric_text = String::new();
    for _ in 0..metric_lines {
        let line = p.lines.next().ok_or("metrics section truncated")?;
        p.consumed += 1;
        metric_text.push_str(line);
        metric_text.push('\n');
    }
    let metrics = Metrics::from_lines(&metric_text)?;
    match p.lines.next() {
        Some("report") => p.consumed += 1,
        other => return Err(format!("expected `report` marker, found {other:?}")),
    }
    // Everything after the marker is the report, verbatim.
    let mut offset = 0usize;
    for _ in 0..p.consumed {
        offset = payload[offset..]
            .find('\n')
            .map(|n| offset + n + 1)
            .ok_or("payload ended before the report section")?;
    }
    let report = report_io::from_text(&payload[offset..]).map_err(|e| e.to_string())?;
    Ok(SweepCell {
        size,
        seed,
        secs,
        shadow_bytes,
        stats,
        report,
        metrics,
        error,
        attempts,
        panics,
    })
}

fn decode_quarantine_payload(payload: &str) -> Result<QuarantinedCell, String> {
    let mut p = PayloadLines::new(payload);
    Ok(QuarantinedCell {
        size: p.num("size")?,
        seed: p.num("seed")?,
        attempts: p.num("attempts")?,
        panics: p.num("panics")?,
        error: p.field("error")?.to_string(),
    })
}

// ---------------------------------------------------------------------------
// The supervisor proper.

/// How a preemptible supervised run ended.
#[derive(Debug)]
pub enum SupervisedRun {
    /// Every grid cell has an outcome; the merged result is final.
    Completed(Box<SweepResult>),
    /// The [`PreemptSignal`] was raised: the run stopped at a cell
    /// boundary with `cells_done` outcomes journaled. Re-dispatching
    /// through [`resume_sweep`] completes the grid byte-identically.
    Yielded {
        /// Grid slots with a journaled outcome when the run yielded.
        cells_done: usize,
        /// Total grid cells.
        cells_total: usize,
    },
}

/// Runs `spec` under the supervisor with `opts` and the production
/// runner, without journaling. This is what
/// [`run_sweep`](crate::sweep::run_sweep) delegates to.
pub fn run_supervised(spec: &SweepSpec, opts: &SupervisorOptions) -> SweepResult {
    let cache = CellCache::new();
    run_supervised_with(spec, opts, None, &|ctx| profile_cell_cached(ctx, &cache))
}

/// Runs `spec` under the supervisor with a custom runner and an
/// optional checkpoint journal. Cells append to the journal in
/// completion order; the merged result is assembled in grid order, so
/// journal order never leaks into the output.
///
/// This entry point is non-preemptible: callers that thread a
/// [`PreemptSignal`] through their options must use
/// [`run_supervised_preemptible`] instead, which can represent the
/// yielded state.
pub fn run_supervised_with(
    spec: &SweepSpec,
    opts: &SupervisorOptions,
    journal: Option<&mut JournalWriter>,
    runner: &Runner<'_>,
) -> SweepResult {
    match run_supervised_preemptible(spec, opts, journal, runner) {
        SupervisedRun::Completed(r) => *r,
        SupervisedRun::Yielded { .. } => unreachable!(
            "run_supervised_with is only reachable without a preempt signal; \
             preemptible callers use run_supervised_preemptible"
        ),
    }
}

/// [`run_supervised_with`] that honors [`SupervisorOptions::preempt`]:
/// when the signal is raised mid-grid the run stops at the next cell
/// boundary and returns [`SupervisedRun::Yielded`] — everything
/// finished so far is already fsync'd in the journal, which is the
/// checkpoint a later [`resume_sweep`] completes from.
pub fn run_supervised_preemptible(
    spec: &SweepSpec,
    opts: &SupervisorOptions,
    mut journal: Option<&mut JournalWriter>,
    runner: &Runner<'_>,
) -> SupervisedRun {
    let grid = spec.grid();
    let start = Instant::now();
    if let Some(j) = journal.as_deref_mut() {
        j.append(&spec_meta(&spec.family), &spec_payload(spec, opts));
    }
    let mut slots: Vec<Option<CellOutcome>> = (0..grid.len()).map(|_| None).collect();
    if run_missing(spec, &grid, opts, journal, runner, &mut slots) {
        SupervisedRun::Completed(Box::new(assemble(
            spec,
            slots,
            start.elapsed().as_secs_f64(),
        )))
    } else {
        SupervisedRun::Yielded {
            cells_done: slots.iter().filter(|s| s.is_some()).count(),
            cells_total: grid.len(),
        }
    }
}

fn preempt_raised(opts: &SupervisorOptions) -> bool {
    opts.preempt.as_ref().is_some_and(PreemptSignal::is_raised)
}

/// Fills every `None` slot by running its cell, appending each outcome
/// to the journal as it completes. Returns whether the grid is complete
/// — `false` only when a raised [`PreemptSignal`] stopped the run at a
/// cell boundary (cells already in flight still finish and journal).
fn run_missing(
    spec: &SweepSpec,
    grid: &[(i64, u64)],
    opts: &SupervisorOptions,
    mut journal: Option<&mut JournalWriter>,
    runner: &Runner<'_>,
    slots: &mut [Option<CellOutcome>],
) -> bool {
    let pending: Vec<usize> = (0..grid.len()).filter(|&i| slots[i].is_none()).collect();
    if pending.is_empty() {
        return true;
    }
    let workers = spec.jobs.max(1).min(pending.len());
    if workers <= 1 {
        for &i in &pending {
            if preempt_raised(opts) {
                return false;
            }
            let (size, seed) = grid[i];
            let outcome = supervise_cell(&spec.family, size, seed, opts, runner);
            if let Some(j) = journal.as_deref_mut() {
                j.append(
                    &cell_meta(&spec.family, i, &outcome),
                    &encode_outcome(&outcome),
                );
            }
            slots[i] = Some(outcome);
        }
        return true;
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, CellOutcome)>();
    std::thread::scope(|s| {
        let pending = &pending;
        let cursor = &cursor;
        for _ in 0..workers {
            let tx = tx.clone();
            s.spawn(move || loop {
                // The preempt check guards the *claim*: a raised signal
                // stops workers from starting new cells, while cells
                // already claimed run to completion and journal.
                if preempt_raised(opts) {
                    break;
                }
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&i) = pending.get(k) else {
                    break;
                };
                let (size, seed) = grid[i];
                let outcome = supervise_cell(&spec.family, size, seed, opts, runner);
                if tx.send((i, outcome)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // The supervising thread owns the slots and the journal — no
        // shared mutex, nothing a worker panic could poison. Each
        // outcome is journaled (and fsynced) the moment it arrives, so
        // a SIGKILL loses at most the cells still in flight.
        for (i, outcome) in rx {
            if let Some(j) = journal.as_deref_mut() {
                j.append(
                    &cell_meta(&spec.family, i, &outcome),
                    &encode_outcome(&outcome),
                );
            }
            slots[i] = Some(outcome);
        }
    });
    pending.iter().all(|&i| slots[i].is_some())
}

/// Splits filled slots into completed cells and quarantined cells, both
/// in grid order.
fn assemble(spec: &SweepSpec, slots: Vec<Option<CellOutcome>>, wall_secs: f64) -> SweepResult {
    let mut cells = Vec::new();
    let mut quarantined = Vec::new();
    for slot in slots {
        match slot.expect("every grid slot was filled by run_missing") {
            CellOutcome::Completed(c) => cells.push(*c),
            CellOutcome::Quarantined(q) => quarantined.push(q),
        }
    }
    SweepResult {
        spec: spec.clone(),
        cells,
        quarantined,
        wall_secs,
    }
}

/// What a resume salvaged and what it had to redo — surfaced to the CLI
/// and folded into the *resume accounting* registry, which is kept
/// separate from the deterministic merged metrics (a resumed run's
/// merged output must stay byte-identical to an uninterrupted run).
#[derive(Clone, Debug, Default)]
pub struct ResumeReport {
    /// Salvage + resume accounting: `journal.lines.*`,
    /// `journal.cells_salvaged`, `journal.cells_rerun`,
    /// `journal.cells_requarantined` — audited by [`Metrics::audit`].
    pub metrics: Metrics,
    /// Completed cells recovered from the journal.
    pub salvaged_cells: usize,
    /// Cells re-run because they were missing, torn, or quarantined.
    pub rerun_cells: usize,
    /// Human-readable notes (torn records, re-run quarantines, …).
    pub warnings: Vec<String>,
}

/// Resumes the sweep `spec` from the journal at `path` with the
/// production runner.
pub fn resume_sweep(
    spec: &SweepSpec,
    opts: &SupervisorOptions,
    path: &Path,
) -> Result<(SweepResult, ResumeReport), Error> {
    let cache = CellCache::new();
    resume_sweep_with(spec, opts, path, &|ctx| profile_cell_cached(ctx, &cache))
}

/// Resumes the sweep `spec` from the journal at `path`: salvages the
/// journal's valid prefix, adopts every completed cell that matches the
/// grid, re-runs missing / torn / quarantined cells (appending them to
/// the same journal), and returns a result byte-identical to an
/// uninterrupted run of the same spec.
///
/// # Errors
/// * [`Error::Io`] — the journal cannot be read or reopened for append;
/// * [`Error::Journal`] — the journal's spec record for this family
///   disagrees with `spec` + `opts` (resuming under a different grid or
///   failure policy would silently mix semantics).
///
/// A journal with *no* spec record for this family is not an error: the
/// family had not started when the original run died, so the resume
/// runs it from scratch (this is what lets one journal carry a
/// multi-family `repro sweep`).
pub fn resume_sweep_with(
    spec: &SweepSpec,
    opts: &SupervisorOptions,
    path: &Path,
    runner: &Runner<'_>,
) -> Result<(SweepResult, ResumeReport), Error> {
    resume_sweep_with_io(spec, opts, path, runner, &HostIo::real())
}

/// [`resume_sweep_with`] with every journal/artifact write routed
/// through `io` — the chaos suite's entry point for proving that a
/// faulted resume either completes byte-identically or fails typed.
///
/// Non-preemptible, like [`run_supervised_with`]: callers that set
/// [`SupervisorOptions::preempt`] use
/// [`resume_sweep_preemptible_with_io`].
pub fn resume_sweep_with_io(
    spec: &SweepSpec,
    opts: &SupervisorOptions,
    path: &Path,
    runner: &Runner<'_>,
    io: &HostIo,
) -> Result<(SweepResult, ResumeReport), Error> {
    match resume_sweep_preemptible_with_io(spec, opts, path, runner, io)? {
        (SupervisedRun::Completed(r), report) => Ok((*r, report)),
        (SupervisedRun::Yielded { .. }, _) => unreachable!(
            "resume_sweep_with_io is only reachable without a preempt signal; \
             preemptible callers use resume_sweep_preemptible_with_io"
        ),
    }
}

/// [`resume_sweep_with_io`] that honors [`SupervisorOptions::preempt`]:
/// a raised signal stops the re-run at the next cell boundary and
/// returns [`SupervisedRun::Yielded`] — the journal (salvaged prefix
/// plus everything this pass appended) remains the checkpoint for the
/// next dispatch, so preempt/resume cycles can stack arbitrarily deep
/// and still assemble byte-identical artifacts.
pub fn resume_sweep_preemptible_with_io(
    spec: &SweepSpec,
    opts: &SupervisorOptions,
    path: &Path,
    runner: &Runner<'_>,
    io: &HostIo,
) -> Result<(SupervisedRun, ResumeReport), Error> {
    let text = std::fs::read_to_string(path)?;
    let salvaged = journal::from_text_lossy(&text);
    let grid = spec.grid();
    let start = Instant::now();
    let mut report = ResumeReport::default();
    salvaged.observe_metrics(&mut report.metrics);
    report.warnings.extend(salvaged.warnings.iter().cloned());

    // Validate the (last) spec record for this family, if any.
    let want_payload = spec_payload(spec, opts);
    let spec_rec = salvaged
        .records
        .iter()
        .rfind(|r| r.meta == spec_meta(&spec.family));
    let family_started = match spec_rec {
        Some(rec) if rec.payload == want_payload => true,
        Some(rec) => {
            return Err(ParseJournalError {
                record: 0,
                message: format!(
                    "spec mismatch for family `{}`: journal has\n{}\nresume wants\n{}",
                    spec.family, rec.payload, want_payload
                ),
            }
            .into());
        }
        None => false,
    };

    // Adopt salvaged cells. Later records win (append-only journal:
    // a re-run simply appends a fresh record for the same index).
    let mut slots: Vec<Option<CellOutcome>> = (0..grid.len()).map(|_| None).collect();
    let cell_prefix = format!("cell {} ", spec.family);
    if family_started {
        for rec in &salvaged.records {
            let Some(rest) = rec.meta.strip_prefix(cell_prefix.as_str()) else {
                continue;
            };
            let mut tok = rest.split(' ');
            let (idx, status) = match (
                tok.next().and_then(|t| t.parse::<usize>().ok()),
                tok.next(),
                tok.next(),
            ) {
                (Some(i), Some(s), None) => (i, s),
                _ => {
                    report
                        .warnings
                        .push(format!("unparseable cell meta `{}`", rec.meta));
                    continue;
                }
            };
            if idx >= grid.len() {
                report
                    .warnings
                    .push(format!("cell index {idx} outside the grid"));
                continue;
            }
            let decoded = match status {
                "ok" => {
                    decode_cell_payload(&rec.payload).map(|c| CellOutcome::Completed(Box::new(c)))
                }
                "quarantined" => {
                    decode_quarantine_payload(&rec.payload).map(CellOutcome::Quarantined)
                }
                other => Err(format!("unknown cell status `{other}`")),
            };
            match decoded {
                Ok(outcome) => {
                    let (size, seed) = (outcome_size(&outcome), outcome_seed(&outcome));
                    if (size, seed) != grid[idx] {
                        report.warnings.push(format!(
                            "cell {idx} payload ({size}, {seed}) disagrees with the grid \
                             {:?}; re-running",
                            grid[idx]
                        ));
                        continue;
                    }
                    slots[idx] = Some(outcome);
                }
                Err(e) => {
                    report
                        .warnings
                        .push(format!("cell {idx} payload unusable ({e}); re-running"));
                }
            }
        }
    }

    // Quarantined cells get a fresh chance on resume: self-healing for
    // transient environments, and the re-run appends a newer record
    // that wins over the quarantine on any later resume.
    for slot in slots.iter_mut() {
        if let Some(CellOutcome::Quarantined(q)) = slot {
            report.warnings.push(format!(
                "re-running quarantined cell (size {}, seed {}): {}",
                q.size, q.seed, q.error
            ));
            report.metrics.inc("journal.cells_requarantined");
            *slot = None;
        }
    }

    report.salvaged_cells = slots.iter().filter(|s| s.is_some()).count();
    report.rerun_cells = grid.len() - report.salvaged_cells;
    report
        .metrics
        .add("journal.cells_rerun", report.rerun_cells as u64);

    let mut writer = if text.is_empty() || salvaged.records.is_empty() && salvaged.is_damaged() {
        // Nothing usable (empty file, or killed before the header hit
        // the disk): start the journal over.
        JournalWriter::create_with(io, path)?
    } else if salvaged.is_damaged() {
        // A torn tail or stray trailer would sit between the valid
        // prefix and everything this resume appends, and the *next*
        // salvage would stop at the damage and drop the appended
        // records. Rewrite the journal to its salvaged prefix first so
        // interleaved appends from a resumed writer always extend a
        // clean file.
        crate::artifact::atomic_write_with(io, path, &journal::to_text(&salvaged.records))?;
        report.metrics.inc("journal.rewritten");
        JournalWriter::append_to_with(io, path)?
    } else {
        JournalWriter::append_to_with(io, path)?
    };
    if !family_started {
        writer.append(&spec_meta(&spec.family), &want_payload);
    }
    let run = if run_missing(spec, &grid, opts, Some(&mut writer), runner, &mut slots) {
        SupervisedRun::Completed(Box::new(assemble(
            spec,
            slots,
            start.elapsed().as_secs_f64(),
        )))
    } else {
        SupervisedRun::Yielded {
            cells_done: slots.iter().filter(|s| s.is_some()).count(),
            cells_total: grid.len(),
        }
    };
    Ok((run, report))
}

fn outcome_size(o: &CellOutcome) -> i64 {
    match o {
        CellOutcome::Completed(c) => c.size,
        CellOutcome::Quarantined(q) => q.size,
    }
}

fn outcome_seed(o: &CellOutcome) -> u64 {
    match o {
        CellOutcome::Completed(c) => c.seed,
        CellOutcome::Quarantined(q) => q.seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let opts = SupervisorOptions::default();
        let a1 = backoff_ms(&opts, "stream", 4, 1, 1);
        let a2 = backoff_ms(&opts, "stream", 4, 1, 1);
        assert_eq!(a1, a2, "same cell, same attempt, same backoff");
        for attempt in 1..8 {
            let ms = backoff_ms(&opts, "stream", 4, 1, attempt);
            assert!(ms >= 1 && ms <= opts.backoff_cap_ms, "{ms}");
        }
        let other = backoff_ms(&opts, "stream", 4, 2, 1);
        assert!(
            a1 != other || a1 <= opts.backoff_cap_ms,
            "jitter varies by cell"
        );
        let zero = SupervisorOptions {
            backoff_base_ms: 0,
            ..SupervisorOptions::default()
        };
        assert_eq!(backoff_ms(&zero, "stream", 4, 1, 1), 0);
    }

    #[test]
    fn cell_payload_roundtrips() {
        let spec = SweepSpec::new("stream", &[4], 1);
        let result = run_supervised(&spec, &SupervisorOptions::default());
        let cell = &result.cells[0];
        let payload = encode_cell_payload(cell);
        let back = decode_cell_payload(&payload).unwrap();
        assert_eq!(back.size, cell.size);
        assert_eq!(back.seed, cell.seed);
        assert_eq!(back.stats, cell.stats);
        assert_eq!(back.report, cell.report);
        assert_eq!(back.metrics, cell.metrics);
        assert_eq!(back.error, cell.error);
        assert_eq!(back.attempts, cell.attempts);
    }

    #[test]
    fn quarantine_payload_roundtrips() {
        let q = QuarantinedCell {
            size: 8,
            seed: 3,
            attempts: 3,
            panics: 2,
            error: "panic: multi\nline".to_string(),
        };
        let payload = encode_quarantine_payload(&q);
        let back = decode_quarantine_payload(&payload).unwrap();
        assert_eq!(back.size, 8);
        assert_eq!(back.attempts, 3);
        assert_eq!(back.panics, 2);
        assert_eq!(back.error, "panic: multi line", "newlines flattened");
    }

    #[test]
    fn spec_payload_binds_grid_and_policy() {
        let spec = SweepSpec::new("stream", &[4, 8], 2).seeds(&[1, 2]);
        let a = spec_payload(&spec, &SupervisorOptions::default());
        assert!(a.contains("family stream"));
        assert!(a.contains("sizes 4,8"));
        assert!(a.contains("seeds 1,2"));
        assert!(a.contains("max_attempts 3"));
        let tighter = SupervisorOptions {
            max_attempts: 1,
            ..SupervisorOptions::default()
        };
        assert_ne!(a, spec_payload(&spec, &tighter));
        let other_jobs = SweepSpec {
            jobs: 7,
            ..spec.clone()
        };
        assert_eq!(
            a,
            spec_payload(&other_jobs, &SupervisorOptions::default()),
            "jobs must not bind the journal: resume may use any worker count"
        );
        let other_dispatch = SupervisorOptions {
            decode: Some(DecodeMode::Off),
            event_batch: Some(1),
            ..SupervisorOptions::default()
        };
        assert_eq!(
            a,
            spec_payload(&spec, &other_dispatch),
            "dispatch knobs must not bind the journal: all modes profile identically"
        );
        let preemptible = SupervisorOptions {
            preempt: Some(PreemptSignal::new()),
            ..SupervisorOptions::default()
        };
        assert_eq!(
            a,
            spec_payload(&spec, &preemptible),
            "scheduling must not bind the journal: a preempted run and its resume \
             share one spec record"
        );
    }

    #[test]
    fn preempt_yields_at_cell_boundary_and_resume_completes() {
        let dir = std::env::temp_dir().join(format!("drms-preempt-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal_path = dir.join("sweep.journal");
        let spec = SweepSpec::new("stream", &[4, 6, 8], 1).seeds(&[1, 2]);
        let opts = SupervisorOptions::default();

        // Baseline: uninterrupted run (no journal needed for comparison).
        let baseline = run_supervised(&spec, &opts);

        // Preempted run: the signal is raised after the second cell
        // completes, so the run must yield with exactly two outcomes
        // journaled.
        let signal = PreemptSignal::new();
        let preempt_opts = SupervisorOptions {
            preempt: Some(signal.clone()),
            ..SupervisorOptions::default()
        };
        let done = AtomicUsize::new(0);
        let cache = CellCache::new();
        let counting_runner = |ctx: &CellCtx<'_>| {
            let out = profile_cell_cached(ctx, &cache);
            if done.fetch_add(1, Ordering::SeqCst) + 1 == 2 {
                signal.raise();
            }
            out
        };
        let mut writer = JournalWriter::create(&journal_path).unwrap();
        match run_supervised_preemptible(&spec, &preempt_opts, Some(&mut writer), &counting_runner)
        {
            SupervisedRun::Yielded {
                cells_done,
                cells_total,
            } => {
                assert_eq!(cells_done, 2);
                assert_eq!(cells_total, 6);
            }
            SupervisedRun::Completed(_) => panic!("raised signal must yield the run"),
        }
        drop(writer);

        // Resume with a cleared signal: completes and matches baseline.
        let (resumed, report) = resume_sweep(&spec, &opts, &journal_path).unwrap();
        assert_eq!(report.salvaged_cells, 2);
        assert_eq!(report.rerun_cells, 4);
        let bench = |r: SweepResult| crate::sweep::SweepBench {
            jobs: 1,
            resumed: false,
            families: vec![crate::sweep::FamilyBench::from_resumed(r)],
        };
        assert_eq!(
            bench(resumed).to_json(),
            bench(baseline).to_json(),
            "preempt + resume must be byte-identical to an uninterrupted run"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cell_cache_reuses_workload_decoded_image_and_batch() {
        let cache = CellCache::new();
        let opts = SupervisorOptions::default();
        for seed in [1u64, 2, 3] {
            let ctx = CellCtx {
                family: "stream",
                size: 16,
                seed,
                attempt: 1,
                opts: &opts,
            };
            match profile_cell_cached(&ctx, &cache) {
                Attempt::Done(cell) => assert!(cell.error.is_none(), "seed {seed}"),
                _ => panic!("stream cell must profile cleanly"),
            }
        }
        assert_eq!(cache.misses(), 1, "one (family, size) pair, built once");
        assert_eq!(cache.hits(), 2, "the two later seeds hit the cache");
        assert_eq!(
            cache.batch_allocations(),
            1,
            "sequential cells share one event batch buffer"
        );
        let entry = cache.entry("stream", 16, DecodeMode::default()).unwrap();
        assert!(
            entry.decoded.as_ref().unwrap().stats().fused() > 0,
            "the shared image is pre-decoded with fusion"
        );
    }

    #[test]
    fn cached_runner_matches_uncached_across_dispatch_modes() {
        let spec = SweepSpec::new("stream", &[8, 16], 1).seeds(&[1, 2]);
        let baseline = run_supervised_with(
            &spec,
            &SupervisorOptions {
                decode: Some(DecodeMode::Off),
                event_batch: Some(1),
                ..SupervisorOptions::default()
            },
            None,
            &|ctx| profile_cell_cached(ctx, &CellCache::new()),
        );
        for decode in [DecodeMode::Blocks, DecodeMode::Fused] {
            let opts = SupervisorOptions {
                decode: Some(decode),
                event_batch: Some(64),
                ..SupervisorOptions::default()
            };
            let cached = run_supervised(&spec, &opts);
            assert_eq!(
                cached.fingerprint(),
                baseline.fingerprint(),
                "{decode:?}: dispatch mode must not perturb the merged report"
            );
            assert_eq!(
                cached.merged_metrics().to_json(),
                baseline.merged_metrics().to_json(),
                "{decode:?}: dispatch mode must not perturb merged metrics"
            );
        }
    }
}
