//! Crash-safe artifact writes.
//!
//! Every file the harness emits (`BENCH_*.json`, `.metrics.json`,
//! reports, traces, schedules) is written through [`atomic_write`]: the
//! bytes land in a temporary file in the destination directory, are
//! fsynced, and only then renamed over the target. A crash mid-write
//! leaves either the old artifact or the new one — never a torn file —
//! which is what lets the kill-and-resume CI gate `cmp` artifacts
//! byte-for-byte after a SIGKILL.

use drms::trace::hostio::HostIo;
use std::fs;
use std::io;
use std::path::Path;

/// Atomically replaces `path` with `contents` through real host I/O.
///
/// # Errors
/// Any I/O failure from creating, writing, syncing or renaming the
/// temporary file. On error the target is untouched.
pub fn atomic_write(path: &Path, contents: &str) -> io::Result<()> {
    atomic_write_with(&HostIo::real(), path, contents)
}

/// Atomically replaces `path` with `contents`, performing every file
/// operation through `io` so chaos suites can inject ENOSPC, fsync-EIO,
/// torn writes, and rename failures at each step.
///
/// The temporary sibling is named `<file>.tmp.<pid>` so concurrent
/// writers of *different* artifacts never collide, and a leftover from
/// a previous crash is simply overwritten on the next run.
///
/// # Errors
/// Any I/O failure (real or injected) from creating, writing, syncing
/// or renaming the temporary file, or from syncing the parent directory
/// afterwards. On error the target is untouched (the rename either
/// happened or it did not; a failed directory sync surfaces as an error
/// even though the rename landed, because durability was requested and
/// could not be guaranteed).
pub fn atomic_write_with(io: &HostIo, path: &Path, contents: &str) -> io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp = path.to_path_buf();
    tmp.set_file_name(format!(
        "{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let result = (|| {
        let mut f = io.create(&tmp)?;
        io.write_all(&mut f, contents.as_bytes())?;
        // Data must be durable before the rename makes it visible,
        // otherwise a crash could expose a renamed-but-empty file.
        io.fsync(&f)?;
        drop(f);
        io.rename(&tmp, path)
    })();
    if let Err(e) = result {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    // Persist the rename itself (the directory entry) — without this a
    // power cut after `rename` can roll the directory back to the old
    // artifact, or to none at all.
    io.sync_parent_dir(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("drms-artifact-{name}-{}", std::process::id()));
        let _ = fs::create_dir_all(&dir);
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = tmp_dir("replace");
        let path = dir.join("out.json");
        atomic_write(&path, "first").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "first");
        atomic_write(&path, "second").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "no temp files left behind");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_faults_leave_the_target_untouched() {
        let dir = tmp_dir("faults");
        let path = dir.join("out.json");
        atomic_write(&path, "good").unwrap();
        for spec in [
            "create:enospc",
            "write:enospc",
            "write:torn",
            "fsync:eio",
            "rename:eio",
        ] {
            let io = HostIo::from_spec(spec).unwrap();
            let err = atomic_write_with(&io, &path, "clobbered").unwrap_err();
            assert!(drms::trace::hostio::is_injected(&err), "{spec}: {err}");
            assert_eq!(fs::read_to_string(&path).unwrap(), "good", "{spec}");
            let leftovers: Vec<_> = fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
                .collect();
            assert!(leftovers.is_empty(), "{spec}: temp cleaned up");
        }
        // A failed directory sync is surfaced, but the rename landed.
        let io = HostIo::from_spec("syncdir:eio").unwrap();
        assert!(atomic_write_with(&io, &path, "landed").is_err());
        assert_eq!(fs::read_to_string(&path).unwrap(), "landed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_error_and_target_untouched() {
        let dir = tmp_dir("missing");
        let path = dir.join("nope").join("out.json");
        assert!(atomic_write(&path, "x").is_err());
        assert!(!path.exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
