//! Crash-safe artifact writes.
//!
//! Every file the harness emits (`BENCH_*.json`, `.metrics.json`,
//! reports, traces, schedules) is written through [`atomic_write`]: the
//! bytes land in a temporary file in the destination directory, are
//! fsynced, and only then renamed over the target. A crash mid-write
//! leaves either the old artifact or the new one — never a torn file —
//! which is what lets the kill-and-resume CI gate `cmp` artifacts
//! byte-for-byte after a SIGKILL.

use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::Path;

/// Atomically replaces `path` with `contents`.
///
/// The temporary sibling is named `<file>.tmp.<pid>` so concurrent
/// writers of *different* artifacts never collide, and a leftover from
/// a previous crash is simply overwritten on the next run.
///
/// # Errors
/// Any I/O failure from creating, writing, syncing or renaming the
/// temporary file. On error the target is untouched.
pub fn atomic_write(path: &Path, contents: &str) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp = path.to_path_buf();
    tmp.set_file_name(format!(
        "{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let mut f = File::create(&tmp)?;
    f.write_all(contents.as_bytes())?;
    // Data must be durable before the rename makes it visible,
    // otherwise a crash could expose a renamed-but-empty file.
    f.sync_all()?;
    drop(f);
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    // Persist the rename itself (the directory entry). Best-effort:
    // directories cannot be opened for writing on every platform.
    if let Some(dir) = dir {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("drms-artifact-{name}-{}", std::process::id()));
        let _ = fs::create_dir_all(&dir);
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = tmp_dir("replace");
        let path = dir.join("out.json");
        atomic_write(&path, "first").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "first");
        atomic_write(&path, "second").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "no temp files left behind");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_error_and_target_untouched() {
        let dir = tmp_dir("missing");
        let path = dir.join("nope").join("out.json");
        assert!(atomic_write(&path, "x").is_err());
        assert!(!path.exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
