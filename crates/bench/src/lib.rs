//! Experiment harness shared by the `repro` binary and the Criterion
//! benches: run workloads under each tool, measure slowdown and space,
//! and regenerate the series behind every table and figure of the paper.

pub mod artifact;
pub mod supervisor;
pub mod sweep;

use drms::analysis::{Measurement, OverheadTable};
use drms::core::{DrmsConfig, DrmsProfiler, RmsProfiler};
use drms::tools::{CallgrindTool, HelgrindTool, MemcheckTool};
use drms::trace::Metrics;
use drms::vm::{NullTool, RunConfig, RunStats, Tool, Vm};
use drms::workloads::Workload;
use std::time::Instant;

/// The tool lineup of Table 1, in the paper's column order.
pub const TOOLS: [&str; 6] = [
    "nulgrind",
    "memcheck",
    "callgrind",
    "helgrind",
    "aprof",
    "aprof-drms",
];

/// Runs `workload` uninstrumented ("native") and returns `(secs, stats)`.
///
/// # Panics
/// Panics if the guest program fails: harness workloads are expected to
/// be well-formed.
pub fn run_native(w: &Workload) -> (f64, RunStats) {
    let mut vm = Vm::new(&w.program, w.run_config()).expect("valid workload");
    let start = Instant::now();
    let stats = vm.run(&mut NullTool).expect("native run");
    (start.elapsed().as_secs_f64(), stats)
}

/// Runs `workload` under a statically-known tool, returning `(secs,
/// shadow bytes, stats)`.
///
/// This is the monomorphized hot path: the tool type is fixed at the
/// call site, so the VM's per-event dispatch compiles to direct calls —
/// no `dyn Tool` vtable in the loop.
///
/// # Panics
/// Panics on failing guest programs.
pub fn run_tool_with<T: Tool>(w: &Workload, tool: &mut T) -> (f64, u64, RunStats) {
    let mut vm = Vm::new(&w.program, w.run_config()).expect("valid workload");
    let start = Instant::now();
    let stats = vm.run(tool).expect("instrumented run");
    let secs = start.elapsed().as_secs_f64();
    (secs, tool.shadow_bytes(), stats)
}

/// Runs `workload` under the named tool (see [`TOOLS`]), returning
/// `(secs, shadow bytes, stats)`.
///
/// Dispatches on the name **once**, then hands the concrete tool to the
/// monomorphized [`run_tool_with`] — the measured run itself carries no
/// dynamic dispatch.
///
/// # Panics
/// Panics on unknown tool names or failing guest programs.
pub fn run_tool(w: &Workload, tool_name: &str) -> (f64, u64, RunStats) {
    match tool_name {
        "nulgrind" => run_tool_with(w, &mut NullTool),
        "memcheck" => run_tool_with(w, &mut MemcheckTool::for_program(&w.program)),
        "callgrind" => run_tool_with(w, &mut CallgrindTool::new()),
        "helgrind" => run_tool_with(w, &mut HelgrindTool::new()),
        "aprof" => run_tool_with(w, &mut RmsProfiler::new()),
        "aprof-drms" => run_tool_with(w, &mut DrmsProfiler::new(DrmsConfig::full())),
        other => panic!("unknown tool `{other}`"),
    }
}

/// Measures every tool on every workload of `suite`, filling an
/// [`OverheadTable`] under the given suite label. Each cell is the best
/// of `repeats` runs (to tame timer noise at these small scales).
pub fn measure_suite(table: &mut OverheadTable, label: &str, suite: &[Workload], repeats: u32) {
    measure_suite_observed(table, label, suite, repeats, &mut Metrics::new());
}

/// Like [`measure_suite`], but also folds per-tool overhead accounting
/// into `metrics`, so Table 1 can be regenerated from a live run's
/// metrics export:
///
/// * deterministic `tool.<tool>.shadow_bytes` gauges (summed over the
///   suite's workloads — gauge merges are additive) and
///   `tool.<tool>.runs` counters;
/// * wall-clock dispatch time per tool in the **timings** section
///   (`<label>.<tool>.secs`, plus `<label>.native.secs`), which only
///   [`Metrics::to_json_with_timings`] renders — the default export
///   stays byte-deterministic.
pub fn measure_suite_observed(
    table: &mut OverheadTable,
    label: &str,
    suite: &[Workload],
    repeats: u32,
    metrics: &mut Metrics,
) {
    let mut native_secs = 0.0;
    let mut tool_secs: Vec<f64> = vec![0.0; TOOLS.len()];
    let mut tool_shadow: Vec<u64> = vec![0; TOOLS.len()];
    for w in suite {
        let mut native = f64::INFINITY;
        let mut guest_bytes = 0;
        for _ in 0..repeats.max(1) {
            let (secs, stats) = run_native(w);
            native = native.min(secs);
            guest_bytes = stats.guest_bytes;
        }
        native_secs += native;
        for (ti, tool) in TOOLS.iter().enumerate() {
            let mut best = f64::INFINITY;
            let mut shadow = 0;
            for _ in 0..repeats.max(1) {
                let (secs, bytes, _) = run_tool(w, tool);
                best = best.min(secs);
                shadow = bytes;
            }
            tool_secs[ti] += best;
            tool_shadow[ti] += shadow;
            metrics.inc(format!("tool.{tool}.runs"));
            table.record(
                label,
                tool,
                &w.name,
                Measurement {
                    tool_seconds: best,
                    native_seconds: native,
                    shadow_bytes: shadow,
                    guest_bytes,
                },
            );
        }
    }
    metrics.set_timing(format!("{label}.native.secs"), native_secs);
    for (ti, tool) in TOOLS.iter().enumerate() {
        metrics.set_timing(format!("{label}.{tool}.secs"), tool_secs[ti]);
        metrics.set_gauge(format!("tool.{tool}.shadow_bytes"), tool_shadow[ti]);
    }
}

/// Runs a workload under the full drms profiler with a custom run
/// config, returning the profile report.
///
/// # Panics
/// Panics if the guest program fails.
pub fn profile_with_config(w: &Workload, config: RunConfig) -> drms::core::ProfileReport {
    let mut prof = DrmsProfiler::new(DrmsConfig::full());
    Vm::new(&w.program, config)
        .expect("valid workload")
        .run(&mut prof)
        .expect("profiled run");
    prof.into_report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms::workloads::patterns;

    #[test]
    fn run_tool_covers_all_tools() {
        let w = patterns::producer_consumer(4);
        for tool in TOOLS {
            let (secs, _, stats) = run_tool(&w, tool);
            assert!(secs >= 0.0);
            assert!(stats.basic_blocks > 0, "{tool}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown tool")]
    fn unknown_tool_panics() {
        let w = patterns::producer_consumer(2);
        let _ = run_tool(&w, "bogus");
    }

    #[test]
    fn measure_suite_fills_table() {
        let mut table = OverheadTable::new();
        let suite = vec![patterns::producer_consumer(4), patterns::stream_reader(4)];
        measure_suite(&mut table, "patterns", &suite, 1);
        assert_eq!(table.len(), TOOLS.len() * suite.len());
        for tool in TOOLS {
            assert!(table.mean_slowdown("patterns", tool) > 0.0);
            assert!(table.mean_space("patterns", tool) >= 1.0);
        }
    }

    #[test]
    fn observed_measurement_feeds_table_and_metrics() {
        let mut table = OverheadTable::new();
        let mut metrics = drms::trace::Metrics::new();
        let suite = vec![patterns::stream_reader(4)];
        measure_suite_observed(&mut table, "patterns", &suite, 1, &mut metrics);
        assert_eq!(table.len(), TOOLS.len());
        assert_eq!(metrics.audit(), Ok(()));
        for tool in TOOLS {
            assert_eq!(metrics.counter(&format!("tool.{tool}.runs")), 1);
            assert!(
                metrics.timing(&format!("patterns.{tool}.secs")).is_some(),
                "{tool} wall-clock recorded"
            );
        }
        assert!(metrics.gauge("tool.aprof-drms.shadow_bytes") > 0);
        assert!(
            !metrics.to_json().contains(".secs"),
            "wall-clock stays out of the deterministic export"
        );
        assert!(metrics
            .to_json_with_timings()
            .contains("patterns.native.secs"));
    }
}

/// Process exit code for a guest abort, one distinct code per failure
/// class so scripts and CI can dispatch on `$?` without parsing stderr:
///
/// | code | abort reason |
/// |---|---|
/// | 3 | invalid guest program ([`RunError::Validate`]) |
/// | 4 | deadlock ([`RunError::Deadlock`]) |
/// | 5 | watchdog budget — instruction count or wall-clock deadline ([`RunError::InstructionLimit`] / [`RunError::DeadlineExceeded`]) |
/// | 6 | corrupt guest stack ([`RunError::CorruptStack`]) |
/// | 7 | schedule replay failed ([`RunError::ScheduleMissing`] / [`RunError::ScheduleDiverged`]) |
/// | 8 | any other guest error (bad address, division by zero, misused mutex, …) |
///
/// Codes 0–2 are reserved for success, generic I/O failures and usage
/// errors respectively.
pub fn run_error_exit_code(e: &drms::vm::RunError) -> i32 {
    use drms::vm::RunError;
    // Exhaustive on purpose: a new RunError variant must pick its exit
    // code here (and in the table above) or the build fails — the
    // wildcard this replaced silently bucketed new failure classes
    // into 8, letting the docs and the mapping drift apart.
    match e {
        RunError::Validate(_) => 3,
        RunError::Deadlock { .. } => 4,
        RunError::InstructionLimit { .. } | RunError::DeadlineExceeded { .. } => 5,
        RunError::CorruptStack { .. } => 6,
        RunError::ScheduleMissing | RunError::ScheduleDiverged { .. } => 7,
        RunError::DivisionByZero { .. }
        | RunError::BadAddress { .. }
        | RunError::MutexNotOwned { .. }
        | RunError::MutexReentry { .. }
        | RunError::BadThreadId { .. } => 8,
    }
}

#[cfg(test)]
mod exit_code_tests {
    use super::run_error_exit_code;
    use drms::trace::{RoutineId, ThreadId};
    use drms::vm::{RunError, ValidateError};

    /// One instance of every [`RunError`] variant. Adding a variant to
    /// the enum without adding it here (and to the mapping's doc table)
    /// leaves the new variant untested; the exhaustive match in
    /// [`run_error_exit_code`] already refuses to compile until the
    /// mapping itself is decided.
    fn every_variant() -> Vec<(RunError, i32)> {
        vec![
            (RunError::Validate(ValidateError::BadMain), 3),
            (RunError::Deadlock { blocked: vec![] }, 4),
            (RunError::InstructionLimit { limit: 1 }, 5),
            (RunError::DeadlineExceeded { millis: 100 }, 5),
            (
                RunError::CorruptStack {
                    thread: ThreadId::MAIN,
                },
                6,
            ),
            (RunError::ScheduleMissing, 7),
            (
                RunError::ScheduleDiverged {
                    slice: 0,
                    reason: String::new(),
                },
                7,
            ),
            (
                RunError::DivisionByZero {
                    routine: RoutineId::new(0),
                },
                8,
            ),
            (RunError::BadAddress { value: -1 }, 8),
            (
                RunError::MutexNotOwned {
                    mutex: 0,
                    thread: ThreadId::MAIN,
                },
                8,
            ),
            (
                RunError::MutexReentry {
                    mutex: 0,
                    thread: ThreadId::MAIN,
                },
                8,
            ),
            (RunError::BadThreadId { value: 7 }, 8),
        ]
    }

    #[test]
    fn every_failure_class_has_a_distinct_documented_code() {
        let cases = every_variant();
        assert_eq!(cases.len(), 12, "one case per RunError variant");
        for (err, code) in cases {
            let got = run_error_exit_code(&err);
            assert_eq!(got, code, "{err}");
            assert!((3..=8).contains(&got), "documented range is 3–8: {err}");
        }
    }
}
