//! The parallel sweep engine.
//!
//! The paper's evaluation (§5) sweeps one routine across many workload
//! sizes and fits the resulting drms plots. Every VM run is
//! self-contained and deterministic, so a sweep — workload family ×
//! size grid × seed set — is embarrassingly parallel: this module fans
//! the cells out across a scoped thread pool, collects a
//! `(ProfileReport, RunStats)` pair per cell, and merges them into cost
//! plots and variance tables.
//!
//! Determinism is preserved by construction: each worker writes its
//! finished cell into the slot indexed by the cell's grid position, so
//! the merged output is in grid order (sizes outer, seeds inner)
//! regardless of thread timing, and a `--jobs 1` and a `--jobs 4` sweep
//! of the same spec produce byte-identical merged reports.
//!
//! Execution is delegated to the crash-safe
//! [`supervisor`](crate::supervisor): every cell runs under panic
//! isolation with deterministic retry/backoff, and cells that exhaust
//! their attempts land in [`SweepResult::quarantined`] instead of
//! aborting the grid.
//!
//! [`SweepBench`] pairs a serial and a parallel run of the same spec and
//! serializes the deterministic measurements (instructions, events,
//! shadow bytes, attempt accounting, fingerprints) as
//! `BENCH_sweep.json` (schema [`BENCH_SCHEMA`]), giving every future
//! change a perf trajectory to beat; the wall-clock side (speedup,
//! per-cell seconds) lives in a [`timings sibling`](SweepBench::timings_json)
//! so the bench JSON itself stays byte-reproducible. [`validate_bench_json`]
//! re-parses an emitted file — current v2 or legacy v1 — and checks it
//! against its schema: the offline CI gate.

use crate::supervisor::{run_supervised, SupervisorOptions};
use drms::analysis::{CostPlot, InputMetric};
use drms::core::{drms_variance, report_io, ProfileReport, VarianceReport};
use drms::sched::fnv1a;
use drms::trace::Metrics;
use drms::vm::RunStats;
use drms::workloads::{imgpipe, minidb, patterns, sorting, Workload};
use std::fmt::Write as _;

/// Workload families a sweep can iterate, keyed by CLI-friendly names.
///
/// Each family maps a single scalar size to a [`Workload`] with a focus
/// routine, so sweep cells stay one-dimensional.
pub const FAMILIES: [&str; 6] = [
    "minidb",
    "mysqlslap",
    "imgpipe",
    "stream",
    "producer-consumer",
    "sort",
];

/// Builds the workload of `family` at `size`, or `None` for an unknown
/// family name (see [`FAMILIES`]).
pub fn family_workload(family: &str, size: i64) -> Option<Workload> {
    let size = size.max(1);
    Some(match family {
        "minidb" => minidb::minidb_scaling(&[size]),
        "mysqlslap" => minidb::mysqlslap(2, 2, size),
        "imgpipe" => imgpipe::vips(2, size as usize, 2),
        "stream" => patterns::stream_reader(size),
        "producer-consumer" => patterns::producer_consumer(size),
        "sort" => sorting::selection_sort_default(size),
        _ => return None,
    })
}

/// One sweep: a workload family crossed with a size grid and a seed set,
/// executed on `jobs` worker threads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepSpec {
    /// Family name (see [`FAMILIES`]).
    pub family: String,
    /// Workload sizes, the grid's outer dimension.
    pub sizes: Vec<i64>,
    /// Guest `Rand` seeds, the grid's inner dimension.
    pub seeds: Vec<u64>,
    /// Worker threads; `1` runs inline with no pool.
    pub jobs: usize,
}

impl SweepSpec {
    /// A spec over `family` with one default seed.
    pub fn new(family: &str, sizes: &[i64], jobs: usize) -> Self {
        SweepSpec {
            family: family.to_string(),
            sizes: sizes.to_vec(),
            seeds: vec![0],
            jobs,
        }
    }

    /// Replaces the seed set.
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// The flattened `(size, seed)` grid, sizes outer, seeds inner —
    /// the canonical cell order of every merge.
    pub fn grid(&self) -> Vec<(i64, u64)> {
        self.sizes
            .iter()
            .flat_map(|&size| self.seeds.iter().map(move |&seed| (size, seed)))
            .collect()
    }
}

/// The result of one sweep cell: one profiled VM run.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// Workload size of this cell.
    pub size: i64,
    /// Guest seed of this cell.
    pub seed: u64,
    /// Wall-clock seconds of the profiled run.
    pub secs: f64,
    /// Shadow bytes held by the profiler after the run.
    pub shadow_bytes: u64,
    /// Finalized run statistics.
    pub stats: RunStats,
    /// The (possibly partial) drms profile.
    pub report: ProfileReport,
    /// The run's observability registry (deterministic counters, gauges
    /// and histograms — see [`drms::trace::Metrics`]).
    pub metrics: Metrics,
    /// Rendered abort reason, if the guest failed.
    pub error: Option<String>,
    /// Attempts the supervisor spent on this cell (1 = first try).
    pub attempts: u32,
    /// Attempts that ended in a caught panic before the cell completed.
    pub panics: u32,
}

/// A cell the supervisor gave up on: every attempt failed (or the first
/// failure was fatal), so the sweep carries the failure as data instead
/// of aborting the grid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantinedCell {
    /// Workload size of the cell.
    pub size: i64,
    /// Guest seed of the cell.
    pub seed: u64,
    /// Attempts spent before quarantining.
    pub attempts: u32,
    /// Attempts that ended in a caught panic.
    pub panics: u32,
    /// The last attempt's failure, rendered.
    pub error: String,
}

/// A completed sweep: every cell in grid order, plus the sweep's own
/// wall time.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// The spec that produced this result.
    pub spec: SweepSpec,
    /// Completed cells in grid order (sizes outer, seeds inner).
    pub cells: Vec<SweepCell>,
    /// Quarantined cells in grid order; disjoint from
    /// [`cells`](Self::cells), together they cover the grid.
    pub quarantined: Vec<QuarantinedCell>,
    /// Wall-clock seconds of the whole sweep.
    pub wall_secs: f64,
}

impl SweepResult {
    /// Serializes every cell's profile into one deterministic text
    /// blob: a header per cell (family, size, seed, error class)
    /// followed by the report in the canonical report-io format.
    /// Quarantined cells appear at their grid position as a single
    /// `## quarantined …` line, so a quarantine shifts no other cell's
    /// bytes.
    ///
    /// Two sweeps of the same spec merge byte-identically exactly when
    /// every cell profiled identically — the `--jobs 1` vs `--jobs N`
    /// determinism gate (and the kill-and-resume gate) compare these
    /// blobs.
    pub fn merged_report_text(&self) -> String {
        let mut out = String::new();
        let mut cells = self.cells.iter().peekable();
        let mut quarantined = self.quarantined.iter().peekable();
        for (size, seed) in self.spec.grid() {
            if cells
                .peek()
                .is_some_and(|c| c.size == size && c.seed == seed)
            {
                let cell = cells.next().expect("peeked");
                let _ = writeln!(
                    out,
                    "## cell family={} size={} seed={} error={}",
                    self.spec.family,
                    cell.size,
                    cell.seed,
                    cell.error.as_deref().unwrap_or("none"),
                );
                out.push_str(&report_io::to_text(&cell.report));
            } else if quarantined
                .peek()
                .is_some_and(|q| q.size == size && q.seed == seed)
            {
                let q = quarantined.next().expect("peeked");
                let _ = writeln!(
                    out,
                    "## quarantined family={} size={} seed={} attempts={} error={}",
                    self.spec.family, q.size, q.seed, q.attempts, q.error,
                );
            }
        }
        out
    }

    /// FNV-1a fingerprint of [`merged_report_text`](Self::merged_report_text).
    pub fn fingerprint(&self) -> u64 {
        fnv1a(self.merged_report_text().as_bytes())
    }

    /// Merged cost plot of the family's focus routine under `metric`:
    /// the union of every cell's plot, keeping the worst-case cost per
    /// input size (the paper's plot semantics).
    pub fn focus_plot(&self, metric: InputMetric) -> CostPlot {
        let mut worst: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        if let Some(w) = family_workload(&self.spec.family, 1) {
            if let Some(focus) = w.focus {
                for cell in &self.cells {
                    let profile = cell.report.merged_routine(focus);
                    for (input, cost) in CostPlot::of(&profile, metric).points {
                        let e = worst.entry(input).or_insert(cost);
                        *e = (*e).max(cost);
                    }
                }
            }
        }
        CostPlot {
            metric,
            points: worst.into_iter().collect(),
        }
    }

    /// Per-routine drms variance across all cells (completed runs only),
    /// the sweep analogue of the chaos scan's variance table.
    pub fn variance(&self) -> VarianceReport {
        let completed: Vec<ProfileReport> = self
            .cells
            .iter()
            .filter(|c| c.error.is_none())
            .map(|c| c.report.clone())
            .collect();
        drms_variance(&completed)
    }

    /// Total guest instructions across all cells.
    pub fn instructions(&self) -> u64 {
        self.cells.iter().map(|c| c.stats.instructions).sum()
    }

    /// Total instrumentation events across all cells.
    pub fn events(&self) -> u64 {
        self.cells.iter().map(|c| c.stats.events).sum()
    }

    /// Total shadow bytes across all cells.
    pub fn shadow_bytes(&self) -> u64 {
        self.cells.iter().map(|c| c.shadow_bytes).sum()
    }

    /// Total supervisor attempts across completed and quarantined cells.
    pub fn attempts(&self) -> u64 {
        self.cells.iter().map(|c| c.attempts as u64).sum::<u64>()
            + self
                .quarantined
                .iter()
                .map(|q| q.attempts as u64)
                .sum::<u64>()
    }

    /// Total non-first attempts: `attempts - (completed + quarantined)`.
    pub fn retries(&self) -> u64 {
        self.attempts()
            .saturating_sub((self.cells.len() + self.quarantined.len()) as u64)
    }

    /// Total attempts that ended in a caught panic.
    pub fn panics(&self) -> u64 {
        self.cells.iter().map(|c| c.panics as u64).sum::<u64>()
            + self
                .quarantined
                .iter()
                .map(|q| q.panics as u64)
                .sum::<u64>()
    }

    /// Merges every cell's metrics registry in grid order into one
    /// sweep-wide registry (counters, gauges, histograms and timings
    /// all add — see [`Metrics::merge`]), then tags it with the grid
    /// shape and the supervisor's attempt accounting
    /// (`sweep.attempts == sweep.completed + sweep.retries +
    /// sweep.quarantined`, cross-checked by [`Metrics::audit`]).
    ///
    /// Deterministic like [`merged_report_text`](Self::merged_report_text):
    /// a `--jobs 1` and a `--jobs N` sweep of the same spec produce
    /// byte-identical [`Metrics::to_json`] outputs. The supervisor
    /// counters are *derived* from per-cell fields rather than counted
    /// during execution, so a resumed sweep reconstructs the identical
    /// registry from salvaged cells.
    pub fn merged_metrics(&self) -> Metrics {
        let mut merged = Metrics::new();
        for cell in &self.cells {
            merged
                .merge(&cell.metrics)
                .expect("sweep cells share one bucket layout per histogram name");
        }
        merged.add("sweep.attempts", self.attempts());
        merged.add("sweep.completed", self.cells.len() as u64);
        merged.add("sweep.retries", self.retries());
        merged.add("sweep.quarantined", self.quarantined.len() as u64);
        merged.add("sweep.panics", self.panics());
        merged.set_gauge(
            "sweep.cells",
            (self.cells.len() + self.quarantined.len()) as u64,
        );
        merged.set_gauge("sweep.sizes", self.spec.sizes.len() as u64);
        merged.set_gauge("sweep.seeds", self.spec.seeds.len() as u64);
        merged
    }
}

/// Runs the sweep described by `spec` under the crash-safe supervisor
/// with default failure policy (3 attempts per cell, exponential
/// backoff, no deadline).
///
/// With `jobs == 1` the cells run inline, serially, in grid order. With
/// more jobs, a pool of workers pulls cells off a shared cursor and
/// streams finished cells over a channel to the supervising thread,
/// which slots them by grid position — the result is identical to the
/// serial one regardless of scheduling, and a panicking cell poisons
/// nothing (it is retried, then quarantined).
///
/// Unknown family names do not panic: every cell of such a spec is
/// quarantined with a fatal `unknown workload family` error, and the
/// sweep still returns normally.
pub fn run_sweep(spec: &SweepSpec) -> SweepResult {
    run_supervised(spec, &SupervisorOptions::default())
}

/// Schema tag of `BENCH_sweep.json`; bump when the layout changes.
///
/// v2 (vs [`BENCH_SCHEMA_V1`]) drops every wall-clock field — those
/// move to the [timings sibling](SweepBench::timings_json) — and adds
/// the supervisor's attempt accounting and quarantine lists, making the
/// bench JSON itself byte-deterministic for a given spec.
pub const BENCH_SCHEMA: &str = "drms-sweep-v2";

/// The previous bench schema; [`validate_bench_json`] still accepts it
/// so archived baselines keep validating.
pub const BENCH_SCHEMA_V1: &str = "drms-sweep-v1";

/// One family's serial + parallel measurement pair inside a
/// [`SweepBench`].
#[derive(Clone, Debug)]
pub struct FamilyBench {
    /// The (parallel) sweep result; cells and totals come from here.
    pub parallel: SweepResult,
    /// Wall seconds of the serial (`jobs = 1`) run of the same spec.
    pub serial_secs: f64,
    /// Fingerprint of the serial run's merged report.
    pub serial_fingerprint: u64,
    /// Fingerprint of the serial run's merged metrics JSON.
    pub serial_metrics_fingerprint: u64,
}

impl FamilyBench {
    /// Measures `spec` twice — serially, then with `spec.jobs` workers —
    /// and pairs the results.
    pub fn measure(spec: &SweepSpec) -> FamilyBench {
        Self::measure_with(spec, &SupervisorOptions::default(), None)
    }

    /// Like [`measure`](Self::measure) with an explicit failure policy
    /// and an optional checkpoint journal. Only the parallel run — the
    /// one whose cells become the bench — is journaled; the serial run
    /// exists purely as the determinism baseline.
    pub fn measure_with(
        spec: &SweepSpec,
        opts: &SupervisorOptions,
        journal: Option<&mut crate::supervisor::JournalWriter>,
    ) -> FamilyBench {
        // One cache for both runs: the parallel pass reuses every
        // workload, pre-decoded program and event batch the serial
        // baseline built, so only the first pass pays construction.
        let cache = crate::supervisor::CellCache::new();
        let runner =
            |ctx: &crate::supervisor::CellCtx| crate::supervisor::profile_cell_cached(ctx, &cache);
        let serial = crate::supervisor::run_supervised_with(
            &SweepSpec {
                jobs: 1,
                ..spec.clone()
            },
            opts,
            None,
            &runner,
        );
        let parallel = crate::supervisor::run_supervised_with(spec, opts, journal, &runner);
        FamilyBench {
            serial_secs: serial.wall_secs,
            serial_fingerprint: serial.fingerprint(),
            serial_metrics_fingerprint: fnv1a(serial.merged_metrics().to_json().as_bytes()),
            parallel,
        }
    }

    /// Wraps a resumed sweep result. A resume re-runs no serial
    /// baseline (the point is *not* to redo work), so the serial fields
    /// mirror the parallel ones: `diverged()` is false by construction
    /// and the timings sibling flags the run as resumed.
    pub fn from_resumed(parallel: SweepResult) -> FamilyBench {
        FamilyBench {
            serial_secs: parallel.wall_secs,
            serial_fingerprint: parallel.fingerprint(),
            serial_metrics_fingerprint: fnv1a(parallel.merged_metrics().to_json().as_bytes()),
            parallel,
        }
    }

    /// FNV-1a fingerprint of the parallel run's merged metrics JSON.
    pub fn metrics_fingerprint(&self) -> u64 {
        fnv1a(self.parallel.merged_metrics().to_json().as_bytes())
    }

    /// Serial wall time over parallel wall time.
    pub fn speedup(&self) -> f64 {
        self.serial_secs / self.parallel.wall_secs.max(1e-12)
    }

    /// Whether the serial and parallel merged reports differ — always a
    /// bug, the engine's core invariant.
    pub fn diverged(&self) -> bool {
        self.serial_fingerprint != self.parallel.fingerprint()
    }

    /// Whether the serial and parallel merged **metrics** differ — the
    /// observability analogue of [`diverged`](Self::diverged): the same
    /// grid must count the same events no matter how many workers ran it.
    pub fn metrics_diverged(&self) -> bool {
        self.serial_metrics_fingerprint != self.metrics_fingerprint()
    }
}

/// Escapes a string for embedding in a JSON document.
fn json_str(s: &str) -> String {
    format!(
        "\"{}\"",
        s.replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
            .replace('\t', "\\t")
    )
}

/// The machine-readable sweep benchmark: every family measured serially
/// and in parallel, serialized as `BENCH_sweep.json`
/// ([`to_json`](Self::to_json), deterministic) plus a timings sibling
/// ([`timings_json`](Self::timings_json), wall-clock).
#[derive(Clone, Debug)]
pub struct SweepBench {
    /// Worker threads used for the parallel runs.
    pub jobs: usize,
    /// Whether this bench was assembled by resuming a journal (serial
    /// baselines mirror the parallel runs in that case).
    pub resumed: bool,
    /// Per-family measurement pairs.
    pub families: Vec<FamilyBench>,
}

impl SweepBench {
    /// Total serial wall seconds across families.
    pub fn serial_secs(&self) -> f64 {
        self.families.iter().map(|f| f.serial_secs).sum()
    }

    /// Total parallel wall seconds across families.
    pub fn parallel_secs(&self) -> f64 {
        self.families.iter().map(|f| f.parallel.wall_secs).sum()
    }

    /// Aggregate serial-over-parallel speedup.
    pub fn speedup(&self) -> f64 {
        self.serial_secs() / self.parallel_secs().max(1e-12)
    }

    /// Whether any family diverged between serial and parallel runs.
    pub fn diverged(&self) -> bool {
        self.families.iter().any(|f| f.diverged())
    }

    /// Whether any family's merged metrics diverged between serial and
    /// parallel runs.
    pub fn metrics_diverged(&self) -> bool {
        self.families.iter().any(|f| f.metrics_diverged())
    }

    /// Renders the benchmark as `BENCH_sweep.json` (schema
    /// [`BENCH_SCHEMA`]).
    ///
    /// Every field is deterministic for a given spec: no wall-clock, no
    /// worker count, no resume flag. Two runs of the same grid — any
    /// `--jobs`, interrupted-and-resumed or not — must render
    /// byte-identical blobs; the kill-and-resume CI gate `cmp`s them.
    /// Wall-clock measurements live in
    /// [`timings_json`](Self::timings_json).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let instructions: u64 = self
            .families
            .iter()
            .map(|f| f.parallel.instructions())
            .sum();
        let events: u64 = self.families.iter().map(|f| f.parallel.events()).sum();
        let shadow: u64 = self
            .families
            .iter()
            .map(|f| f.parallel.shadow_bytes())
            .sum();
        let attempts: u64 = self.families.iter().map(|f| f.parallel.attempts()).sum();
        let completed: u64 = self
            .families
            .iter()
            .map(|f| f.parallel.cells.len() as u64)
            .sum();
        let retries: u64 = self.families.iter().map(|f| f.parallel.retries()).sum();
        let quarantined: u64 = self
            .families
            .iter()
            .map(|f| f.parallel.quarantined.len() as u64)
            .sum();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{BENCH_SCHEMA}\",");
        let _ = writeln!(out, "  \"instructions\": {instructions},");
        let _ = writeln!(out, "  \"events\": {events},");
        let _ = writeln!(out, "  \"shadow_bytes\": {shadow},");
        let _ = writeln!(out, "  \"attempts\": {attempts},");
        let _ = writeln!(out, "  \"completed\": {completed},");
        let _ = writeln!(out, "  \"retries\": {retries},");
        let _ = writeln!(out, "  \"quarantined\": {quarantined},");
        out.push_str("  \"families\": [\n");
        for (i, fam) in self.families.iter().enumerate() {
            let p = &fam.parallel;
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"family\": \"{}\",", p.spec.family);
            let _ = writeln!(out, "      \"sizes\": {:?},", p.spec.sizes);
            let _ = writeln!(out, "      \"seeds\": {:?},", p.spec.seeds);
            let _ = writeln!(out, "      \"fingerprint\": \"{:#018x}\",", p.fingerprint());
            let _ = writeln!(
                out,
                "      \"metrics_fingerprint\": \"{:#018x}\",",
                fam.metrics_fingerprint()
            );
            let _ = writeln!(out, "      \"attempts\": {},", p.attempts());
            let _ = writeln!(out, "      \"retries\": {},", p.retries());
            out.push_str("      \"cells\": [\n");
            for (j, c) in p.cells.iter().enumerate() {
                let _ = write!(
                    out,
                    "        {{\"size\": {}, \"seed\": {}, \"attempts\": {}, \
                     \"instructions\": {}, \"events\": {}, \"basic_blocks\": {}, \
                     \"shadow_bytes\": {}, \"error\": {}}}",
                    c.size,
                    c.seed,
                    c.attempts,
                    c.stats.instructions,
                    c.stats.events,
                    c.stats.basic_blocks,
                    c.shadow_bytes,
                    match &c.error {
                        Some(e) => json_str(e),
                        None => "null".to_string(),
                    },
                );
                out.push_str(if j + 1 < p.cells.len() { ",\n" } else { "\n" });
            }
            out.push_str("      ],\n");
            out.push_str("      \"quarantined\": [\n");
            for (j, q) in p.quarantined.iter().enumerate() {
                let _ = write!(
                    out,
                    "        {{\"size\": {}, \"seed\": {}, \"attempts\": {}, \
                     \"panics\": {}, \"error\": {}}}",
                    q.size,
                    q.seed,
                    q.attempts,
                    q.panics,
                    json_str(&q.error),
                );
                out.push_str(if j + 1 < p.quarantined.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            out.push_str("      ]\n");
            out.push_str(if i + 1 < self.families.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the wall-clock side of the benchmark (schema
    /// `drms-sweep-timings-v1`): jobs, serial/parallel seconds, speedup,
    /// divergence verdicts and per-cell seconds. Everything
    /// nondeterministic lives here, keeping
    /// [`to_json`](Self::to_json) byte-reproducible.
    pub fn timings_json(&self) -> String {
        let mut out = String::new();
        let instructions: u64 = self
            .families
            .iter()
            .map(|f| f.parallel.instructions())
            .sum();
        let events: u64 = self.families.iter().map(|f| f.parallel.events()).sum();
        let wall = self.parallel_secs().max(1e-12);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"drms-sweep-timings-v1\",");
        let _ = writeln!(out, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(out, "  \"resumed\": {},", self.resumed);
        let _ = writeln!(out, "  \"wall_secs_serial\": {:.6},", self.serial_secs());
        let _ = writeln!(
            out,
            "  \"wall_secs_parallel\": {:.6},",
            self.parallel_secs()
        );
        let _ = writeln!(out, "  \"speedup\": {:.4},", self.speedup());
        let _ = writeln!(
            out,
            "  \"instructions_per_sec\": {:.1},",
            instructions as f64 / wall
        );
        let _ = writeln!(out, "  \"events_per_sec\": {:.1},", events as f64 / wall);
        let _ = writeln!(out, "  \"divergence\": {},", self.diverged());
        let _ = writeln!(
            out,
            "  \"metrics_divergence\": {},",
            self.metrics_diverged()
        );
        out.push_str("  \"families\": [\n");
        for (i, fam) in self.families.iter().enumerate() {
            let p = &fam.parallel;
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"family\": \"{}\",", p.spec.family);
            let _ = writeln!(out, "      \"serial_secs\": {:.6},", fam.serial_secs);
            let _ = writeln!(out, "      \"parallel_secs\": {:.6},", p.wall_secs);
            let _ = writeln!(out, "      \"speedup\": {:.4},", fam.speedup());
            let _ = writeln!(out, "      \"divergence\": {},", fam.diverged());
            out.push_str("      \"cells\": [\n");
            for (j, c) in p.cells.iter().enumerate() {
                let _ = write!(
                    out,
                    "        {{\"size\": {}, \"seed\": {}, \"secs\": {:.6}}}",
                    c.size, c.seed, c.secs,
                );
                out.push_str(if j + 1 < p.cells.len() { ",\n" } else { "\n" });
            }
            out.push_str("      ]\n");
            out.push_str(if i + 1 < self.families.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

// ---------------------------------------------------------------------------
// Schema validation: a minimal JSON reader (the workspace is offline and
// dependency-free, so no serde) plus the drms-sweep-v1 checks.

/// A parsed JSON value — just enough of the data model for validation.
#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let esc = self.bytes.get(self.pos + 1).copied();
                    out.push(match esc {
                        Some(b'"') => '"',
                        Some(b'\\') => '\\',
                        Some(b'n') => '\n',
                        Some(b't') => '\t',
                        other => {
                            return Err(format!("unsupported escape {other:?}"));
                        }
                    });
                    self.pos += 2;
                }
                Some(&b) => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let ch_len = match b {
                        _ if b < 0x80 => 1,
                        _ if b >> 5 == 0b110 => 2,
                        _ if b >> 4 == 0b1110 => 3,
                        _ => 4,
                    };
                    let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + ch_len])
                        .map_err(|e| e.to_string())?;
                    out.push_str(s);
                    self.pos += ch_len;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            self.expect(b',')?;
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.eat(b'}') {
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            if self.eat(b'}') {
                return Ok(Json::Obj(fields));
            }
            self.expect(b',')?;
        }
    }
}

/// Validates a `BENCH_sweep.json` blob against its schema — current
/// [`BENCH_SCHEMA`] (v2) or legacy [`BENCH_SCHEMA_V1`], dispatched on
/// the blob's own `schema` tag so archived baselines keep validating.
///
/// v2 checks include the supervisor's attempt accounting
/// (`completed + retries + quarantined == attempts`, at the top level
/// and per family); v1 checks include the serial-vs-parallel
/// divergence verdicts that schema recorded inline.
///
/// # Errors
/// A human-readable description of the first violation: parse failure,
/// unknown schema tag, missing or mistyped field, empty family list,
/// broken accounting, or (v1) a recorded divergence.
pub fn validate_bench_json(text: &str) -> Result<(), String> {
    let root = JsonParser::parse(text)?;
    match root.get("schema") {
        Some(Json::Str(s)) if s == BENCH_SCHEMA => validate_v2(&root),
        Some(Json::Str(s)) if s == BENCH_SCHEMA_V1 => validate_v1(&root),
        other => Err(format!("bad schema tag: {other:?}")),
    }
}

/// A `%.18g`-free integer read: the mini parser stores numbers as f64,
/// which is exact for every count this schema emits (< 2^53).
fn non_negative(obj: &Json, key: &str) -> Result<f64, String> {
    let v = obj
        .get(key)
        .and_then(Json::num)
        .ok_or_else(|| format!("missing numeric `{key}`"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("`{key}` must be a finite non-negative number"));
    }
    Ok(v)
}

fn fingerprint_field(obj: &Json, key: &str, ctx: &str) -> Result<(), String> {
    match obj.get(key) {
        Some(Json::Str(f)) if f.starts_with("0x") && f.len() == 18 => Ok(()),
        other => Err(format!("{ctx}: bad `{key}` {other:?}")),
    }
}

fn validate_v2(root: &Json) -> Result<(), String> {
    for key in ["instructions", "events", "shadow_bytes"] {
        non_negative(root, key)?;
    }
    let attempts = non_negative(root, "attempts")?;
    let completed = non_negative(root, "completed")?;
    let retries = non_negative(root, "retries")?;
    let quarantined = non_negative(root, "quarantined")?;
    if completed + retries + quarantined != attempts {
        return Err(format!(
            "attempt accounting broken: completed ({completed}) + retries ({retries}) \
             + quarantined ({quarantined}) != attempts ({attempts})"
        ));
    }
    let Some(Json::Arr(families)) = root.get("families") else {
        return Err("missing `families` array".to_string());
    };
    if families.is_empty() {
        return Err("`families` is empty".to_string());
    }
    for fam in families {
        let name = match fam.get("family") {
            Some(Json::Str(s)) => s.clone(),
            _ => return Err("family entry without a `family` name".to_string()),
        };
        let ctx = format!("family `{name}`");
        fingerprint_field(fam, "fingerprint", &ctx)?;
        fingerprint_field(fam, "metrics_fingerprint", &ctx)?;
        let fam_attempts = non_negative(fam, "attempts").map_err(|e| format!("{ctx}: {e}"))?;
        non_negative(fam, "retries").map_err(|e| format!("{ctx}: {e}"))?;
        let Some(Json::Arr(cells)) = fam.get("cells") else {
            return Err(format!("{ctx}: missing `cells` array"));
        };
        let Some(Json::Arr(quarantine)) = fam.get("quarantined") else {
            return Err(format!("{ctx}: missing `quarantined` array"));
        };
        if cells.is_empty() && quarantine.is_empty() {
            return Err(format!("{ctx}: no cells and no quarantine — empty grid"));
        }
        let mut attempt_sum = 0.0;
        for cell in cells {
            for key in [
                "size",
                "seed",
                "attempts",
                "instructions",
                "events",
                "basic_blocks",
                "shadow_bytes",
            ] {
                if cell.get(key).and_then(Json::num).is_none() {
                    return Err(format!("{ctx}: cell missing numeric `{key}`"));
                }
            }
            attempt_sum += cell.get("attempts").and_then(Json::num).unwrap_or(0.0);
            match cell.get("error") {
                Some(Json::Null) | Some(Json::Str(_)) => {}
                other => return Err(format!("{ctx}: bad cell error field {other:?}")),
            }
        }
        for q in quarantine {
            for key in ["size", "seed", "attempts", "panics"] {
                if q.get(key).and_then(Json::num).is_none() {
                    return Err(format!("{ctx}: quarantine entry missing numeric `{key}`"));
                }
            }
            attempt_sum += q.get("attempts").and_then(Json::num).unwrap_or(0.0);
            match q.get("error") {
                Some(Json::Str(e)) if !e.is_empty() => {}
                other => {
                    return Err(format!(
                        "{ctx}: quarantine entry needs a non-empty error, got {other:?}"
                    ));
                }
            }
        }
        if attempt_sum != fam_attempts {
            return Err(format!(
                "{ctx}: per-cell attempts sum to {attempt_sum}, \
                 family claims {fam_attempts}"
            ));
        }
    }
    Ok(())
}

fn validate_v1(root: &Json) -> Result<(), String> {
    let jobs = root
        .get("jobs")
        .and_then(Json::num)
        .ok_or("missing numeric `jobs`")?;
    if jobs < 1.0 {
        return Err(format!("jobs must be >= 1, got {jobs}"));
    }
    for key in [
        "wall_secs_serial",
        "wall_secs_parallel",
        "speedup",
        "instructions",
        "instructions_per_sec",
        "events",
        "events_per_sec",
        "shadow_bytes",
    ] {
        let v = root
            .get(key)
            .and_then(Json::num)
            .ok_or_else(|| format!("missing numeric `{key}`"))?;
        if !v.is_finite() || v < 0.0 {
            return Err(format!("`{key}` must be a finite non-negative number"));
        }
    }
    if root.get("divergence") != Some(&Json::Bool(false)) {
        return Err("serial and parallel sweeps diverged".to_string());
    }
    let Some(Json::Arr(families)) = root.get("families") else {
        return Err("missing `families` array".to_string());
    };
    if families.is_empty() {
        return Err("`families` is empty".to_string());
    }
    for fam in families {
        let name = match fam.get("family") {
            Some(Json::Str(s)) => s.clone(),
            _ => return Err("family entry without a `family` name".to_string()),
        };
        if fam.get("divergence") != Some(&Json::Bool(false)) {
            return Err(format!("family `{name}` diverged"));
        }
        match fam.get("fingerprint") {
            Some(Json::Str(f)) if f.starts_with("0x") && f.len() == 18 => {}
            other => return Err(format!("family `{name}`: bad fingerprint {other:?}")),
        }
        let Some(Json::Arr(cells)) = fam.get("cells") else {
            return Err(format!("family `{name}`: missing `cells` array"));
        };
        if cells.is_empty() {
            return Err(format!("family `{name}`: no cells"));
        }
        for cell in cells {
            for key in [
                "size",
                "seed",
                "secs",
                "instructions",
                "events",
                "basic_blocks",
                "shadow_bytes",
            ] {
                if cell.get(key).and_then(Json::num).is_none() {
                    return Err(format!("family `{name}`: cell missing numeric `{key}`"));
                }
            }
            match cell.get("error") {
                Some(Json::Null) | Some(Json::Str(_)) => {}
                other => {
                    return Err(format!("family `{name}`: bad cell error field {other:?}"));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_sizes_outer_seeds_inner() {
        let spec = SweepSpec::new("stream", &[4, 8], 1).seeds(&[1, 2]);
        assert_eq!(spec.grid(), vec![(4, 1), (4, 2), (8, 1), (8, 2)]);
    }

    #[test]
    fn every_family_builds_a_focused_workload() {
        for family in FAMILIES {
            let w = family_workload(family, 4).expect(family);
            assert!(w.focus.is_some(), "{family} needs a focus routine");
        }
        assert!(family_workload("bogus", 4).is_none());
    }

    #[test]
    fn serial_and_parallel_sweeps_merge_identically() {
        let spec = SweepSpec::new("stream", &[4, 8, 16], 4).seeds(&[1, 2]);
        let serial = run_sweep(&SweepSpec {
            jobs: 1,
            ..spec.clone()
        });
        let parallel = run_sweep(&spec);
        assert_eq!(serial.cells.len(), 6);
        assert_eq!(serial.merged_report_text(), parallel.merged_report_text());
        assert_eq!(serial.fingerprint(), parallel.fingerprint());
    }

    #[test]
    fn merged_metrics_are_audited_and_jobs_invariant() {
        let spec = SweepSpec::new("producer-consumer", &[4, 8], 4).seeds(&[1, 2]);
        let serial = run_sweep(&SweepSpec {
            jobs: 1,
            ..spec.clone()
        });
        let parallel = run_sweep(&spec);
        let (sm, pm) = (serial.merged_metrics(), parallel.merged_metrics());
        assert_eq!(sm.audit(), Ok(()), "{:?}", sm.audit());
        assert_eq!(
            sm.to_json(),
            pm.to_json(),
            "merged metrics must not depend on worker count"
        );
        assert_eq!(sm.gauge("sweep.cells"), 4);
        assert_eq!(sm.gauge("sweep.sizes"), 2);
        assert_eq!(sm.gauge("sweep.seeds"), 2);
        assert_eq!(sm.counter("sweep.attempts"), 4);
        assert_eq!(sm.counter("sweep.completed"), 4);
        assert_eq!(sm.counter("sweep.retries"), 0);
        assert_eq!(sm.counter("sweep.quarantined"), 0);
        assert_eq!(sm.counter("sweep.panics"), 0);
        assert_eq!(
            sm.counter("vm.events.total"),
            serial.events(),
            "merged event counter matches the stats total"
        );
        let per_cell: u64 = serial
            .cells
            .iter()
            .map(|c| c.metrics.counter("vm.instructions"))
            .sum();
        assert_eq!(sm.counter("vm.instructions"), per_cell);
    }

    #[test]
    fn focus_plot_merges_worst_case_points() {
        let spec = SweepSpec::new("stream", &[4, 8], 1);
        let result = run_sweep(&spec);
        let plot = result.focus_plot(InputMetric::Drms);
        let inputs: Vec<u64> = plot.points.iter().map(|p| p.0).collect();
        assert!(inputs.contains(&4) && inputs.contains(&8), "{inputs:?}");
        let sorted = {
            let mut s = inputs.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(inputs, sorted, "plot points are sorted by input");
    }

    #[test]
    fn bench_json_emits_and_validates() {
        let spec = SweepSpec::new("stream", &[4, 8], 2);
        let bench = SweepBench {
            jobs: 2,
            resumed: false,
            families: vec![FamilyBench::measure(&spec)],
        };
        assert!(!bench.diverged());
        let json = bench.to_json();
        validate_bench_json(&json).expect("emitted JSON matches the schema");
        assert!(
            !json.contains("secs") && !json.contains("jobs"),
            "wall-clock and worker count stay out of the deterministic bench"
        );
        let timings = bench.timings_json();
        assert!(timings.contains("\"schema\": \"drms-sweep-timings-v1\""));
        assert!(timings.contains("\"jobs\": 2"));
        assert!(timings.contains("\"resumed\": false"));
        assert!(timings.contains("\"divergence\": false"));
    }

    #[test]
    fn validator_rejects_broken_blobs() {
        assert!(validate_bench_json("not json").is_err());
        assert!(validate_bench_json("{}").is_err());
        let spec = SweepSpec::new("stream", &[4], 1);
        let bench = SweepBench {
            jobs: 1,
            resumed: false,
            families: vec![FamilyBench::measure(&spec)],
        };
        let good = bench.to_json();
        validate_bench_json(&good).expect("baseline validates");
        let miscounted = good.replace(
            "\"retries\": 0,\n  \"quarantined\"",
            "\"retries\": 5,\n  \"quarantined\"",
        );
        assert_ne!(miscounted, good, "replacement hit the top-level counter");
        let err = validate_bench_json(&miscounted).unwrap_err();
        assert!(err.contains("accounting"), "{err}");
        let bad_family_sum = good.replace(
            "\"attempts\": 1,\n      \"retries\"",
            "\"attempts\": 9,\n      \"retries\"",
        );
        assert_ne!(bad_family_sum, good);
        let err = validate_bench_json(&bad_family_sum).unwrap_err();
        assert!(err.contains("attempts"), "{err}");
        let no_schema = good.replace(BENCH_SCHEMA, "drms-sweep-v0");
        assert!(validate_bench_json(&no_schema).is_err());
    }

    #[test]
    fn legacy_v1_blobs_still_validate() {
        let v1 = format!(
            r#"{{
  "schema": "{BENCH_SCHEMA_V1}",
  "jobs": 2,
  "wall_secs_serial": 0.5,
  "wall_secs_parallel": 0.3,
  "speedup": 1.6667,
  "instructions": 1000,
  "instructions_per_sec": 3333.3,
  "events": 500,
  "events_per_sec": 1666.7,
  "shadow_bytes": 4096,
  "divergence": false,
  "families": [
    {{
      "family": "stream",
      "sizes": [4],
      "seeds": [0],
      "serial_secs": 0.5,
      "parallel_secs": 0.3,
      "speedup": 1.6667,
      "fingerprint": "0x0123456789abcdef",
      "divergence": false,
      "cells": [
        {{"size": 4, "seed": 0, "secs": 0.3, "instructions": 1000,
          "events": 500, "basic_blocks": 100, "shadow_bytes": 4096,
          "error": null}}
      ]
    }}
  ]
}}
"#
        );
        validate_bench_json(&v1).expect("archived v1 baselines keep validating");
        let diverged = v1.replace("\"divergence\": false", "\"divergence\": true");
        let err = validate_bench_json(&diverged).unwrap_err();
        assert!(err.contains("diverged"), "{err}");
    }

    #[test]
    fn unknown_family_quarantines_instead_of_panicking() {
        let spec = SweepSpec::new("bogus-family", &[4, 8], 2).seeds(&[1, 2]);
        let result = run_sweep(&spec);
        assert!(result.cells.is_empty());
        assert_eq!(result.quarantined.len(), 4, "every grid cell quarantined");
        for q in &result.quarantined {
            assert_eq!(q.attempts, 1, "fatal failures are not retried");
            assert!(q.error.contains("unknown workload family"), "{}", q.error);
        }
        let m = result.merged_metrics();
        assert_eq!(m.audit(), Ok(()), "{:?}", m.audit());
        assert_eq!(m.counter("sweep.quarantined"), 4);
        assert_eq!(m.counter("sweep.completed"), 0);
        assert!(
            result.merged_report_text().contains("## quarantined"),
            "quarantines appear in the merged report"
        );
    }

    #[test]
    fn json_parser_handles_the_data_model() {
        let v =
            JsonParser::parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\"y"}, "d": null, "e": true}"#)
                .unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.5),
                Json::Num(-3.0)
            ]))
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")),
            Some(&Json::Str("x\"y".into()))
        );
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(v.get("e"), Some(&Json::Bool(true)));
        assert!(JsonParser::parse("{\"a\": }").is_err());
        assert!(JsonParser::parse("[1, 2] trailing").is_err());
    }
}
