//! Abuse tests for the checkpoint journal codec: the malformed files a
//! long-lived daemon actually sees on disk after crashes, retried
//! appends, and torn drains. Every case must salvage with consistent
//! `journal.*` accounting — the daemon trusts those counters when it
//! decides which cells to re-run after a restart.

use drms_trace::journal::{
    encode_record, from_text, from_text_lossy, to_text, JournalRecord, FILE_HEADER,
};
use drms_trace::Metrics;

fn rec(meta: &str, payload: &str) -> JournalRecord {
    JournalRecord {
        meta: meta.to_string(),
        payload: payload.to_string(),
    }
}

fn sample() -> Vec<JournalRecord> {
    vec![
        rec("spec stream", "family stream\nsizes 4,8\nseeds 1\n"),
        rec("cell stream 0 ok", "size 4\nseed 1\ncost 10\n"),
        rec("cell stream 1 ok", "size 8\nseed 1\ncost 20\n"),
    ]
}

/// Counters fed to the registry must always satisfy the audit
/// invariant `salvaged + dropped == total`.
fn assert_accounting(s: &drms_trace::journal::SalvagedJournal) {
    assert_eq!(s.salvaged, s.records.len());
    assert_eq!(s.salvaged + s.dropped, s.total);
    let mut m = Metrics::new();
    s.observe_metrics(&mut m);
    assert_eq!(m.counter("journal.cells_salvaged"), s.salvaged as u64);
    assert_eq!(m.audit(), Ok(()), "{:?}", m.audit());
}

/// A writer that died mid-flush and retried can leave a duplicate
/// `@end` trailer between two intact records. The noise is skipped
/// with a warning — the records *after* it must not be dropped.
#[test]
fn duplicate_end_trailer_is_skipped_not_fatal() {
    let records = sample();
    let mut text = String::from(FILE_HEADER);
    text.push('\n');
    text.push_str(&encode_record(&records[0].meta, &records[0].payload));
    text.push_str("@end ~deadbeef\n"); // retried flush left this behind
    text.push_str(&encode_record(&records[1].meta, &records[1].payload));
    text.push_str(&encode_record(&records[2].meta, &records[2].payload));

    let s = from_text_lossy(&text);
    assert_eq!(
        s.records, records,
        "records after the stray trailer survive"
    );
    assert_eq!(s.dropped, 0, "a stray trailer costs no records");
    assert!(s.is_damaged());
    assert!(
        s.warnings.iter().any(|w| w.contains("stray `@end`")),
        "{:?}",
        s.warnings
    );
    assert_accounting(&s);
    assert!(
        from_text(&text).is_err(),
        "strict parse still refuses noise"
    );
}

/// Truncation mid-record while the daemon drains to disk: the torn
/// record is dropped, everything before it is salvaged, and the
/// counters report exactly what was lost.
#[test]
fn truncation_mid_record_during_drain_salvages_prefix() {
    let text = to_text(&sample());
    let cut = text.find("cost 20").expect("payload of record 3") + 4;
    let s = from_text_lossy(&text[..cut]);
    assert_eq!(s.records, sample()[..2], "valid prefix survives the tear");
    assert_eq!(s.salvaged, 2);
    assert_eq!(s.dropped, 1, "exactly the torn record is lost");
    assert_accounting(&s);
}

/// Both abuses at once: a stray trailer in the middle *and* a torn
/// final record. Salvage keeps every intact record and the counters
/// stay consistent.
#[test]
fn stray_trailer_plus_torn_tail_accounts_for_both() {
    let records = sample();
    let mut text = String::from(FILE_HEADER);
    text.push('\n');
    text.push_str(&encode_record(&records[0].meta, &records[0].payload));
    text.push_str("@end ~0\n");
    text.push_str(&encode_record(&records[1].meta, &records[1].payload));
    let torn = encode_record(&records[2].meta, &records[2].payload);
    text.push_str(&torn[..torn.len() - 9]); // tear inside the trailer

    let s = from_text_lossy(&text);
    assert_eq!(s.records, records[..2]);
    assert_eq!(s.dropped, 1);
    assert!(s.warnings.len() >= 2, "{:?}", s.warnings);
    assert_accounting(&s);
}

/// The resumed-writer discipline: salvaging a torn journal, rewriting
/// it to the valid prefix, and appending fresh records yields a file
/// that strictly parses — whereas appending straight onto the torn
/// tail would interleave good records *behind* the damage and lose
/// them to the next salvage. This is the codec-level contract that
/// `supervisor::resume_sweep` relies on.
#[test]
fn interleaved_append_after_rewrite_survives_the_next_salvage() {
    let records = sample();
    let full = to_text(&records[..2]);
    // Tear at a line boundary inside record 2's payload, as a drain
    // killed between two buffered line writes would.
    let torn = &full[..full.find("cost 10").expect("payload line")];

    // Naive interleaved append onto the torn tail: the appended record
    // sits behind the tear and the next salvage cannot reach it.
    let mut naive = torn.to_string();
    naive.push_str(&encode_record(&records[2].meta, &records[2].payload));
    let s = from_text_lossy(&naive);
    assert_eq!(s.records, records[..1], "append behind a tear is lost");
    assert_eq!(s.dropped, 2, "the torn record and the appended one");
    assert_accounting(&s);

    // The resume discipline: rewrite to the salvaged prefix, then append.
    let salvaged = from_text_lossy(torn);
    assert_eq!(salvaged.records, records[..1]);
    let mut healed = to_text(&salvaged.records);
    healed.push_str(&encode_record(&records[2].meta, &records[2].payload));
    let reparsed = from_text(&healed).expect("healed journal parses strictly");
    assert_eq!(reparsed, vec![records[0].clone(), records[2].clone()]);
    assert_accounting(&from_text_lossy(&healed));
}
