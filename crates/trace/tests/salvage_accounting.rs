//! Lossy-salvage accounting regression tests, shared between the trace
//! codec and the schedule codec.
//!
//! The invariant under test: `salvaged_lines + dropped_lines` must
//! exactly equal the number of non-comment, non-blank input lines
//! (`total_lines`, counted independently of the salvage decisions), for
//! every corruption shape — trailing garbage, mid-file corruption, and
//! comment/blank-only inputs. [`Metrics::audit`] enforces the same
//! relation at run time through `observe_metrics`.

use drms_trace::obs::Metrics;
use drms_trace::sched::{PreemptCause, SchedDecision, Schedule};
use drms_trace::{codec, sched, Event, RoutineId, ThreadId, TimedEvent};

/// Counts the lines the salvage loops are required to account for.
fn countable_lines(text: &str) -> usize {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .count()
}

fn sample_trace_text() -> String {
    let events: Vec<TimedEvent> = (0..6)
        .map(|i| {
            TimedEvent::new(
                i + 1,
                ThreadId::MAIN,
                i,
                Event::Call {
                    routine: RoutineId::new(i as u32 % 3),
                },
            )
        })
        .collect();
    codec::to_text(&events)
}

fn sample_sched_text() -> String {
    let schedule = Schedule {
        quantum: 50,
        decisions: (0..6)
            .map(|i| SchedDecision {
                thread: ThreadId::new(i % 2),
                steps: 3 + i,
                cause: PreemptCause::Quantum,
            })
            .collect(),
    };
    sched::to_text(&schedule)
}

/// Applies one corruption shape to a well-formed serialized text.
fn corrupt(text: &str, shape: &str) -> String {
    let lines: Vec<&str> = text.lines().collect();
    match shape {
        "clean" => text.to_owned(),
        "trailing-garbage" => format!("{text}???? not a line ~zz\nmore garbage\n"),
        "mid-file" => {
            let mut out = String::new();
            for (i, l) in lines.iter().enumerate() {
                if i == lines.len() / 2 {
                    out.push_str("CORRUPTED LINE WITH NO CHECKSUM\n");
                }
                out.push_str(l);
                out.push('\n');
            }
            out
        }
        "comments-only" => "# a comment\n\n   \n# another\n".to_owned(),
        "comments-after-corruption" => {
            format!("{text}bad line here\n# comment after the corruption\n\nbad again\n")
        }
        "flipped-payload" => {
            // Flip a byte inside a checksummed payload: the checksum
            // mismatch must drop the line (and everything after it).
            let mut out = String::new();
            for (i, l) in lines.iter().enumerate() {
                if i == 1 {
                    out.push_str(&l.replace(['0', '1', '2'], "9"));
                } else {
                    out.push_str(l);
                }
                out.push('\n');
            }
            out
        }
        other => panic!("unknown corruption shape `{other}`"),
    }
}

const SHAPES: [&str; 6] = [
    "clean",
    "trailing-garbage",
    "mid-file",
    "comments-only",
    "comments-after-corruption",
    "flipped-payload",
];

#[test]
fn trace_salvage_accounts_for_every_countable_line() {
    let base = sample_trace_text();
    for shape in SHAPES {
        let text = corrupt(&base, shape);
        let expected = countable_lines(&text);
        let s = codec::from_text_lossy(&text);
        assert_eq!(
            s.salvaged_lines + s.dropped_lines,
            expected,
            "{shape}: salvaged {} + dropped {} != countable {expected}",
            s.salvaged_lines,
            s.dropped_lines
        );
        assert_eq!(s.total_lines, expected, "{shape}: total_lines drifted");
        assert_eq!(s.events.len(), s.salvaged_lines, "{shape}");
        assert_eq!(s.is_damaged(), s.dropped_lines > 0, "{shape}");
    }
}

#[test]
fn sched_salvage_accounts_for_every_countable_line() {
    let base = sample_sched_text();
    for shape in SHAPES {
        let text = corrupt(&base, shape);
        let expected = countable_lines(&text);
        let s = sched::from_text_lossy(&text);
        assert_eq!(
            s.salvaged_lines + s.dropped_lines,
            expected,
            "{shape}: salvaged {} + dropped {} != countable {expected}",
            s.salvaged_lines,
            s.dropped_lines
        );
        assert_eq!(s.total_lines, expected, "{shape}: total_lines drifted");
        assert_eq!(s.is_damaged(), s.dropped_lines > 0, "{shape}");
    }
}

#[test]
fn comment_and_blank_lines_count_in_neither_side() {
    let s = codec::from_text_lossy("# only\n\n  \t \n# comments\n");
    assert_eq!(
        (s.salvaged_lines, s.dropped_lines, s.total_lines),
        (0, 0, 0)
    );
    assert!(s.events.is_empty());
    assert!(!s.is_damaged());
    let s = sched::from_text_lossy("\n# q 50\n\n");
    assert_eq!(
        (s.salvaged_lines, s.dropped_lines, s.total_lines),
        (0, 0, 0)
    );
    assert!(!s.is_damaged());
}

#[test]
fn salvage_metrics_survive_the_audit_and_break_it_when_tampered() {
    let text = corrupt(&sample_trace_text(), "mid-file");
    let trace_salvage = codec::from_text_lossy(&text);
    let sched_salvage = sched::from_text_lossy(&corrupt(&sample_sched_text(), "trailing-garbage"));

    let mut m = Metrics::new();
    trace_salvage.observe_metrics(&mut m);
    sched_salvage.observe_metrics(&mut m);
    assert_eq!(m.audit(), Ok(()), "honest salvage accounting passes");

    // A lost drop (the class of bug the audit exists to catch) trips it.
    let mut tampered = m.clone();
    tampered.add("trace.lines.total", 1);
    let violations = tampered.audit().unwrap_err();
    assert!(
        violations.iter().any(|v| v.contains("trace.lines")),
        "{violations:?}"
    );
}
