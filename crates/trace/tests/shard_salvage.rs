//! Exhaustive shard-salvage suite: the binary trace format's answer to
//! the text codecs' lossy-prefix guarantee.
//!
//! A shard file is truncated at **every byte offset** — inside the
//! magic, inside a frame header, inside a checksummed payload, exactly
//! on a frame boundary — and every truncation must salvage a clean
//! prefix of the original frame sequence while the accounting law
//! `trace.shard.salvaged + trace.shard.dropped == trace.shard.total`
//! holds (enforced independently by [`Metrics::audit`] through
//! `observe_metrics`).

use drms_trace::obs::Metrics;
use drms_trace::shard::{ShardEvent, ShardSet, ShardWriter};
use drms_trace::{Addr, HostIo, RoutineId, ThreadId};
use std::path::{Path, PathBuf};

fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("drms-shard-salvage-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Writes one single-thread shard directory with a mixed frame stream
/// (events of every size class plus columnar batches) and returns the
/// frame count.
fn write_sample(dir: &Path) -> u64 {
    let io = HostIo::real();
    // A tiny spill threshold exercises mid-run flushes; the torn tail
    // of a truncation can then land in any frame, not just the last.
    let mut w = ShardWriter::create(&io, dir, 32).expect("create writer");
    let t = ThreadId::MAIN;
    w.record_event(t, ShardEvent::ThreadStart { parent: None });
    for i in 0..6u32 {
        w.record_event(
            t,
            ShardEvent::Call {
                routine: RoutineId::new(i % 3),
                cost: u64::from(i) * 11,
            },
        );
        w.record_event(
            t,
            ShardEvent::Read {
                addr: Addr::new(0x1000 + u64::from(i) * 8),
                len: 8,
            },
        );
        w.record_batch(
            t,
            (0..4u32).map(move |j| {
                let kind = if j % 2 == 0 {
                    drms_trace::shard::ShardBatchKind::Read
                } else {
                    drms_trace::shard::ShardBatchKind::Write
                };
                (kind, Addr::new(0x2000 + u64::from(i * 4 + j)), 4)
            }),
        );
        w.record_event(
            t,
            ShardEvent::Return {
                routine: RoutineId::new(i % 3),
                cost: u64::from(i) * 13,
            },
        );
    }
    w.record_event(t, ShardEvent::ThreadExit { cost: 99 });
    let summary = w.finish().expect("finish");
    assert!(summary.frames > 10, "sample must span many frames");
    summary.frames
}

/// Audits the accounting law through the metrics registry, the same
/// path `aprof --metrics` and the daemon take.
fn assert_law(set: &ShardSet) {
    assert_eq!(
        set.salvaged + set.dropped,
        set.total,
        "salvage law violated: {} + {} != {}",
        set.salvaged,
        set.dropped,
        set.total
    );
    let mut m = Metrics::new();
    set.observe_metrics(&mut m);
    assert_eq!(m.counter("trace.shard.salvaged"), set.salvaged);
    assert_eq!(m.counter("trace.shard.dropped"), set.dropped);
    m.audit().expect("metrics self-consistency audit");
}

/// Truncating the shard at every byte offset: each prefix salvages an
/// exact frame-sequence prefix, accounts for every expected frame, and
/// never fabricates data past the cut.
#[test]
fn every_truncation_offset_salvages_a_clean_prefix() {
    let dir = scratch("every-offset");
    let total = write_sample(&dir);

    let shard_path = dir.join("shard-0.bin");
    let bytes = std::fs::read(&shard_path).expect("read shard");
    let baseline = ShardSet::load(&dir, 1).expect("baseline load");
    assert_eq!(baseline.dropped, 0);
    assert_eq!(baseline.salvaged, total);
    let full_frames = baseline.frames_in_order();

    let work = scratch("every-offset-work");
    std::fs::create_dir_all(&work).expect("work dir");
    std::fs::copy(dir.join("MANIFEST"), work.join("MANIFEST")).expect("copy manifest");

    let mut seen_partial = false;
    for cut in 0..=bytes.len() {
        std::fs::write(work.join("shard-0.bin"), &bytes[..cut]).expect("truncate");
        let set = ShardSet::load(&work, 1).expect("salvage load never errors");
        assert_eq!(set.total, total, "manifest pins the expected frame count");
        assert_law(&set);
        let frames = set.frames_in_order();
        assert_eq!(frames.len() as u64, set.salvaged);
        assert!(
            frames.len() <= full_frames.len(),
            "cut {cut}: salvage fabricated frames"
        );
        for (a, b) in frames.iter().zip(&full_frames) {
            assert_eq!(*a, *b, "cut {cut}: salvaged frames must be a prefix");
        }
        if set.dropped > 0 && set.salvaged > 0 {
            seen_partial = true;
        }
    }
    assert!(
        seen_partial,
        "some offset must salvage a non-empty strict prefix"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&work);
}

/// Without a manifest (crash before finalize) the torn tail is still
/// detected and accounted, just without the expected-total baseline:
/// the law holds against the observed count.
#[test]
fn truncation_without_a_manifest_still_accounts_the_tear() {
    let dir = scratch("no-manifest");
    write_sample(&dir);
    let shard_path = dir.join("shard-0.bin");
    let bytes = std::fs::read(&shard_path).expect("read shard");
    std::fs::remove_file(dir.join("MANIFEST")).expect("drop manifest");

    // Cut inside the last frame's payload: a torn tail, one dropped.
    std::fs::write(&shard_path, &bytes[..bytes.len() - 3]).expect("truncate");
    let set = ShardSet::load(&dir, 1).expect("load");
    assert!(!set.had_manifest);
    assert_eq!(set.dropped, 1, "a torn tail is one lost frame");
    assert!(set.salvaged > 0);
    assert_law(&set);
    assert!(
        !set.warnings.is_empty(),
        "a tear without a manifest still warns"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A manifest that names a missing shard file drops that file's whole
/// frame count — absence is data loss, not silence.
#[test]
fn missing_shard_files_drop_their_manifest_frames() {
    let dir = scratch("missing-file");
    let total = write_sample(&dir);
    std::fs::remove_file(dir.join("shard-0.bin")).expect("remove shard");
    let set = ShardSet::load(&dir, 1).expect("load");
    assert!(set.had_manifest);
    assert_eq!(set.salvaged, 0);
    assert_eq!(set.dropped, total);
    assert_law(&set);
    let _ = std::fs::remove_dir_all(&dir);
}
