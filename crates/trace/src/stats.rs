//! Summary statistics over event streams.
//!
//! [`TraceStats`] condenses a (merged or per-thread) event sequence into
//! the numbers one wants before profiling it: event counts by kind and
//! by thread, memory traffic in cells, kernel transfer volumes, call
//! depths and footprint. Useful both for sanity-checking recorded traces
//! and for sizing profiler runs.

use crate::event::{Event, TimedEvent};
use crate::ids::ThreadId;
use std::collections::{BTreeMap, HashSet};
use std::fmt;

/// Aggregate statistics of one event sequence.
///
/// # Example
/// ```
/// use drms_trace::{Event, TimedEvent, ThreadId, RoutineId, Addr};
/// use drms_trace::stats::TraceStats;
///
/// let t = ThreadId::MAIN;
/// let events = vec![
///     TimedEvent::new(1, t, 0, Event::Call { routine: RoutineId::new(0) }),
///     TimedEvent::new(2, t, 1, Event::Read { addr: Addr::new(10), len: 4 }),
///     TimedEvent::new(3, t, 2, Event::Return { routine: RoutineId::new(0) }),
/// ];
/// let stats = TraceStats::of(&events);
/// assert_eq!(stats.total_events, 3);
/// assert_eq!(stats.cells_read, 4);
/// assert_eq!(stats.max_call_depth, 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Number of events.
    pub total_events: usize,
    /// Events per kind mnemonic (`call`, `rd`, `k2u`, …).
    pub by_kind: BTreeMap<&'static str, usize>,
    /// Events per thread.
    pub per_thread: BTreeMap<ThreadId, usize>,
    /// Cells read by guest code (ranges expanded).
    pub cells_read: u64,
    /// Cells written by guest code.
    pub cells_written: u64,
    /// Cells transferred kernel → user (external input volume).
    pub cells_kernel_to_user: u64,
    /// Cells transferred user → kernel (output volume).
    pub cells_user_to_kernel: u64,
    /// Distinct memory cells touched by any event.
    pub distinct_cells: u64,
    /// Maximum call depth reached by any thread.
    pub max_call_depth: u32,
    /// Routine activations (call events).
    pub calls: usize,
    /// Synchronization operations.
    pub sync_ops: usize,
}

impl TraceStats {
    /// Computes statistics over `events`.
    pub fn of(events: &[TimedEvent]) -> Self {
        let mut stats = TraceStats::default();
        let mut depths: BTreeMap<ThreadId, u32> = BTreeMap::new();
        let mut cells: HashSet<u64> = HashSet::new();
        for ev in events {
            stats.total_events += 1;
            *stats.by_kind.entry(ev.event.mnemonic()).or_default() += 1;
            *stats.per_thread.entry(ev.thread).or_default() += 1;
            if let Some((addr, len)) = ev.event.mem_range() {
                for cell in addr.range(len) {
                    cells.insert(cell.raw());
                }
                let len = len as u64;
                match ev.event {
                    Event::Read { .. } => stats.cells_read += len,
                    Event::Write { .. } => stats.cells_written += len,
                    Event::KernelToUser { .. } => stats.cells_kernel_to_user += len,
                    Event::UserToKernel { .. } => stats.cells_user_to_kernel += len,
                    _ => {}
                }
            }
            match ev.event {
                Event::Call { .. } => {
                    stats.calls += 1;
                    let d = depths.entry(ev.thread).or_default();
                    *d += 1;
                    stats.max_call_depth = stats.max_call_depth.max(*d);
                }
                Event::Return { .. } => {
                    let d = depths.entry(ev.thread).or_default();
                    *d = d.saturating_sub(1);
                }
                Event::Sync { .. } => stats.sync_ops += 1,
                _ => {}
            }
        }
        stats.distinct_cells = cells.len() as u64;
        stats
    }

    /// Number of threads that emitted at least one event.
    pub fn thread_count(&self) -> usize {
        self.per_thread.len()
    }

    /// Total external data volume (both directions), in cells.
    pub fn kernel_traffic(&self) -> u64 {
        self.cells_kernel_to_user + self.cells_user_to_kernel
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} events across {} thread(s); {} calls (max depth {}), {} sync ops",
            self.total_events,
            self.thread_count(),
            self.calls,
            self.max_call_depth,
            self.sync_ops
        )?;
        writeln!(
            f,
            "memory: {} cells read, {} written, {} distinct; kernel: {} in, {} out",
            self.cells_read,
            self.cells_written,
            self.distinct_cells,
            self.cells_kernel_to_user,
            self.cells_user_to_kernel
        )?;
        for (kind, n) in &self.by_kind {
            writeln!(f, "  {kind:>6}: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Addr, RoutineId};

    fn ev(time: u64, tid: u32, event: Event) -> TimedEvent {
        TimedEvent::new(time, ThreadId::new(tid), 0, event)
    }

    #[test]
    fn counts_kinds_threads_and_traffic() {
        let events = vec![
            ev(
                1,
                0,
                Event::Call {
                    routine: RoutineId::new(0),
                },
            ),
            ev(
                2,
                0,
                Event::Call {
                    routine: RoutineId::new(1),
                },
            ),
            ev(
                3,
                0,
                Event::Read {
                    addr: Addr::new(10),
                    len: 2,
                },
            ),
            ev(
                4,
                0,
                Event::Write {
                    addr: Addr::new(11),
                    len: 1,
                },
            ),
            ev(
                5,
                1,
                Event::Call {
                    routine: RoutineId::new(0),
                },
            ),
            ev(
                6,
                1,
                Event::KernelToUser {
                    addr: Addr::new(20),
                    len: 8,
                },
            ),
            ev(
                7,
                1,
                Event::UserToKernel {
                    addr: Addr::new(20),
                    len: 8,
                },
            ),
            ev(
                8,
                0,
                Event::Return {
                    routine: RoutineId::new(1),
                },
            ),
            ev(
                9,
                0,
                Event::Sync {
                    op: crate::event::SyncOp::SemWait(0),
                },
            ),
        ];
        let s = TraceStats::of(&events);
        assert_eq!(s.total_events, 9);
        assert_eq!(s.thread_count(), 2);
        assert_eq!(s.calls, 3);
        assert_eq!(s.max_call_depth, 2);
        assert_eq!(s.cells_read, 2);
        assert_eq!(s.cells_written, 1);
        assert_eq!(s.cells_kernel_to_user, 8);
        assert_eq!(s.cells_user_to_kernel, 8);
        assert_eq!(s.kernel_traffic(), 16);
        // cells 10, 11 and 20..28 → 10 distinct
        assert_eq!(s.distinct_cells, 10);
        assert_eq!(s.sync_ops, 1);
        assert_eq!(s.by_kind["call"], 3);
        let shown = s.to_string();
        assert!(shown.contains("9 events across 2 thread(s)"));
        assert!(shown.contains("call"));
    }

    #[test]
    fn empty_stream_is_all_zero() {
        let s = TraceStats::of(&[]);
        assert_eq!(s, TraceStats::default());
        assert_eq!(s.thread_count(), 0);
    }

    #[test]
    fn depth_is_per_thread() {
        let events = vec![
            ev(
                1,
                0,
                Event::Call {
                    routine: RoutineId::new(0),
                },
            ),
            ev(
                2,
                1,
                Event::Call {
                    routine: RoutineId::new(0),
                },
            ),
            ev(
                3,
                1,
                Event::Return {
                    routine: RoutineId::new(0),
                },
            ),
            ev(
                4,
                1,
                Event::Call {
                    routine: RoutineId::new(0),
                },
            ),
        ];
        let s = TraceStats::of(&events);
        assert_eq!(s.max_call_depth, 1, "depths never stack across threads");
    }
}
