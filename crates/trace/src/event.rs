//! Instrumentation events.
//!
//! An [`Event`] is one observable operation of a guest execution: routine
//! activations and completions, memory accesses, kernel-mediated transfers
//! (`userToKernel` / `kernelToUser`), thread lifecycle and synchronization
//! operations. A [`TimedEvent`] couples an event with the issuing thread, a
//! global timestamp, and the thread's cumulative cost at that point.

use crate::ids::{Addr, BlockId, RoutineId, ThreadId};
use std::fmt;

/// A synchronization operation performed by a guest thread.
///
/// Synchronization events carry no memory semantics for the profiling
/// algorithms (the paper explicitly disregards memory accesses due to
/// semaphore operations) but are consumed by happens-before analyses such
/// as the `helgrind`-like race detector.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum SyncOp {
    /// `wait` (P) on the semaphore with the given index.
    SemWait(u32),
    /// `signal` (V) on the semaphore with the given index.
    SemSignal(u32),
    /// Lock acquisition of the mutex with the given index.
    MutexLock(u32),
    /// Lock release of the mutex with the given index.
    MutexUnlock(u32),
    /// Condition-variable wait (atomically releases the paired mutex).
    CondWait { cond: u32, mutex: u32 },
    /// Condition-variable signal.
    CondSignal(u32),
    /// Condition-variable broadcast.
    CondBroadcast(u32),
    /// Creation of a new thread.
    Spawn { child: ThreadId },
    /// Join on a previously spawned thread.
    Join { child: ThreadId },
}

impl fmt::Display for SyncOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncOp::SemWait(s) => write!(f, "sem_wait({s})"),
            SyncOp::SemSignal(s) => write!(f, "sem_signal({s})"),
            SyncOp::MutexLock(m) => write!(f, "mutex_lock({m})"),
            SyncOp::MutexUnlock(m) => write!(f, "mutex_unlock({m})"),
            SyncOp::CondWait { cond, mutex } => write!(f, "cond_wait({cond},{mutex})"),
            SyncOp::CondSignal(c) => write!(f, "cond_signal({c})"),
            SyncOp::CondBroadcast(c) => write!(f, "cond_broadcast({c})"),
            SyncOp::Spawn { child } => write!(f, "spawn({child})"),
            SyncOp::Join { child } => write!(f, "join({child})"),
        }
    }
}

/// One observable operation of a guest execution.
///
/// The `Read`/`Write`/`UserToKernel`/`KernelToUser` variants describe a
/// contiguous range of `len` cells starting at `addr`; profiling algorithms
/// expand ranges to individual cells.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Event {
    /// Activation of a routine.
    Call { routine: RoutineId },
    /// Completion of the topmost pending routine activation.
    Return { routine: RoutineId },
    /// A memory load performed by guest code.
    Read { addr: Addr, len: u32 },
    /// A memory store performed by guest code.
    Write { addr: Addr, len: u32 },
    /// The kernel reads a user buffer on behalf of the thread (output
    /// system calls: `write`, `sendto`, `pwrite64`, `writev`, `msgsnd`, …).
    UserToKernel { addr: Addr, len: u32 },
    /// The kernel fills a user buffer with external data (input system
    /// calls: `read`, `recvfrom`, `pread64`, `readv`, `msgrcv`, …).
    KernelToUser { addr: Addr, len: u32 },
    /// First event of every thread.
    ThreadStart { parent: Option<ThreadId> },
    /// Last event of every thread.
    ThreadExit,
    /// A synchronization operation.
    Sync { op: SyncOp },
    /// Entry into a basic block (the unit of the paper's cost measure).
    Block { routine: RoutineId, block: BlockId },
}

impl Event {
    /// Returns the `(addr, len)` range touched by memory-carrying events.
    pub fn mem_range(&self) -> Option<(Addr, u32)> {
        match *self {
            Event::Read { addr, len }
            | Event::Write { addr, len }
            | Event::UserToKernel { addr, len }
            | Event::KernelToUser { addr, len } => Some((addr, len)),
            _ => None,
        }
    }

    /// Whether this event is mediated by a kernel system call.
    pub fn is_kernel(&self) -> bool {
        matches!(
            self,
            Event::UserToKernel { .. } | Event::KernelToUser { .. }
        )
    }

    /// A short mnemonic for the event kind, used by the text codec.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Event::Call { .. } => "call",
            Event::Return { .. } => "ret",
            Event::Read { .. } => "rd",
            Event::Write { .. } => "wr",
            Event::UserToKernel { .. } => "u2k",
            Event::KernelToUser { .. } => "k2u",
            Event::ThreadStart { .. } => "tstart",
            Event::ThreadExit => "texit",
            Event::Sync { .. } => "sync",
            Event::Block { .. } => "bb",
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Call { routine } => write!(f, "call {routine}"),
            Event::Return { routine } => write!(f, "ret {routine}"),
            Event::Read { addr, len } => write!(f, "rd {addr}+{len}"),
            Event::Write { addr, len } => write!(f, "wr {addr}+{len}"),
            Event::UserToKernel { addr, len } => write!(f, "u2k {addr}+{len}"),
            Event::KernelToUser { addr, len } => write!(f, "k2u {addr}+{len}"),
            Event::ThreadStart { parent: Some(p) } => write!(f, "tstart<-{p}"),
            Event::ThreadStart { parent: None } => write!(f, "tstart"),
            Event::ThreadExit => write!(f, "texit"),
            Event::Sync { op } => write!(f, "sync {op}"),
            Event::Block { routine, block } => write!(f, "bb {routine}:{block}"),
        }
    }
}

/// An [`Event`] with its issuing thread, global timestamp and the thread's
/// cumulative cost (executed basic blocks by default) at emission time.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct TimedEvent {
    /// Global timestamp; traces of different threads are merged by this key.
    pub time: u64,
    /// The thread that issued the event.
    pub thread: ThreadId,
    /// Cumulative cost of `thread` when the event was emitted.
    pub cost: u64,
    /// The operation itself.
    pub event: Event,
}

impl TimedEvent {
    /// Convenience constructor.
    pub fn new(time: u64, thread: ThreadId, cost: u64, event: Event) -> Self {
        TimedEvent {
            time,
            thread,
            cost,
            event,
        }
    }
}

impl fmt::Display for TimedEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {} c={}] {}",
            self.time, self.thread, self.cost, self.event
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_range_extraction() {
        let e = Event::Read {
            addr: Addr::new(8),
            len: 4,
        };
        assert_eq!(e.mem_range(), Some((Addr::new(8), 4)));
        assert_eq!(Event::ThreadExit.mem_range(), None);
        assert!(Event::KernelToUser {
            addr: Addr::new(1),
            len: 1
        }
        .is_kernel());
        assert!(!e.is_kernel());
    }

    #[test]
    fn display_forms() {
        let e = TimedEvent::new(
            5,
            ThreadId::new(1),
            42,
            Event::Call {
                routine: RoutineId::new(3),
            },
        );
        assert_eq!(e.to_string(), "[5 T1 c=42] call R3");
        assert_eq!(
            Event::Sync {
                op: SyncOp::SemWait(2)
            }
            .to_string(),
            "sync sem_wait(2)"
        );
    }

    #[test]
    fn mnemonics_are_distinct_per_kind() {
        let events = [
            Event::Call {
                routine: RoutineId::new(0),
            },
            Event::Return {
                routine: RoutineId::new(0),
            },
            Event::Read {
                addr: Addr::new(0),
                len: 1,
            },
            Event::Write {
                addr: Addr::new(0),
                len: 1,
            },
            Event::UserToKernel {
                addr: Addr::new(0),
                len: 1,
            },
            Event::KernelToUser {
                addr: Addr::new(0),
                len: 1,
            },
            Event::ThreadStart { parent: None },
            Event::ThreadExit,
            Event::Sync {
                op: SyncOp::CondSignal(0),
            },
            Event::Block {
                routine: RoutineId::new(0),
                block: BlockId::new(0),
            },
        ];
        let mut seen = std::collections::HashSet::new();
        for e in events {
            assert!(
                seen.insert(e.mnemonic()),
                "duplicate mnemonic {}",
                e.mnemonic()
            );
        }
    }
}
