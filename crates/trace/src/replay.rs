//! Replaying a merged trace into an event consumer.
//!
//! [`EventSink`] is the consumer-side interface of the profiling
//! algorithms: one callback per event kind, plus `on_thread_switch`, which
//! [`replay`] synthesizes between any two consecutive events issued by
//! different threads — mirroring the paper's assumption that
//! `switchThread` events are inserted in the merged trace.
//!
//! Live execution substrates (the guest VM) drive the same trait directly,
//! so a profiler behaves identically online and offline; an integration
//! test asserts this equivalence.

use crate::event::{Event, SyncOp, TimedEvent};
use crate::ids::{Addr, BlockId, RoutineId, ThreadId};

/// Consumer of a totally-ordered instrumentation event stream.
///
/// All methods have empty default bodies so a consumer only overrides what
/// it observes. `cost` arguments carry the issuing thread's cumulative cost
/// (executed basic blocks by default) at the time of the event.
pub trait EventSink {
    /// A new thread begins; `parent` is `None` for the main thread.
    fn on_thread_start(&mut self, thread: ThreadId, parent: Option<ThreadId>) {
        let _ = (thread, parent);
    }
    /// A thread terminates.
    fn on_thread_exit(&mut self, thread: ThreadId, cost: u64) {
        let _ = (thread, cost);
    }
    /// Control passes from thread `from` (if any ran before) to `to`.
    fn on_thread_switch(&mut self, from: Option<ThreadId>, to: ThreadId) {
        let _ = (from, to);
    }
    /// Routine activation.
    fn on_call(&mut self, thread: ThreadId, routine: RoutineId, cost: u64) {
        let _ = (thread, routine, cost);
    }
    /// Routine completion.
    fn on_return(&mut self, thread: ThreadId, routine: RoutineId, cost: u64) {
        let _ = (thread, routine, cost);
    }
    /// Memory load of `len` cells at `addr`.
    fn on_read(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        let _ = (thread, addr, len);
    }
    /// Memory store of `len` cells at `addr`.
    fn on_write(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        let _ = (thread, addr, len);
    }
    /// The kernel reads a user buffer (output system call).
    fn on_user_to_kernel(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        let _ = (thread, addr, len);
    }
    /// The kernel fills a user buffer with external data (input syscall).
    fn on_kernel_to_user(&mut self, thread: ThreadId, addr: Addr, len: u32) {
        let _ = (thread, addr, len);
    }
    /// A synchronization operation.
    fn on_sync(&mut self, thread: ThreadId, op: SyncOp) {
        let _ = (thread, op);
    }
    /// Entry into a basic block.
    fn on_block(&mut self, thread: ThreadId, routine: RoutineId, block: BlockId) {
        let _ = (thread, routine, block);
    }
    /// The execution is complete; no further events will arrive.
    fn on_finish(&mut self) {}
}

/// Replays a merged, totally-ordered event stream into `sink`, synthesizing
/// `on_thread_switch` notifications whenever consecutive events belong to
/// different threads, and calling [`EventSink::on_finish`] at the end.
///
/// # Example
/// ```
/// use drms_trace::{replay, EventSink, TimedEvent, Event, ThreadId, RoutineId};
///
/// #[derive(Default)]
/// struct CallCounter(u64);
/// impl EventSink for CallCounter {
///     fn on_call(&mut self, _: ThreadId, _: RoutineId, _: u64) { self.0 += 1; }
/// }
///
/// let evs = vec![TimedEvent::new(1, ThreadId::MAIN, 0,
///     Event::Call { routine: RoutineId::new(0) })];
/// let mut sink = CallCounter::default();
/// replay(&evs, &mut sink);
/// assert_eq!(sink.0, 1);
/// ```
pub fn replay<S: EventSink + ?Sized>(events: &[TimedEvent], sink: &mut S) {
    let mut current: Option<ThreadId> = None;
    for ev in events {
        if current != Some(ev.thread) {
            sink.on_thread_switch(current, ev.thread);
            current = Some(ev.thread);
        }
        dispatch(ev, sink);
    }
    sink.on_finish();
}

fn dispatch<S: EventSink + ?Sized>(ev: &TimedEvent, sink: &mut S) {
    let t = ev.thread;
    match ev.event {
        Event::Call { routine } => sink.on_call(t, routine, ev.cost),
        Event::Return { routine } => sink.on_return(t, routine, ev.cost),
        Event::Read { addr, len } => sink.on_read(t, addr, len),
        Event::Write { addr, len } => sink.on_write(t, addr, len),
        Event::UserToKernel { addr, len } => sink.on_user_to_kernel(t, addr, len),
        Event::KernelToUser { addr, len } => sink.on_kernel_to_user(t, addr, len),
        Event::ThreadStart { parent } => sink.on_thread_start(t, parent),
        Event::ThreadExit => sink.on_thread_exit(t, ev.cost),
        Event::Sync { op } => sink.on_sync(t, op),
        Event::Block { routine, block } => sink.on_block(t, routine, block),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        switches: Vec<(Option<ThreadId>, ThreadId)>,
        calls: Vec<(ThreadId, RoutineId, u64)>,
        reads: u64,
        finished: bool,
    }

    impl EventSink for Recorder {
        fn on_thread_switch(&mut self, from: Option<ThreadId>, to: ThreadId) {
            self.switches.push((from, to));
        }
        fn on_call(&mut self, thread: ThreadId, routine: RoutineId, cost: u64) {
            self.calls.push((thread, routine, cost));
        }
        fn on_read(&mut self, _: ThreadId, _: Addr, len: u32) {
            self.reads += len as u64;
        }
        fn on_finish(&mut self) {
            self.finished = true;
        }
    }

    fn ev(time: u64, tid: u32, event: Event) -> TimedEvent {
        TimedEvent::new(time, ThreadId::new(tid), time, event)
    }

    #[test]
    fn synthesizes_thread_switches() {
        let events = vec![
            ev(
                1,
                0,
                Event::Call {
                    routine: RoutineId::new(0),
                },
            ),
            ev(
                2,
                1,
                Event::Call {
                    routine: RoutineId::new(1),
                },
            ),
            ev(
                3,
                1,
                Event::Read {
                    addr: Addr::new(4),
                    len: 2,
                },
            ),
            ev(
                4,
                0,
                Event::Read {
                    addr: Addr::new(8),
                    len: 1,
                },
            ),
        ];
        let mut rec = Recorder::default();
        replay(&events, &mut rec);
        assert_eq!(
            rec.switches,
            vec![
                (None, ThreadId::new(0)),
                (Some(ThreadId::new(0)), ThreadId::new(1)),
                (Some(ThreadId::new(1)), ThreadId::new(0)),
            ]
        );
        assert_eq!(rec.calls.len(), 2);
        assert_eq!(rec.reads, 3);
        assert!(rec.finished);
    }

    #[test]
    fn no_switch_within_same_thread_run() {
        let events = vec![
            ev(1, 5, Event::ThreadStart { parent: None }),
            ev(2, 5, Event::ThreadExit),
        ];
        let mut rec = Recorder::default();
        replay(&events, &mut rec);
        assert_eq!(rec.switches.len(), 1);
    }

    #[test]
    fn empty_stream_still_finishes() {
        let mut rec = Recorder::default();
        replay(&[], &mut rec);
        assert!(rec.finished);
        assert!(rec.switches.is_empty());
    }

    #[test]
    fn dispatch_covers_all_variants() {
        // Smoke-test that every event kind routes without panicking.
        let all = vec![
            ev(1, 0, Event::ThreadStart { parent: None }),
            ev(
                2,
                0,
                Event::Call {
                    routine: RoutineId::new(0),
                },
            ),
            ev(
                3,
                0,
                Event::Block {
                    routine: RoutineId::new(0),
                    block: BlockId::new(0),
                },
            ),
            ev(
                4,
                0,
                Event::Read {
                    addr: Addr::new(1),
                    len: 1,
                },
            ),
            ev(
                5,
                0,
                Event::Write {
                    addr: Addr::new(1),
                    len: 1,
                },
            ),
            ev(
                6,
                0,
                Event::UserToKernel {
                    addr: Addr::new(1),
                    len: 1,
                },
            ),
            ev(
                7,
                0,
                Event::KernelToUser {
                    addr: Addr::new(1),
                    len: 1,
                },
            ),
            ev(
                8,
                0,
                Event::Sync {
                    op: SyncOp::SemSignal(0),
                },
            ),
            ev(
                9,
                0,
                Event::Return {
                    routine: RoutineId::new(0),
                },
            ),
            ev(10, 0, Event::ThreadExit),
        ];
        let mut rec = Recorder::default();
        replay(&all, &mut rec);
        assert!(rec.finished);
    }
}
