//! Plain-text trace serialization.
//!
//! One event per line:
//!
//! ```text
//! <time> <thread> <cost> <mnemonic> [args...] ~<checksum>
//! ```
//!
//! The format is stable, diff-friendly and human-readable; it backs golden
//! tests and lets traces be captured once and re-analysed offline.
//!
//! The trailing `~<hex>` token is an FNV-1a checksum of the payload
//! before it, letting corrupted captures (truncated files, flipped
//! bits) be detected line by line. Checksum-less lines are accepted for
//! backward compatibility with hand-written traces; when the token is
//! present it must match. [`from_text`] fails on the first bad line;
//! [`from_text_lossy`] instead salvages the longest valid prefix so a
//! damaged capture can still be replayed or merged.

use crate::event::{Event, SyncOp, TimedEvent};
use crate::ids::{Addr, BlockId, RoutineId, ThreadId};
use std::fmt::Write as _;

/// Error produced when parsing a serialized trace line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// Serializes events to the line-oriented text format.
///
/// # Example
/// ```
/// use drms_trace::{TimedEvent, Event, ThreadId, RoutineId};
/// use drms_trace::codec::{to_text, from_text};
/// let evs = vec![TimedEvent::new(1, ThreadId::MAIN, 0,
///     Event::Call { routine: RoutineId::new(2) })];
/// let text = to_text(&evs);
/// assert_eq!(from_text(&text).unwrap(), evs);
/// ```
pub fn to_text(events: &[TimedEvent]) -> String {
    let mut out = String::new();
    let mut line = String::new();
    for ev in events {
        line.clear();
        write_event(&mut line, ev);
        let _ = writeln!(out, "{line} ~{:x}", checksum(&line));
    }
    out
}

/// FNV-1a hash of a line payload (the bytes before the ` ~<hex>` token).
/// Shared with the schedule codec in [`crate::sched`].
pub(crate) fn checksum(payload: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in payload.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn write_event(out: &mut String, ev: &TimedEvent) {
    let _ = write!(
        out,
        "{} {} {} {}",
        ev.time,
        ev.thread.index(),
        ev.cost,
        ev.event.mnemonic()
    );
    match ev.event {
        Event::Call { routine } | Event::Return { routine } => {
            let _ = write!(out, " {}", routine.index());
        }
        Event::Read { addr, len }
        | Event::Write { addr, len }
        | Event::UserToKernel { addr, len }
        | Event::KernelToUser { addr, len } => {
            let _ = write!(out, " {} {}", addr.raw(), len);
        }
        Event::ThreadStart { parent } => {
            if let Some(p) = parent {
                let _ = write!(out, " {}", p.index());
            }
        }
        Event::ThreadExit => {}
        Event::Sync { op } => {
            let _ = match op {
                SyncOp::SemWait(s) => write!(out, " semw {s}"),
                SyncOp::SemSignal(s) => write!(out, " sems {s}"),
                SyncOp::MutexLock(m) => write!(out, " mtxl {m}"),
                SyncOp::MutexUnlock(m) => write!(out, " mtxu {m}"),
                SyncOp::CondWait { cond, mutex } => write!(out, " cvw {cond} {mutex}"),
                SyncOp::CondSignal(c) => write!(out, " cvs {c}"),
                SyncOp::CondBroadcast(c) => write!(out, " cvb {c}"),
                SyncOp::Spawn { child } => write!(out, " spawn {}", child.index()),
                SyncOp::Join { child } => write!(out, " join {}", child.index()),
            };
        }
        Event::Block { routine, block } => {
            let _ = write!(out, " {} {}", routine.index(), block.index());
        }
    }
}

/// Parses the line-oriented text format back into events.
///
/// Blank lines and lines starting with `#` are skipped. Lines carrying
/// a trailing `~<hex>` checksum are verified against their payload;
/// lines without one are accepted unverified.
///
/// # Errors
/// Returns a [`ParseTraceError`] naming the first malformed line.
pub fn from_text(text: &str) -> Result<Vec<TimedEvent>, ParseTraceError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_line(line, line_no)?);
    }
    Ok(out)
}

/// A trace recovered from damaged text by [`from_text_lossy`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SalvagedTrace {
    /// Events of the longest valid prefix.
    pub events: Vec<TimedEvent>,
    /// Non-comment lines successfully parsed into events.
    pub salvaged_lines: usize,
    /// Non-comment lines dropped (the first malformed line and
    /// everything after it).
    pub dropped_lines: usize,
    /// Non-comment, non-blank input lines seen — counted independently
    /// of the salvage decisions, so `salvaged_lines + dropped_lines ==
    /// total_lines` is a checkable invariant (blank and `#` comment
    /// lines count in neither side nor the total).
    pub total_lines: usize,
    /// Human-readable descriptions of what was dropped and why
    /// (empty when the whole text parsed cleanly).
    pub warnings: Vec<String>,
}

impl SalvagedTrace {
    /// Whether any line failed to parse (i.e. data was dropped).
    pub fn is_damaged(&self) -> bool {
        self.dropped_lines > 0
    }

    /// Records this salvage's accounting into `metrics` under the
    /// `trace` prefix, where [`Metrics::audit`](crate::obs::Metrics::audit)
    /// cross-checks `salvaged + dropped == total`.
    pub fn observe_metrics(&self, metrics: &mut crate::obs::Metrics) {
        metrics.record_salvage(
            "trace",
            self.salvaged_lines as u64,
            self.dropped_lines as u64,
            self.total_lines as u64,
        );
    }
}

/// Parses as much of a damaged trace as possible: the longest prefix of
/// well-formed lines, stopping at the first malformed or
/// checksum-mismatched line.
///
/// Everything from the first bad line onward is dropped — events after
/// a corruption point cannot be trusted to belong where they appear —
/// and described in [`SalvagedTrace::warnings`]. Never fails: feeding
/// it arbitrary bytes yields an empty (or partial) event list.
pub fn from_text_lossy(text: &str) -> SalvagedTrace {
    let mut salvage = SalvagedTrace::default();
    let mut first_error: Option<ParseTraceError> = None;
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        salvage.total_lines += 1;
        if first_error.is_some() {
            salvage.dropped_lines += 1;
            continue;
        }
        match parse_line(line, line_no) {
            Ok(ev) => {
                salvage.events.push(ev);
                salvage.salvaged_lines += 1;
            }
            Err(e) => {
                salvage.dropped_lines += 1;
                first_error = Some(e);
            }
        }
    }
    if let Some(e) = first_error {
        salvage.warnings.push(format!(
            "{e}; salvaged {} event(s), dropped {} line(s)",
            salvage.salvaged_lines, salvage.dropped_lines
        ));
    }
    salvage
}

fn parse_line(line: &str, line_no: usize) -> Result<TimedEvent, ParseTraceError> {
    let err = |message: String| ParseTraceError {
        line: line_no,
        message,
    };
    // Split off and verify the optional trailing `~<hex>` checksum.
    let line = match line.rsplit_once('~') {
        Some((head, hex)) if head.ends_with(char::is_whitespace) => {
            let payload = head.trim_end();
            let declared = u64::from_str_radix(hex, 16)
                .map_err(|e| err(format!("bad checksum `{hex}`: {e}")))?;
            let actual = checksum(payload);
            if actual != declared {
                return Err(err(format!(
                    "checksum mismatch: line declares {declared:x}, payload hashes to {actual:x}"
                )));
            }
            payload
        }
        _ => line,
    };
    let mut parts = line.split_ascii_whitespace();
    let next_u64 = |what: &str, parts: &mut std::str::SplitAsciiWhitespace<'_>| {
        parts
            .next()
            .ok_or_else(|| err(format!("missing {what}")))?
            .parse::<u64>()
            .map_err(|e| err(format!("bad {what}: {e}")))
    };
    let time = next_u64("time", &mut parts)?;
    let thread = ThreadId::new(next_u64("thread", &mut parts)? as u32);
    let cost = next_u64("cost", &mut parts)?;
    let kind = parts.next().ok_or_else(|| err("missing kind".into()))?;
    let event = match kind {
        "call" | "ret" => {
            let r = RoutineId::new(next_u64("routine", &mut parts)? as u32);
            if kind == "call" {
                Event::Call { routine: r }
            } else {
                Event::Return { routine: r }
            }
        }
        "rd" | "wr" | "u2k" | "k2u" => {
            let addr = Addr::new(next_u64("addr", &mut parts)?);
            let len = next_u64("len", &mut parts)? as u32;
            match kind {
                "rd" => Event::Read { addr, len },
                "wr" => Event::Write { addr, len },
                "u2k" => Event::UserToKernel { addr, len },
                _ => Event::KernelToUser { addr, len },
            }
        }
        "tstart" => {
            let parent = parts
                .next()
                .map(|p| {
                    p.parse::<u32>()
                        .map(ThreadId::new)
                        .map_err(|e| err(format!("bad parent: {e}")))
                })
                .transpose()?;
            Event::ThreadStart { parent }
        }
        "texit" => Event::ThreadExit,
        "bb" => {
            let r = RoutineId::new(next_u64("routine", &mut parts)? as u32);
            let b = BlockId::new(next_u64("block", &mut parts)? as u32);
            Event::Block {
                routine: r,
                block: b,
            }
        }
        "sync" => {
            let op = parts.next().ok_or_else(|| err("missing sync op".into()))?;
            let sync = match op {
                "semw" => SyncOp::SemWait(next_u64("sem", &mut parts)? as u32),
                "sems" => SyncOp::SemSignal(next_u64("sem", &mut parts)? as u32),
                "mtxl" => SyncOp::MutexLock(next_u64("mutex", &mut parts)? as u32),
                "mtxu" => SyncOp::MutexUnlock(next_u64("mutex", &mut parts)? as u32),
                "cvw" => SyncOp::CondWait {
                    cond: next_u64("cond", &mut parts)? as u32,
                    mutex: next_u64("mutex", &mut parts)? as u32,
                },
                "cvs" => SyncOp::CondSignal(next_u64("cond", &mut parts)? as u32),
                "cvb" => SyncOp::CondBroadcast(next_u64("cond", &mut parts)? as u32),
                "spawn" => SyncOp::Spawn {
                    child: ThreadId::new(next_u64("child", &mut parts)? as u32),
                },
                "join" => SyncOp::Join {
                    child: ThreadId::new(next_u64("child", &mut parts)? as u32),
                },
                other => return Err(err(format!("unknown sync op `{other}`"))),
            };
            Event::Sync { op: sync }
        }
        other => return Err(err(format!("unknown event kind `{other}`"))),
    };
    if let Some(extra) = parts.next() {
        return Err(err(format!("trailing token `{extra}`")));
    }
    Ok(TimedEvent {
        time,
        thread,
        cost,
        event,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TimedEvent> {
        let t = ThreadId::new(1);
        vec![
            TimedEvent::new(
                1,
                t,
                0,
                Event::ThreadStart {
                    parent: Some(ThreadId::MAIN),
                },
            ),
            TimedEvent::new(
                2,
                t,
                0,
                Event::Call {
                    routine: RoutineId::new(4),
                },
            ),
            TimedEvent::new(
                3,
                t,
                1,
                Event::Block {
                    routine: RoutineId::new(4),
                    block: BlockId::new(0),
                },
            ),
            TimedEvent::new(
                4,
                t,
                1,
                Event::Read {
                    addr: Addr::new(100),
                    len: 8,
                },
            ),
            TimedEvent::new(
                5,
                t,
                1,
                Event::Write {
                    addr: Addr::new(200),
                    len: 1,
                },
            ),
            TimedEvent::new(
                6,
                t,
                2,
                Event::KernelToUser {
                    addr: Addr::new(300),
                    len: 16,
                },
            ),
            TimedEvent::new(
                7,
                t,
                2,
                Event::UserToKernel {
                    addr: Addr::new(300),
                    len: 16,
                },
            ),
            TimedEvent::new(
                8,
                t,
                2,
                Event::Sync {
                    op: SyncOp::SemWait(3),
                },
            ),
            TimedEvent::new(
                9,
                t,
                2,
                Event::Sync {
                    op: SyncOp::CondWait { cond: 1, mutex: 2 },
                },
            ),
            TimedEvent::new(
                10,
                t,
                2,
                Event::Sync {
                    op: SyncOp::Spawn {
                        child: ThreadId::new(2),
                    },
                },
            ),
            TimedEvent::new(
                11,
                t,
                3,
                Event::Return {
                    routine: RoutineId::new(4),
                },
            ),
            TimedEvent::new(12, t, 3, Event::ThreadExit),
        ]
    }

    #[test]
    fn roundtrip_all_event_kinds() {
        let evs = sample_events();
        let text = to_text(&evs);
        let back = from_text(&text).expect("parse");
        assert_eq!(back, evs);
    }

    #[test]
    fn roundtrip_main_thread_start_without_parent() {
        let evs = vec![TimedEvent::new(
            0,
            ThreadId::MAIN,
            0,
            Event::ThreadStart { parent: None },
        )];
        assert_eq!(from_text(&to_text(&evs)).unwrap(), evs);
    }

    #[test]
    fn skips_blank_and_comment_lines() {
        let text = "# header\n\n1 0 0 texit\n";
        let evs = from_text(text).unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].event, Event::ThreadExit);
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let text = "1 0 0 texit\n2 0 0 bogus\n";
        let e = from_text(text).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn rejects_trailing_tokens() {
        let e = from_text("1 0 0 texit junk").unwrap_err();
        assert!(e.message.contains("trailing"));
    }

    #[test]
    fn rejects_missing_fields() {
        assert!(from_text("1 0 0 rd 5").is_err());
        assert!(from_text("1 0").is_err());
        assert!(from_text("x 0 0 texit").is_err());
    }

    #[test]
    fn serialized_lines_carry_checksums() {
        let text = to_text(&sample_events());
        for line in text.lines() {
            let (_, hex) = line.rsplit_once('~').expect("checksum token");
            assert!(u64::from_str_radix(hex, 16).is_ok(), "hex checksum: {line}");
        }
    }

    #[test]
    fn detects_payload_bit_flips() {
        let evs = sample_events();
        let text = to_text(&evs);
        // Corrupt one digit of the fourth line's address field.
        let corrupted = text.replacen("100 8", "108 8", 1);
        assert_ne!(corrupted, text, "corruption applied");
        let e = from_text(&corrupted).unwrap_err();
        assert!(e.message.contains("checksum mismatch"), "{e}");
    }

    #[test]
    fn lossy_parse_of_clean_text_has_no_warnings() {
        let evs = sample_events();
        let s = from_text_lossy(&to_text(&evs));
        assert_eq!(s.events, evs);
        assert!(!s.is_damaged());
        assert_eq!(s.salvaged_lines, evs.len());
        assert_eq!(s.dropped_lines, 0);
    }

    #[test]
    fn lossy_parse_salvages_prefix_before_corruption() {
        let evs = sample_events();
        let text = to_text(&evs);
        // Flip a byte in the fifth line; everything after it is dropped.
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        lines[4] = lines[4].replacen('w', "q", 1);
        let s = from_text_lossy(&lines.join("\n"));
        assert_eq!(s.events, evs[..4].to_vec());
        assert!(s.is_damaged());
        assert_eq!(s.salvaged_lines, 4);
        assert_eq!(s.dropped_lines, evs.len() - 4);
        assert_eq!(s.warnings.len(), 1);
        assert!(s.warnings[0].contains("line 5"), "{}", s.warnings[0]);
        assert!(s.warnings[0].contains("salvaged 4"), "{}", s.warnings[0]);
    }

    #[test]
    fn lossy_parse_of_truncated_capture_recovers_whole_lines() {
        let evs = sample_events();
        let text = to_text(&evs);
        // Simulate a capture cut off mid-write: keep 60% of the bytes.
        let cut = &text[..text.len() * 6 / 10];
        let s = from_text_lossy(cut);
        assert!(!s.events.is_empty(), "some events survive");
        assert!(s.events.len() < evs.len(), "some events were lost");
        assert_eq!(s.events, evs[..s.events.len()].to_vec(), "valid prefix");
    }

    #[test]
    fn lossy_parse_of_garbage_is_empty_not_a_panic() {
        let s = from_text_lossy("not a trace\n\u{1F980} bytes ~zz\n");
        assert!(s.events.is_empty());
        assert!(s.is_damaged());
        assert_eq!(s.salvaged_lines, 0);
        assert_eq!(s.dropped_lines, 2);
    }

    #[test]
    fn checksum_less_lines_remain_accepted() {
        let evs = from_text("1 0 0 texit\n").unwrap();
        assert_eq!(evs[0].event, Event::ThreadExit);
    }
}
