//! Strongly-typed identifiers used across the workspace.
//!
//! Newtypes keep thread ids, routine ids, guest memory addresses and basic
//! block ids statically distinct (C-NEWTYPE), while remaining `Copy` and
//! cheap to pass around.

use std::fmt;

/// Identifier of a guest thread.
///
/// Thread ids are small dense integers assigned by the execution substrate
/// in spawn order; the main thread is conventionally `ThreadId::MAIN`.
///
/// # Example
/// ```
/// use drms_trace::ThreadId;
/// assert_eq!(ThreadId::MAIN.index(), 0);
/// assert_eq!(ThreadId::new(3).to_string(), "T3");
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(u32);

impl ThreadId {
    /// The main (first) thread of a guest program.
    pub const MAIN: ThreadId = ThreadId(0);

    /// Creates a thread id from its dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        ThreadId(index)
    }

    /// Returns the dense index of this thread.
    #[inline]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<u32> for ThreadId {
    fn from(v: u32) -> Self {
        ThreadId(v)
    }
}

/// Identifier of a guest routine (function).
///
/// Routine ids index into a program's routine table; human-readable names
/// are resolved through a [`NameTable`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RoutineId(u32);

impl RoutineId {
    /// Creates a routine id from its dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        RoutineId(index)
    }

    /// Returns the dense index of this routine.
    #[inline]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for RoutineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl From<u32> for RoutineId {
    fn from(v: u32) -> Self {
        RoutineId(v)
    }
}

/// Identifier of a basic block within a routine.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockId(u32);

impl BlockId {
    /// Creates a block id from its dense index within the owning routine.
    #[inline]
    pub const fn new(index: u32) -> Self {
        BlockId(index)
    }

    /// Returns the dense index of this block within its routine.
    #[inline]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A guest memory address, in *cells* (one cell = one guest word).
///
/// The profiling algorithms track input sizes at cell granularity, the
/// analogue of the word granularity used by the original Valgrind tool.
/// Arithmetic helpers are provided for range expansion.
///
/// # Example
/// ```
/// use drms_trace::Addr;
/// let a = Addr::new(0x100);
/// assert_eq!(a.offset(4), Addr::new(0x104));
/// assert_eq!(a.to_string(), "0x100");
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// The null address. Guest programs never map cell 0.
    pub const NULL: Addr = Addr(0);

    /// Creates an address from a raw cell index.
    #[inline]
    pub const fn new(cell: u64) -> Self {
        Addr(cell)
    }

    /// Returns the raw cell index.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the address `delta` cells after `self`.
    #[inline]
    pub const fn offset(self, delta: u64) -> Self {
        Addr(self.0 + delta)
    }

    /// Iterates the `len` cells of the range starting at `self`.
    pub fn range(self, len: u32) -> impl Iterator<Item = Addr> {
        (self.0..self.0 + len as u64).map(Addr)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// Maps dense [`RoutineId`]s to human-readable routine names.
///
/// Produced by the execution substrate (the guest program knows its routine
/// names) and consumed by report renderers.
///
/// # Example
/// ```
/// use drms_trace::{NameTable, RoutineId};
/// let mut names = NameTable::new();
/// let id = names.intern("mysql_select");
/// assert_eq!(names.name(id), "mysql_select");
/// assert_eq!(names.intern("mysql_select"), id);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NameTable {
    names: Vec<String>,
}

impl NameTable {
    /// Creates an empty name table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its routine id. Repeated interning of the
    /// same name returns the same id.
    pub fn intern(&mut self, name: &str) -> RoutineId {
        if let Some(pos) = self.names.iter().position(|n| n == name) {
            return RoutineId::new(pos as u32);
        }
        self.names.push(name.to_owned());
        RoutineId::new((self.names.len() - 1) as u32)
    }

    /// Returns the name of `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this table.
    pub fn name(&self, id: RoutineId) -> &str {
        &self.names[id.index() as usize]
    }

    /// Returns the name of `id`, or `None` if unknown.
    pub fn get(&self, id: RoutineId) -> Option<&str> {
        self.names.get(id.index() as usize).map(String::as_str)
    }

    /// Looks up a routine id by exact name.
    pub fn id_of(&self, name: &str) -> Option<RoutineId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|p| RoutineId::new(p as u32))
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (RoutineId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (RoutineId::new(i as u32), n.as_str()))
    }
}

impl FromIterator<String> for NameTable {
    fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Self {
        NameTable {
            names: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_roundtrip() {
        let t = ThreadId::new(7);
        assert_eq!(t.index(), 7);
        assert_eq!(t, ThreadId::from(7));
        assert_eq!(format!("{t}"), "T7");
        assert!(ThreadId::MAIN < t);
    }

    #[test]
    fn routine_and_block_display() {
        assert_eq!(RoutineId::new(2).to_string(), "R2");
        assert_eq!(BlockId::new(5).to_string(), "bb5");
    }

    #[test]
    fn addr_range_expansion() {
        let a = Addr::new(10);
        let cells: Vec<u64> = a.range(3).map(Addr::raw).collect();
        assert_eq!(cells, vec![10, 11, 12]);
        assert_eq!(a.offset(2), Addr::new(12));
    }

    #[test]
    fn addr_range_empty() {
        assert_eq!(Addr::new(4).range(0).count(), 0);
    }

    #[test]
    fn name_table_interning() {
        let mut t = NameTable::new();
        assert!(t.is_empty());
        let a = t.intern("alpha");
        let b = t.intern("beta");
        assert_ne!(a, b);
        assert_eq!(t.intern("alpha"), a);
        assert_eq!(t.name(b), "beta");
        assert_eq!(t.id_of("beta"), Some(b));
        assert_eq!(t.id_of("gamma"), None);
        assert_eq!(t.len(), 2);
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs, vec![(a, "alpha"), (b, "beta")]);
    }

    #[test]
    fn name_table_from_iter() {
        let t: NameTable = vec!["x".to_string(), "y".to_string()].into_iter().collect();
        assert_eq!(t.name(RoutineId::new(1)), "y");
        assert_eq!(t.get(RoutineId::new(9)), None);
    }
}
