//! Per-thread recorded traces.

use crate::event::{Event, TimedEvent};
use crate::ids::ThreadId;
use std::fmt;

/// Errors reported by [`ThreadTrace::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidateTraceError {
    /// An event in the trace belongs to a different thread.
    ForeignThread { index: usize, found: ThreadId },
    /// Timestamps are not monotonically non-decreasing.
    NonMonotonicTime { index: usize },
    /// A `Return` event had no matching pending `Call`.
    UnbalancedReturn { index: usize },
    /// Cumulative cost decreased between consecutive events.
    DecreasingCost { index: usize },
}

impl fmt::Display for ValidateTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateTraceError::ForeignThread { index, found } => {
                write!(f, "event {index} belongs to foreign thread {found}")
            }
            ValidateTraceError::NonMonotonicTime { index } => {
                write!(f, "timestamp at event {index} decreases")
            }
            ValidateTraceError::UnbalancedReturn { index } => {
                write!(f, "return at event {index} has no matching call")
            }
            ValidateTraceError::DecreasingCost { index } => {
                write!(f, "cumulative cost at event {index} decreases")
            }
        }
    }
}

impl std::error::Error for ValidateTraceError {}

/// The recorded trace of a single guest thread: a time-ordered sequence of
/// [`TimedEvent`]s all issued by the same thread.
///
/// # Example
/// ```
/// use drms_trace::{ThreadTrace, ThreadId, Event, RoutineId};
/// let mut tr = ThreadTrace::new(ThreadId::MAIN);
/// tr.push(1, 0, Event::Call { routine: RoutineId::new(0) });
/// tr.push(2, 3, Event::Return { routine: RoutineId::new(0) });
/// assert!(tr.validate().is_ok());
/// assert_eq!(tr.len(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ThreadTrace {
    thread: ThreadId,
    events: Vec<TimedEvent>,
}

impl ThreadTrace {
    /// Creates an empty trace for `thread`.
    pub fn new(thread: ThreadId) -> Self {
        ThreadTrace {
            thread,
            events: Vec::new(),
        }
    }

    /// The thread this trace belongs to.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// Appends an event with the given timestamp and cumulative cost.
    pub fn push(&mut self, time: u64, cost: u64, event: Event) {
        self.events
            .push(TimedEvent::new(time, self.thread, cost, event));
    }

    /// Appends an already-timed event.
    ///
    /// # Panics
    /// Panics if the event's thread differs from this trace's thread.
    pub fn push_timed(&mut self, ev: TimedEvent) {
        assert_eq!(
            ev.thread, self.thread,
            "event thread {} differs from trace thread {}",
            ev.thread, self.thread
        );
        self.events.push(ev);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Consumes the trace, returning its events.
    pub fn into_events(self) -> Vec<TimedEvent> {
        self.events
    }

    /// Iterates the recorded events.
    pub fn iter(&self) -> std::slice::Iter<'_, TimedEvent> {
        self.events.iter()
    }

    /// Checks structural well-formedness: homogeneous thread ids, monotone
    /// timestamps, monotone costs and call/return balance (returns never
    /// outnumber calls at any prefix; a trace may end with pending calls).
    ///
    /// # Errors
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), ValidateTraceError> {
        let mut depth: u64 = 0;
        let mut last_time = 0u64;
        let mut last_cost = 0u64;
        for (index, ev) in self.events.iter().enumerate() {
            if ev.thread != self.thread {
                return Err(ValidateTraceError::ForeignThread {
                    index,
                    found: ev.thread,
                });
            }
            if ev.time < last_time {
                return Err(ValidateTraceError::NonMonotonicTime { index });
            }
            if ev.cost < last_cost {
                return Err(ValidateTraceError::DecreasingCost { index });
            }
            last_time = ev.time;
            last_cost = ev.cost;
            match ev.event {
                Event::Call { .. } => depth += 1,
                Event::Return { .. } => {
                    depth = depth
                        .checked_sub(1)
                        .ok_or(ValidateTraceError::UnbalancedReturn { index })?;
                }
                _ => {}
            }
        }
        Ok(())
    }
}

impl IntoIterator for ThreadTrace {
    type Item = TimedEvent;
    type IntoIter = std::vec::IntoIter<TimedEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

impl<'a> IntoIterator for &'a ThreadTrace {
    type Item = &'a TimedEvent;
    type IntoIter = std::slice::Iter<'a, TimedEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl Extend<TimedEvent> for ThreadTrace {
    fn extend<I: IntoIterator<Item = TimedEvent>>(&mut self, iter: I) {
        for ev in iter {
            self.push_timed(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Addr, RoutineId};

    fn call(r: u32) -> Event {
        Event::Call {
            routine: RoutineId::new(r),
        }
    }
    fn ret(r: u32) -> Event {
        Event::Return {
            routine: RoutineId::new(r),
        }
    }

    #[test]
    fn push_and_iterate() {
        let mut tr = ThreadTrace::new(ThreadId::new(2));
        tr.push(1, 0, call(0));
        tr.push(
            2,
            1,
            Event::Read {
                addr: Addr::new(5),
                len: 1,
            },
        );
        tr.push(3, 2, ret(0));
        assert_eq!(tr.len(), 3);
        assert!(!tr.is_empty());
        assert!(tr.iter().all(|e| e.thread == ThreadId::new(2)));
        assert!(tr.validate().is_ok());
    }

    #[test]
    fn validate_rejects_unbalanced_return() {
        let mut tr = ThreadTrace::new(ThreadId::MAIN);
        tr.push(1, 0, ret(0));
        assert_eq!(
            tr.validate(),
            Err(ValidateTraceError::UnbalancedReturn { index: 0 })
        );
    }

    #[test]
    fn validate_rejects_time_regression() {
        let mut tr = ThreadTrace::new(ThreadId::MAIN);
        tr.push(5, 0, call(0));
        tr.push(4, 1, ret(0));
        assert_eq!(
            tr.validate(),
            Err(ValidateTraceError::NonMonotonicTime { index: 1 })
        );
    }

    #[test]
    fn validate_rejects_cost_regression() {
        let mut tr = ThreadTrace::new(ThreadId::MAIN);
        tr.push(1, 9, call(0));
        tr.push(2, 3, ret(0));
        assert_eq!(
            tr.validate(),
            Err(ValidateTraceError::DecreasingCost { index: 1 })
        );
    }

    #[test]
    fn validate_allows_pending_calls_at_end() {
        let mut tr = ThreadTrace::new(ThreadId::MAIN);
        tr.push(1, 0, call(0));
        tr.push(2, 1, call(1));
        assert!(tr.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "differs from trace thread")]
    fn push_timed_rejects_foreign_thread() {
        let mut tr = ThreadTrace::new(ThreadId::MAIN);
        tr.push_timed(TimedEvent::new(1, ThreadId::new(1), 0, Event::ThreadExit));
    }

    #[test]
    fn extend_and_into_iter() {
        let mut tr = ThreadTrace::new(ThreadId::MAIN);
        tr.extend(vec![TimedEvent::new(1, ThreadId::MAIN, 0, call(0))]);
        let evs: Vec<_> = tr.clone().into_iter().collect();
        assert_eq!(evs.len(), 1);
        assert_eq!((&tr).into_iter().count(), 1);
    }

    #[test]
    fn validate_error_display() {
        let e = ValidateTraceError::ForeignThread {
            index: 3,
            found: ThreadId::new(9),
        };
        assert!(e.to_string().contains("foreign thread T9"));
    }
}
