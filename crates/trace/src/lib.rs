//! Execution-trace event model for input-sensitive profiling.
//!
//! This crate defines the vocabulary shared by the whole `drms` workspace:
//!
//! * [`ids`] — strongly-typed identifiers for threads, routines, memory
//!   addresses and basic blocks;
//! * [`event`] — the instrumentation events a dynamic-analysis substrate
//!   produces (`call`, `return`, `read`, `write`, `userToKernel`,
//!   `kernelToUser`, synchronization operations, …);
//! * [`trace`] — per-thread recorded traces of timestamped events;
//! * [`merge`] — merging per-thread traces into a single totally-ordered
//!   execution trace, breaking timestamp ties arbitrarily (Section 3 of the
//!   paper);
//! * [`replay()`] — feeding a merged trace back into an [`EventSink`], the
//!   consumer-side trait implemented by profilers, with `switchThread`
//!   notifications synthesized between events of different threads;
//! * [`codec`] — a plain-text serialization of traces for golden tests and
//!   offline analysis.
//!
//! The design mirrors the paper's model: the profiler is given per-thread
//! traces of timestamped operations, which are logically merged into one
//! totally-ordered execution trace (ties between threads broken
//! arbitrarily) before being consumed by the profiling algorithm.
//!
//! # Example
//!
//! ```
//! use drms_trace::{Event, ThreadId, RoutineId, Addr, ThreadTrace, merge_traces};
//!
//! let t0 = ThreadId::new(0);
//! let mut tr = ThreadTrace::new(t0);
//! tr.push(1, 0, Event::Call { routine: RoutineId::new(0) });
//! tr.push(2, 1, Event::Read { addr: Addr::new(0x10), len: 1 });
//! tr.push(3, 2, Event::Return { routine: RoutineId::new(0) });
//! let merged = merge_traces(vec![tr]);
//! assert_eq!(merged.len(), 3);
//! ```

pub mod codec;
pub mod event;
pub mod hostio;
pub mod ids;
pub mod journal;
pub mod merge;
pub mod obs;
pub mod replay;
pub mod sched;
pub mod shard;
pub mod stats;
pub mod trace;

pub use codec::{from_text, from_text_lossy, to_text, ParseTraceError, SalvagedTrace};
pub use event::{Event, SyncOp, TimedEvent};
pub use hostio::{HostFaultPlan, HostFaultSpecError, HostIo};
pub use ids::{Addr, BlockId, NameTable, RoutineId, ThreadId};
pub use journal::{JournalRecord, ParseJournalError, SalvagedJournal};
pub use merge::{merge_traces, merge_traces_with_ties, TieBreaker};
pub use obs::{Histogram, MergeError, Metrics};
pub use replay::{replay, EventSink};
pub use sched::{PreemptCause, SalvagedSchedule, SchedDecision, Schedule};
pub use shard::{
    SalvagedShard, ShardBatchKind, ShardEvent, ShardFrame, ShardPayload, ShardSet, ShardSummary,
    ShardWriter,
};
pub use stats::TraceStats;
pub use trace::ThreadTrace;
