//! `drms_obs` — the run-level observability registry.
//!
//! The paper evaluates aprof-drms by its overheads (Table 1, §5), which
//! means the instrumentation substrate itself must be measurable: event
//! volumes, scheduler occupancy, shadow-memory pressure, kernel transfer
//! traffic, salvage and fault counters. [`Metrics`] is the one place all
//! of those land — a deterministic, allocation-light registry of
//! monotonic **counters**, **gauges** and **fixed-bucket histograms**
//! keyed by dotted names (`vm.events.read`, `shadow.cache.hit`, …).
//!
//! Design rules:
//!
//! * **Deterministic by construction.** The default renderings
//!   ([`to_json`](Metrics::to_json), [`to_prometheus`](Metrics::to_prometheus))
//!   contain no wall-clock, no host addresses, no iteration-order
//!   artifacts: the same program + seed + schedule produces byte-identical
//!   output. Wall-clock measurements go into the separate *timings*
//!   section, which only [`to_json_with_timings`](Metrics::to_json_with_timings)
//!   renders.
//! * **Allocation-light.** Static names (`&'static str`) are stored
//!   borrowed; dynamic names (per-thread, per-tool) allocate once at
//!   registration, never per increment. Hot loops accumulate into plain
//!   integer fields and fold into the registry at finalization — the
//!   registry is the *ledger*, not the fast path.
//! * **Self-checking.** [`Metrics::audit`] cross-checks the recorded
//!   counters against each other (events emitted vs events counted,
//!   salvaged + dropped vs total lines, per-thread cost sums vs run
//!   cost), turning every accounting bug into a visible invariant
//!   violation instead of a silently wrong table.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A registry key: borrowed for static names, owned for dynamic ones.
pub type Name = Cow<'static, str>;

/// A fixed-bucket histogram: `counts[i]` holds observations `<= bounds[i]`
/// (and `counts[bounds.len()]` the overflow bucket), cumulative count and
/// sum alongside.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Upper bucket bounds, ascending. Static: picked at the observation
    /// site, identical for a given metric name.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts; `len == bounds.len() + 1` (the last
    /// slot is the `+Inf` bucket).
    pub counts: Vec<u64>,
    /// Total observations.
    pub total: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl Histogram {
    /// An empty histogram over `bounds`.
    pub fn new(bounds: &[u64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value;
    }

    /// Adds `other`'s observations into `self`.
    ///
    /// # Errors
    /// Returns [`MergeError`] when the bucket bounds differ — one metric
    /// name must always use one bucket layout. `self` is untouched in
    /// that case.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), MergeError> {
        if self.bounds != other.bounds {
            return Err(MergeError {
                name: String::new(),
                ours: self.bounds.clone(),
                theirs: other.bounds.clone(),
            });
        }
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
        self.sum += other.sum;
        Ok(())
    }
}

/// Error produced when merging histograms with mismatched bucket
/// layouts. One metric name must always use one bucket layout; two
/// registries disagreeing on it means they were produced by different
/// code (or one was corrupted in transit) and adding their buckets
/// would silently misattribute observations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergeError {
    /// The registry name of the offending histogram (empty when the
    /// merge was on a bare [`Histogram`] outside a registry).
    pub name: String,
    /// The bucket bounds already registered.
    pub ours: Vec<u64>,
    /// The bucket bounds of the incoming histogram.
    pub theirs: Vec<u64>,
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.name.is_empty() {
            write!(f, "histogram `{}`: ", self.name)?;
        }
        write!(
            f,
            "merge with mismatched bucket bounds: {:?} vs {:?}",
            self.ours, self.theirs
        )
    }
}

impl std::error::Error for MergeError {}

/// The metrics registry. See the module docs for the design rules.
///
/// # Example
/// ```
/// use drms_trace::obs::Metrics;
/// let mut m = Metrics::new();
/// m.inc("vm.events.read");
/// m.add("vm.events.read", 2);
/// m.set_gauge("vm.threads", 4);
/// m.observe("kernel.transfer.cells", &[4, 64], 100);
/// assert_eq!(m.counter("vm.events.read"), 3);
/// assert_eq!(m.gauge("vm.threads"), 4);
/// let json = m.to_json();
/// assert_eq!(json, m.to_json(), "rendering is deterministic");
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<Name, u64>,
    gauges: BTreeMap<Name, u64>,
    histograms: BTreeMap<Name, Histogram>,
    /// Wall-clock measurements in seconds. Excluded from the default
    /// renderings — see the module determinism rules.
    timings: BTreeMap<Name, f64>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments counter `name` by one.
    pub fn inc(&mut self, name: impl Into<Name>) {
        self.add(name, 1);
    }

    /// Increments counter `name` by `by`. Counters are monotonic: there
    /// is deliberately no decrement.
    pub fn add(&mut self, name: impl Into<Name>, by: u64) {
        *self.counters.entry(name.into()).or_insert(0) += by;
    }

    /// Current value of counter `name` (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn set_gauge(&mut self, name: impl Into<Name>, value: u64) {
        self.gauges.insert(name.into(), value);
    }

    /// Current value of gauge `name` (0 when never set).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Records `value` into histogram `name`, creating it over `bounds`
    /// on first use. One name must always use one bucket layout.
    pub fn observe(&mut self, name: impl Into<Name>, bounds: &[u64], value: u64) {
        self.histograms
            .entry(name.into())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Folds a pre-counted histogram into the registry (used when hot
    /// loops bucket locally and publish at finalization).
    ///
    /// # Errors
    /// Returns [`MergeError`] (carrying `name`) when a histogram is
    /// already registered under `name` with a different bucket layout.
    pub fn merge_histogram(
        &mut self,
        name: impl Into<Name>,
        h: &Histogram,
    ) -> Result<(), MergeError> {
        let name = name.into();
        self.histograms
            .entry(name.clone())
            .or_insert_with(|| Histogram::new(&h.bounds))
            .merge(h)
            .map_err(|e| MergeError {
                name: name.into_owned(),
                ..e
            })
    }

    /// The histogram registered under `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Records a wall-clock measurement in seconds. Timings never appear
    /// in the default renderings (determinism rule); use
    /// [`to_json_with_timings`](Self::to_json_with_timings) to export them.
    pub fn set_timing(&mut self, name: impl Into<Name>, seconds: f64) {
        self.timings.insert(name.into(), seconds);
    }

    /// The recorded wall-clock timing in seconds, if any.
    pub fn timing(&self, name: &str) -> Option<f64> {
        self.timings.get(name).copied()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.timings.is_empty()
    }

    /// Records the accounting of one lossy-salvage pass under `prefix`
    /// (e.g. `trace` or `sched`): `<prefix>.lines.salvaged`,
    /// `<prefix>.lines.dropped` and `<prefix>.lines.total`, which
    /// [`audit`](Self::audit) cross-checks (`salvaged + dropped == total`).
    pub fn record_salvage(&mut self, prefix: &str, salvaged: u64, dropped: u64, total: u64) {
        self.add(format!("{prefix}.lines.salvaged"), salvaged);
        self.add(format!("{prefix}.lines.dropped"), dropped);
        self.add(format!("{prefix}.lines.total"), total);
    }

    /// Merges `other` into `self`: counters, histogram buckets and
    /// timings add; gauges add as well, which gives grid merges (sweep
    /// cells) sum semantics — a merged registry reports totals across
    /// cells, and stays deterministic because addition commutes.
    ///
    /// # Errors
    /// Returns [`MergeError`] when `other` registers a histogram under a
    /// name `self` already holds with a different bucket layout (the
    /// registries were produced by different code). `self` may hold a
    /// partial merge in that case — treat it as poisoned.
    pub fn merge(&mut self, other: &Metrics) -> Result<(), MergeError> {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.merge_histogram(k.clone(), h)?;
        }
        for (k, v) in &other.timings {
            *self.timings.entry(k.clone()).or_insert(0.0) += v;
        }
        Ok(())
    }

    /// Cross-checks the registered counters against each other and
    /// returns every violated invariant (empty ⇒ consistent).
    ///
    /// Checks applied when the participating names are present:
    ///
    /// 1. `Σ vm.events.<kind>` == `vm.events.total` — every event the VM
    ///    delivered to a tool was counted by kind, and vice versa;
    /// 2. `Σ vm.blocks.thread.<t>` == `vm.basic_blocks`;
    /// 3. `Σ vm.cost.thread.<t>` == `vm.cost.total` — per-thread cost
    ///    sums match the run cost;
    /// 4. `Σ sched.preempt.<cause>` == `sched.slices` — every slice
    ///    ended for exactly one recorded cause;
    /// 5. `<p>.lines.salvaged + <p>.lines.dropped == <p>.lines.total`
    ///    for every salvage prefix `<p>` (lossy codec accounting);
    /// 6. `shadow.cache.hit + shadow.cache.miss == shadow.cache.lookups`;
    /// 7. every histogram's bucket counts sum to its total;
    /// 8. `sweep.attempts == sweep.completed + sweep.retries +
    ///    sweep.quarantined` — every supervised cell attempt either
    ///    completed its cell, was retried, or was the final attempt of a
    ///    quarantined cell (all four counters are additive, so the
    ///    invariant survives grid merges).
    pub fn audit(&self) -> Result<(), Vec<String>> {
        let mut violations = Vec::new();
        let mut check_sum = |parts: &str, total_name: &str| {
            if !self.counters.contains_key(total_name) {
                return;
            }
            let total = self.counter(total_name);
            let sum: u64 = self
                .counters
                .iter()
                .filter(|(k, _)| k.starts_with(parts) && k.as_ref() != total_name)
                .map(|(_, v)| v)
                .sum();
            if sum != total {
                violations.push(format!("sum({parts}*) = {sum} != {total_name} = {total}"));
            }
        };
        check_sum("vm.events.", "vm.events.total");
        check_sum("vm.blocks.thread.", "vm.basic_blocks");
        check_sum("vm.cost.thread.", "vm.cost.total");
        check_sum("sched.preempt.", "sched.slices");

        let salvage_prefixes: Vec<String> = self
            .counters
            .keys()
            .filter_map(|k| k.strip_suffix(".lines.total").map(str::to_owned))
            .collect();
        for p in salvage_prefixes {
            let salvaged = self.counter(&format!("{p}.lines.salvaged"));
            let dropped = self.counter(&format!("{p}.lines.dropped"));
            let total = self.counter(&format!("{p}.lines.total"));
            if salvaged + dropped != total {
                violations.push(format!(
                    "{p}.lines.salvaged ({salvaged}) + {p}.lines.dropped ({dropped}) \
                     != {p}.lines.total ({total})"
                ));
            }
        }

        if self.counters.contains_key("shadow.cache.lookups") {
            let hit = self.counter("shadow.cache.hit");
            let miss = self.counter("shadow.cache.miss");
            let lookups = self.counter("shadow.cache.lookups");
            if hit + miss != lookups {
                violations.push(format!(
                    "shadow.cache.hit ({hit}) + shadow.cache.miss ({miss}) \
                     != shadow.cache.lookups ({lookups})"
                ));
            }
        }

        if self.counters.contains_key("sweep.attempts") {
            let attempts = self.counter("sweep.attempts");
            let completed = self.counter("sweep.completed");
            let retries = self.counter("sweep.retries");
            let quarantined = self.counter("sweep.quarantined");
            if completed + retries + quarantined != attempts {
                violations.push(format!(
                    "sweep.completed ({completed}) + sweep.retries ({retries}) \
                     + sweep.quarantined ({quarantined}) != sweep.attempts ({attempts})"
                ));
            }
        }

        for (name, h) in &self.histograms {
            let bucket_sum: u64 = h.counts.iter().sum();
            if bucket_sum != h.total {
                violations.push(format!(
                    "histogram {name}: bucket sum {bucket_sum} != total {}",
                    h.total
                ));
            }
        }

        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }

    /// Renders the registry as deterministic JSON: sorted names, integer
    /// values, no timings. Byte-identical across runs of the same
    /// program + seed + schedule.
    pub fn to_json(&self) -> String {
        self.render_json(false)
    }

    /// Like [`to_json`](Self::to_json), plus a `"timings"` section of
    /// wall-clock seconds. **Not** deterministic across runs — meant for
    /// overhead reports, not for byte-comparison gates.
    pub fn to_json_with_timings(&self) -> String {
        self.render_json(true)
    }

    fn render_json(&self, timings: bool) -> String {
        fn map_block(out: &mut String, title: &str, entries: &BTreeMap<Name, u64>, last: bool) {
            let _ = writeln!(out, "  \"{title}\": {{");
            for (i, (k, v)) in entries.iter().enumerate() {
                let comma = if i + 1 < entries.len() { "," } else { "" };
                let _ = writeln!(out, "    \"{k}\": {v}{comma}");
            }
            let _ = writeln!(out, "  }}{}", if last { "" } else { "," });
        }
        let mut out = String::from("{\n");
        map_block(&mut out, "counters", &self.counters, false);
        map_block(&mut out, "gauges", &self.gauges, false);
        let _ = writeln!(out, "  \"histograms\": {{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            let comma = if i + 1 < self.histograms.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    \"{k}\": {{\"bounds\": {:?}, \"counts\": {:?}, \
                 \"total\": {}, \"sum\": {}}}{comma}",
                h.bounds, h.counts, h.total, h.sum
            );
        }
        let _ = writeln!(out, "  }}{}", if timings { "," } else { "" });
        if timings {
            let _ = writeln!(out, "  \"timings\": {{");
            for (i, (k, v)) in self.timings.iter().enumerate() {
                let comma = if i + 1 < self.timings.len() { "," } else { "" };
                let _ = writeln!(out, "    \"{k}\": {v:.6}{comma}");
            }
            let _ = writeln!(out, "  }}");
        }
        out.push_str("}\n");
        out
    }

    /// Renders the registry as a compact line-per-entry text form meant
    /// for embedding in checkpoint journals ([`crate::journal`]):
    ///
    /// ```text
    /// counter <name> <value>
    /// gauge <name> <value>
    /// hist <name> <bounds|-> <counts> <total> <sum>
    /// timing <name> <seconds>
    /// ```
    ///
    /// Deterministic (sorted names) and lossless: [`from_lines`]
    /// (Self::from_lines) round-trips it exactly, including timings —
    /// journals capture the full cell state, and the determinism split
    /// is re-applied at render time, not at checkpoint time.
    ///
    /// Metric names must not contain spaces (dotted names never do).
    pub fn to_lines(&self) -> String {
        fn csv(values: &[u64]) -> String {
            if values.is_empty() {
                return "-".to_string();
            }
            values
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",")
        }
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "counter {k} {v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "gauge {k} {v}");
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(
                out,
                "hist {k} {} {} {} {}",
                csv(&h.bounds),
                csv(&h.counts),
                h.total,
                h.sum
            );
        }
        for (k, v) in &self.timings {
            let _ = writeln!(out, "timing {k} {v}");
        }
        out
    }

    /// Parses the [`to_lines`](Self::to_lines) form back into a registry.
    /// Blank lines are skipped; any other malformed line is an error (the
    /// journal layer has already checksummed the payload, so damage here
    /// means a writer bug, not file corruption).
    pub fn from_lines(text: &str) -> Result<Metrics, String> {
        fn uncsv(tok: &str) -> Result<Vec<u64>, String> {
            if tok == "-" {
                return Ok(Vec::new());
            }
            tok.split(',')
                .map(|v| v.parse().map_err(|_| format!("bad number `{v}`")))
                .collect()
        }
        let mut m = Metrics::new();
        for (i, line) in text.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| format!("metrics line {}: {msg}: `{line}`", i + 1);
            let mut tok = line.split(' ');
            let kind = tok.next().unwrap_or_default();
            let name = tok.next().ok_or_else(|| err("missing name"))?.to_string();
            match kind {
                "counter" | "gauge" => {
                    let v: u64 = tok
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("bad value"))?;
                    if kind == "counter" {
                        m.add(name, v);
                    } else {
                        m.set_gauge(name, v);
                    }
                }
                "hist" => {
                    let bounds = uncsv(tok.next().ok_or_else(|| err("missing bounds"))?)
                        .map_err(|e| err(&e))?;
                    let counts = uncsv(tok.next().ok_or_else(|| err("missing counts"))?)
                        .map_err(|e| err(&e))?;
                    let total: u64 = tok
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("bad total"))?;
                    let sum: u64 = tok
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("bad sum"))?;
                    if counts.len() != bounds.len() + 1 {
                        return Err(err("counts/bounds length mismatch"));
                    }
                    m.histograms.insert(
                        name.into(),
                        Histogram {
                            bounds,
                            counts,
                            total,
                            sum,
                        },
                    );
                }
                "timing" => {
                    let v: f64 = tok
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("bad seconds"))?;
                    m.set_timing(name, v);
                }
                _ => return Err(err("unknown entry kind")),
            }
            if tok.next().is_some() {
                return Err(err("trailing tokens"));
            }
        }
        Ok(m)
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (dots become underscores, `drms_` prefix), for quick diffing with
    /// standard tooling. Deterministic; timings are excluded.
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            format!("drms_{}", name.replace(['.', '-'], "_"))
        }
        let mut out = String::new();
        for (k, v) in &self.counters {
            let n = sanitize(k);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {v}");
        }
        for (k, v) in &self.gauges {
            let n = sanitize(k);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {v}");
        }
        for (k, h) in &self.histograms {
            let n = sanitize(k);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0;
            for (i, c) in h.counts.iter().enumerate() {
                cumulative += c;
                match h.bounds.get(i) {
                    Some(b) => {
                        let _ = writeln!(out, "{n}_bucket{{le=\"{b}\"}} {cumulative}");
                    }
                    None => {
                        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {cumulative}");
                    }
                }
            }
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.total);
        }
        out
    }

    /// Iterates the counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_ref(), *v))
    }

    /// Iterates the gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(k, v)| (k.as_ref(), *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let mut m = Metrics::new();
        m.inc("a.one");
        m.add("a.one", 4);
        m.set_gauge("g", 7);
        m.set_gauge("g", 9);
        m.observe("h", &[2, 8], 1);
        m.observe("h", &[2, 8], 5);
        m.observe("h", &[2, 8], 100);
        assert_eq!(m.counter("a.one"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("g"), 9, "gauges are last-write-wins");
        let h = m.histogram("h").unwrap();
        assert_eq!(h.counts, vec![1, 1, 1]);
        assert_eq!(h.total, 3);
        assert_eq!(h.sum, 106);
    }

    #[test]
    fn json_is_deterministic_and_sorted() {
        let mut a = Metrics::new();
        a.inc("z.last");
        a.inc("a.first");
        a.set_timing("wall", 1.23);
        let mut b = Metrics::new();
        b.inc("a.first");
        b.inc("z.last");
        b.set_timing("wall", 9.87);
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "insertion order and timings must not leak into default JSON"
        );
        assert!(a.to_json().find("a.first").unwrap() < a.to_json().find("z.last").unwrap());
        assert!(!a.to_json().contains("wall"), "no wall-clock by default");
        assert!(a.to_json_with_timings().contains("\"wall\": 1.23"));
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Metrics::new();
        a.inc("c");
        a.set_gauge("g", 10);
        a.observe("h", &[4], 3);
        let mut b = Metrics::new();
        b.add("c", 2);
        b.set_gauge("g", 5);
        b.observe("h", &[4], 9);
        a.merge(&b).unwrap();
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge("g"), 15, "gauges merge additively (grid sums)");
        let h = a.histogram("h").unwrap();
        assert_eq!(h.counts, vec![1, 1]);
        assert_eq!(h.sum, 12);
    }

    #[test]
    fn histogram_merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[1, 2]);
        a.observe(1);
        let err = a.merge(&Histogram::new(&[1, 3])).unwrap_err();
        assert!(
            err.to_string().contains("mismatched bucket bounds"),
            "{err}"
        );
        assert_eq!(err.ours, vec![1, 2]);
        assert_eq!(err.theirs, vec![1, 3]);
        assert_eq!(a.total, 1, "failed merge leaves the histogram untouched");
    }

    #[test]
    fn registry_merge_names_the_offending_histogram() {
        let mut a = Metrics::new();
        a.observe("vm.h", &[1, 2], 1);
        let mut b = Metrics::new();
        b.observe("vm.h", &[1, 3], 1);
        let err = a.merge(&b).unwrap_err();
        assert_eq!(err.name, "vm.h");
        assert!(err.to_string().contains("`vm.h`"), "{err}");
        // Same layouts merge fine, and the error type is Eq for tests.
        let mut c = Metrics::new();
        c.observe("vm.h", &[1, 2], 9);
        assert_eq!(a.merge(&c), Ok(()));
    }

    #[test]
    fn audit_passes_on_consistent_registries() {
        let mut m = Metrics::new();
        m.add("vm.events.read", 3);
        m.add("vm.events.call", 2);
        m.add("vm.events.total", 5);
        m.add("vm.blocks.thread.0", 10);
        m.add("vm.blocks.thread.1", 4);
        m.add("vm.basic_blocks", 14);
        m.add("sched.preempt.quantum", 2);
        m.add("sched.slices", 2);
        m.record_salvage("trace", 7, 1, 8);
        m.add("shadow.cache.hit", 9);
        m.add("shadow.cache.miss", 1);
        m.add("shadow.cache.lookups", 10);
        assert_eq!(m.audit(), Ok(()));
        assert_eq!(
            Metrics::new().audit(),
            Ok(()),
            "empty registry is consistent"
        );
    }

    #[test]
    fn audit_flags_every_broken_invariant() {
        let mut m = Metrics::new();
        m.add("vm.events.read", 3);
        m.add("vm.events.total", 5);
        m.record_salvage("sched", 4, 1, 6);
        m.add("shadow.cache.hit", 2);
        m.add("shadow.cache.lookups", 5);
        let violations = m.audit().unwrap_err();
        assert_eq!(violations.len(), 3, "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("vm.events")));
        assert!(violations.iter().any(|v| v.contains("sched.lines")));
        assert!(violations.iter().any(|v| v.contains("shadow.cache")));
    }

    #[test]
    fn audit_checks_sweep_attempt_accounting() {
        let mut m = Metrics::new();
        m.add("sweep.attempts", 7);
        m.add("sweep.completed", 4);
        m.add("sweep.retries", 2);
        m.add("sweep.quarantined", 1);
        assert_eq!(m.audit(), Ok(()));
        m.add("sweep.retries", 1);
        let violations = m.audit().unwrap_err();
        assert!(violations.iter().any(|v| v.contains("sweep.attempts")));
    }

    #[test]
    fn line_codec_roundtrips_everything() {
        let mut m = Metrics::new();
        m.add("vm.events.total", 42);
        m.set_gauge("sweep.cells", 6);
        m.observe("kernel.transfer.cells", &[4, 64], 5);
        m.observe("kernel.transfer.cells", &[4, 64], 1000);
        m.observe("empty.bounds", &[], 3);
        m.set_timing("patterns.native.secs", 0.12345678901234);
        let text = m.to_lines();
        let back = Metrics::from_lines(&text).unwrap();
        assert_eq!(back, m, "{text}");
        assert_eq!(back.to_lines(), text);
        assert_eq!(Metrics::from_lines("").unwrap(), Metrics::new());
    }

    #[test]
    fn line_codec_rejects_malformed_lines() {
        for bad in [
            "counter a",
            "gauge g x",
            "hist h 1,2 1,1 2",
            "hist h 1,2 1,1,1,1 4 9",
            "mystery m 1",
            "counter a 1 extra",
        ] {
            assert!(Metrics::from_lines(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn prometheus_rendering_has_buckets_and_types() {
        let mut m = Metrics::new();
        m.inc("vm.events.total");
        m.set_gauge("vm.threads", 2);
        m.observe("kernel.transfer.cells", &[4, 64], 5);
        m.observe("kernel.transfer.cells", &[4, 64], 1000);
        let text = m.to_prometheus();
        assert!(text.contains("# TYPE drms_vm_events_total counter"));
        assert!(text.contains("drms_vm_threads 2"));
        assert!(text.contains("drms_kernel_transfer_cells_bucket{le=\"64\"} 1"));
        assert!(text.contains("drms_kernel_transfer_cells_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("drms_kernel_transfer_cells_count 2"));
    }
}
