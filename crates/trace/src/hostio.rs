//! Host-side storage fault injection.
//!
//! PR 1 gave *guest* syscalls a seeded [`FaultPlan`](../../drms_vm), but
//! every *host* write the crash-safety story depends on — journal
//! appends, atomic artifact renames, spec persistence — still assumed a
//! perfect OS. [`HostIo`] is the small abstraction those writers thread
//! their file operations through: in production it is a zero-cost
//! pass-through to `std::fs`, and under test (or behind
//! `--host-faults SPEC` in `repro`/`aprofd`) a seeded [`HostFaultPlan`]
//! injects the classic storage failures at deterministic points:
//!
//! * **ENOSPC** — a write (or temp-file creation) fails with
//!   storage-full, optionally only after N bytes have landed (the
//!   slowly-filling-disk shape);
//! * **fsync EIO** — the data was "written" but cannot be made durable;
//! * **torn writes** — a prefix of the buffer lands, then the write
//!   fails, exactly what a crash mid-append leaves on disk;
//! * **rename failure** — the atomic-publish step itself fails;
//! * **directory-sync failure** — the rename may be lost on power cut.
//!
//! # Spec grammar
//!
//! A plan is written as comma- or semicolon-separated elements,
//! mirroring the kernel `FaultPlan` grammar:
//!
//! ```text
//! spec    := element ( (","|";") element )*
//! element := "seed=" INT | rule
//! rule    := op ":" kind [ ":" trigger ]
//! op      := "create" | "write" | "fsync" | "rename" | "syncdir" | "any"
//! kind    := "enospc" | "eio" | "torn"
//! trigger := "once=" INT                 (the Nth matching op, 1-based)
//!          | "every=" INT [ "+" INT ]    (period, optional phase)
//!          | "after=" INT                (fires once ≥ INT bytes written)
//!          | "p=" INT "/" INT            (probability, seeded)
//! ```
//!
//! Examples: `write:enospc:after=4096` (disk fills after 4 KiB),
//! `fsync:eio:once=2` (the second fsync fails), `write:torn:once=3`
//! (the third write lands only a prefix), `rename:eio` (every rename
//! fails). A rule with no trigger fires on every matching operation.
//! Operations are numbered from 1 per kind; `p=` draws consume a
//! seeded xorshift generator, so a plan plus a seed reproduces the
//! exact same fault sequence on every run.

use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Which host file operation a rule matches.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HostOp {
    /// Creating (truncating) a file — temp artifacts, fresh journals.
    Create,
    /// Writing bytes to an open file.
    Write,
    /// `fsync` / `fdatasync` of an open file.
    Fsync,
    /// Renaming a file over its destination (the atomic publish).
    Rename,
    /// Syncing a directory so a rename survives power loss.
    SyncDir,
}

impl HostOp {
    /// The spec-grammar token for this operation.
    pub fn name(self) -> &'static str {
        match self {
            HostOp::Create => "create",
            HostOp::Write => "write",
            HostOp::Fsync => "fsync",
            HostOp::Rename => "rename",
            HostOp::SyncDir => "syncdir",
        }
    }

    fn index(self) -> usize {
        match self {
            HostOp::Create => 0,
            HostOp::Write => 1,
            HostOp::Fsync => 2,
            HostOp::Rename => 3,
            HostOp::SyncDir => 4,
        }
    }
}

impl fmt::Display for HostOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What kind of storage fault to inject on a matching operation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HostFaultKind {
    /// The device is full (`ENOSPC`): the operation fails, nothing (or
    /// for writes, only the bytes that fit) lands.
    Enospc,
    /// A hard I/O error (`EIO`): the operation fails outright.
    Eio,
    /// A torn write: a prefix of the buffer lands, then the write
    /// fails — the on-disk shape of a crash mid-append. Only
    /// meaningful for [`HostOp::Write`]; on other ops it behaves like
    /// [`HostFaultKind::Eio`].
    Torn,
}

impl HostFaultKind {
    /// The spec-grammar token for this kind.
    pub fn name(self) -> &'static str {
        match self {
            HostFaultKind::Enospc => "enospc",
            HostFaultKind::Eio => "eio",
            HostFaultKind::Torn => "torn",
        }
    }
}

impl fmt::Display for HostFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// When a matching rule actually fires.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HostTrigger {
    /// Fires exactly once, on the `at`-th matching op (1-based).
    Once {
        /// 1-based matching-op index.
        at: u64,
    },
    /// Fires on every `period`-th matching op, shifted by `phase`.
    Every {
        /// Period in matching ops.
        period: u64,
        /// Phase shift of the schedule.
        phase: u64,
    },
    /// Fires on every matching op once at least `bytes` bytes have been
    /// written through this [`HostIo`] — the slowly-filling-disk shape.
    After {
        /// Total-bytes-written threshold.
        bytes: u64,
    },
    /// Fires with probability `num/den`, drawn from the plan's seeded
    /// generator.
    Prob {
        /// Numerator.
        num: u32,
        /// Denominator.
        den: u32,
    },
    /// Fires on every matching op.
    Always,
}

impl HostTrigger {
    fn fires(self, op: u64, bytes_written: u64, rng: &mut u64) -> bool {
        match self {
            HostTrigger::Once { at } => op == at,
            HostTrigger::Every { period, phase } => {
                period > 0 && op % period == phase % period.max(1)
            }
            HostTrigger::After { bytes } => bytes_written >= bytes,
            HostTrigger::Prob { num, den } => {
                den > 0 && (xorshift(rng) % u64::from(den)) < u64::from(num)
            }
            HostTrigger::Always => true,
        }
    }
}

impl fmt::Display for HostTrigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostTrigger::Once { at } => write!(f, ":once={at}"),
            HostTrigger::Every { period, phase: 0 } => write!(f, ":every={period}"),
            HostTrigger::Every { period, phase } => write!(f, ":every={period}+{phase}"),
            HostTrigger::After { bytes } => write!(f, ":after={bytes}"),
            HostTrigger::Prob { num, den } => write!(f, ":p={num}/{den}"),
            HostTrigger::Always => Ok(()),
        }
    }
}

/// A tiny xorshift64* step: the only randomness `p=` triggers need, so
/// the trace crate stays free of the VM's RNG.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// One host-fault rule: which operations it matches and what it injects
/// when its trigger fires.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct HostFaultRule {
    /// Restrict to one operation (`None` = `any`).
    pub op: Option<HostOp>,
    /// The fault to inject.
    pub kind: HostFaultKind,
    /// When to inject it.
    pub trigger: HostTrigger,
}

impl fmt::Display for HostFaultRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            Some(op) => write!(f, "{op}:{}{}", self.kind, self.trigger),
            None => write!(f, "any:{}{}", self.kind, self.trigger),
        }
    }
}

/// A malformed host-fault spec string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostFaultSpecError {
    /// The offending spec element.
    pub element: String,
    /// What is wrong with it.
    pub message: String,
}

impl fmt::Display for HostFaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host fault element `{}`: {}", self.element, self.message)
    }
}

impl std::error::Error for HostFaultSpecError {}

fn spec_err(element: &str, message: impl Into<String>) -> HostFaultSpecError {
    HostFaultSpecError {
        element: element.to_string(),
        message: message.into(),
    }
}

/// A seeded, reproducible schedule of host storage faults.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostFaultPlan {
    /// Seed of the generator `p=` triggers draw from.
    pub seed: u64,
    /// The rules, evaluated in order; the first firing rule wins.
    pub rules: Vec<HostFaultRule>,
}

impl Default for HostFaultPlan {
    fn default() -> Self {
        HostFaultPlan {
            seed: 1,
            rules: Vec::new(),
        }
    }
}

impl HostFaultPlan {
    /// Parses the spec grammar (see the module docs).
    ///
    /// # Errors
    /// [`HostFaultSpecError`] names the malformed element.
    pub fn parse(spec: &str) -> Result<HostFaultPlan, HostFaultSpecError> {
        let mut plan = HostFaultPlan::default();
        for element in spec
            .split([',', ';'])
            .map(str::trim)
            .filter(|e| !e.is_empty())
        {
            if let Some(seed) = element.strip_prefix("seed=") {
                plan.seed = seed
                    .parse()
                    .map_err(|_| spec_err(element, "bad seed value"))?;
                continue;
            }
            let mut parts = element.split(':');
            let op_tok = parts.next().unwrap_or_default();
            let op = match op_tok {
                "create" => Some(HostOp::Create),
                "write" => Some(HostOp::Write),
                "fsync" => Some(HostOp::Fsync),
                "rename" => Some(HostOp::Rename),
                "syncdir" => Some(HostOp::SyncDir),
                "any" => None,
                other => return Err(spec_err(element, format!("unknown op `{other}`"))),
            };
            let kind = match parts.next() {
                Some("enospc") => HostFaultKind::Enospc,
                Some("eio") => HostFaultKind::Eio,
                Some("torn") => HostFaultKind::Torn,
                Some(other) => return Err(spec_err(element, format!("unknown kind `{other}`"))),
                None => return Err(spec_err(element, "missing fault kind")),
            };
            let trigger = match parts.next() {
                None => HostTrigger::Always,
                Some(t) => parse_trigger(element, t)?,
            };
            if parts.next().is_some() {
                return Err(spec_err(element, "trailing tokens after the trigger"));
            }
            plan.rules.push(HostFaultRule { op, kind, trigger });
        }
        if plan.rules.is_empty() {
            return Err(spec_err(spec.trim(), "plan has no rules"));
        }
        Ok(plan)
    }
}

fn parse_trigger(element: &str, t: &str) -> Result<HostTrigger, HostFaultSpecError> {
    if let Some(v) = t.strip_prefix("once=") {
        let at = v
            .parse()
            .map_err(|_| spec_err(element, "bad once= value"))?;
        if at == 0 {
            return Err(spec_err(element, "once= is 1-based; 0 never fires"));
        }
        return Ok(HostTrigger::Once { at });
    }
    if let Some(v) = t.strip_prefix("every=") {
        let (period, phase) = match v.split_once('+') {
            Some((p, ph)) => (p, ph.parse().ok()),
            None => (v, Some(0)),
        };
        let period: u64 = period
            .parse()
            .map_err(|_| spec_err(element, "bad every= period"))?;
        let phase = phase.ok_or_else(|| spec_err(element, "bad every= phase"))?;
        if period == 0 {
            return Err(spec_err(element, "every=0 never fires"));
        }
        return Ok(HostTrigger::Every { period, phase });
    }
    if let Some(v) = t.strip_prefix("after=") {
        let bytes = v
            .parse()
            .map_err(|_| spec_err(element, "bad after= value"))?;
        return Ok(HostTrigger::After { bytes });
    }
    if let Some(v) = t.strip_prefix("p=") {
        let (num, den) = v
            .split_once('/')
            .ok_or_else(|| spec_err(element, "p= needs num/den"))?;
        let num: u32 = num.parse().map_err(|_| spec_err(element, "bad p= num"))?;
        let den: u32 = den.parse().map_err(|_| spec_err(element, "bad p= den"))?;
        if den == 0 || num > den {
            return Err(spec_err(element, "p= needs 0 <= num <= den, den > 0"));
        }
        return Ok(HostTrigger::Prob { num, den });
    }
    Err(spec_err(element, format!("unknown trigger `{t}`")))
}

impl fmt::Display for HostFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for rule in &self.rules {
            write!(f, ",{rule}")?;
        }
        Ok(())
    }
}

/// The typed payload of an injected fault's [`io::Error`]: carries which
/// operation was hit and why, so chaos tests (and shed classification in
/// `aprofd`) can tell an injected fault from a real one.
#[derive(Clone, Debug)]
pub struct InjectedHostFault {
    /// The operation that was failed.
    pub op: HostOp,
    /// The fault kind injected.
    pub kind: HostFaultKind,
    /// 1-based index of the operation among ops of its kind.
    pub at_op: u64,
}

impl fmt::Display for InjectedHostFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected host fault: {} on {} op {}",
            self.kind, self.op, self.at_op
        )
    }
}

impl std::error::Error for InjectedHostFault {}

/// Whether `err` (at any depth of its custom-error chain) is an
/// injected host fault rather than a real OS failure.
pub fn is_injected(err: &io::Error) -> bool {
    err.get_ref()
        .is_some_and(|e| e.downcast_ref::<InjectedHostFault>().is_some())
}

#[derive(Debug, Default)]
struct FaultState {
    plan: Option<HostFaultPlan>,
    rng: u64,
    /// Per-[`HostOp`] 1-based operation counters.
    ops: [u64; 5],
    bytes_written: u64,
    injected: u64,
}

impl FaultState {
    /// Advances the op counter for `op` and returns the firing rule, if
    /// any.
    fn check(&mut self, op: HostOp) -> Option<(HostFaultKind, u64)> {
        let at = {
            let c = &mut self.ops[op.index()];
            *c += 1;
            *c
        };
        let bytes = self.bytes_written;
        let plan = self.plan.as_mut()?;
        for rule in &plan.rules {
            if rule.op.is_some_and(|o| o != op) {
                continue;
            }
            if rule.trigger.fires(at, bytes, &mut self.rng) {
                self.injected += 1;
                return Some((rule.kind, at));
            }
        }
        None
    }
}

/// A handle to host file I/O, real or fault-injected. Cheap to clone;
/// clones share one fault schedule (op counters, byte budget, seeded
/// generator), so every writer in a process observes one consistent
/// simulated disk.
#[derive(Clone, Debug)]
pub struct HostIo {
    state: Arc<Mutex<FaultState>>,
}

impl Default for HostIo {
    fn default() -> Self {
        HostIo::real()
    }
}

impl HostIo {
    /// Production I/O: every operation passes straight through to
    /// `std::fs` (op counters are still maintained — they are cheap and
    /// let chaos suites size their fault grids from a clean run).
    pub fn real() -> HostIo {
        HostIo {
            state: Arc::new(Mutex::new(FaultState::default())),
        }
    }

    /// Fault-injected I/O driven by `plan`.
    pub fn with_faults(plan: HostFaultPlan) -> HostIo {
        let rng = plan.seed.max(1);
        HostIo {
            state: Arc::new(Mutex::new(FaultState {
                plan: Some(plan),
                rng,
                ..FaultState::default()
            })),
        }
    }

    /// Parses `spec` (see the module grammar) into a fault-injected
    /// handle.
    ///
    /// # Errors
    /// [`HostFaultSpecError`] on a malformed spec.
    pub fn from_spec(spec: &str) -> Result<HostIo, HostFaultSpecError> {
        Ok(HostIo::with_faults(HostFaultPlan::parse(spec)?))
    }

    /// Whether this handle injects faults at all.
    pub fn is_faulty(&self) -> bool {
        self.state.lock().unwrap().plan.is_some()
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.state.lock().unwrap().injected
    }

    /// Operations of `op` kind performed so far (attempted, whether or
    /// not they were failed) — chaos suites enumerate fault points from
    /// these counts.
    pub fn ops(&self, op: HostOp) -> u64 {
        self.state.lock().unwrap().ops[op.index()]
    }

    fn fault(&self, op: HostOp) -> Option<io::Error> {
        let (kind, at_op) = self.state.lock().unwrap().check(op)?;
        Some(injected_error(op, kind, at_op))
    }

    /// Creates (truncates) the file at `path`.
    ///
    /// # Errors
    /// Real I/O failures, or an injected `create` fault.
    pub fn create(&self, path: &Path) -> io::Result<File> {
        if let Some(e) = self.fault(HostOp::Create) {
            return Err(e);
        }
        File::create(path)
    }

    /// Writes all of `bytes` to `file`. A `torn` fault lands a prefix
    /// (half the buffer) before failing — the shape a crash mid-append
    /// leaves on disk; an `enospc`/`eio` fault fails without writing.
    ///
    /// # Errors
    /// Real I/O failures, or an injected `write` fault.
    pub fn write_all(&self, file: &mut File, bytes: &[u8]) -> io::Result<()> {
        let fault = {
            let mut s = self.state.lock().unwrap();
            let fault = s.check(HostOp::Write);
            // Count the bytes that actually land, including a torn
            // prefix: `after=` models the disk filling up.
            let landed = match fault {
                None => bytes.len(),
                Some((HostFaultKind::Torn, _)) => bytes.len() / 2,
                Some(_) => 0,
            };
            s.bytes_written += landed as u64;
            fault
        };
        match fault {
            None => file.write_all(bytes),
            Some((HostFaultKind::Torn, at)) => {
                file.write_all(&bytes[..bytes.len() / 2])?;
                Err(injected_error(HostOp::Write, HostFaultKind::Torn, at))
            }
            Some((kind, at)) => Err(injected_error(HostOp::Write, kind, at)),
        }
    }

    /// Syncs `file`'s data and metadata to disk.
    ///
    /// # Errors
    /// Real I/O failures, or an injected `fsync` fault.
    pub fn fsync(&self, file: &File) -> io::Result<()> {
        if let Some(e) = self.fault(HostOp::Fsync) {
            return Err(e);
        }
        file.sync_all()
    }

    /// Syncs only `file`'s data (`fdatasync`) — the journal's per-append
    /// flush.
    ///
    /// # Errors
    /// Real I/O failures, or an injected `fsync` fault.
    pub fn fdatasync(&self, file: &File) -> io::Result<()> {
        if let Some(e) = self.fault(HostOp::Fsync) {
            return Err(e);
        }
        file.sync_data()
    }

    /// Renames `from` over `to` (the atomic publish step).
    ///
    /// # Errors
    /// Real I/O failures, or an injected `rename` fault.
    pub fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if let Some(e) = self.fault(HostOp::Rename) {
            return Err(e);
        }
        fs::rename(from, to)
    }

    /// Syncs the parent directory of `path`, making a rename (or file
    /// creation) in it durable across power loss. On platforms where
    /// directories cannot be opened, this is a successful no-op.
    ///
    /// # Errors
    /// Real I/O failures, or an injected `syncdir` fault.
    pub fn sync_parent_dir(&self, path: &Path) -> io::Result<()> {
        if let Some(e) = self.fault(HostOp::SyncDir) {
            return Err(e);
        }
        let Some(dir) = path.parent().filter(|p| !p.as_os_str().is_empty()) else {
            return Ok(());
        };
        if cfg!(unix) {
            File::open(dir)?.sync_all()
        } else {
            // Directories cannot be opened for syncing everywhere;
            // best-effort off unix.
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
            Ok(())
        }
    }
}

fn injected_error(op: HostOp, kind: HostFaultKind, at_op: u64) -> io::Error {
    let error_kind = match kind {
        HostFaultKind::Enospc => io::ErrorKind::StorageFull,
        HostFaultKind::Eio | HostFaultKind::Torn => io::ErrorKind::Other,
    };
    io::Error::new(error_kind, InjectedHostFault { op, kind, at_op })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("drms-hostio-{}", std::process::id()));
        let _ = fs::create_dir_all(&dir);
        dir.join(name)
    }

    #[test]
    fn spec_round_trips_through_display() {
        let specs = [
            "seed=7,write:enospc:after=4096",
            "seed=1,fsync:eio:once=2,rename:eio",
            "seed=3,any:torn:every=3+1,write:eio:p=1/8",
        ];
        for spec in specs {
            let plan = HostFaultPlan::parse(spec).unwrap();
            let reparsed = HostFaultPlan::parse(&plan.to_string()).unwrap();
            assert_eq!(plan, reparsed, "{spec}");
        }
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        for bad in [
            "",
            "write",
            "write:nope",
            "bogus:eio",
            "write:eio:whenever",
            "write:eio:once=0",
            "write:eio:every=0",
            "write:eio:p=3/2",
            "seed=x,write:eio",
            "write:eio:once=1:extra",
        ] {
            let err = HostFaultPlan::parse(bad).unwrap_err();
            assert!(!err.to_string().is_empty(), "{bad}");
        }
    }

    #[test]
    fn real_io_passes_through_and_counts_ops() {
        let io = HostIo::real();
        let path = tmp("real.txt");
        let mut f = io.create(&path).unwrap();
        io.write_all(&mut f, b"hello").unwrap();
        io.fsync(&f).unwrap();
        let to = tmp("real2.txt");
        io.rename(&path, &to).unwrap();
        io.sync_parent_dir(&to).unwrap();
        assert_eq!(fs::read_to_string(&to).unwrap(), "hello");
        assert_eq!(io.ops(HostOp::Create), 1);
        assert_eq!(io.ops(HostOp::Write), 1);
        assert_eq!(io.ops(HostOp::Fsync), 1);
        assert_eq!(io.ops(HostOp::Rename), 1);
        assert_eq!(io.ops(HostOp::SyncDir), 1);
        assert_eq!(io.injected(), 0);
        let _ = fs::remove_file(&to);
    }

    #[test]
    fn once_trigger_fails_exactly_that_op() {
        let io = HostIo::from_spec("fsync:eio:once=2").unwrap();
        let path = tmp("once.txt");
        let mut f = io.create(&path).unwrap();
        io.write_all(&mut f, b"x").unwrap();
        io.fsync(&f).unwrap();
        let err = io.fsync(&f).unwrap_err();
        assert!(is_injected(&err), "{err}");
        assert!(err.to_string().contains("fsync op 2"), "{err}");
        io.fsync(&f).unwrap();
        assert_eq!(io.injected(), 1);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_write_lands_a_prefix_then_fails() {
        let io = HostIo::from_spec("write:torn:once=2").unwrap();
        let path = tmp("torn.txt");
        let mut f = io.create(&path).unwrap();
        io.write_all(&mut f, b"first|").unwrap();
        let err = io.write_all(&mut f, b"second").unwrap_err();
        assert!(is_injected(&err));
        drop(f);
        assert_eq!(fs::read_to_string(&path).unwrap(), "first|sec");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn enospc_after_bytes_models_a_filling_disk() {
        let io = HostIo::from_spec("write:enospc:after=8").unwrap();
        let path = tmp("enospc.txt");
        let mut f = io.create(&path).unwrap();
        io.write_all(&mut f, b"1234").unwrap();
        io.write_all(&mut f, b"5678").unwrap();
        let err = io.write_all(&mut f, b"9abc").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert!(is_injected(&err));
        // The disk stays full: later writes keep failing.
        assert!(io.write_all(&mut f, b"x").is_err());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn clones_share_one_simulated_disk() {
        let io = HostIo::from_spec("fsync:eio:once=2").unwrap();
        let other = io.clone();
        let path = tmp("shared.txt");
        let f = io.create(&path).unwrap();
        io.fsync(&f).unwrap();
        assert!(other.fsync(&f).is_err(), "clone sees the shared counter");
        assert_eq!(io.injected(), 1);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn probability_triggers_are_seeded_and_reproducible() {
        let fire = |seed: u64| -> Vec<bool> {
            let io = HostIo::with_faults(
                HostFaultPlan::parse(&format!("seed={seed},fsync:eio:p=1/2")).unwrap(),
            );
            let path = tmp(&format!("prob-{seed}.txt"));
            let f = io.create(&path).unwrap();
            let fired: Vec<bool> = (0..32).map(|_| io.fsync(&f).is_err()).collect();
            let _ = fs::remove_file(&path);
            fired
        };
        assert_eq!(fire(7), fire(7), "same seed, same schedule");
        assert_ne!(fire(7), fire(8), "different seed, different schedule");
    }
}
