//! Checksummed append-only checkpoint journal.
//!
//! Long sweeps (family × size × seed grids) are exactly the jobs where a
//! crash throws away hours of work. The journal lets a supervisor record
//! each completed unit of work as it finishes and salvage everything that
//! was durably written when the process is killed mid-grid.
//!
//! The format is a length-framed sibling of the `.trace`/`.sched` line
//! codecs and reuses their FNV-1a checksum and lossy-prefix-salvage
//! idioms, extended to multi-line payloads:
//!
//! ```text
//! # drms-journal v1
//! @rec <meta> %<payload-bytes> ~<hex checksum of the header payload>
//! <payload bytes, exactly %n of them, may contain newlines>
//! @end ~<hex FNV-1a checksum of the payload bytes>
//! ```
//!
//! * the `@rec` header carries a free-form single-line `meta` token
//!   stream (record kind, grid index, attempt counts — whatever the
//!   writer needs to key records by), the exact payload length in bytes,
//!   and a checksum of the header itself;
//! * the payload is copied verbatim — it is *length-framed*, not
//!   line-framed, so payloads may embed any text, including lines that
//!   look like journal framing;
//! * the `@end` trailer checksums the payload, so a torn write (the
//!   classic crash-mid-append) is detected even when the truncation point
//!   happens to fall on a plausible-looking boundary.
//!
//! [`from_text`] fails on the first damaged record; [`from_text_lossy`]
//! salvages the longest valid prefix — everything before the first
//! corrupt or torn record — mirroring the trace/sched codecs. A journal
//! is append-only: re-recording a unit of work appends a fresh record,
//! and readers let the *last* record for a key win.

use crate::codec::checksum;
use crate::obs::Metrics;

/// The first line of every journal file.
pub const FILE_HEADER: &str = "# drms-journal v1";

/// One salvageable unit of work: an opaque `meta` key line plus an
/// opaque payload (both chosen by the writer).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalRecord {
    /// Single-line, free-form record key ("spec minidb", "cell 3 ok", …).
    pub meta: String,
    /// Verbatim payload; may contain newlines.
    pub payload: String,
}

/// Error produced when strictly parsing a journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseJournalError {
    /// 1-based index of the offending record (0 for file-level problems).
    pub record: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseJournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "journal record {}: {}", self.record, self.message)
    }
}

impl std::error::Error for ParseJournalError {}

/// Encodes one record (header line + payload + trailer). The result is
/// what an appender writes — durable once flushed, self-delimiting, and
/// verifiable without trusting anything that follows it in the file.
///
/// # Panics
/// Panics if `meta` contains a newline: the header must stay one line.
pub fn encode_record(meta: &str, payload: &str) -> String {
    assert!(
        !meta.contains('\n') && !meta.contains('\r'),
        "journal meta must be a single line"
    );
    let header = format!("@rec {meta} %{}", payload.len());
    let mut out = String::with_capacity(header.len() + payload.len() + 32);
    out.push_str(&header);
    out.push_str(&format!(" ~{:x}\n", checksum(&header)));
    out.push_str(payload);
    out.push_str(&format!("\n@end ~{:x}\n", checksum(payload)));
    out
}

/// Serializes a whole journal: file header plus every record in order.
pub fn to_text(records: &[JournalRecord]) -> String {
    let mut out = String::from(FILE_HEADER);
    out.push('\n');
    for r in records {
        out.push_str(&encode_record(&r.meta, &r.payload));
    }
    out
}

/// Strictly parses a journal; fails on the first damaged record.
pub fn from_text(text: &str) -> Result<Vec<JournalRecord>, ParseJournalError> {
    let salvaged = from_text_lossy(text);
    match salvaged.warnings.first() {
        None => Ok(salvaged.records),
        Some(w) => Err(ParseJournalError {
            record: salvaged.salvaged + 1,
            message: w.clone(),
        }),
    }
}

/// Result of a lossy journal parse: the longest valid prefix of records
/// plus the salvage accounting, mirroring
/// [`SalvagedTrace`](crate::codec::SalvagedTrace) /
/// [`SalvagedSchedule`](crate::sched::SalvagedSchedule).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SalvagedJournal {
    /// Records recovered from the valid prefix.
    pub records: Vec<JournalRecord>,
    /// `records.len()`, for symmetric accounting.
    pub salvaged: usize,
    /// Records lost to the damaged suffix (counted by `@rec` headers
    /// seen after the first corruption).
    pub dropped: usize,
    /// `salvaged + dropped`.
    pub total: usize,
    /// One human-readable warning per detected problem (at most one for
    /// a prefix salvage: everything after the first tear is dropped).
    pub warnings: Vec<String>,
}

impl SalvagedJournal {
    /// Whether anything was lost (or the file header itself was bad).
    pub fn is_damaged(&self) -> bool {
        !self.warnings.is_empty()
    }

    /// Folds the salvage accounting into `metrics` under the `journal`
    /// prefix: `journal.lines.salvaged/dropped/total` (cross-checked by
    /// [`Metrics::audit`]) plus the headline `journal.cells_salvaged`
    /// counter used by resume reporting.
    pub fn observe_metrics(&self, metrics: &mut Metrics) {
        metrics.record_salvage(
            "journal",
            self.salvaged as u64,
            self.dropped as u64,
            self.total as u64,
        );
        metrics.add("journal.cells_salvaged", self.salvaged as u64);
        if self.is_damaged() {
            metrics.inc("journal.damaged");
        }
    }
}

/// Parses as many complete, checksum-valid records as possible from the
/// start of `text`, stopping at the first sign of damage. Truncating a
/// journal at *any* byte yields the records that were fully appended
/// before the truncation point — never a torn or corrupt record.
pub fn from_text_lossy(text: &str) -> SalvagedJournal {
    let mut out = SalvagedJournal::default();
    let mut pos = 0usize;

    // File header line (tolerate a missing trailing newline on it only
    // if the file contains nothing else).
    match read_line(text, pos) {
        Some((line, next)) if line == FILE_HEADER => pos = next,
        Some((line, _)) => {
            out.warnings
                .push(format!("bad journal header line: `{line}`"));
            out.dropped = count_record_headers(text, 0);
            out.total = out.dropped;
            return out;
        }
        None => {
            if !text.is_empty() {
                out.warnings
                    .push("journal header truncated mid-line".to_string());
            }
            return out;
        }
    }

    loop {
        let rec_start = pos;
        let (line, next) = match read_line(text, pos) {
            Some(x) => x,
            None => {
                if pos < text.len() {
                    out.warnings
                        .push("record header truncated mid-line".to_string());
                }
                break;
            }
        };
        pos = next;
        if line.is_empty() {
            continue; // stray blank line between records is harmless
        }
        if line.starts_with("@end") {
            // A duplicate `@end` trailer (a writer retrying an append
            // after a partially-flushed one) is unambiguous at record
            // position: note it and keep going — the records after it
            // are intact and must not be dropped with the noise.
            out.warnings
                .push(format!("stray `@end` trailer skipped: `{line}`"));
            continue;
        }
        match parse_record_at(text, line, pos) {
            Ok((rec, next)) => {
                out.records.push(rec);
                pos = next;
            }
            Err(msg) => {
                out.warnings.push(msg);
                pos = rec_start;
                break;
            }
        }
    }

    out.salvaged = out.records.len();
    // Count the records we failed to recover: every @rec header in the
    // damaged suffix. The torn record itself counts once even when its
    // header line is what got corrupted beyond recognition. Skipped
    // stray trailers cost no records, so nothing is dropped when the
    // scan reached the end of the file.
    if !out.warnings.is_empty() && pos < text.len() {
        let mut dropped = count_record_headers(text, pos);
        if dropped == 0 {
            dropped = 1;
        }
        out.dropped = dropped;
    }
    out.total = out.salvaged + out.dropped;
    out
}

/// Parses one record whose header `line` was read ending at byte
/// `payload_start`. Returns the record and the byte offset just past its
/// trailer, or a warning message on any damage.
fn parse_record_at(
    text: &str,
    line: &str,
    payload_start: usize,
) -> Result<(JournalRecord, usize), String> {
    let (header_payload, want_sum) = match line.rsplit_once(" ~") {
        Some((p, sum)) => (p, sum),
        None => return Err(format!("record header without checksum: `{line}`")),
    };
    if !header_payload.starts_with("@rec ") {
        return Err(format!("expected `@rec` header, found `{line}`"));
    }
    match u64::from_str_radix(want_sum, 16) {
        Ok(sum) if sum == checksum(header_payload) => {}
        _ => return Err(format!("record header checksum mismatch: `{line}`")),
    }
    let body = &header_payload["@rec ".len()..];
    let (meta, len_tok) = match body.rsplit_once(" %") {
        Some(x) => x,
        None => return Err(format!("record header without payload length: `{line}`")),
    };
    let payload_len: usize = match len_tok.parse() {
        Ok(n) => n,
        Err(_) => return Err(format!("bad payload length `{len_tok}`")),
    };
    let payload_end = payload_start.checked_add(payload_len);
    let payload = match payload_end.and_then(|end| text.get(payload_start..end)) {
        Some(p) => p,
        None => return Err("payload truncated".to_string()),
    };
    let mut pos = payload_start + payload_len;
    // The encoder terminates the payload with one separator newline
    // before the trailer line (so the trailer always starts a line even
    // when the payload lacks a trailing newline).
    match text.get(pos..pos + 1) {
        Some("\n") => pos += 1,
        _ => return Err("payload separator truncated".to_string()),
    }
    let (trailer, next) = match read_line(text, pos) {
        Some(x) => x,
        None => return Err("record trailer truncated".to_string()),
    };
    pos = next;
    let want = format!("@end ~{:x}", checksum(payload));
    if trailer != want {
        return Err(format!(
            "payload checksum mismatch: expected `{want}`, found `{trailer}`"
        ));
    }
    Ok((
        JournalRecord {
            meta: meta.to_string(),
            payload: payload.to_string(),
        },
        pos,
    ))
}

/// Reads the line starting at byte `pos`; returns `(line, next_pos)` only
/// when the line is terminated by `\n` (an unterminated tail is, by
/// definition, a torn write).
fn read_line(text: &str, pos: usize) -> Option<(&str, usize)> {
    let rest = text.get(pos..)?;
    let nl = rest.find('\n')?;
    Some((&rest[..nl], pos + nl + 1))
}

/// Counts `@rec ` headers at line starts from byte `pos` on — the
/// records the salvage pass could not recover. Payload bytes can fake a
/// header, so this is an estimate that errs toward reporting loss.
fn count_record_headers(text: &str, pos: usize) -> usize {
    let rest = match text.get(pos..) {
        Some(r) => r,
        None => return 0,
    };
    rest.lines().filter(|l| l.starts_with("@rec ")).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<JournalRecord> {
        vec![
            JournalRecord {
                meta: "spec minidb".to_string(),
                payload: "family minidb\nsizes 2,4\nseeds 1\n".to_string(),
            },
            JournalRecord {
                meta: "cell 0 ok".to_string(),
                payload: "size 2\nseed 1\n@rec looks like framing %9 ~0\n".to_string(),
            },
            JournalRecord {
                meta: "cell 1 quarantined".to_string(),
                payload: String::new(),
            },
        ]
    }

    #[test]
    fn roundtrip_strict() {
        let text = to_text(&sample());
        assert_eq!(from_text(&text).unwrap(), sample());
    }

    #[test]
    fn payload_may_embed_framing_lines() {
        let text = to_text(&sample());
        let s = from_text_lossy(&text);
        assert!(!s.is_damaged(), "{:?}", s.warnings);
        assert_eq!(s.records[1].payload, sample()[1].payload);
    }

    #[test]
    fn truncation_at_every_byte_salvages_a_prefix_and_never_panics() {
        let text = to_text(&sample());
        let full = from_text_lossy(&text).records;
        let mut seen_lens = Vec::new();
        for cut in 0..=text.len() {
            let Some(prefix) = text.get(..cut) else {
                continue; // non-char boundary: a file system write can't
                          // produce it from valid UTF-8 appends
            };
            let s = from_text_lossy(prefix);
            assert!(s.records.len() <= full.len());
            assert_eq!(s.records[..], full[..s.records.len()], "cut at {cut}");
            assert_eq!(s.salvaged + s.dropped, s.total, "cut at {cut}");
            seen_lens.push(s.records.len());
        }
        assert_eq!(*seen_lens.last().unwrap(), full.len());
        assert!(seen_lens.contains(&1), "partial salvage seen");
    }

    #[test]
    fn flipped_byte_is_detected() {
        let text = to_text(&sample());
        // Flip a byte inside the second record's payload.
        let idx = text.find("seed 1").unwrap();
        let mut bytes = text.into_bytes();
        bytes[idx] = b'X';
        let corrupted = String::from_utf8(bytes).unwrap();
        let s = from_text_lossy(&corrupted);
        assert_eq!(s.records.len(), 1, "only the first record survives");
        assert!(s.is_damaged());
        // 2 real records lost + 1 fake `@rec` line inside the lost
        // payload: the estimate errs toward reporting loss.
        assert_eq!(s.dropped, 3);
        assert!(from_text(&corrupted).is_err());
    }

    #[test]
    fn bad_file_header_salvages_nothing() {
        let text = to_text(&sample()).replace(FILE_HEADER, "# not a journal");
        let s = from_text_lossy(&text);
        assert!(s.records.is_empty());
        assert!(s.is_damaged());
        assert_eq!(s.dropped, 4, "3 real records + 1 fake header line");
    }

    #[test]
    fn empty_and_header_only_files_are_clean() {
        assert!(!from_text_lossy("").is_damaged());
        let s = from_text_lossy(&format!("{FILE_HEADER}\n"));
        assert!(!s.is_damaged());
        assert_eq!(s.total, 0);
    }

    #[test]
    fn meta_with_newline_panics() {
        let r = std::panic::catch_unwind(|| encode_record("two\nlines", ""));
        assert!(r.is_err());
    }

    #[test]
    fn observe_metrics_feeds_audit() {
        let text = to_text(&sample());
        let torn = &text[..text.len() - 3];
        let s = from_text_lossy(torn);
        let mut m = Metrics::new();
        s.observe_metrics(&mut m);
        assert_eq!(m.counter("journal.cells_salvaged"), s.salvaged as u64);
        assert_eq!(m.counter("journal.damaged"), 1);
        assert_eq!(m.audit(), Ok(()));
    }
}
