//! Recorded thread schedules: the scheduling decisions of one guest run.
//!
//! The VM's serializing scheduler executes one thread at a time; each
//! *slice* is described by a [`SchedDecision`] — which thread was chosen,
//! how many interpreter steps it ran, and why the slice ended (the
//! [`PreemptCause`]). The full [`Schedule`] is a compact, replayable
//! artifact: feeding it back through the VM's replay policy reproduces
//! the exact interleaving, and therefore a bit-identical tool event
//! stream and drms report.
//!
//! # Text format
//!
//! Like the event codec, one record per line with a trailing FNV-1a
//! `~<hex>` checksum:
//!
//! ```text
//! # drms-sched v1
//! quantum 50 ~<checksum>
//! <thread> <steps> <cause> ~<checksum>
//! ```
//!
//! Cause mnemonics: `q` quantum expiry, `s` sync-point preemption, `k`
//! kernel-transfer preemption, `b` thread blocked, `y` thread yielded,
//! `x` thread exited, `a` run aborted mid-slice. [`from_text`] fails on
//! the first bad line; [`from_text_lossy`] salvages the longest valid
//! prefix and reports how many lines were kept vs dropped.

use crate::codec::checksum;
use crate::ids::ThreadId;
use std::fmt;

/// Why a scheduling slice ended.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PreemptCause {
    /// The slice's basic-block quantum expired (forced preemption).
    Quantum,
    /// Preempted right after a synchronization operation (forced;
    /// injected by the chaos policy).
    Sync,
    /// Preempted right after a kernel transfer (forced; injected by the
    /// chaos policy).
    Kernel,
    /// The thread blocked on a semaphore, mutex, condvar or join.
    Block,
    /// The thread voluntarily yielded.
    Yield,
    /// The thread exited.
    Exit,
    /// The run aborted mid-slice (watchdog or guest error); the slice
    /// covers the steps executed before the abort.
    Abort,
}

impl PreemptCause {
    /// Every cause, in declaration order. The per-cause scheduler
    /// counters (`sched.preempt.*`) index this array, and
    /// `Metrics::audit` checks their sum against `sched.slices`.
    pub const ALL: [PreemptCause; 7] = [
        PreemptCause::Quantum,
        PreemptCause::Sync,
        PreemptCause::Kernel,
        PreemptCause::Block,
        PreemptCause::Yield,
        PreemptCause::Exit,
        PreemptCause::Abort,
    ];

    /// The index of this cause in [`Self::ALL`].
    pub fn index(self) -> usize {
        match self {
            PreemptCause::Quantum => 0,
            PreemptCause::Sync => 1,
            PreemptCause::Kernel => 2,
            PreemptCause::Block => 3,
            PreemptCause::Yield => 4,
            PreemptCause::Exit => 5,
            PreemptCause::Abort => 6,
        }
    }

    /// The lower-case word used in metric names (`sched.preempt.<word>`).
    pub fn metric_name(self) -> &'static str {
        match self {
            PreemptCause::Quantum => "quantum",
            PreemptCause::Sync => "sync",
            PreemptCause::Kernel => "kernel",
            PreemptCause::Block => "block",
            PreemptCause::Yield => "yield",
            PreemptCause::Exit => "exit",
            PreemptCause::Abort => "abort",
        }
    }

    /// The single-character codec mnemonic.
    pub fn token(self) -> &'static str {
        match self {
            PreemptCause::Quantum => "q",
            PreemptCause::Sync => "s",
            PreemptCause::Kernel => "k",
            PreemptCause::Block => "b",
            PreemptCause::Yield => "y",
            PreemptCause::Exit => "x",
            PreemptCause::Abort => "a",
        }
    }

    /// Parses a codec mnemonic back into a cause.
    pub fn from_token(token: &str) -> Option<Self> {
        Some(match token {
            "q" => PreemptCause::Quantum,
            "s" => PreemptCause::Sync,
            "k" => PreemptCause::Kernel,
            "b" => PreemptCause::Block,
            "y" => PreemptCause::Yield,
            "x" => PreemptCause::Exit,
            "a" => PreemptCause::Abort,
            _ => return None,
        })
    }

    /// Whether the scheduler forced this preemption (as opposed to the
    /// thread stopping on its own). Forced preemptions are the schedule's
    /// information content: they are what the shrinker minimizes.
    pub fn is_forced(self) -> bool {
        matches!(
            self,
            PreemptCause::Quantum | PreemptCause::Sync | PreemptCause::Kernel
        )
    }
}

impl fmt::Display for PreemptCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PreemptCause::Quantum => "quantum expiry",
            PreemptCause::Sync => "sync preemption",
            PreemptCause::Kernel => "kernel preemption",
            PreemptCause::Block => "blocked",
            PreemptCause::Yield => "yielded",
            PreemptCause::Exit => "exited",
            PreemptCause::Abort => "aborted",
        };
        f.write_str(name)
    }
}

/// One scheduling slice: the chosen thread, how many interpreter steps
/// it executed, and why the slice ended.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SchedDecision {
    /// The thread granted the slice.
    pub thread: ThreadId,
    /// Interpreter steps executed within the slice (block entries,
    /// instructions and terminators all count as one step each).
    pub steps: u32,
    /// Why the slice ended.
    pub cause: PreemptCause,
}

impl fmt::Display for SchedDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ran {} steps, {}",
            self.thread, self.steps, self.cause
        )
    }
}

/// A complete recorded schedule: every scheduling decision of one run,
/// in order, plus the base quantum it was recorded under.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule {
    /// The configured base quantum (in basic blocks) of the recording
    /// run — informational; replay is driven purely by the decisions.
    pub quantum: u32,
    /// The scheduling decisions, in slice order.
    pub decisions: Vec<SchedDecision>,
}

impl Schedule {
    /// An empty schedule recorded under `quantum`.
    pub fn new(quantum: u32) -> Self {
        Schedule {
            quantum,
            decisions: Vec::new(),
        }
    }

    /// Number of recorded decisions.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// Whether no decisions were recorded.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// Number of *forced* preemption points (quantum, sync, kernel) —
    /// the shrinker's minimization objective. Natural stops (block,
    /// yield, exit) are not preemptions: any scheduler would stop there.
    pub fn preemption_points(&self) -> usize {
        self.decisions
            .iter()
            .filter(|d| d.cause.is_forced())
            .count()
    }

    /// Appends a decision.
    pub fn push(&mut self, decision: SchedDecision) {
        self.decisions.push(decision);
    }
}

/// Error produced when parsing a serialized schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSchedError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for ParseSchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseSchedError {}

/// Serializes a schedule to the line-oriented text format.
///
/// # Example
/// ```
/// use drms_trace::sched::{to_text, from_text, Schedule, SchedDecision, PreemptCause};
/// use drms_trace::ThreadId;
///
/// let mut s = Schedule::new(50);
/// s.push(SchedDecision { thread: ThreadId::MAIN, steps: 120, cause: PreemptCause::Quantum });
/// assert_eq!(from_text(&to_text(&s)).unwrap(), s);
/// ```
pub fn to_text(schedule: &Schedule) -> String {
    let mut out = String::from("# drms-sched v1\n");
    let quantum_line = format!("quantum {}", schedule.quantum);
    out.push_str(&format!("{quantum_line} ~{:x}\n", checksum(&quantum_line)));
    for d in &schedule.decisions {
        let line = format!("{} {} {}", d.thread.index(), d.steps, d.cause.token());
        out.push_str(&format!("{line} ~{:x}\n", checksum(&line)));
    }
    out
}

/// Splits off and verifies the optional trailing `~<hex>` checksum,
/// returning the payload.
fn verify_checksum(line: &str, line_no: usize) -> Result<&str, ParseSchedError> {
    let err = |message: String| ParseSchedError {
        line: line_no,
        message,
    };
    match line.rsplit_once('~') {
        Some((head, hex)) if head.ends_with(char::is_whitespace) => {
            let payload = head.trim_end();
            let declared = u64::from_str_radix(hex, 16)
                .map_err(|e| err(format!("bad checksum `{hex}`: {e}")))?;
            let actual = checksum(payload);
            if actual != declared {
                return Err(err(format!(
                    "checksum mismatch: line declares {declared:x}, payload hashes to {actual:x}"
                )));
            }
            Ok(payload)
        }
        _ => Ok(line),
    }
}

fn parse_decision(payload: &str, line_no: usize) -> Result<SchedDecision, ParseSchedError> {
    let err = |message: String| ParseSchedError {
        line: line_no,
        message,
    };
    let mut parts = payload.split_ascii_whitespace();
    let thread = parts
        .next()
        .ok_or_else(|| err("missing thread".into()))?
        .parse::<u32>()
        .map_err(|e| err(format!("bad thread: {e}")))?;
    let steps = parts
        .next()
        .ok_or_else(|| err("missing steps".into()))?
        .parse::<u32>()
        .map_err(|e| err(format!("bad steps: {e}")))?;
    let cause_tok = parts.next().ok_or_else(|| err("missing cause".into()))?;
    let cause = PreemptCause::from_token(cause_tok)
        .ok_or_else(|| err(format!("unknown cause `{cause_tok}`")))?;
    if let Some(extra) = parts.next() {
        return Err(err(format!("trailing token `{extra}`")));
    }
    Ok(SchedDecision {
        thread: ThreadId::new(thread),
        steps,
        cause,
    })
}

/// Parses one non-comment line: either the `quantum N` header or a
/// decision. Returns `(quantum, None)` or `(None, decision)`.
fn parse_sched_line(
    line: &str,
    line_no: usize,
) -> Result<(Option<u32>, Option<SchedDecision>), ParseSchedError> {
    let payload = verify_checksum(line, line_no)?;
    if let Some(q) = payload.strip_prefix("quantum ") {
        let quantum = q.trim().parse::<u32>().map_err(|e| ParseSchedError {
            line: line_no,
            message: format!("bad quantum: {e}"),
        })?;
        return Ok((Some(quantum), None));
    }
    Ok((None, Some(parse_decision(payload, line_no)?)))
}

/// Parses the text format back into a [`Schedule`].
///
/// Blank lines and `#` comments are skipped. Lines carrying a `~<hex>`
/// checksum are verified; lines without one are accepted unverified.
///
/// # Errors
/// Returns a [`ParseSchedError`] naming the first malformed line.
pub fn from_text(text: &str) -> Result<Schedule, ParseSchedError> {
    let mut schedule = Schedule::default();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_sched_line(line, line_no)? {
            (Some(q), _) => schedule.quantum = q,
            (_, Some(d)) => schedule.push(d),
            _ => unreachable!("parse_sched_line yields a quantum or a decision"),
        }
    }
    Ok(schedule)
}

/// A schedule recovered from damaged text by [`from_text_lossy`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SalvagedSchedule {
    /// The longest valid prefix of the schedule.
    pub schedule: Schedule,
    /// Non-comment lines successfully parsed.
    pub salvaged_lines: usize,
    /// Non-comment lines dropped (the first malformed line and
    /// everything after it).
    pub dropped_lines: usize,
    /// Non-comment, non-blank input lines seen — counted independently
    /// of the salvage decisions, so `salvaged_lines + dropped_lines ==
    /// total_lines` is a checkable invariant (blank and `#` comment
    /// lines count in neither side nor the total).
    pub total_lines: usize,
    /// Human-readable description of what was dropped and why (empty
    /// when the whole text parsed cleanly).
    pub warnings: Vec<String>,
}

impl SalvagedSchedule {
    /// Whether any line failed to parse (i.e. data was dropped).
    pub fn is_damaged(&self) -> bool {
        self.dropped_lines > 0
    }

    /// Records this salvage's accounting into `metrics` under the
    /// `sched` prefix, where [`Metrics::audit`](crate::obs::Metrics::audit)
    /// cross-checks `salvaged + dropped == total`.
    pub fn observe_metrics(&self, metrics: &mut crate::obs::Metrics) {
        metrics.record_salvage(
            "sched",
            self.salvaged_lines as u64,
            self.dropped_lines as u64,
            self.total_lines as u64,
        );
    }
}

/// Parses as much of a damaged schedule as possible: the longest prefix
/// of well-formed lines. Decisions after a corruption point cannot be
/// trusted to belong where they appear, so everything from the first bad
/// line onward is dropped and counted. Never fails.
pub fn from_text_lossy(text: &str) -> SalvagedSchedule {
    let mut salvage = SalvagedSchedule::default();
    let mut first_error: Option<ParseSchedError> = None;
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        salvage.total_lines += 1;
        if first_error.is_some() {
            salvage.dropped_lines += 1;
            continue;
        }
        match parse_sched_line(line, line_no) {
            Ok((Some(q), _)) => {
                salvage.schedule.quantum = q;
                salvage.salvaged_lines += 1;
            }
            Ok((_, Some(d))) => {
                salvage.schedule.push(d);
                salvage.salvaged_lines += 1;
            }
            Ok(_) => unreachable!("parse_sched_line yields a quantum or a decision"),
            Err(e) => {
                salvage.dropped_lines += 1;
                first_error = Some(e);
            }
        }
    }
    if let Some(e) = first_error {
        salvage.warnings.push(format!(
            "{e}; salvaged {} line(s), dropped {}",
            salvage.salvaged_lines, salvage.dropped_lines
        ));
    }
    salvage
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        Schedule {
            quantum: 50,
            decisions: vec![
                SchedDecision {
                    thread: ThreadId::new(0),
                    steps: 120,
                    cause: PreemptCause::Quantum,
                },
                SchedDecision {
                    thread: ThreadId::new(1),
                    steps: 7,
                    cause: PreemptCause::Sync,
                },
                SchedDecision {
                    thread: ThreadId::new(2),
                    steps: 31,
                    cause: PreemptCause::Kernel,
                },
                SchedDecision {
                    thread: ThreadId::new(1),
                    steps: 4,
                    cause: PreemptCause::Block,
                },
                SchedDecision {
                    thread: ThreadId::new(0),
                    steps: 9,
                    cause: PreemptCause::Yield,
                },
                SchedDecision {
                    thread: ThreadId::new(0),
                    steps: 2,
                    cause: PreemptCause::Exit,
                },
            ],
        }
    }

    #[test]
    fn roundtrips_all_causes() {
        let s = sample();
        let text = to_text(&s);
        assert_eq!(from_text(&text).unwrap(), s);
    }

    #[test]
    fn counts_forced_preemption_points() {
        assert_eq!(sample().preemption_points(), 3);
        assert!(PreemptCause::Quantum.is_forced());
        assert!(!PreemptCause::Block.is_forced());
        assert!(!PreemptCause::Abort.is_forced());
    }

    #[test]
    fn every_line_carries_a_checksum() {
        let text = to_text(&sample());
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, hex) = line.rsplit_once('~').expect("checksum token");
            assert!(u64::from_str_radix(hex, 16).is_ok(), "{line}");
        }
    }

    #[test]
    fn detects_bit_flips_via_checksum() {
        let text = to_text(&sample());
        let corrupted = text.replacen("120", "121", 1);
        assert_ne!(corrupted, text);
        let e = from_text(&corrupted).unwrap_err();
        assert!(e.message.contains("checksum mismatch"), "{e}");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(from_text("0 1 z").is_err(), "unknown cause");
        assert!(from_text("0 1").is_err(), "missing cause");
        assert!(from_text("0 1 q extra").is_err(), "trailing token");
        assert!(from_text("quantum x").is_err(), "bad quantum");
        let e = from_text("quantum 5\nbogus line here\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn checksum_less_lines_are_accepted() {
        let s = from_text("quantum 9\n0 3 q\n").unwrap();
        assert_eq!(s.quantum, 9);
        assert_eq!(s.decisions.len(), 1);
    }

    #[test]
    fn lossy_parse_reports_salvaged_and_dropped_counts() {
        let s = sample();
        let text = to_text(&s);
        let clean = from_text_lossy(&text);
        assert!(!clean.is_damaged());
        // header + decisions all count as salvaged lines
        assert_eq!(clean.salvaged_lines, 1 + s.decisions.len());
        assert_eq!(clean.dropped_lines, 0);
        assert_eq!(clean.schedule, s);

        // Corrupt the second decision line (lines[0] is the `#` header
        // comment, [1] the quantum, [2..] decisions); it and everything
        // after drop.
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        lines[3] = lines[3].replacen(' ', "_", 1);
        let damaged = from_text_lossy(&lines.join("\n"));
        assert!(damaged.is_damaged());
        assert_eq!(damaged.schedule.decisions.len(), 1);
        assert_eq!(damaged.salvaged_lines, 2, "quantum + one decision");
        assert_eq!(damaged.dropped_lines, 5);
        assert_eq!(damaged.warnings.len(), 1);
        assert!(
            damaged.warnings[0].contains("salvaged 2"),
            "{:?}",
            damaged.warnings
        );
        assert!(
            damaged.warnings[0].contains("dropped 5"),
            "{:?}",
            damaged.warnings
        );
    }

    #[test]
    fn lossy_parse_of_garbage_never_panics() {
        let s = from_text_lossy("complete nonsense\n\u{1F980}\n");
        assert!(s.schedule.is_empty());
        assert!(s.is_damaged());
    }
}
