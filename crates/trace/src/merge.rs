//! Merging per-thread traces into one totally-ordered execution trace.
//!
//! Per the paper (Section 3), thread-specific traces are logically merged
//! by timestamp; when two or more operations issued by different threads
//! carry the same timestamp, ties are broken *arbitrarily* — no assumption
//! may be made about which operation is processed first. [`TieBreaker`]
//! makes the arbitrary choice explicit and reproducible, which the
//! scheduler-sensitivity experiments exploit.

use crate::event::TimedEvent;
use crate::trace::ThreadTrace;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Policy for ordering equal-timestamp events of different threads.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum TieBreaker {
    /// Lower thread id first (deterministic, the default).
    #[default]
    ByThreadId,
    /// Higher thread id first.
    ByThreadIdReversed,
    /// Pseudo-random but reproducible choice derived from the given seed,
    /// the timestamp and the thread id.
    Seeded(u64),
}

impl TieBreaker {
    /// A total tie-breaking key for an event; smaller keys come first.
    fn key(self, ev: &TimedEvent) -> u64 {
        match self {
            TieBreaker::ByThreadId => ev.thread.index() as u64,
            TieBreaker::ByThreadIdReversed => u64::MAX - ev.thread.index() as u64,
            TieBreaker::Seeded(seed) => {
                // SplitMix64-style hash of (seed, time, thread).
                let mut x = seed
                    ^ ev.time.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ ((ev.thread.index() as u64) << 32);
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^ (x >> 31)
            }
        }
    }
}

struct HeapEntry {
    time: u64,
    tie: u64,
    source: usize,
    index: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to pop the smallest key first.
        (other.time, other.tie, other.source, other.index).cmp(&(
            self.time,
            self.tie,
            self.source,
            self.index,
        ))
    }
}

/// Merges per-thread traces into a single totally-ordered event sequence
/// using the default [`TieBreaker::ByThreadId`].
///
/// Events of the same thread always keep their relative order; events of
/// different threads are ordered by timestamp, ties broken by the policy.
///
/// # Example
/// ```
/// use drms_trace::{merge_traces, ThreadTrace, ThreadId, Event};
/// let mut a = ThreadTrace::new(ThreadId::new(0));
/// a.push(2, 0, Event::ThreadExit);
/// let mut b = ThreadTrace::new(ThreadId::new(1));
/// b.push(1, 0, Event::ThreadExit);
/// let merged = merge_traces(vec![a, b]);
/// assert_eq!(merged[0].thread, ThreadId::new(1));
/// ```
pub fn merge_traces(traces: Vec<ThreadTrace>) -> Vec<TimedEvent> {
    merge_traces_with_ties(traces, TieBreaker::default())
}

/// Merges per-thread traces with an explicit tie-breaking policy.
///
/// This is a k-way heap merge: `O(N log k)` for `N` total events across
/// `k` threads.
pub fn merge_traces_with_ties(traces: Vec<ThreadTrace>, ties: TieBreaker) -> Vec<TimedEvent> {
    let sources: Vec<Vec<TimedEvent>> = traces.into_iter().map(ThreadTrace::into_events).collect();
    let total: usize = sources.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut heap = BinaryHeap::with_capacity(sources.len());
    for (source, evs) in sources.iter().enumerate() {
        if let Some(first) = evs.first() {
            heap.push(HeapEntry {
                time: first.time,
                tie: ties.key(first),
                source,
                index: 0,
            });
        }
    }
    while let Some(entry) = heap.pop() {
        let ev = sources[entry.source][entry.index];
        out.push(ev);
        let next = entry.index + 1;
        if let Some(n) = sources[entry.source].get(next) {
            heap.push(HeapEntry {
                time: n.time,
                tie: ties.key(n),
                source: entry.source,
                index: next,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::ids::{RoutineId, ThreadId};

    fn trace_with_times(tid: u32, times: &[u64]) -> ThreadTrace {
        let mut tr = ThreadTrace::new(ThreadId::new(tid));
        for (i, &t) in times.iter().enumerate() {
            tr.push(
                t,
                i as u64,
                Event::Call {
                    routine: RoutineId::new(i as u32),
                },
            );
        }
        tr
    }

    #[test]
    fn merge_preserves_per_thread_order() {
        let a = trace_with_times(0, &[1, 4, 9]);
        let b = trace_with_times(1, &[2, 3, 10]);
        let merged = merge_traces(vec![a, b]);
        let times: Vec<u64> = merged.iter().map(|e| e.time).collect();
        assert_eq!(times, vec![1, 2, 3, 4, 9, 10]);
        // Per-thread subsequences keep emission order.
        for tid in 0..2 {
            let sub: Vec<u64> = merged
                .iter()
                .filter(|e| e.thread.index() == tid)
                .map(|e| e.cost)
                .collect();
            assert_eq!(sub, vec![0, 1, 2]);
        }
    }

    #[test]
    fn merge_is_total_order_on_ties() {
        let a = trace_with_times(0, &[5, 5]);
        let b = trace_with_times(1, &[5, 5]);
        let merged = merge_traces(vec![a.clone(), b.clone()]);
        assert_eq!(merged.len(), 4);
        // Default policy: thread 0 first on ties.
        assert_eq!(merged[0].thread, ThreadId::new(0));
        let rev = merge_traces_with_ties(vec![a, b], TieBreaker::ByThreadIdReversed);
        assert_eq!(rev[0].thread, ThreadId::new(1));
    }

    #[test]
    fn seeded_tiebreak_is_reproducible_and_seed_sensitive() {
        let mk = || {
            vec![
                trace_with_times(0, &[7, 7, 7]),
                trace_with_times(1, &[7, 7, 7]),
            ]
        };
        let m1 = merge_traces_with_ties(mk(), TieBreaker::Seeded(1));
        let m1b = merge_traces_with_ties(mk(), TieBreaker::Seeded(1));
        assert_eq!(m1, m1b);
        // Some seed must produce a different interleaving than ByThreadId.
        let base = merge_traces_with_ties(mk(), TieBreaker::ByThreadId);
        let differs = (0..32).any(|s| merge_traces_with_ties(mk(), TieBreaker::Seeded(s)) != base);
        assert!(differs, "no seed changed the tie order");
    }

    #[test]
    fn merge_empty_and_singleton() {
        assert!(merge_traces(vec![]).is_empty());
        let merged = merge_traces(vec![trace_with_times(3, &[1, 2])]);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn merge_many_threads_sorted_by_time() {
        let traces: Vec<ThreadTrace> = (0..8)
            .map(|t| trace_with_times(t, &[(t as u64 + 1) * 3, 100]))
            .collect();
        let merged = merge_traces(traces);
        let mut sorted = merged.clone();
        sorted.sort_by_key(|e| e.time);
        assert_eq!(
            merged.iter().map(|e| e.time).collect::<Vec<_>>(),
            sorted.iter().map(|e| e.time).collect::<Vec<_>>()
        );
    }
}
