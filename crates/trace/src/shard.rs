//! Out-of-core sharded binary trace pipeline.
//!
//! The DINAMITE split: logging must be cheap online, analysis can be
//! heavy offline. A [`ShardWriter`] appends instrumentation events —
//! including whole struct-of-arrays read/write batches — to one compact
//! binary file per guest thread, buffered and flushed through the
//! [`HostIo`] seam so host-fault chaos applies to every byte that
//! reaches the disk. An offline [`ShardSet`] parses the shards back (in
//! parallel across shards), salvages the checksummed prefix of any torn
//! file, and replays the frames in their original global order into any
//! [`EventSink`] — a write-then-replay run is byte-identical to the
//! in-memory run it recorded.
//!
//! # Format
//!
//! Every integer is little-endian. A shard file `shard-<tid>.bin` is
//!
//! ```text
//! magic "DRMSSHD1" (8) · thread id u32 · frame*
//! frame   := payload_len u32 · fnv1a(payload) u64 · payload
//! payload := seq u64 · kind u8 · fields…
//! ```
//!
//! `seq` is a global monotonic sequence number assigned at record time,
//! so a k-way merge of the per-thread shards by `seq` reconstructs the
//! exact live delivery order — thread switches included, which is what
//! keeps replay-order delivery identical to the VM's (and the drms
//! profiler's redundancy cache byte-identical with it). The `BATCH`
//! frame stores a whole read/write batch columnar (`count u32`, then
//! `count` kinds, `count` addrs, `count` lens), mirroring the in-memory
//! struct-of-arrays layout; frames are length-prefixed so an mmap-based
//! reader can walk them zero-copy.
//!
//! # Salvage
//!
//! The same discipline as the text journal: a torn or corrupt frame
//! ends the shard — the checksummed prefix before it is salvaged, the
//! rest is dropped, and the accounting law
//! `trace.shard.lines.salvaged + dropped == total` (enforced by
//! [`Metrics::audit`]) holds. A `MANIFEST` written atomically at
//! [`ShardWriter::finish`] records the expected frame count per shard,
//! so the reader can tell how much a torn tail actually lost; without a
//! manifest (the writer crashed mid-run) a torn tail counts as one
//! dropped frame.

use crate::event::SyncOp;
use crate::hostio::HostIo;
use crate::ids::{Addr, BlockId, RoutineId, ThreadId};
use crate::obs::Metrics;
use crate::replay::EventSink;
use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Leading magic of every shard file.
pub const SHARD_MAGIC: [u8; 8] = *b"DRMSSHD1";

/// Name of the atomic per-directory manifest.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Default per-shard buffer size before a flush to the host.
pub const DEFAULT_SPILL_THRESHOLD: usize = 64 * 1024;

const FILE_HEADER_BYTES: usize = 8 + 4;
const FRAME_HEADER_BYTES: usize = 4 + 8;
/// Upper bound on a single frame payload; anything larger in a length
/// prefix is corruption, not data.
const MAX_PAYLOAD_BYTES: usize = 1 << 26;

const K_THREAD_START: u8 = 0;
const K_THREAD_EXIT: u8 = 1;
const K_THREAD_SWITCH: u8 = 2;
const K_CALL: u8 = 3;
const K_RETURN: u8 = 4;
const K_READ: u8 = 5;
const K_WRITE: u8 = 6;
const K_U2K: u8 = 7;
const K_K2U: u8 = 8;
const K_SYNC: u8 = 9;
const K_BLOCK: u8 = 10;
const K_BATCH: u8 = 11;

/// On-disk encoding of `Option<ThreadId>`: no 32-bit thread index can
/// reach `u32::MAX` (it would be the 2^32-th spawned thread).
const NO_THREAD: u32 = u32::MAX;

/// FNV-1a over raw bytes — the binary sibling of the text codec's
/// per-line checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Kind of one batched read/write entry, as stored in a `BATCH` frame.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ShardBatchKind {
    /// A guest load.
    Read,
    /// A guest store.
    Write,
}

/// One instrumentation event as the shard format stores it: the
/// [`EventSink`] callback vocabulary (costs included), not the merged
/// [`crate::TimedEvent`] one.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ShardEvent {
    /// First event of a thread.
    ThreadStart {
        /// Spawning thread, `None` for the main thread.
        parent: Option<ThreadId>,
    },
    /// Last event of a thread.
    ThreadExit {
        /// The thread's final cost.
        cost: u64,
    },
    /// The scheduler handed the CPU to this shard's thread.
    ThreadSwitch {
        /// Previously running thread, `None` at the very first switch.
        from: Option<ThreadId>,
    },
    /// Routine activation.
    Call {
        /// Activated routine.
        routine: RoutineId,
        /// Thread cost at activation.
        cost: u64,
    },
    /// Routine completion.
    Return {
        /// Completed routine.
        routine: RoutineId,
        /// Thread cost at completion.
        cost: u64,
    },
    /// Unbatched guest load.
    Read {
        /// First cell.
        addr: Addr,
        /// Cell count.
        len: u32,
    },
    /// Unbatched guest store.
    Write {
        /// First cell.
        addr: Addr,
        /// Cell count.
        len: u32,
    },
    /// Kernel reads a user buffer (output syscall).
    UserToKernel {
        /// First cell.
        addr: Addr,
        /// Cell count.
        len: u32,
    },
    /// Kernel fills a user buffer (input syscall).
    KernelToUser {
        /// First cell.
        addr: Addr,
        /// Cell count.
        len: u32,
    },
    /// Synchronization operation.
    Sync {
        /// The operation.
        op: SyncOp,
    },
    /// Basic-block entry.
    Block {
        /// Containing routine.
        routine: RoutineId,
        /// The block.
        block: BlockId,
    },
}

/// Decoded payload of one frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardPayload {
    /// A single event.
    Event(ShardEvent),
    /// A whole read/write batch, in emission order.
    Batch(Vec<(ShardBatchKind, Addr, u32)>),
}

/// One decoded frame: global sequence number, owning thread, payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardFrame {
    /// Global monotonic sequence number (assigned at record time).
    pub seq: u64,
    /// Thread whose shard held the frame.
    pub thread: ThreadId,
    /// The decoded payload.
    pub payload: ShardPayload,
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn opt_thread(t: Option<ThreadId>) -> u32 {
    t.map_or(NO_THREAD, ThreadId::index)
}

fn encode_event(buf: &mut Vec<u8>, event: ShardEvent) {
    match event {
        ShardEvent::ThreadStart { parent } => {
            buf.push(K_THREAD_START);
            put_u32(buf, opt_thread(parent));
        }
        ShardEvent::ThreadExit { cost } => {
            buf.push(K_THREAD_EXIT);
            put_u64(buf, cost);
        }
        ShardEvent::ThreadSwitch { from } => {
            buf.push(K_THREAD_SWITCH);
            put_u32(buf, opt_thread(from));
        }
        ShardEvent::Call { routine, cost } => {
            buf.push(K_CALL);
            put_u32(buf, routine.index());
            put_u64(buf, cost);
        }
        ShardEvent::Return { routine, cost } => {
            buf.push(K_RETURN);
            put_u32(buf, routine.index());
            put_u64(buf, cost);
        }
        ShardEvent::Read { addr, len } => {
            buf.push(K_READ);
            put_u64(buf, addr.raw());
            put_u32(buf, len);
        }
        ShardEvent::Write { addr, len } => {
            buf.push(K_WRITE);
            put_u64(buf, addr.raw());
            put_u32(buf, len);
        }
        ShardEvent::UserToKernel { addr, len } => {
            buf.push(K_U2K);
            put_u64(buf, addr.raw());
            put_u32(buf, len);
        }
        ShardEvent::KernelToUser { addr, len } => {
            buf.push(K_K2U);
            put_u64(buf, addr.raw());
            put_u32(buf, len);
        }
        ShardEvent::Sync { op } => {
            buf.push(K_SYNC);
            match op {
                SyncOp::SemWait(s) => {
                    buf.push(0);
                    put_u32(buf, s);
                }
                SyncOp::SemSignal(s) => {
                    buf.push(1);
                    put_u32(buf, s);
                }
                SyncOp::MutexLock(m) => {
                    buf.push(2);
                    put_u32(buf, m);
                }
                SyncOp::MutexUnlock(m) => {
                    buf.push(3);
                    put_u32(buf, m);
                }
                SyncOp::CondWait { cond, mutex } => {
                    buf.push(4);
                    put_u32(buf, cond);
                    put_u32(buf, mutex);
                }
                SyncOp::CondSignal(c) => {
                    buf.push(5);
                    put_u32(buf, c);
                }
                SyncOp::CondBroadcast(c) => {
                    buf.push(6);
                    put_u32(buf, c);
                }
                SyncOp::Spawn { child } => {
                    buf.push(7);
                    put_u32(buf, child.index());
                }
                SyncOp::Join { child } => {
                    buf.push(8);
                    put_u32(buf, child.index());
                }
            }
        }
        ShardEvent::Block { routine, block } => {
            buf.push(K_BLOCK);
            put_u32(buf, routine.index());
            put_u32(buf, block.index());
        }
    }
}

/// Strict little-endian cursor; any short read means a torn frame.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn u8(&mut self) -> Option<u8> {
        let v = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }

    fn u32(&mut self) -> Option<u32> {
        let s = self.bytes.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        let s = self.bytes.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn decode_opt_thread(v: u32) -> Option<ThreadId> {
    (v != NO_THREAD).then(|| ThreadId::new(v))
}

/// Decodes one checksummed payload. `None` means the payload is not a
/// well-formed frame (unknown kind, short fields, trailing bytes) and
/// the shard is torn at this frame.
fn decode_payload(payload: &[u8], thread: ThreadId) -> Option<ShardFrame> {
    let mut c = Cursor::new(payload);
    let seq = c.u64()?;
    let kind = c.u8()?;
    let payload = match kind {
        K_THREAD_START => ShardPayload::Event(ShardEvent::ThreadStart {
            parent: decode_opt_thread(c.u32()?),
        }),
        K_THREAD_EXIT => ShardPayload::Event(ShardEvent::ThreadExit { cost: c.u64()? }),
        K_THREAD_SWITCH => ShardPayload::Event(ShardEvent::ThreadSwitch {
            from: decode_opt_thread(c.u32()?),
        }),
        K_CALL => ShardPayload::Event(ShardEvent::Call {
            routine: RoutineId::new(c.u32()?),
            cost: c.u64()?,
        }),
        K_RETURN => ShardPayload::Event(ShardEvent::Return {
            routine: RoutineId::new(c.u32()?),
            cost: c.u64()?,
        }),
        K_READ => ShardPayload::Event(ShardEvent::Read {
            addr: Addr::new(c.u64()?),
            len: c.u32()?,
        }),
        K_WRITE => ShardPayload::Event(ShardEvent::Write {
            addr: Addr::new(c.u64()?),
            len: c.u32()?,
        }),
        K_U2K => ShardPayload::Event(ShardEvent::UserToKernel {
            addr: Addr::new(c.u64()?),
            len: c.u32()?,
        }),
        K_K2U => ShardPayload::Event(ShardEvent::KernelToUser {
            addr: Addr::new(c.u64()?),
            len: c.u32()?,
        }),
        K_SYNC => {
            let op = match c.u8()? {
                0 => SyncOp::SemWait(c.u32()?),
                1 => SyncOp::SemSignal(c.u32()?),
                2 => SyncOp::MutexLock(c.u32()?),
                3 => SyncOp::MutexUnlock(c.u32()?),
                4 => SyncOp::CondWait {
                    cond: c.u32()?,
                    mutex: c.u32()?,
                },
                5 => SyncOp::CondSignal(c.u32()?),
                6 => SyncOp::CondBroadcast(c.u32()?),
                7 => SyncOp::Spawn {
                    child: ThreadId::new(c.u32()?),
                },
                8 => SyncOp::Join {
                    child: ThreadId::new(c.u32()?),
                },
                _ => return None,
            };
            ShardPayload::Event(ShardEvent::Sync { op })
        }
        K_BLOCK => ShardPayload::Event(ShardEvent::Block {
            routine: RoutineId::new(c.u32()?),
            block: BlockId::new(c.u32()?),
        }),
        K_BATCH => {
            let count = c.u32()? as usize;
            // Columnar: count kinds, then count addrs, then count lens.
            let remaining = c.bytes.len() - c.pos;
            if count.checked_mul(13) != Some(remaining) {
                return None;
            }
            let mut kinds = Vec::with_capacity(count);
            for _ in 0..count {
                kinds.push(match c.u8()? {
                    0 => ShardBatchKind::Read,
                    1 => ShardBatchKind::Write,
                    _ => return None,
                });
            }
            let mut entries = Vec::with_capacity(count);
            for &k in &kinds {
                entries.push((k, Addr::new(c.u64()?), 0u32));
            }
            for e in &mut entries {
                e.2 = c.u32()?;
            }
            ShardPayload::Batch(entries)
        }
        _ => return None,
    };
    if !c.done() {
        return None;
    }
    Some(ShardFrame {
        seq,
        thread,
        payload,
    })
}

/// Shard file name for a thread.
fn shard_name(thread: ThreadId) -> String {
    format!("shard-{}.bin", thread.index())
}

fn thread_of_name(name: &str) -> Option<ThreadId> {
    name.strip_prefix("shard-")?
        .strip_suffix(".bin")?
        .parse::<u32>()
        .ok()
        .map(ThreadId::new)
}

struct OpenShard {
    file: File,
    name: String,
    buf: Vec<u8>,
    frames: u64,
    bytes: u64,
}

/// Summary of a finished [`ShardWriter`], for folding into a run's
/// metrics registry.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardSummary {
    /// Frames written across all shards.
    pub frames: u64,
    /// Payload + framing bytes written across all shards (headers
    /// included).
    pub bytes: u64,
    /// Number of shard files.
    pub shards: u64,
}

impl ShardSummary {
    /// Adds the writer-side `trace.shard.*` counters to a registry.
    pub fn observe_metrics(&self, metrics: &mut Metrics) {
        metrics.add("trace.shard.frames", self.frames);
        metrics.add("trace.shard.bytes", self.bytes);
        metrics.set_gauge("trace.shard.files", self.shards);
    }
}

/// Streaming writer of a shard directory.
///
/// Recording is infallible by design — the hot loop must not branch on
/// I/O results — so the first host-I/O failure is latched and every
/// later record becomes a no-op; [`ShardWriter::finish`] surfaces the
/// latched error. Every byte goes through the [`HostIo`] seam, so
/// seeded ENOSPC / EIO chaos exercises the same code paths as real
/// disks, and a crashed or faulted run leaves shards whose checksummed
/// prefix [`ShardSet::load`] salvages.
pub struct ShardWriter {
    io: HostIo,
    dir: PathBuf,
    spill_threshold: usize,
    shards: Vec<Option<OpenShard>>,
    scratch: Vec<u8>,
    seq: u64,
    error: Option<io::Error>,
}

impl ShardWriter {
    /// Creates (or reuses) `dir` and a writer spilling each shard's
    /// buffer once it exceeds `spill_threshold` bytes.
    pub fn create(io: &HostIo, dir: &Path, spill_threshold: usize) -> io::Result<ShardWriter> {
        std::fs::create_dir_all(dir)?;
        Ok(ShardWriter {
            io: io.clone(),
            dir: dir.to_path_buf(),
            spill_threshold: spill_threshold.max(1),
            shards: Vec::new(),
            scratch: Vec::new(),
            seq: 0,
            error: None,
        })
    }

    /// The first latched host-I/O error, if any.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Records one event into `thread`'s shard. Infallible: a host-I/O
    /// failure latches and later records are dropped.
    pub fn record_event(&mut self, thread: ThreadId, event: ShardEvent) {
        if self.error.is_some() {
            return;
        }
        self.seq += 1;
        let seq = self.seq;
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        put_u64(&mut scratch, seq);
        encode_event(&mut scratch, event);
        self.append_frame(thread, &scratch);
        self.scratch = scratch;
    }

    /// Records one whole read/write batch into `thread`'s shard, in the
    /// same columnar layout it had in memory.
    pub fn record_batch<I>(&mut self, thread: ThreadId, entries: I)
    where
        I: ExactSizeIterator<Item = (ShardBatchKind, Addr, u32)> + Clone,
    {
        if self.error.is_some() {
            return;
        }
        self.seq += 1;
        let seq = self.seq;
        let count = entries.len() as u32;
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        put_u64(&mut scratch, seq);
        scratch.push(K_BATCH);
        put_u32(&mut scratch, count);
        for (kind, _, _) in entries.clone() {
            scratch.push(match kind {
                ShardBatchKind::Read => 0,
                ShardBatchKind::Write => 1,
            });
        }
        for (_, addr, _) in entries.clone() {
            put_u64(&mut scratch, addr.raw());
        }
        for (_, _, len) in entries {
            put_u32(&mut scratch, len);
        }
        self.append_frame(thread, &scratch);
        self.scratch = scratch;
    }

    fn append_frame(&mut self, thread: ThreadId, payload: &[u8]) {
        let idx = thread.index() as usize;
        while self.shards.len() <= idx {
            self.shards.push(None);
        }
        if self.shards[idx].is_none() {
            let name = shard_name(thread);
            let path = self.dir.join(&name);
            match self.io.create(&path) {
                Ok(file) => {
                    // Pre-size to the spill point (bounded: a huge
                    // threshold means "never spill", not "pre-allocate").
                    let mut buf =
                        Vec::with_capacity(self.spill_threshold.saturating_add(64).min(1 << 20));
                    buf.extend_from_slice(&SHARD_MAGIC);
                    put_u32(&mut buf, thread.index());
                    self.shards[idx] = Some(OpenShard {
                        file,
                        name,
                        bytes: buf.len() as u64,
                        buf,
                        frames: 0,
                    });
                }
                Err(e) => {
                    self.error = Some(e);
                    return;
                }
            }
        }
        let spill = self.spill_threshold;
        let shard = self.shards[idx].as_mut().expect("shard just ensured");
        put_u32(&mut shard.buf, payload.len() as u32);
        put_u64(&mut shard.buf, fnv1a(payload));
        shard.buf.extend_from_slice(payload);
        shard.frames += 1;
        shard.bytes += (FRAME_HEADER_BYTES + payload.len()) as u64;
        if shard.buf.len() >= spill {
            if let Err(e) = self.io.write_all(&mut shard.file, &shard.buf) {
                self.error = Some(e);
                return;
            }
            shard.buf.clear();
        }
    }

    /// Flushes and fsyncs every shard, atomically publishes the
    /// manifest, and fsyncs the directory. Returns the first latched
    /// recording error instead, if there was one — the shards on disk
    /// then hold a salvageable prefix of the run.
    pub fn finish(mut self) -> io::Result<ShardSummary> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let mut summary = ShardSummary::default();
        let mut manifest = String::from("drms shard manifest v1\n");
        for shard in self.shards.iter_mut().flatten() {
            if !shard.buf.is_empty() {
                self.io.write_all(&mut shard.file, &shard.buf)?;
                shard.buf.clear();
            }
            self.io.fdatasync(&shard.file)?;
            summary.frames += shard.frames;
            summary.bytes += shard.bytes;
            summary.shards += 1;
            let line = format!("{} {} {}", shard.name, shard.frames, shard.bytes);
            let sum = fnv1a(line.as_bytes());
            manifest.push_str(&line);
            manifest.push_str(&format!(" ~{sum:016x}\n"));
        }
        let tmp = self.dir.join("MANIFEST.tmp");
        let target = self.dir.join(MANIFEST_FILE);
        let publish = (|| -> io::Result<()> {
            let mut f = self.io.create(&tmp)?;
            self.io.write_all(&mut f, manifest.as_bytes())?;
            self.io.fsync(&f)?;
            drop(f);
            self.io.rename(&tmp, &target)?;
            self.io.sync_parent_dir(&target)
        })();
        if let Err(e) = publish {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        Ok(summary)
    }
}

/// The salvaged contents of one shard file.
#[derive(Clone, Debug)]
pub struct SalvagedShard {
    /// File name inside the shard directory.
    pub name: String,
    /// Owning thread (from the header, or the file name if the header
    /// itself was torn).
    pub thread: ThreadId,
    /// The checksummed frame prefix, in record order.
    pub frames: Vec<ShardFrame>,
    /// Bytes of the valid prefix (header + intact frames).
    pub bytes: u64,
    /// Whether the file ended in a torn or corrupt frame.
    pub torn: bool,
}

/// Parses one shard image, salvaging the longest checksummed prefix.
fn parse_shard(name: &str, bytes: &[u8]) -> SalvagedShard {
    let fallback = thread_of_name(name).unwrap_or(ThreadId::MAIN);
    if bytes.len() < FILE_HEADER_BYTES || bytes[..8] != SHARD_MAGIC {
        return SalvagedShard {
            name: name.to_owned(),
            thread: fallback,
            frames: Vec::new(),
            bytes: 0,
            torn: true,
        };
    }
    let thread = ThreadId::new(u32::from_le_bytes(bytes[8..12].try_into().unwrap()));
    let mut frames = Vec::new();
    let mut pos = FILE_HEADER_BYTES;
    let mut torn = false;
    while pos < bytes.len() {
        let Some(header) = bytes.get(pos..pos + FRAME_HEADER_BYTES) else {
            torn = true;
            break;
        };
        let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
        let sum = u64::from_le_bytes(header[4..12].try_into().unwrap());
        if len > MAX_PAYLOAD_BYTES {
            torn = true;
            break;
        }
        let Some(payload) = bytes.get(pos + FRAME_HEADER_BYTES..pos + FRAME_HEADER_BYTES + len)
        else {
            torn = true;
            break;
        };
        if fnv1a(payload) != sum {
            torn = true;
            break;
        }
        let Some(frame) = decode_payload(payload, thread) else {
            torn = true;
            break;
        };
        frames.push(frame);
        pos += FRAME_HEADER_BYTES + len;
    }
    SalvagedShard {
        name: name.to_owned(),
        thread,
        frames,
        bytes: if torn { pos } else { bytes.len() } as u64,
        torn,
    }
}

/// Parses the manifest text into `(name, frames, bytes)` rows. `None`
/// means the manifest as a whole cannot be trusted (it is written
/// atomically, so a damaged one is corruption, not a torn tail).
fn parse_manifest(text: &str) -> Option<Vec<(String, u64, u64)>> {
    let mut lines = text.lines();
    if lines.next()? != "drms shard manifest v1" {
        return None;
    }
    let mut rows = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (body, sum) = line.rsplit_once(" ~")?;
        let sum = u64::from_str_radix(sum, 16).ok()?;
        if fnv1a(body.as_bytes()) != sum {
            return None;
        }
        let mut parts = body.split(' ');
        let name = parts.next()?.to_owned();
        let frames = parts.next()?.parse().ok()?;
        let bytes = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        rows.push((name, frames, bytes));
    }
    Some(rows)
}

/// A loaded shard directory: every shard's salvaged prefix plus the
/// salvage accounting across them.
#[derive(Clone, Debug)]
pub struct ShardSet {
    /// Salvaged shards, ordered by thread index.
    pub shards: Vec<SalvagedShard>,
    /// Frames salvaged across all shards.
    pub salvaged: u64,
    /// Frames lost to torn tails, corrupt frames, or missing files
    /// (counted against the manifest when one exists).
    pub dropped: u64,
    /// `salvaged + dropped` — the accounting law's right-hand side.
    pub total: u64,
    /// Bytes of valid prefix across all shards.
    pub bytes: u64,
    /// Whether a trustworthy manifest was found.
    pub had_manifest: bool,
    /// Human-readable notes about everything that was not pristine.
    pub warnings: Vec<String>,
}

impl ShardSet {
    /// Loads every `shard-*.bin` under `dir`, parsing up to `jobs`
    /// shards in parallel (the sweep's worker-pool idiom: scoped
    /// threads racing over an atomic cursor).
    pub fn load(dir: &Path, jobs: usize) -> io::Result<ShardSet> {
        let mut names: Vec<String> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if thread_of_name(&name).is_some() {
                names.push(name);
            }
        }
        names.sort_by_key(|n| thread_of_name(n).map(ThreadId::index));

        let mut warnings = Vec::new();
        let manifest = match std::fs::read_to_string(dir.join(MANIFEST_FILE)) {
            Ok(text) => match parse_manifest(&text) {
                Some(rows) => Some(rows),
                None => {
                    warnings.push("manifest corrupt; falling back to per-shard tears".to_owned());
                    None
                }
            },
            Err(_) => None,
        };

        let mut slots: Vec<Option<SalvagedShard>> = Vec::new();
        slots.resize_with(names.len(), || None);
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, SalvagedShard)>();
        let workers = jobs.max(1).min(names.len().max(1));
        std::thread::scope(|scope| {
            let names = &names;
            let cursor = &cursor;
            for _ in 0..workers {
                let tx = tx.clone();
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(name) = names.get(i) else { break };
                    let shard = match std::fs::read(dir.join(name)) {
                        Ok(bytes) => parse_shard(name, &bytes),
                        Err(_) => SalvagedShard {
                            name: name.clone(),
                            thread: thread_of_name(name).unwrap_or(ThreadId::MAIN),
                            frames: Vec::new(),
                            bytes: 0,
                            torn: true,
                        },
                    };
                    if tx.send((i, shard)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (i, shard) in rx {
                slots[i] = Some(shard);
            }
        });

        let mut set = ShardSet {
            shards: slots.into_iter().flatten().collect(),
            salvaged: 0,
            dropped: 0,
            total: 0,
            bytes: 0,
            had_manifest: manifest.is_some(),
            warnings,
        };
        // Accounting: with a manifest, a shard's expected frame count is
        // authoritative (dropped = expected − salvaged, and a missing
        // file drops all of its frames); without one, a torn tail is
        // known to have lost at least the frame it tore in.
        let mut seen: Vec<&str> = Vec::new();
        for shard in &set.shards {
            seen.push(&shard.name);
            let salvaged = shard.frames.len() as u64;
            let expected = manifest
                .as_deref()
                .and_then(|rows| rows.iter().find(|(n, _, _)| *n == shard.name))
                .map(|&(_, frames, _)| frames.max(salvaged))
                .unwrap_or(salvaged + shard.torn as u64);
            set.salvaged += salvaged;
            set.dropped += expected - salvaged;
            set.total += expected;
            set.bytes += shard.bytes;
            if shard.torn {
                set.warnings
                    .push(format!("{}: torn after {salvaged} frames", shard.name));
            }
        }
        for (name, frames, _) in manifest.as_deref().unwrap_or(&[]) {
            if !seen.contains(&name.as_str()) {
                set.dropped += frames;
                set.total += frames;
                set.warnings
                    .push(format!("{name}: listed in manifest but missing"));
            }
        }
        Ok(set)
    }

    /// Adds the reader-side shard counters and the salvage-accounting
    /// triple (`trace.shard.lines.{salvaged,dropped,total}`, whose sum
    /// law [`Metrics::audit`] enforces) to a registry. The plain
    /// `trace.shard.{salvaged,dropped}` aliases are the documented
    /// dashboard names.
    pub fn observe_metrics(&self, metrics: &mut Metrics) {
        metrics.record_salvage("trace.shard", self.salvaged, self.dropped, self.total);
        metrics.add("trace.shard.salvaged", self.salvaged);
        metrics.add("trace.shard.dropped", self.dropped);
        metrics.add("trace.shard.frames", self.salvaged);
        metrics.add("trace.shard.bytes", self.bytes);
        metrics.set_gauge("trace.shard.files", self.shards.len() as u64);
    }

    /// Every salvaged frame, merged across shards back into the global
    /// record order (`seq` is globally monotonic, so this *is* the live
    /// delivery order).
    pub fn frames_in_order(&self) -> Vec<&ShardFrame> {
        let mut frames: Vec<&ShardFrame> =
            self.shards.iter().flat_map(|s| s.frames.iter()).collect();
        frames.sort_by_key(|f| f.seq);
        frames
    }

    /// Replays the salvaged frames, in global order, into `sink` —
    /// batch frames are unrolled entry-by-entry (observably equivalent
    /// to native batch delivery) — then finishes the sink.
    pub fn replay<S: EventSink + ?Sized>(&self, sink: &mut S) {
        for frame in self.frames_in_order() {
            deliver_frame(frame, sink);
        }
        sink.on_finish();
    }
}

/// Delivers one frame to an [`EventSink`], batch entries unrolled.
pub fn deliver_frame<S: EventSink + ?Sized>(frame: &ShardFrame, sink: &mut S) {
    let t = frame.thread;
    match &frame.payload {
        ShardPayload::Event(event) => match *event {
            ShardEvent::ThreadStart { parent } => sink.on_thread_start(t, parent),
            ShardEvent::ThreadExit { cost } => sink.on_thread_exit(t, cost),
            ShardEvent::ThreadSwitch { from } => sink.on_thread_switch(from, t),
            ShardEvent::Call { routine, cost } => sink.on_call(t, routine, cost),
            ShardEvent::Return { routine, cost } => sink.on_return(t, routine, cost),
            ShardEvent::Read { addr, len } => sink.on_read(t, addr, len),
            ShardEvent::Write { addr, len } => sink.on_write(t, addr, len),
            ShardEvent::UserToKernel { addr, len } => sink.on_user_to_kernel(t, addr, len),
            ShardEvent::KernelToUser { addr, len } => sink.on_kernel_to_user(t, addr, len),
            ShardEvent::Sync { op } => sink.on_sync(t, op),
            ShardEvent::Block { routine, block } => sink.on_block(t, routine, block),
        },
        ShardPayload::Batch(entries) => {
            for &(kind, addr, len) in entries {
                match kind {
                    ShardBatchKind::Read => sink.on_read(t, addr, len),
                    ShardBatchKind::Write => sink.on_write(t, addr, len),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("drms-shard-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_events() -> Vec<(ThreadId, ShardEvent)> {
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        vec![
            (t0, ShardEvent::ThreadStart { parent: None }),
            (
                t0,
                ShardEvent::Call {
                    routine: RoutineId::new(3),
                    cost: 10,
                },
            ),
            (
                t0,
                ShardEvent::Read {
                    addr: Addr::new(0x100),
                    len: 4,
                },
            ),
            (t1, ShardEvent::ThreadStart { parent: Some(t0) }),
            (t1, ShardEvent::ThreadSwitch { from: Some(t0) }),
            (
                t1,
                ShardEvent::Sync {
                    op: SyncOp::CondWait { cond: 1, mutex: 2 },
                },
            ),
            (
                t0,
                ShardEvent::Return {
                    routine: RoutineId::new(3),
                    cost: 99,
                },
            ),
            (t0, ShardEvent::ThreadExit { cost: 99 }),
        ]
    }

    #[test]
    fn write_load_replay_roundtrip_in_global_order() {
        let dir = tmp_dir("roundtrip");
        let io = HostIo::real();
        let mut w = ShardWriter::create(&io, &dir, 16).unwrap();
        for &(t, e) in &sample_events() {
            w.record_event(t, e);
        }
        w.record_batch(
            ThreadId::new(1),
            [
                (ShardBatchKind::Read, Addr::new(0x200), 1u32),
                (ShardBatchKind::Write, Addr::new(0x208), 8u32),
            ]
            .into_iter(),
        );
        let summary = w.finish().unwrap();
        assert_eq!(summary.frames, 9);
        assert_eq!(summary.shards, 2);

        let set = ShardSet::load(&dir, 4).unwrap();
        assert!(set.had_manifest);
        assert_eq!(set.salvaged, 9);
        assert_eq!(set.dropped, 0);
        assert_eq!(set.total, 9);
        let frames = set.frames_in_order();
        assert_eq!(frames.len(), 9);
        // seq is strictly increasing across the merged shards.
        assert!(frames.windows(2).all(|w| w[0].seq < w[1].seq));
        // The events come back in record order, not per-file order.
        let got: Vec<(ThreadId, &ShardPayload)> =
            frames.iter().map(|f| (f.thread, &f.payload)).collect();
        for (i, &(t, e)) in sample_events().iter().enumerate() {
            assert_eq!(got[i], (t, &ShardPayload::Event(e)), "frame {i}");
        }
        assert_eq!(
            *got[8].1,
            ShardPayload::Batch(vec![
                (ShardBatchKind::Read, Addr::new(0x200), 1),
                (ShardBatchKind::Write, Addr::new(0x208), 8),
            ])
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_salvages_prefix_and_accounts_against_manifest() {
        let dir = tmp_dir("torn");
        let io = HostIo::real();
        let mut w = ShardWriter::create(&io, &dir, usize::MAX).unwrap();
        for &(t, e) in &sample_events() {
            w.record_event(t, e);
        }
        w.finish().unwrap();

        // Tear the larger shard three bytes before its end.
        let victim = dir.join("shard-0.bin");
        let bytes = std::fs::read(&victim).unwrap();
        std::fs::write(&victim, &bytes[..bytes.len() - 3]).unwrap();

        let set = ShardSet::load(&dir, 2).unwrap();
        assert!(set.had_manifest);
        assert_eq!(set.salvaged + set.dropped, set.total);
        assert_eq!(set.dropped, 1, "exactly the torn frame is lost");
        assert_eq!(set.total, 8);
        let mut m = Metrics::new();
        set.observe_metrics(&mut m);
        assert!(m.audit().is_ok(), "salvage accounting must audit clean");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_counts_tears_only() {
        let dir = tmp_dir("nomanifest");
        let io = HostIo::real();
        let mut w = ShardWriter::create(&io, &dir, usize::MAX).unwrap();
        for &(t, e) in &sample_events() {
            w.record_event(t, e);
        }
        w.finish().unwrap();
        std::fs::remove_file(dir.join(MANIFEST_FILE)).unwrap();

        let intact = ShardSet::load(&dir, 1).unwrap();
        assert!(!intact.had_manifest);
        assert_eq!(intact.salvaged, 8);
        assert_eq!(intact.dropped, 0);

        let victim = dir.join("shard-1.bin");
        let bytes = std::fs::read(&victim).unwrap();
        std::fs::write(&victim, &bytes[..bytes.len() - 1]).unwrap();
        let torn = ShardSet::load(&dir, 1).unwrap();
        assert_eq!(torn.dropped, 1, "a tear without a manifest counts once");
        assert_eq!(torn.salvaged + torn.dropped, torn.total);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_missing_file_drops_its_frames() {
        let dir = tmp_dir("missingfile");
        let io = HostIo::real();
        let mut w = ShardWriter::create(&io, &dir, usize::MAX).unwrap();
        for &(t, e) in &sample_events() {
            w.record_event(t, e);
        }
        w.finish().unwrap();
        std::fs::remove_file(dir.join("shard-1.bin")).unwrap();

        let set = ShardSet::load(&dir, 2).unwrap();
        assert_eq!(set.total, 8);
        assert_eq!(set.salvaged + set.dropped, set.total);
        assert!(set.warnings.iter().any(|w| w.contains("missing")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulted_writer_latches_and_finish_surfaces_the_error() {
        let dir = tmp_dir("faulted");
        let io = HostIo::from_spec("write:enospc:once=1").unwrap();
        let mut w = ShardWriter::create(&io, &dir, 1).unwrap();
        for &(t, e) in &sample_events() {
            w.record_event(t, e);
        }
        assert!(w.error().is_some(), "first write faults and latches");
        let err = w.finish().unwrap_err();
        assert!(crate::hostio::is_injected(&err));
        // Whatever reached the disk is still a loadable prefix.
        let set = ShardSet::load(&dir, 2).unwrap();
        assert_eq!(set.salvaged + set.dropped, set.total);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
