//! The paper's two motivating dynamic-workload patterns.
//!
//! *Producer/consumer* (Figure 2): the consumer repeatedly reads one
//! memory cell the producer rewrites between iterations — rms sees a
//! single input cell, drms sees one input per handoff.
//!
//! *Data streaming* (Figure 3): a routine repeatedly refills a two-cell
//! buffer from an external device and processes only the first cell —
//! rms stays 1, drms equals the number of iterations.

use crate::Workload;
use drms_vm::{Device, Operand, ProgramBuilder, SyscallNo};

/// Semaphore-based producer/consumer exchanging `n` values through one
/// shared cell (paper Figure 2).
///
/// Routines: `main` (spawns and joins), `producer`, `produce_data`,
/// `consumer` (the focus), `consume_data`.
pub fn producer_consumer(n: i64) -> Workload {
    let mut pb = ProgramBuilder::new();
    let x = pb.global(1);
    let full = pb.semaphore(0);
    let empty = pb.semaphore(1);
    let mutex = pb.mutex();

    let produce_data = pb.function("produce_data", 1, |f| {
        let i = f.param(0);
        let v = f.mul(i, 3);
        let v2 = f.add(v, 1);
        f.ret_val(v2);
    });
    let consume_data = pb.function("consume_data", 0, |f| {
        let v = f.load(x.raw() as i64, 0);
        let _ = f.add(v, 1);
        f.ret(None);
    });
    let producer = pb.function("producer", 1, |f| {
        let n = f.param(0);
        f.for_range(0, n, |f, i| {
            f.sem_wait(empty);
            f.lock(mutex);
            let v = f.call(produce_data, &[Operand::Reg(i)]);
            f.store(x.raw() as i64, 0, v);
            f.unlock(mutex);
            f.sem_signal(full);
        });
        f.ret(None);
    });
    let consumer = pb.function("consumer", 1, |f| {
        let n = f.param(0);
        f.for_range(0, n, |f, _| {
            f.sem_wait(full);
            f.lock(mutex);
            f.call_void(consume_data, &[]);
            f.unlock(mutex);
            f.sem_signal(empty);
        });
        f.ret(None);
    });
    let main = pb.function("main", 0, |f| {
        let t = f.spawn(consumer, &[Operand::Imm(n)]);
        f.call_void(producer, &[Operand::Imm(n)]);
        f.join(t);
        f.ret(None);
    });
    let program = pb.finish(main).expect("producer_consumer program");
    let focus = program.routine_by_name("consumer");
    Workload {
        name: format!("producer_consumer_{n}"),
        program,
        devices: Vec::new(),
        focus,
    }
}

/// Buffered reads from a data stream (paper Figure 3): `n` iterations
/// refill a two-cell buffer via `read(2)`, then `consume_data` processes
/// `b[0]` only.
///
/// Routines: `main`, `stream_reader` (the focus), `consume_data`.
pub fn stream_reader(n: i64) -> Workload {
    let mut pb = ProgramBuilder::new();
    let b = pb.global(2);

    let consume_data = pb.function("consume_data", 1, |f| {
        let base = f.param(0);
        let v = f.load(base, 0);
        let _ = f.mul(v, v);
        f.ret(None);
    });
    let reader = pb.function("stream_reader", 1, |f| {
        let n = f.param(0);
        f.for_range(0, n, |f, _| {
            // fill b with external data (two cells; only b[0] is used),
            // resuming short reads and retrying transient errors
            let _ = f.syscall_full(SyscallNo::Read, 0, b.raw() as i64, 2, 0);
            f.call_void(consume_data, &[Operand::Imm(b.raw() as i64)]);
        });
        f.ret(None);
    });
    let main = pb.function("main", 0, |f| {
        f.call_void(reader, &[Operand::Imm(n)]);
        f.ret(None);
    });
    let program = pb.finish(main).expect("stream_reader program");
    let focus = program.routine_by_name("stream_reader");
    Workload {
        name: format!("stream_reader_{n}"),
        program,
        devices: vec![Device::Stream { seed: 0xFEED }],
        focus,
    }
}

/// Two workers acquiring the same two mutexes in opposite order —
/// the classic lock-order inversion.
///
/// Each of `n` iterations, `worker_ab` takes mutex A then B while
/// `worker_ba` takes B then A, touching a shared cell under each lock.
/// Under the non-preemptive round-robin scheduler the quantum is long
/// enough that each worker completes its critical section atomically and
/// the program terminates; a chaos schedule that preempts between the two
/// acquisitions deadlocks it. This is the seed workload of the schedule
/// fuzzer and shrinker: a failure here is entirely a property of the
/// interleaving, so a recorded failing schedule replays to the same
/// deadlock and shrinks to the few forced preemptions that cause it.
///
/// Routines: `main`, `worker_ab` (the focus), `worker_ba`.
pub fn lock_order_inversion(n: i64) -> Workload {
    let mut pb = ProgramBuilder::new();
    let cell_a = pb.global(1);
    let cell_b = pb.global(1);
    let mutex_a = pb.mutex();
    let mutex_b = pb.mutex();

    let worker_ab = pb.function("worker_ab", 1, |f| {
        let n = f.param(0);
        f.for_range(0, n, |f, i| {
            f.lock(mutex_a);
            let va = f.load(cell_a.raw() as i64, 0);
            let va2 = f.add(va, i);
            f.store(cell_a.raw() as i64, 0, va2);
            f.lock(mutex_b);
            let vb = f.load(cell_b.raw() as i64, 0);
            let vb2 = f.add(vb, 1);
            f.store(cell_b.raw() as i64, 0, vb2);
            f.unlock(mutex_b);
            f.unlock(mutex_a);
        });
        f.ret(None);
    });
    let worker_ba = pb.function("worker_ba", 1, |f| {
        let n = f.param(0);
        f.for_range(0, n, |f, i| {
            f.lock(mutex_b);
            let vb = f.load(cell_b.raw() as i64, 0);
            let vb2 = f.add(vb, i);
            f.store(cell_b.raw() as i64, 0, vb2);
            f.lock(mutex_a);
            let va = f.load(cell_a.raw() as i64, 0);
            let va2 = f.add(va, 1);
            f.store(cell_a.raw() as i64, 0, va2);
            f.unlock(mutex_a);
            f.unlock(mutex_b);
        });
        f.ret(None);
    });
    let main = pb.function("main", 0, |f| {
        let t1 = f.spawn(worker_ab, &[Operand::Imm(n)]);
        let t2 = f.spawn(worker_ba, &[Operand::Imm(n)]);
        f.join(t1);
        f.join(t2);
        f.ret(None);
    });
    let program = pb.finish(main).expect("lock_order_inversion program");
    let focus = program.routine_by_name("worker_ab");
    Workload {
        name: format!("lock_order_inversion_{n}"),
        program,
        devices: Vec::new(),
        focus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_core::{DrmsConfig, DrmsProfiler, NaiveProfiler, RmsProfiler};
    use drms_vm::{run_program, NullTool, RunConfig, RunError, SchedPolicy};

    #[test]
    fn producer_consumer_matches_figure_2() {
        let n = 10;
        let w = producer_consumer(n);
        let mut prof = DrmsProfiler::new(DrmsConfig::full());
        run_program(&w.program, w.run_config(), &mut prof).unwrap();
        let report = prof.into_report();
        let consumer = report.merged_routine(w.focus.unwrap());
        // consume_data reads x once per handoff: rms = 1, drms = n at the
        // consumer level (locals aside, the shared cell dominates).
        let (rms_max, _) = *consumer.rms_plot().last().unwrap();
        let (drms_max, _) = *consumer.drms_plot().last().unwrap();
        assert_eq!(rms_max, 1, "rms(consumer) stays at one shared cell");
        assert_eq!(drms_max, n as u64, "drms(consumer) counts every handoff");
        // The induced reads happen inside consume_data (the topmost
        // activation at read time) and are thread input, not external.
        let cd = report.merged_routine(w.program.routine_by_name("consume_data").unwrap());
        assert!(cd.breakdown.thread_induced >= (n as u64) - 1);
        assert_eq!(cd.breakdown.kernel_induced, 0);
    }

    #[test]
    fn producer_consumer_agrees_with_naive_oracle() {
        let w = producer_consumer(6);
        let mut drms = DrmsProfiler::new(DrmsConfig::full());
        let mut naive = NaiveProfiler::new();
        run_program(&w.program, w.run_config(), &mut drms).unwrap();
        run_program(&w.program, w.run_config(), &mut naive).unwrap();
        let a = drms.into_report();
        let b = naive.into_report();
        for (&(r, t), p) in a.iter() {
            let q = b.get(r, t).expect("same profiles");
            assert_eq!(p.by_drms, q.by_drms, "drms oracle mismatch");
            assert_eq!(p.by_rms, q.by_rms, "rms oracle mismatch");
        }
    }

    #[test]
    fn stream_reader_matches_figure_3() {
        let n = 12;
        let w = stream_reader(n);
        let mut prof = DrmsProfiler::new(DrmsConfig::full());
        run_program(&w.program, w.run_config(), &mut prof).unwrap();
        let report = prof.into_report();
        let reader = report.merged_routine(w.focus.unwrap());
        let (drms_max, _) = *reader.drms_plot().last().unwrap();
        let (rms_max, _) = *reader.rms_plot().last().unwrap();
        // drms ≈ n induced reads of b[0]; rms sees the location once.
        assert_eq!(drms_max, n as u64);
        assert_eq!(rms_max, 1);
        let cd = report.merged_routine(w.program.routine_by_name("consume_data").unwrap());
        assert!(cd.breakdown.kernel_induced >= n as u64 - 1);
    }

    #[test]
    fn lock_order_inversion_completes_under_round_robin() {
        let w = lock_order_inversion(4);
        let stats = run_program(&w.program, w.run_config(), &mut NullTool).unwrap();
        assert_eq!(stats.threads, 3);
        assert!(stats.basic_blocks > 0);
    }

    #[test]
    fn lock_order_inversion_deadlocks_under_some_chaos_seed() {
        let w = lock_order_inversion(6);
        let deadlocked = (0..32).any(|seed| {
            let config = RunConfig {
                policy: SchedPolicy::Chaos { seed },
                ..w.run_config()
            };
            matches!(
                run_program(&w.program, config, &mut NullTool),
                Err(RunError::Deadlock { .. })
            )
        });
        assert!(
            deadlocked,
            "no chaos seed in 0..32 hit the lock-order deadlock"
        );
    }

    #[test]
    fn stream_reader_invisible_to_rms_tool() {
        let w = stream_reader(9);
        let mut prof = RmsProfiler::new();
        run_program(&w.program, w.run_config(), &mut prof).unwrap();
        let report = prof.into_report();
        let reader = report.merged_routine(w.focus.unwrap());
        assert_eq!(reader.rms_plot().last().unwrap().0, 1);
    }
}
