//! `imgpipe`: a threaded image pipeline standing in for vips.
//!
//! Each image *task* runs a three-stage pipeline over double-buffered
//! strips:
//!
//! 1. a **loader** thread fills input strips from an external device
//!    (`read(2)` → `kernelToUser`);
//! 2. **worker** threads call `im_generate` per strip: they read the
//!    input strip (written by the loader thread → thread-induced input)
//!    plus a coefficient table, and write the output strip;
//! 3. a **write-behind buffer** thread, `wbuffer_write_thread`, drains
//!    output strips to a sink via `write(2)` (`userToKernel` reads of
//!    cells written by the workers → thread-induced input).
//!
//! Because every stage reuses small fixed buffers, rms collapses each
//! routine's input to (nearly) the buffer size, while drms tracks the
//! amount of data actually streamed — the effects behind Figures 5 and 6
//! of the paper. Strip counts grow across tasks, and strip widths
//! alternate between two values, so `wbuffer_write_thread` exhibits
//! exactly two distinct rms values but one drms value per call
//! (Figure 6a vs 6c).

use crate::Workload;
use drms_vm::{Device, Operand, ProgramBuilder, SyscallNo};

/// Builds the vips-like pipeline.
///
/// * `workers` — worker threads per task (≥ 1);
/// * `tasks` — number of images processed (the paper's Figure 6 run has
///   110 calls of `wbuffer_write_thread`, i.e. 110 tasks);
/// * `scale` — multiplies strip counts.
///
/// Devices: fd 0 = image source, fd 1 = output sink.
/// Focus routine: `im_generate`.
pub fn vips(workers: u32, tasks: usize, scale: u32) -> Workload {
    let workers = workers.max(1) as i64;
    let scale = scale.max(1) as i64;
    let mut pb = ProgramBuilder::new();

    // Per-worker double buffers: input and output strips.
    const STRIP_A: i64 = 24; // even tasks' strip width
    const STRIP_B: i64 = 26; // odd tasks' strip width
    const STRIP_MAX: i64 = STRIP_B;
    let in_buf = pb.global((STRIP_MAX * workers) as u64);
    let out_buf = pb.global((STRIP_MAX * workers) as u64);
    // Loader staging buffer: raw device bytes are "decoded" from here
    // into the workers' input strips by guest code, so the strips the
    // workers read are thread-written (vips is thread-input dominated).
    let stage = pb.global(STRIP_MAX as u64);
    let coeff = pb.global_with((0..16).map(|i| i * 7 + 1).collect());
    // Task descriptor: [strip_count, strip_cells]
    let desc = pb.global(2);

    // Per-worker semaphores (dense blocks indexed by worker id).
    let mut in_full = Vec::new();
    let mut in_empty = Vec::new();
    let mut out_full = Vec::new();
    let mut out_empty = Vec::new();
    for _ in 0..workers {
        in_full.push(pb.semaphore(0));
        in_empty.push(pb.semaphore(1));
        out_full.push(pb.semaphore(0));
        out_empty.push(pb.semaphore(1));
    }

    // im_generate(wid, my_strips): generate this worker's share of the
    // output image. One activation spans the whole region: the input
    // window (a single double-buffer slot) is refilled by the loader
    // thread between strips, so most of the activation's workload is
    // thread-induced input invisible to the rms.
    let im_generate = pb.function("im_generate", 2, |f| {
        let wid = f.param(0);
        let my_strips = f.param(1);
        let off = f.mul(wid, STRIP_MAX);
        let inb = f.add(in_buf.raw() as i64, off);
        let outb = f.add(out_buf.raw() as i64, off);
        let cells = f.load(desc.raw() as i64, 1);
        f.for_range(0, my_strips, |f, _| {
            for wi in 0..workers {
                let is_w = f.eq(wid, wi);
                f.if_then(is_w, |f| {
                    f.sem_wait(in_full[wi as usize]);
                    f.sem_wait(out_empty[wi as usize]);
                    f.for_range(0, cells, |f, c| {
                        let v = f.load(inb, c);
                        let k = f.rem(c, 16);
                        let w = f.load(coeff.raw() as i64, k);
                        let prod = f.mul(v, w);
                        let clamped = f.rem(prod, 65536);
                        f.store(outb, c, clamped);
                    });
                    f.sem_signal(in_empty[wi as usize]);
                    f.sem_signal(out_full[wi as usize]);
                });
            }
        });
        f.ret(None);
    });

    // Loader thread: feeds strips round-robin to worker input buffers.
    let load_strips = pb.function("load_strips", 0, |f| {
        let strips = f.load(desc.raw() as i64, 0);
        let cells = f.load(desc.raw() as i64, 1);
        f.for_range(0, strips, |f, s| {
            let w = f.rem(s, workers);
            let off = f.mul(w, STRIP_MAX);
            let base = f.add(in_buf.raw() as i64, off);
            // sem ids are compile-time constants per worker; dispatch by
            // comparing the worker index.
            for wi in 0..workers {
                let is_w = f.eq(w, wi);
                f.if_then(is_w, |f| {
                    f.sem_wait(in_empty[wi as usize]);
                    // read raw data (resuming short/interrupted reads),
                    // then decode it into the strip
                    let _ = f.syscall_full(SyscallNo::Read, 0, stage.raw() as i64, cells, 0);
                    f.for_range(0, cells, |f, c| {
                        let raw = f.load(stage.raw() as i64, c);
                        let decoded = f.bit_and(raw, 0xFFFF);
                        f.store(base, c, decoded);
                    });
                    f.sem_signal(in_full[wi as usize]);
                });
            }
        });
        f.ret(None);
    });

    // Worker thread `wid`: one im_generate call covers its whole share.
    let worker_main = pb.function("worker_main", 2, |f| {
        let wid = f.param(0);
        let my_strips = f.param(1);
        f.call_void(im_generate, &[Operand::Reg(wid), Operand::Reg(my_strips)]);
        f.ret(None);
    });

    // Write-behind buffer thread: drains output strips in strip order.
    let wbuffer = pb.function("wbuffer_write_thread", 0, |f| {
        let strips = f.load(desc.raw() as i64, 0);
        let cells = f.load(desc.raw() as i64, 1);
        f.for_range(0, strips, |f, s| {
            let w = f.rem(s, workers);
            let off = f.mul(w, STRIP_MAX);
            let base = f.add(out_buf.raw() as i64, off);
            for wi in 0..workers {
                let is_w = f.eq(w, wi);
                f.if_then(is_w, |f| {
                    f.sem_wait(out_full[wi as usize]);
                    let _ = f.syscall_full(SyscallNo::Write, 1, base, cells, 0);
                    f.sem_signal(out_empty[wi as usize]);
                });
            }
        });
        f.ret(None);
    });

    // run_task(strips, cells): one image through the pipeline.
    let run_task = pb.function("run_task", 2, |f| {
        let strips = f.param(0);
        let cells = f.param(1);
        f.store(desc.raw() as i64, 0, strips);
        f.store(desc.raw() as i64, 1, cells);
        let loader = f.spawn(load_strips, &[]);
        let writer = f.spawn(wbuffer, &[]);
        let tids = f.alloc(workers);
        f.for_range(0, workers, |f, w| {
            // strips handled by worker w: ceil((strips - w) / workers)
            let shifted = f.sub(strips, w);
            let adj = f.add(shifted, workers - 1);
            let mine = f.div(adj, workers);
            let t = f.spawn(worker_main, &[Operand::Reg(w), Operand::Reg(mine)]);
            f.store(tids, w, t);
        });
        f.join(loader);
        f.for_range(0, workers, |f, w| {
            let t = f.load(tids, w);
            f.join(t);
        });
        f.join(writer);
        f.ret(None);
    });

    let ntasks = tasks as i64;
    let main = pb.function("main", 0, |f| {
        f.for_range(0, ntasks, |f, i| {
            // strip count grows across tasks (every image is a little
            // larger), so each call sees a distinct amount of streamed
            // data; width alternates A/B.
            let strips0 = f.mul(i, scale);
            let strips = f.add(strips0, 2 + scale);
            let parity = f.rem(i, 2);
            let is_odd = f.eq(parity, 1);
            let cells = f.copy(STRIP_A);
            f.if_then(is_odd, |f| f.assign(cells, STRIP_B));
            f.call_void(run_task, &[Operand::Reg(strips), Operand::Reg(cells)]);
        });
        f.ret(None);
    });

    let program = pb.finish(main).expect("imgpipe program");
    let focus = program.routine_by_name("im_generate");
    Workload {
        name: "vips".to_owned(),
        program,
        devices: vec![Device::Stream { seed: 0x1316 }, Device::Sink],
        focus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_core::{DrmsConfig, DrmsProfiler};
    use drms_vm::run_program;

    fn profile(w: &Workload, config: DrmsConfig) -> drms_core::ProfileReport {
        let mut prof = DrmsProfiler::new(config);
        run_program(&w.program, w.run_config(), &mut prof).unwrap();
        prof.into_report()
    }

    #[test]
    fn pipeline_runs_and_streams_all_strips() {
        let w = vips(2, 4, 1);
        let mut prof = DrmsProfiler::new(DrmsConfig::full());
        let stats = run_program(&w.program, w.run_config(), &mut prof).unwrap();
        // 4 tasks x (loader + writer + 2 workers) + main
        assert_eq!(stats.threads, 1 + 4 * 4);
        assert!(stats.syscalls > 8, "loader reads + writer writes");
    }

    #[test]
    fn im_generate_has_thread_induced_input() {
        let w = vips(2, 4, 1);
        let report = profile(&w, DrmsConfig::full());
        let p = report.merged_routine(w.focus.unwrap());
        // The input strip was written by the loader thread.
        assert!(
            p.breakdown.thread_induced > p.breakdown.kernel_induced,
            "vips is thread-input dominated: {:?}",
            p.breakdown
        );
        // drms spreads further than rms (Figure 5): more distinct values.
        assert!(p.distinct_drms() >= p.distinct_rms());
    }

    #[test]
    fn wbuffer_rms_collapses_to_two_values_but_drms_separates_calls() {
        let tasks = 10;
        let w = vips(2, tasks, 1);
        let report = profile(&w, DrmsConfig::full());
        let wb = report.merged_routine(w.program.routine_by_name("wbuffer_write_thread").unwrap());
        assert_eq!(wb.calls, tasks as u64);
        // Figure 6a: rms collapses the calls onto two distinct values
        // (the two strip widths).
        assert_eq!(wb.distinct_rms(), 2, "rms values: {:?}", wb.rms_plot());
        // Figure 6c: drms separates (nearly) every call.
        assert!(
            wb.distinct_drms() >= tasks - 2,
            "drms plot should have ~one point per call: {:?}",
            wb.drms_plot()
        );
    }

    #[test]
    fn external_only_config_sits_between_rms_and_full_drms() {
        let tasks = 8;
        let w = vips(2, tasks, 1);
        let full = profile(&w, DrmsConfig::full());
        let ext = profile(&w, DrmsConfig::external_only());
        let name = w.program.routine_by_name("wbuffer_write_thread").unwrap();
        let full_points = full.merged_routine(name).distinct_drms();
        let ext_points = ext.merged_routine(name).distinct_drms();
        let rms_points = full.merged_routine(name).distinct_rms();
        assert!(ext_points >= rms_points, "Fig 6b >= Fig 6a");
        assert!(full_points >= ext_points, "Fig 6c >= Fig 6b");
    }
}
