//! Guest workload programs for the `drms` reproduction.
//!
//! Each constructor returns a [`Workload`]: a guest [`Program`] together
//! with the devices it expects and the routine the corresponding paper
//! experiment focuses on. The workloads model the *shape* of the paper's
//! benchmarks — how data flows through shared memory, threads and system
//! calls — rather than their computations:
//!
//! * [`patterns`] — the paper's two motivating patterns: producer/consumer
//!   (Figure 2) and buffered stream reading (Figure 3);
//! * [`sorting`] — selection sort driven on growing arrays (Figure 10);
//! * [`minidb`] — a miniature table-scan database with buffered kernel
//!   reads, standing in for MySQL/`mysqlslap` (Figures 4, 13a);
//! * [`imgpipe`] — a threaded image pipeline with a write-behind buffer
//!   thread, standing in for vips (Figures 5, 6, 13b);
//! * [`parsec`] — synthetic stand-ins for the PARSEC 2.1 subset used in
//!   the evaluation (blackscholes, bodytrack, canneal, dedup, ferret,
//!   fluidanimate, streamcluster, swaptions, x264);
//! * [`specomp`] — synthetic stand-ins for SPEC OMP2012-style fork-join
//!   kernels (smithwa, nab, kdtree, botsalgn, md, imagick).
//!
//! # Example
//!
//! ```
//! use drms_workloads::patterns;
//! use drms_core::{DrmsProfiler, DrmsConfig};
//! use drms_vm::run_program;
//!
//! let w = patterns::producer_consumer(8);
//! let mut prof = DrmsProfiler::new(DrmsConfig::full());
//! run_program(&w.program, w.run_config(), &mut prof).unwrap();
//! let consumer = w.program.routine_by_name("consumer").unwrap();
//! let p = prof.into_report().merged_routine(consumer);
//! assert_eq!(p.rms_plot().last().unwrap().0, 1);
//! assert_eq!(p.drms_plot().last().unwrap().0, 8);
//! ```

pub mod imgpipe;
pub mod minidb;
pub mod parsec;
pub mod patterns;
pub mod sorting;
pub mod specomp;
pub(crate) mod util;

use drms_trace::RoutineId;
use drms_vm::{Device, Program, RunConfig};

/// A ready-to-run guest workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name as used in the paper's tables and figures.
    pub name: String,
    /// The guest program.
    pub program: Program,
    /// Devices to open as fds `0..n` before running.
    pub devices: Vec<Device>,
    /// The routine the experiment's cost plots focus on, if any.
    pub focus: Option<RoutineId>,
}

impl Workload {
    /// A default [`RunConfig`] with this workload's devices installed.
    pub fn run_config(&self) -> RunConfig {
        RunConfig::with_devices(self.devices.clone())
    }

    /// The name of the focus routine, if any.
    pub fn focus_name(&self) -> Option<&str> {
        self.focus.map(|r| self.program.routine_name(r))
    }
}

/// The PARSEC-like suite at the given scale, with `threads` worker
/// threads per benchmark (the paper spawns four).
pub fn parsec_suite(threads: u32, scale: u32) -> Vec<Workload> {
    vec![
        parsec::blackscholes(threads, scale),
        parsec::bodytrack(threads, scale),
        parsec::canneal(threads, scale),
        parsec::dedup(threads, scale),
        parsec::ferret(threads, scale),
        parsec::fluidanimate(threads, scale),
        parsec::streamcluster(threads, scale),
        parsec::swaptions(threads, scale),
        parsec::x264(threads, scale),
        imgpipe::vips(threads.max(2), 8 + scale as usize, scale),
    ]
}

/// The SPEC OMP2012-like suite at the given scale.
pub fn spec_omp_suite(threads: u32, scale: u32) -> Vec<Workload> {
    vec![
        specomp::smithwa(threads, scale),
        specomp::nab(threads, scale),
        specomp::kdtree(threads, scale),
        specomp::botsalgn(threads, scale),
        specomp::md(threads, scale),
        specomp::imagick(threads, scale),
        specomp::swim(threads, scale),
        specomp::bt331(threads, scale),
        specomp::ilbdc(threads, scale),
    ]
}

/// Every workload used by the paper-wide experiments (both suites plus
/// `mysqlslap`).
pub fn full_suite(threads: u32, scale: u32) -> Vec<Workload> {
    let mut all = parsec_suite(threads, scale);
    all.extend(spec_omp_suite(threads, scale));
    all.push(minidb::mysqlslap(
        threads.max(2),
        4 + scale,
        40 * scale as i64,
    ));
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_vm::{run_program, NullTool};

    #[test]
    fn every_workload_in_full_suite_runs_to_completion() {
        for w in full_suite(2, 1) {
            let stats = run_program(&w.program, w.run_config(), &mut NullTool)
                .unwrap_or_else(|e| panic!("workload {} failed: {e}", w.name));
            assert!(stats.basic_blocks > 0, "{} did no work", w.name);
            if let Some(f) = w.focus {
                assert!(w.program.routines().len() > f.index() as usize);
            }
        }
    }

    #[test]
    fn suites_have_distinct_names() {
        let mut names: Vec<String> = full_suite(2, 1).into_iter().map(|w| w.name).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
