//! Synthetic stand-ins for the PARSEC 2.1 benchmarks used in the paper's
//! evaluation.
//!
//! Each program reproduces the *communication shape* of its namesake —
//! how much of each routine's workload arrives via shared memory from
//! other threads versus via system calls from external devices — which is
//! what the drms-vs-rms comparison measures. Computations are small
//! arithmetic kernels.

use crate::Workload;
use drms_trace::RoutineId;
use drms_vm::SyscallNo;
use drms_vm::{Device, FnBuilder, Operand, ProgramBuilder};

/// Spawns `threads` instances of `worker(tid, arg)` and joins them all.
fn fork_join(f: &mut FnBuilder, worker: RoutineId, threads: i64, arg: Operand) {
    let tids = f.alloc(threads);
    f.for_range(0, threads, |f, t| {
        let h = f.spawn(worker, &[Operand::Reg(t), arg]);
        f.store(tids, t, h);
    });
    f.for_range(0, threads, |f, t| {
        let h = f.load(tids, t);
        f.join(h);
    });
}

/// `blackscholes`: options are read from a device once, then priced by
/// independent threads — external input at startup, almost no thread
/// communication.
pub fn blackscholes(threads: u32, scale: u32) -> Workload {
    let t = threads.max(1) as i64;
    let n = 32 * scale.max(1) as i64 * t; // options
    let mut pb = ProgramBuilder::new();
    let options = pb.global(n as u64);
    let prices = pb.global(n as u64);

    let price_option = pb.function("bs_price", 1, |f| {
        let idx = f.param(0);
        let v = f.load(options.raw() as i64, idx);
        let a = f.mul(v, v);
        let b = f.rem(a, 10007);
        let c = f.add(b, v);
        f.store(prices.raw() as i64, idx, c);
        f.ret(None);
    });
    let worker = pb.function("bs_worker", 2, |f| {
        let tid = f.param(0);
        let per = f.param(1);
        let start = f.mul(tid, per);
        let end = f.add(start, per);
        f.for_range(start, Operand::Reg(end), |f, i| {
            f.call_void(price_option, &[Operand::Reg(i)]);
        });
        f.ret(None);
    });
    let load_options = pb.function("bs_load", 0, |f| {
        let _ = f.syscall(SyscallNo::Read, 0, options.raw() as i64, n, 0);
        f.ret(None);
    });
    let main = pb.function("main", 0, |f| {
        f.call_void(load_options, &[]);
        let per = f.copy(n / t);
        fork_join(f, worker, t, Operand::Reg(per));
        f.ret(None);
    });
    let program = pb.finish(main).expect("blackscholes");
    let focus = program.routine_by_name("bs_price");
    Workload {
        name: "blackscholes".to_owned(),
        program,
        devices: vec![Device::Stream { seed: 0xB5 }],
        focus,
    }
}

/// `swaptions`: embarrassingly parallel Monte Carlo — tiny inputs, heavy
/// thread-local computation, negligible communication.
pub fn swaptions(threads: u32, scale: u32) -> Workload {
    let t = threads.max(1) as i64;
    let trials = 40 * scale.max(1) as i64;
    let mut pb = ProgramBuilder::new();
    let params = pb.global_with(vec![100, 5, 30, 2]);
    let results = pb.global(t as u64);

    let simulate = pb.function("sw_simulate", 1, |f| {
        let seed_mix = f.param(0);
        let acc = f.copy(0);
        f.for_range(0, trials, |f, _| {
            let r = f.rand(1000);
            let p0 = f.load(params.raw() as i64, 0);
            let x = f.mul(r, p0);
            let y = f.rem(x, 9973);
            let s = f.add(acc, y);
            f.assign(acc, s);
        });
        let out = f.add(acc, seed_mix);
        f.ret_val(out);
    });
    let worker = pb.function("sw_worker", 2, |f| {
        let tid = f.param(0);
        let _rounds = f.param(1);
        let v = f.call(simulate, &[Operand::Reg(tid)]);
        f.store(results.raw() as i64, tid, v);
        f.ret(None);
    });
    let main = pb.function("main", 0, |f| {
        fork_join(f, worker, t, Operand::Imm(1));
        // reduce results (reads of other threads' stores: tiny thread input)
        let total = f.copy(0);
        f.for_range(0, t, |f, i| {
            let v = f.load(results.raw() as i64, i);
            let s = f.add(total, v);
            f.assign(total, s);
        });
        f.ret(None);
    });
    let program = pb.finish(main).expect("swaptions");
    let focus = program.routine_by_name("sw_simulate");
    Workload {
        name: "swaptions".to_owned(),
        program,
        devices: Vec::new(),
        focus,
    }
}

/// `fluidanimate`: grid partitions per thread with boundary exchange each
/// iteration — moderate thread input concentrated in a few routines.
pub fn fluidanimate(threads: u32, scale: u32) -> Workload {
    let t = threads.max(1) as i64;
    let part = 24 * scale.max(1) as i64; // cells per partition
    let iters = 4 + scale.max(1) as i64;
    let n = part * t;
    let mut pb = ProgramBuilder::new();
    // Double-buffered grid: each iteration reads one copy and writes the
    // other, so neighbour reads are ordered by the barrier (race-free)
    // while still being thread-induced input.
    let grid_a = pb.global(n as u64);
    let grid_b = pb.global(n as u64);
    let barrier = crate::util::Barrier::new(&mut pb, t);

    // update_cell(idx, src, dst): new value from self + neighbours.
    let update_cell = pb.function("fa_update_cell", 3, |f| {
        let i = f.param(0);
        let src = f.param(1);
        let dst = f.param(2);
        let v = f.load(src, i);
        let lm = f.sub(i, 1);
        let li = f.max(lm, 0);
        let lv = f.load(src, li);
        let ri0 = f.add(i, 1);
        let ri = f.min(ri0, n - 1);
        let rv = f.load(src, ri);
        let s0 = f.add(v, lv);
        let s1 = f.add(s0, rv);
        let nv = f.div(s1, 3);
        f.store(dst, i, nv);
        f.ret(None);
    });
    let worker = pb.function("fa_worker", 2, |f| {
        let tid = f.param(0);
        let _ = f.param(1);
        let start = f.mul(tid, part);
        let end = f.add(start, part);
        let a = grid_a.raw() as i64;
        let b = grid_b.raw() as i64;
        f.for_range(0, iters, |f, it| {
            let parity = f.rem(it, 2);
            let even = f.eq(parity, 0);
            let src = f.copy(a);
            let dst = f.copy(b);
            f.if_then(even, |f| {
                f.assign(src, a);
                f.assign(dst, b);
            });
            let odd = f.eq(parity, 1);
            f.if_then(odd, |f| {
                f.assign(src, b);
                f.assign(dst, a);
            });
            f.for_range(start, Operand::Reg(end), |f, i| {
                f.call_void(
                    update_cell,
                    &[Operand::Reg(i), Operand::Reg(src), Operand::Reg(dst)],
                );
            });
            barrier.worker(f, tid);
        });
        f.ret(None);
    });
    let main = pb.function("main", 0, |f| {
        // init grid
        f.for_range(0, n, |f, i| {
            let v = f.rem(i, 97);
            f.store(grid_a.raw() as i64, i, v);
        });
        let tids = f.alloc(t);
        f.for_range(0, t, |f, w| {
            let h = f.spawn(worker, &[Operand::Reg(w), Operand::Imm(0)]);
            f.store(tids, w, h);
        });
        f.for_range(0, iters, |f, _| {
            barrier.coordinator(f);
        });
        f.for_range(0, t, |f, w| {
            let h = f.load(tids, w);
            f.join(h);
        });
        f.ret(None);
    });
    let program = pb.finish(main).expect("fluidanimate");
    let focus = program.routine_by_name("fa_update_cell");
    Workload {
        name: "fluidanimate".to_owned(),
        program,
        devices: Vec::new(),
        focus,
    }
}

/// `bodytrack`: frames read from a camera device, processed in parallel,
/// then reduced into a shared model — mixed external and thread input.
pub fn bodytrack(threads: u32, scale: u32) -> Workload {
    let t = threads.max(1) as i64;
    let frames = 3 + scale.max(1) as i64;
    let frame_cells = 16 * t;
    let mut pb = ProgramBuilder::new();
    let frame = pb.global(frame_cells as u64);
    let partials = pb.global(t as u64);
    let model = pb.global(8);
    let model_mutex = pb.mutex();

    let eval_particle = pb.function("bt_eval", 2, |f| {
        let base = f.param(0);
        let len = f.param(1);
        let acc = f.copy(0);
        f.for_range(0, len, |f, i| {
            let v = f.load(base, i);
            let mm = f.rem(i, 8);
            let mv = f.load(model.raw() as i64, mm);
            let d = f.sub(v, mv);
            let d2 = f.mul(d, d);
            let s = f.add(acc, d2);
            f.assign(acc, s);
        });
        f.ret_val(acc);
    });
    let worker = pb.function("bt_worker", 2, |f| {
        let tid = f.param(0);
        let per = f.param(1);
        let off = f.mul(tid, per);
        let base = f.add(frame.raw() as i64, off);
        let score = f.call(eval_particle, &[Operand::Reg(base), Operand::Reg(per)]);
        f.store(partials.raw() as i64, tid, score);
        f.ret(None);
    });
    let update_model = pb.function("bt_update_model", 0, |f| {
        f.lock(model_mutex);
        let total = f.copy(0);
        f.for_range(0, t, |f, i| {
            let v = f.load(partials.raw() as i64, i);
            let s = f.add(total, v);
            f.assign(total, s);
        });
        f.for_range(0, 8, |f, i| {
            let old = f.load(model.raw() as i64, i);
            let mixed = f.add(old, total);
            let damped = f.div(mixed, 2);
            f.store(model.raw() as i64, i, damped);
        });
        f.unlock(model_mutex);
        f.ret(None);
    });
    let main = pb.function("main", 0, |f| {
        f.for_range(0, frames, |f, _| {
            let _ = f.syscall(SyscallNo::Read, 0, frame.raw() as i64, frame_cells, 0);
            let per = f.copy(frame_cells / t);
            fork_join(f, worker, t, Operand::Reg(per));
            f.call_void(update_model, &[]);
        });
        f.ret(None);
    });
    let program = pb.finish(main).expect("bodytrack");
    let focus = program.routine_by_name("bt_eval");
    Workload {
        name: "bodytrack".to_owned(),
        program,
        devices: vec![Device::Stream { seed: 0xB0D7 }],
        focus,
    }
}

/// `x264`: a frame pipeline where encoding reads the current frame (from
/// a device) and the reconstructed reference frame produced by the
/// previous iteration's workers — both input kinds present.
pub fn x264(threads: u32, scale: u32) -> Workload {
    let t = threads.max(1) as i64;
    let frames = 3 + scale.max(1) as i64;
    let width = 12 * t;
    let mut pb = ProgramBuilder::new();
    let current = pb.global(width as u64);
    let reference = pb.global(width as u64);

    let encode_mb = pb.function("x264_encode_mb", 2, |f| {
        let base_off = f.param(0);
        let len = f.param(1);
        let acc = f.copy(0);
        f.for_range(0, len, |f, i| {
            let off = f.add(base_off, i);
            let c = f.load(current.raw() as i64, off);
            let r = f.load(reference.raw() as i64, off);
            let d = f.sub(c, r);
            let d2 = f.mul(d, d);
            let s = f.add(acc, d2);
            f.assign(acc, s);
            // reconstruct: reference for the next frame
            let cr = f.add(c, r);
            let rec = f.div(cr, 2);
            f.store(reference.raw() as i64, off, rec);
        });
        f.ret_val(acc);
    });
    let worker = pb.function("x264_worker", 2, |f| {
        let tid = f.param(0);
        let per = f.param(1);
        let off = f.mul(tid, per);
        let _ = f.call(encode_mb, &[Operand::Reg(off), Operand::Reg(per)]);
        f.ret(None);
    });
    let main = pb.function("main", 0, |f| {
        f.for_range(0, frames, |f, _| {
            let _ = f.syscall(SyscallNo::Read, 0, current.raw() as i64, width, 0);
            let per = f.copy(width / t);
            fork_join(f, worker, t, Operand::Reg(per));
        });
        f.ret(None);
    });
    let program = pb.finish(main).expect("x264");
    let focus = program.routine_by_name("x264_encode_mb");
    Workload {
        name: "x264".to_owned(),
        program,
        devices: vec![Device::Stream { seed: 0x264 }],
        focus,
    }
}

/// `dedup`: a pipeline — a reader streams chunks from a device into a
/// queue, workers hash and deduplicate against a shared table under a
/// mutex, a writer emits unique chunks — heavy thread *and* external
/// input, the paper's profile-richness champion.
pub fn dedup(threads: u32, scale: u32) -> Workload {
    let t = threads.max(2) as i64; // at least reader + 1 worker
    let workers = (t - 1).max(1);
    let chunks = 12 * scale.max(1) as i64;
    let chunk_cells = 8i64;
    let table_slots = 32i64;
    let mut pb = ProgramBuilder::new();
    let queue = pb.global((chunk_cells * 2) as u64); // 2-slot ring
    let table = pb.global(table_slots as u64);
    let out_count = pb.global(1);
    let slots_full = pb.semaphore(0);
    let slots_empty = pb.semaphore(2);
    let table_mutex = pb.mutex();
    let queue_mutex = pb.mutex();
    let head = pb.global(1); // consumer cursor

    let hash_chunk = pb.function("dd_hash", 1, |f| {
        let base = f.param(0);
        let h = f.copy(0);
        f.for_range(0, chunk_cells, |f, i| {
            let v = f.load(base, i);
            let m = f.mul(h, 131);
            let s = f.add(m, v);
            let r = f.rem(s, 1_000_003);
            f.assign(h, r);
        });
        f.ret_val(h);
    });
    let dedup_lookup = pb.function("dd_lookup", 1, |f| {
        let h = f.param(0);
        let slot = f.rem(h, table_slots);
        f.lock(table_mutex);
        let existing = f.load(table.raw() as i64, slot);
        let fresh = f.ne(existing, h);
        f.if_then(fresh, |f| {
            f.store(table.raw() as i64, slot, h);
        });
        f.unlock(table_mutex);
        f.ret_val(fresh);
    });
    let reader = pb.function("dd_reader", 0, |f| {
        f.for_range(0, chunks, |f, c| {
            let slot = f.rem(c, 2);
            let off = f.mul(slot, chunk_cells);
            let base = f.add(queue.raw() as i64, off);
            f.sem_wait(slots_empty);
            let _ = f.syscall(SyscallNo::Read, 0, base, chunk_cells, 0);
            f.sem_signal(slots_full);
        });
        // Poison pills: one extra unit per worker so each can observe
        // exhaustion and exit.
        f.for_range(0, workers, |f, _| f.sem_signal(slots_full));
        f.ret(None);
    });
    let compress = pb.function("dd_compress", 1, |f| {
        let base = f.param(0);
        let acc = f.copy(0);
        f.for_range(0, chunk_cells, |f, i| {
            let v = f.load(base, i);
            let x = f.bit_xor(acc, v);
            f.assign(acc, x);
        });
        f.ret_val(acc);
    });
    let worker = pb.function("dd_worker", 2, |f| {
        let _tid = f.param(0);
        let _arg = f.param(1);
        let local = f.alloc(chunk_cells);
        let more = f.copy(1);
        f.while_loop(
            |f| Operand::Reg(f.copy(more)),
            |f| {
                // Wait for a filled chunk (or a poison pill), then claim
                // the oldest unconsumed chunk under the queue mutex and
                // copy it out of the ring — claims track fill order, so
                // every chunk is consumed exactly once regardless of the
                // scheduler's interleaving.
                f.sem_wait(slots_full);
                f.lock(queue_mutex);
                let c = f.load(head.raw() as i64, 0);
                let in_range = f.lt(c, chunks);
                f.if_else(
                    in_range,
                    |f| {
                        let c2 = f.add(c, 1);
                        f.store(head.raw() as i64, 0, c2);
                        let slot = f.rem(c, 2);
                        let off = f.mul(slot, chunk_cells);
                        let base = f.add(queue.raw() as i64, off);
                        f.for_range(0, chunk_cells, |f, i| {
                            let v = f.load(base, i);
                            f.store(local, i, v);
                        });
                    },
                    |f| f.assign(more, 0),
                );
                f.unlock(queue_mutex);
                f.if_then(more, |f| {
                    f.sem_signal(slots_empty);
                    let h = f.call(hash_chunk, &[Operand::Reg(local)]);
                    let fresh = f.call(dedup_lookup, &[Operand::Reg(h)]);
                    f.if_then(fresh, |f| {
                        let z = f.call(compress, &[Operand::Reg(local)]);
                        let out = f.alloc(1);
                        f.store(out, 0, z);
                        let _ = f.syscall(SyscallNo::Write, 1, out, 1, 0);
                        f.lock(table_mutex);
                        let n = f.load(out_count.raw() as i64, 0);
                        let n2 = f.add(n, 1);
                        f.store(out_count.raw() as i64, 0, n2);
                        f.unlock(table_mutex);
                    });
                });
            },
        );
        f.ret(None);
    });
    let main = pb.function("main", 0, |f| {
        let r = f.spawn(reader, &[]);
        fork_join(f, worker, workers, Operand::Imm(0));
        f.join(r);
        f.ret(None);
    });
    let program = pb.finish(main).expect("dedup");
    let focus = program.routine_by_name("dd_hash");
    Workload {
        name: "dedup".to_owned(),
        program,
        devices: vec![Device::Stream { seed: 0xDEDD }, Device::Sink],
        focus,
    }
}

/// `canneal`: threads apply random element swaps to a shared netlist
/// under a mutex — thread input dominates.
pub fn canneal(threads: u32, scale: u32) -> Workload {
    let t = threads.max(1) as i64;
    let elements = 32 * scale.max(1) as i64;
    let swaps = 50 * scale.max(1) as i64;
    let mut pb = ProgramBuilder::new();
    let netlist = pb.global(elements as u64);
    let netlist_mutex = pb.mutex();

    let swap_cost = pb.function("cn_swap_cost", 2, |f| {
        let a = f.param(0);
        let b = f.param(1);
        let va = f.load(netlist.raw() as i64, a);
        let vb = f.load(netlist.raw() as i64, b);
        let d = f.sub(va, vb);
        let c = f.mul(d, d);
        f.ret_val(c);
    });
    let try_swap = pb.function("cn_try_swap", 0, |f| {
        let a = f.rand(elements);
        let b = f.rand(elements);
        f.lock(netlist_mutex);
        let cost = f.call(swap_cost, &[Operand::Reg(a), Operand::Reg(b)]);
        let do_it = f.gt(cost, 100);
        f.if_then(do_it, |f| {
            let va = f.load(netlist.raw() as i64, a);
            let vb = f.load(netlist.raw() as i64, b);
            f.store(netlist.raw() as i64, a, vb);
            f.store(netlist.raw() as i64, b, va);
        });
        f.unlock(netlist_mutex);
        f.ret(None);
    });
    let worker = pb.function("cn_worker", 2, |f| {
        f.for_range(0, swaps, |f, _| {
            f.call_void(try_swap, &[]);
        });
        f.ret(None);
    });
    let main = pb.function("main", 0, |f| {
        f.for_range(0, elements, |f, i| {
            let v = f.rand(1000);
            f.store(netlist.raw() as i64, i, v);
            let _ = i;
        });
        fork_join(f, worker, t, Operand::Imm(0));
        f.ret(None);
    });
    let program = pb.finish(main).expect("canneal");
    let focus = program.routine_by_name("cn_swap_cost");
    Workload {
        name: "canneal".to_owned(),
        program,
        devices: Vec::new(),
        focus,
    }
}

/// `ferret`: a similarity-search pipeline — queries stream in from a
/// device, workers rank them against a shared database loaded at startup.
pub fn ferret(threads: u32, scale: u32) -> Workload {
    let t = threads.max(1) as i64;
    let queries = 6 * scale.max(1) as i64;
    let db_cells = 40i64;
    let q_cells = 8i64;
    let mut pb = ProgramBuilder::new();
    let db = pb.global(db_cells as u64);
    let qbuf = pb.global(q_cells as u64);
    let q_ready = pb.semaphore(0);
    let q_taken = pb.semaphore(1);

    let rank_query = pb.function("fr_rank", 1, |f| {
        let qbase = f.param(0);
        let best = f.copy(0);
        f.for_range(0, db_cells, |f, i| {
            let d = f.load(db.raw() as i64, i);
            let qi = f.rem(i, q_cells);
            let q = f.load(qbase, qi);
            let diff = f.sub(d, q);
            let sq = f.mul(diff, diff);
            let b = f.max(best, sq);
            f.assign(best, b);
        });
        f.ret_val(best);
    });
    let worker = pb.function("fr_worker", 2, |f| {
        let per = f.param(1);
        let local = f.alloc(q_cells);
        f.for_range(0, per, |f, _| {
            f.sem_wait(q_ready);
            f.for_range(0, q_cells, |f, i| {
                let v = f.load(qbuf.raw() as i64, i);
                f.store(local, i, v);
            });
            f.sem_signal(q_taken);
            let _ = f.call(rank_query, &[Operand::Reg(local)]);
        });
        f.ret(None);
    });
    let main = pb.function("main", 0, |f| {
        let _ = f.syscall(SyscallNo::Read, 0, db.raw() as i64, db_cells, 0);
        let per = f.copy(queries / t);
        let tids = f.alloc(t);
        f.for_range(0, t, |f, w| {
            let h = f.spawn(worker, &[Operand::Reg(w), Operand::Reg(per)]);
            f.store(tids, w, h);
        });
        let total = f.mul(per, t);
        f.for_range(0, Operand::Reg(total), |f, _| {
            f.sem_wait(q_taken);
            let _ = f.syscall(SyscallNo::Recvfrom, 1, qbuf.raw() as i64, q_cells, 0);
            f.sem_signal(q_ready);
        });
        f.for_range(0, t, |f, w| {
            let h = f.load(tids, w);
            f.join(h);
        });
        f.ret(None);
    });
    let program = pb.finish(main).expect("ferret");
    let focus = program.routine_by_name("fr_rank");
    Workload {
        name: "ferret".to_owned(),
        program,
        devices: vec![
            Device::Stream { seed: 0xFE55 },
            Device::Stream { seed: 0x9E77 },
        ],
        focus,
    }
}

/// `streamcluster`: points stream in; threads assign them to shared
/// cluster centers that are recomputed each round.
pub fn streamcluster(threads: u32, scale: u32) -> Workload {
    let t = threads.max(1) as i64;
    let points = 24 * scale.max(1) as i64 * t;
    let centers = 4i64;
    let rounds = 3i64;
    let mut pb = ProgramBuilder::new();
    let data = pb.global(points as u64);
    let centroid = pb.global(centers as u64);
    let assign = pb.global(points as u64);
    let sums = pb.global((centers * 2) as u64);
    let sums_mutex = pb.mutex();

    let nearest = pb.function("sc_nearest", 1, |f| {
        let v = f.param(0);
        let best = f.copy(0);
        let best_d = f.copy(i64::MAX);
        f.for_range(0, centers, |f, c| {
            let cv = f.load(centroid.raw() as i64, c);
            let d0 = f.sub(v, cv);
            let d = f.mul(d0, d0);
            let closer = f.lt(d, best_d);
            f.if_then(closer, |f| {
                f.assign(best, c);
                f.assign(best_d, d);
            });
        });
        f.ret_val(best);
    });
    let worker = pb.function("sc_worker", 2, |f| {
        let tid = f.param(0);
        let per = f.param(1);
        let start = f.mul(tid, per);
        let end = f.add(start, per);
        f.for_range(start, Operand::Reg(end), |f, i| {
            let v = f.load(data.raw() as i64, i);
            let c = f.call(nearest, &[Operand::Reg(v)]);
            f.store(assign.raw() as i64, i, c);
            f.lock(sums_mutex);
            let so = f.mul(c, 2);
            let s = f.load(sums.raw() as i64, so);
            let s2 = f.add(s, v);
            f.store(sums.raw() as i64, so, s2);
            let co = f.add(so, 1);
            let n = f.load(sums.raw() as i64, co);
            let n2 = f.add(n, 1);
            f.store(sums.raw() as i64, co, n2);
            f.unlock(sums_mutex);
        });
        f.ret(None);
    });
    let recenter = pb.function("sc_recenter", 0, |f| {
        f.for_range(0, centers, |f, c| {
            let so = f.mul(c, 2);
            let s = f.load(sums.raw() as i64, so);
            let co = f.add(so, 1);
            let n0 = f.load(sums.raw() as i64, co);
            let n = f.max(n0, 1);
            let m = f.div(s, n);
            f.store(centroid.raw() as i64, c, m);
            f.store(sums.raw() as i64, so, 0);
            f.store(sums.raw() as i64, co, 0);
        });
        f.ret(None);
    });
    let main = pb.function("main", 0, |f| {
        let _ = f.syscall(SyscallNo::Read, 0, data.raw() as i64, points, 0);
        f.for_range(0, centers, |f, c| {
            let v = f.mul(c, 250);
            f.store(centroid.raw() as i64, c, v);
        });
        f.for_range(0, rounds, |f, _| {
            let per = f.copy(points / t);
            fork_join(f, worker, t, Operand::Reg(per));
            f.call_void(recenter, &[]);
        });
        f.ret(None);
    });
    let program = pb.finish(main).expect("streamcluster");
    let focus = program.routine_by_name("sc_nearest");
    Workload {
        name: "streamcluster".to_owned(),
        program,
        devices: vec![Device::Stream { seed: 0x5C }],
        focus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_core::{DrmsConfig, DrmsProfiler};
    use drms_vm::run_program;

    fn volume(w: &Workload) -> f64 {
        let mut prof = DrmsProfiler::new(DrmsConfig::full());
        run_program(&w.program, w.run_config(), &mut prof)
            .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
        prof.into_report().dynamic_input_volume()
    }

    #[test]
    fn all_parsec_benchmarks_run_under_profiling() {
        for w in crate::parsec_suite(2, 1) {
            let v = volume(&w);
            assert!((0.0..1.0).contains(&v), "{}: volume {v}", w.name);
        }
    }

    #[test]
    fn swaptions_has_low_dynamic_input() {
        let v = volume(&swaptions(2, 1));
        assert!(v < 0.2, "swaptions barely communicates: {v}");
    }

    #[test]
    fn dedup_and_canneal_have_substantial_dynamic_input() {
        assert!(volume(&dedup(3, 1)) > 0.1, "dedup streams and shares");
        assert!(volume(&canneal(2, 1)) > 0.02, "canneal shares the netlist");
    }

    #[test]
    fn canneal_is_thread_dominated_blackscholes_external() {
        let w = canneal(2, 1);
        let mut prof = DrmsProfiler::new(DrmsConfig::full());
        run_program(&w.program, w.run_config(), &mut prof).unwrap();
        let rep = prof.into_report();
        let mut th = 0;
        let mut ke = 0;
        for (_, p) in rep.iter() {
            th += p.breakdown.thread_induced;
            ke += p.breakdown.kernel_induced;
        }
        assert!(th > ke, "canneal: thread {th} vs kernel {ke}");

        let w = blackscholes(2, 1);
        let mut prof = DrmsProfiler::new(DrmsConfig::full());
        run_program(&w.program, w.run_config(), &mut prof).unwrap();
        let rep = prof.into_report();
        let mut th = 0;
        let mut ke = 0;
        for (_, p) in rep.iter() {
            th += p.breakdown.thread_induced;
            ke += p.breakdown.kernel_induced;
        }
        assert!(ke > th, "blackscholes: kernel {ke} vs thread {th}");
    }
}
