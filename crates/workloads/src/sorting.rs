//! Sorting drivers (paper Figure 10).
//!
//! Selection sort has a clean Θ(n²) basic-block cost and Θ(n) read memory
//! size, so a sweep over growing arrays produces the textbook quadratic
//! cost plot the paper uses to contrast basic-block counting with noisy
//! wall-clock timing.

use crate::Workload;
use drms_trace::RoutineId;
use drms_vm::{FnBuilder, Operand, Program, ProgramBuilder};

/// Emits the `selection_sort(base, n)` routine body.
fn emit_selection_sort(f: &mut FnBuilder) {
    let base = f.param(0);
    let n = f.param(1);
    let last = f.sub(n, 1);
    f.for_range(0, last, |f, i| {
        let best = f.copy(i);
        let start = f.add(i, 1);
        f.for_range(start, n, |f, j| {
            let vj = f.load(base, j);
            let vb = f.load(base, best);
            let less = f.lt(vj, vb);
            f.if_then(less, |f| f.assign(best, j));
        });
        // swap a[i] <-> a[best]
        let vi = f.load(base, i);
        let vb = f.load(base, best);
        f.store(base, i, vb);
        f.store(base, best, vi);
    });
    f.ret(None);
}

fn build(sizes: &[i64]) -> (Program, Option<RoutineId>) {
    let mut pb = ProgramBuilder::new();
    let sort = pb.declare("selection_sort", 2);
    pb.define(sort, emit_selection_sort);
    let fill = pb.function("fill_random", 2, |f| {
        let base = f.param(0);
        let n = f.param(1);
        f.for_range(0, n, |f, i| {
            let v = f.rand(1_000_000);
            f.store(base, i, v);
        });
        f.ret(None);
    });
    let run_one = pb.function("run_one", 1, |f| {
        let n = f.param(0);
        let buf = f.alloc(n);
        f.call_void(fill, &[Operand::Reg(buf), Operand::Reg(n)]);
        f.call_void(sort, &[Operand::Reg(buf), Operand::Reg(n)]);
        f.ret(None);
    });
    let sizes_global: Vec<i64> = sizes.to_vec();
    let mut pb2 = pb;
    let table = pb2.global_with(sizes_global);
    let count = sizes.len() as i64;
    let main = pb2.function("main", 0, |f| {
        f.for_range(0, count, |f, i| {
            let n = f.load(table.raw() as i64, i);
            f.call_void(run_one, &[Operand::Reg(n)]);
        });
        f.ret(None);
    });
    let program = pb2.finish(main).expect("sorting program");
    let focus = program.routine_by_name("selection_sort");
    (program, focus)
}

/// Selection sort driven once per size in `sizes` (paper Figure 10).
///
/// Routines: `main`, `run_one`, `fill_random`, `selection_sort` (focus).
pub fn selection_sort_sweep(sizes: &[i64]) -> Workload {
    let (program, focus) = build(sizes);
    Workload {
        name: "selection_sort".to_owned(),
        program,
        devices: Vec::new(),
        focus,
    }
}

/// The default Figure 10 sweep: sizes 10, 20, …, `10 * steps`.
pub fn selection_sort_default(steps: i64) -> Workload {
    let sizes: Vec<i64> = (1..=steps).map(|i| i * 10).collect();
    selection_sort_sweep(&sizes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_core::{DrmsConfig, DrmsProfiler};
    use drms_vm::{run_program, NullTool, RunConfig, Vm};

    #[test]
    fn sorts_correctly() {
        // Single size; inspect memory after the run through a dedicated
        // program that sorts a known global array.
        let mut pb = ProgramBuilder::new();
        let sort = pb.declare("selection_sort", 2);
        pb.define(sort, emit_selection_sort);
        let data = pb.global_with(vec![5, 3, 9, 1, 4]);
        let main = pb.function("main", 0, |f| {
            f.call_void(sort, &[Operand::Imm(data.raw() as i64), Operand::Imm(5)]);
            f.ret(None);
        });
        let p = pb.finish(main).unwrap();
        let mut vm = Vm::new(&p, RunConfig::default()).unwrap();
        vm.run(&mut NullTool).unwrap();
        let sorted: Vec<i64> = (0..5).map(|i| vm.memory().load(data.offset(i))).collect();
        assert_eq!(sorted, vec![1, 3, 4, 5, 9]);
    }

    #[test]
    fn sweep_produces_one_point_per_size_with_quadratic_cost() {
        let w = selection_sort_sweep(&[10, 20, 40, 80]);
        let mut prof = DrmsProfiler::new(DrmsConfig::full());
        run_program(&w.program, w.run_config(), &mut prof).unwrap();
        let p = prof.into_report().merged_routine(w.focus.unwrap());
        let plot = p.drms_plot();
        assert_eq!(plot.len(), 4, "one distinct input size per array size");
        // Input sizes track n (each cell of the array is read).
        let ns: Vec<u64> = plot.iter().map(|&(n, _)| n).collect();
        assert!(ns.windows(2).all(|w| w[1] > w[0]));
        // Quadratic growth: doubling n should ~quadruple the cost.
        let costs: Vec<f64> = plot.iter().map(|&(_, c)| c as f64).collect();
        for i in 0..costs.len() - 1 {
            let ratio = costs[i + 1] / costs[i];
            assert!(
                (2.5..6.0).contains(&ratio),
                "cost ratio {ratio} not quadratic-like"
            );
        }
        // Static workload: rms and drms coincide.
        assert_eq!(p.rms_plot(), p.drms_plot());
    }
}
