//! Shared guest-code utilities for workload construction.

use drms_vm::{FnBuilder, ProgramBuilder, Reg};

/// A coordinator-driven barrier for a fixed pool of worker threads.
///
/// A single shared counting semaphore cannot implement the release phase:
/// a fast worker that reaches the next barrier early would steal a
/// release unit destined for a slower sibling, deadlocking the pool. Each
/// worker therefore waits on its *own* release semaphore.
pub(crate) struct Barrier {
    done: u32,
    gos: Vec<u32>,
}

impl Barrier {
    /// Creates barrier semaphores for `threads` workers.
    pub fn new(pb: &mut ProgramBuilder, threads: i64) -> Self {
        let done = pb.semaphore(0);
        let gos = (0..threads).map(|_| pb.semaphore(0)).collect();
        Barrier { done, gos }
    }

    /// Worker side: announce completion, wait for this worker's release.
    /// `tid` must hold a value in `0..threads`.
    pub fn worker(&self, f: &mut FnBuilder, tid: Reg) {
        f.sem_signal(self.done);
        for (wi, &g) in self.gos.iter().enumerate() {
            let is_w = f.eq(tid, wi as i64);
            f.if_then(is_w, |f| f.sem_wait(g));
        }
    }

    /// Coordinator side: collect all completions, release every worker.
    pub fn coordinator(&self, f: &mut FnBuilder) {
        self.collect(f);
        self.release(f);
    }

    /// Coordinator side, first half: wait for every worker's completion.
    /// Lets the coordinator run a sequential phase before releasing.
    pub fn collect(&self, f: &mut FnBuilder) {
        let t = self.gos.len() as i64;
        f.for_range(0, t, |f, _| f.sem_wait(self.done));
    }

    /// Coordinator side, second half: release every worker.
    pub fn release(&self, f: &mut FnBuilder) {
        for &g in &self.gos {
            f.sem_signal(g);
        }
    }
}
