//! `minidb`: a miniature table-scan database standing in for MySQL.
//!
//! Tables live on an external device; `mysql_select` scans a table by
//! loading it group-by-group into one fixed buffer through positioned
//! `pread64` system calls, then evaluating a predicate over each row.
//! Because the buffer is reused across groups, the *rms* of a select over
//! a large table roughly coincides with the buffer size, while the *drms*
//! grows with the table — the effect behind Figure 4 of the paper.
//!
//! Two drivers are provided: [`minidb_scaling`] issues single-threaded
//! queries on tables of increasing size (Figure 4), and [`mysqlslap`]
//! emulates the load client used in the paper's benchmark suite — several
//! concurrent clients issuing randomly sized queries, logging results via
//! `write(2)` and sharing a mutex-protected statistics block.

use crate::Workload;
use drms_trace::RoutineId;
use drms_vm::{Device, Operand, ProgramBuilder, SyscallNo};

/// Cells per table row.
pub const ROW_CELLS: i64 = 4;
/// Rows per I/O group (buffer holds one group).
pub const GROUP_ROWS: i64 = 8;
/// Buffer size in cells.
pub const BUF_CELLS: i64 = ROW_CELLS * GROUP_ROWS;

/// Declares the database engine routines shared by both drivers.
///
/// Returns `(mysql_execute, mysql_select)` routine ids. The engine reads
/// table rows from fd `table_fd`.
fn declare_engine(
    pb: &mut ProgramBuilder,
    table_fd: i64,
    buf: u64,
    query: u64,
) -> (RoutineId, RoutineId) {
    // scan_row(base): evaluate a row, returning 1 if it matches.
    let scan_row = pb.function("scan_row", 1, |f| {
        let base = f.param(0);
        let acc = f.copy(0);
        f.for_range(0, ROW_CELLS, |f, c| {
            let v = f.load(base, c);
            let s = f.add(acc, v);
            f.assign(acc, s);
        });
        let matched = f.gt(acc, 0);
        f.ret_val(matched);
    });

    // mysql_parse(len): tokenize the query text (models parser input).
    let mysql_parse = pb.function("mysql_parse", 1, |f| {
        let len = f.param(0);
        let hash = f.copy(0);
        f.for_range(0, len, |f, i| {
            let c = f.load(query as i64, i);
            let h = f.mul(hash, 31);
            let h2 = f.add(h, c);
            f.assign(hash, h2);
        });
        f.ret_val(hash);
    });

    // mysql_select(nrows): scan the table group by group through the
    // shared buffer, counting matching rows.
    let mysql_select = pb.function("mysql_select", 1, |f| {
        let nrows = f.param(0);
        let matches = f.copy(0);
        let row = f.copy(0);
        f.while_loop(
            |f| Operand::Reg(f.lt(row, nrows)),
            |f| {
                let remaining = f.sub(nrows, row);
                let batch = f.min(remaining, GROUP_ROWS);
                let cells = f.mul(batch, ROW_CELLS);
                let offset = f.mul(row, ROW_CELLS);
                // load the group into the (reused) buffer, resuming
                // short reads and retrying transient kernel errors
                let _ = f.syscall_full(SyscallNo::Pread64, table_fd, buf as i64, cells, offset);
                f.for_range(0, batch, |f, r| {
                    let row_off = f.mul(r, ROW_CELLS);
                    let base = f.add(buf as i64, row_off);
                    let m = f.call(scan_row, &[Operand::Reg(base)]);
                    let m2 = f.add(matches, m);
                    f.assign(matches, m2);
                });
                let next = f.add(row, batch);
                f.assign(row, next);
            },
        );
        f.ret_val(matches);
    });

    // mysql_execute(nrows): parse + select.
    let mysql_execute = pb.function("mysql_execute", 1, |f| {
        let nrows = f.param(0);
        let _ = f.call(mysql_parse, &[Operand::Imm(12)]);
        let m = f.call(mysql_select, &[Operand::Reg(nrows)]);
        f.ret_val(m);
    });
    let _ = scan_row;
    (mysql_execute, mysql_select)
}

/// Single-threaded queries over tables of increasing size (Figure 4).
///
/// Issues one `SELECT *`-style scan per entry of `table_sizes` (in rows).
/// Focus routine: `mysql_select`.
pub fn minidb_scaling(table_sizes: &[i64]) -> Workload {
    let mut pb = ProgramBuilder::new();
    let buf = pb.global(BUF_CELLS as u64);
    let query = pb.global_with("SELECT*FROM t".bytes().map(|b| b as i64).collect());
    let (mysql_execute, _) = declare_engine(&mut pb, 0, buf.raw(), query.raw());
    let sizes = pb.global_with(table_sizes.to_vec());
    let count = table_sizes.len() as i64;
    let main = pb.function("main", 0, |f| {
        f.for_range(0, count, |f, i| {
            let n = f.load(sizes.raw() as i64, i);
            let _ = f.call(mysql_execute, &[Operand::Reg(n)]);
        });
        f.ret(None);
    });
    let program = pb.finish(main).expect("minidb program");
    let focus = program.routine_by_name("mysql_select");
    Workload {
        name: "minidb".to_owned(),
        program,
        devices: vec![Device::Stream { seed: 0xDB }],
        focus,
    }
}

/// The `mysqlslap` load emulation: `clients` concurrent threads each
/// issue `queries` scans of random size up to `max_rows`, log results via
/// `write(2)` and update shared statistics under a mutex.
///
/// Devices: fd 0 = table, fd 1 = result log sink.
/// Focus routine: `mysql_select`.
pub fn mysqlslap(clients: u32, queries: u32, max_rows: i64) -> Workload {
    let mut pb = ProgramBuilder::new();
    let buf_pool = pb.global(BUF_CELLS as u64 * clients as u64);
    let query = pb.global_with(
        "SELECT*FROM t WHERE c>0"
            .bytes()
            .map(|b| b as i64)
            .collect(),
    );
    let stats = pb.global(4); // [queries_done, rows_matched, rows_scanned, errors]
    let stats_mutex = pb.mutex();
    // Each client gets a private buffer slice of the pool, but the engine
    // routines take the buffer base as a parameter — so redeclare a
    // parameterized select here instead of using `declare_engine`.
    let scan_row = pb.function("scan_row", 1, |f| {
        let base = f.param(0);
        let acc = f.copy(0);
        f.for_range(0, ROW_CELLS, |f, c| {
            let v = f.load(base, c);
            let s = f.add(acc, v);
            f.assign(acc, s);
        });
        let matched = f.gt(acc, 0);
        f.ret_val(matched);
    });
    let mysql_parse = pb.function("mysql_parse", 1, |f| {
        let len = f.param(0);
        let hash = f.copy(0);
        f.for_range(0, len, |f, i| {
            let c = f.load(query.raw() as i64, i);
            let h = f.mul(hash, 31);
            let h2 = f.add(h, c);
            f.assign(hash, h2);
        });
        f.ret_val(hash);
    });
    let mysql_select = pb.function("mysql_select", 2, |f| {
        let nrows = f.param(0);
        let buf = f.param(1);
        let matches = f.copy(0);
        let row = f.copy(0);
        f.while_loop(
            |f| Operand::Reg(f.lt(row, nrows)),
            |f| {
                let remaining = f.sub(nrows, row);
                let batch = f.min(remaining, GROUP_ROWS);
                let cells = f.mul(batch, ROW_CELLS);
                let offset = f.mul(row, ROW_CELLS);
                let _ = f.syscall_full(SyscallNo::Pread64, 0, buf, cells, offset);
                f.for_range(0, batch, |f, r| {
                    let row_off = f.mul(r, ROW_CELLS);
                    let base = f.add(buf, row_off);
                    let m = f.call(scan_row, &[Operand::Reg(base)]);
                    let m2 = f.add(matches, m);
                    f.assign(matches, m2);
                });
                let next = f.add(row, batch);
                f.assign(row, next);
            },
        );
        f.ret_val(matches);
    });
    // log_result(result_base): write 2 cells to the log sink.
    let log_result = pb.function("log_result", 1, |f| {
        let base = f.param(0);
        let _ = f.syscall(SyscallNo::Write, 1, base, 2, 0);
        f.ret(None);
    });
    let client = pb.function("client", 1, |f| {
        let cid = f.param(0);
        let buf_off = f.mul(cid, BUF_CELLS);
        let buf = f.add(buf_pool.raw() as i64, buf_off);
        let result = f.alloc(2);
        f.for_range(0, queries as i64, |f, _| {
            let n0 = f.rand(max_rows.max(2));
            let n = f.add(n0, 1);
            let _ = f.call(mysql_parse, &[Operand::Imm(23)]);
            let m = f.call(mysql_select, &[Operand::Reg(n), Operand::Reg(buf)]);
            // update shared statistics (thread input for other clients)
            f.lock(stats_mutex);
            let done = f.load(stats.raw() as i64, 0);
            let done2 = f.add(done, 1);
            f.store(stats.raw() as i64, 0, done2);
            let matched = f.load(stats.raw() as i64, 1);
            let matched2 = f.add(matched, m);
            f.store(stats.raw() as i64, 1, matched2);
            let scanned = f.load(stats.raw() as i64, 2);
            let scanned2 = f.add(scanned, n);
            f.store(stats.raw() as i64, 2, scanned2);
            f.unlock(stats_mutex);
            // log the result row
            f.store(result, 0, m);
            f.store(result, 1, n);
            f.call_void(log_result, &[Operand::Reg(result)]);
        });
        f.ret(None);
    });
    let main = pb.function("main", 0, |f| {
        let tids = f.alloc(clients as i64);
        f.for_range(0, clients as i64, |f, c| {
            let t = f.spawn(client, &[Operand::Reg(c)]);
            f.store(tids, c, t);
        });
        f.for_range(0, clients as i64, |f, c| {
            let t = f.load(tids, c);
            f.join(t);
        });
        // final report: read totals and flush to the log
        let total = f.load(stats.raw() as i64, 0);
        let out = f.alloc(1);
        f.store(out, 0, total);
        let _ = f.syscall(SyscallNo::Write, 1, out, 1, 0);
        f.ret(None);
    });
    let program = pb.finish(main).expect("mysqlslap program");
    let focus = program.routine_by_name("mysql_select");
    Workload {
        name: "mysqlslap".to_owned(),
        program,
        devices: vec![Device::Stream { seed: 0xDB }, Device::Sink],
        focus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_core::{DrmsConfig, DrmsProfiler, RmsProfiler};
    use drms_vm::run_program;

    #[test]
    fn scaling_reproduces_figure_4_shape() {
        let sizes = [16, 32, 64, 128, 256];
        let w = minidb_scaling(&sizes);
        let mut prof = DrmsProfiler::new(DrmsConfig::full());
        run_program(&w.program, w.run_config(), &mut prof).unwrap();
        let p = prof.into_report().merged_routine(w.focus.unwrap());
        let drms = p.drms_plot();
        let rms = p.rms_plot();
        assert_eq!(drms.len(), sizes.len(), "one drms point per table size");
        // drms grows with the table; rms stays near the buffer size.
        let drms_span = drms.last().unwrap().0 - drms.first().unwrap().0;
        let rms_span = rms.last().unwrap().0.saturating_sub(rms.first().unwrap().0);
        assert!(
            drms_span > 10 * rms_span.max(1),
            "rms collapses, drms spreads"
        );
        assert!(rms.last().unwrap().0 <= 2 * BUF_CELLS as u64 + 8);
        // Cost grows linearly in drms: check the cost-per-input ratio is
        // roughly stable across the largest points.
        let (n1, c1) = drms[drms.len() - 2];
        let (n2, c2) = drms[drms.len() - 1];
        let slope_ratio = (c2 as f64 / n2 as f64) / (c1 as f64 / n1 as f64);
        assert!(
            (0.5..2.0).contains(&slope_ratio),
            "linear trend in drms plot"
        );
        // Under rms the same costs pile up on nearly constant input sizes
        // (the "false superlinear" effect): max cost at max rms is much
        // larger than the input-size spread justifies.
        assert!(rms.last().unwrap().1 >= c2, "rms plot keeps worst cost");
    }

    #[test]
    fn scan_is_external_input_dominated() {
        let w = minidb_scaling(&[64, 128]);
        let mut prof = DrmsProfiler::new(DrmsConfig::full());
        run_program(&w.program, w.run_config(), &mut prof).unwrap();
        let report = prof.into_report();
        let scan = report.merged_routine(w.program.routine_by_name("scan_row").unwrap());
        assert!(scan.breakdown.kernel_induced > scan.breakdown.thread_induced);
        assert!(scan.breakdown.kernel_induced > 0);
    }

    #[test]
    fn rms_tool_sees_constant_input_for_growing_tables() {
        let w = minidb_scaling(&[64, 512]);
        let mut prof = RmsProfiler::new();
        run_program(&w.program, w.run_config(), &mut prof).unwrap();
        let p = prof.into_report().merged_routine(w.focus.unwrap());
        let rms = p.rms_plot();
        let span = rms.last().unwrap().0 - rms.first().unwrap().0;
        assert!(
            span <= 4,
            "rms is oblivious to the 8x larger table (span {span})"
        );
    }

    #[test]
    fn mysqlslap_runs_with_concurrent_clients() {
        let w = mysqlslap(3, 4, 40);
        let mut prof = DrmsProfiler::new(DrmsConfig::full());
        let stats = run_program(&w.program, w.run_config(), &mut prof).unwrap();
        assert_eq!(stats.threads, 4);
        let report = prof.into_report();
        let select = report.merged_routine(w.focus.unwrap());
        assert_eq!(select.calls, 12, "3 clients x 4 queries");
        assert!(report.dynamic_input_volume() > 0.0);
    }
}
