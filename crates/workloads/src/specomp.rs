//! Synthetic stand-ins for SPEC OMP2012-style fork-join kernels.
//!
//! The paper observes that the OMP benchmarks cluster at the
//! thread-input-dominated end of the spectrum (thread input above ~69%,
//! Figure 15): their workloads are produced almost entirely by other
//! threads writing shared arrays between parallel phases, with only small
//! initial file inputs. The kernels here reproduce that shape with
//! *persistent* worker threads (an OpenMP runtime keeps a thread pool),
//! so a worker's single long activation re-reads data other threads wrote
//! in previous phases — the situation where drms exceeds rms.

use crate::Workload;
use drms_trace::RoutineId;
use drms_vm::{FnBuilder, Operand, ProgramBuilder};

use crate::util::Barrier;

/// Spawns `threads` persistent instances of `worker(tid)`, runs `rounds`
/// coordinator barrier phases, then joins the workers.
fn run_pool(f: &mut FnBuilder, worker: RoutineId, threads: i64, rounds: i64, barrier: &Barrier) {
    let tids = f.alloc(threads);
    f.for_range(0, threads, |f, w| {
        let h = f.spawn(worker, &[Operand::Reg(w)]);
        f.store(tids, w, h);
    });
    f.for_range(0, rounds, |f, _| {
        barrier.coordinator(f);
    });
    f.for_range(0, threads, |f, w| {
        let h = f.load(tids, w);
        f.join(h);
    });
}

/// `smithwa`: Smith-Waterman-style wavefront dynamic programming. Tiles
/// along an anti-diagonal are computed in parallel; each tile reads the
/// north/west tiles written by other threads in the previous wave —
/// thread input dominates massively.
pub fn smithwa(threads: u32, scale: u32) -> Workload {
    let t = threads.max(1) as i64;
    let tile = 6i64;
    let tiles = (2 * scale.max(1) as i64 * t).max(4); // tiles per side
    let side = tile * tiles;
    let diagonals = 2 * tiles - 1;
    let mut pb = ProgramBuilder::new();
    let matrix = pb.global((side * side) as u64);
    let seq_a = pb.global(side as u64);
    let seq_b = pb.global(side as u64);
    let barrier = Barrier::new(&mut pb, t);

    // compute_tile(ti, tj): fill one tile reading its N/W borders.
    let compute_tile = pb.function("sw_compute_tile", 2, |f| {
        let ti = f.param(0);
        let tj = f.param(1);
        let m = matrix.raw() as i64;
        let row0 = f.mul(ti, tile);
        let col0 = f.mul(tj, tile);
        f.for_range(0, tile, |f, r| {
            let row = f.add(row0, r);
            f.for_range(0, tile, |f, c| {
                let col = f.add(col0, c);
                // score = max(north, west) + match(a[row], b[col])
                let ri = f.mul(row, side);
                let idx = f.add(ri, col);
                let has_north = f.gt(row, 0);
                let north = f.copy(0);
                f.if_then(has_north, |f| {
                    let ni = f.sub(idx, side);
                    let nv = f.load(m, ni);
                    f.assign(north, nv);
                });
                let has_west = f.gt(col, 0);
                let west = f.copy(0);
                f.if_then(has_west, |f| {
                    let wi = f.sub(idx, 1);
                    let wv = f.load(m, wi);
                    f.assign(west, wv);
                });
                let a = f.load(seq_a.raw() as i64, row);
                let b = f.load(seq_b.raw() as i64, col);
                let eq = f.eq(a, b);
                let bonus = f.mul(eq, 5);
                let base = f.max(north, west);
                let score = f.add(base, bonus);
                f.store(m, idx, score);
            });
        });
        f.ret(None);
    });
    // Persistent wave worker: one activation aligns several pairs,
    // sweeping all diagonals of each and reusing the DP matrix — so
    // later alignments re-read cells other threads overwrote (drms>rms).
    let pairs = 2i64;
    let worker = pb.function("sw_wave_worker", 1, |f| {
        let tid = f.param(0);
        f.for_range(0, pairs * diagonals, |f, pd| {
            let d = f.rem(pd, diagonals);
            let lo = f.sub(d, tiles - 1);
            let start = f.max(lo, 0);
            let hi0 = f.add(d, 1);
            let end = f.min(hi0, tiles);
            f.for_range(Operand::Reg(start), Operand::Reg(end), |f, ti| {
                let mine0 = f.rem(ti, t);
                let mine = f.eq(mine0, tid);
                f.if_then(mine, |f| {
                    let tj = f.sub(d, ti);
                    f.call_void(compute_tile, &[Operand::Reg(ti), Operand::Reg(tj)]);
                });
            });
            barrier.worker(f, tid);
        });
        f.ret(None);
    });
    let main = pb.function("main", 0, |f| {
        // Sequences are expanded in-process from a tiny seed read from
        // the input file (external input is small for this benchmark).
        let seed_buf = f.alloc(4);
        let _ = f.syscall(drms_vm::SyscallNo::Read, 0, seed_buf, 4, 0);
        let s0 = f.load(seed_buf, 0);
        f.for_range(0, side, |f, i| {
            let m0 = f.mul(i, 131);
            let m1 = f.add(m0, s0);
            let a = f.rem(m1, 4);
            f.store(seq_a.raw() as i64, i, a);
            let m2 = f.mul(i, 137);
            let b = f.rem(m2, 4);
            f.store(seq_b.raw() as i64, i, b);
        });
        run_pool(f, worker, t, pairs * diagonals, &barrier);
        f.ret(None);
    });
    let program = pb.finish(main).expect("smithwa");
    let focus = program.routine_by_name("sw_compute_tile");
    Workload {
        name: "smithwa".to_owned(),
        program,
        devices: vec![drms_vm::Device::Stream { seed: 0x5A17 }],
        focus,
    }
}

/// `nab`: molecular-dynamics-style iterations — every thread recomputes
/// forces from the full position array, which all threads rewrote in the
/// previous step.
pub fn nab(threads: u32, scale: u32) -> Workload {
    let t = threads.max(1) as i64;
    let atoms = 16 * scale.max(1) as i64 * t;
    let steps = 3i64;
    let mut pb = ProgramBuilder::new();
    let pos = pb.global(atoms as u64);
    let force = pb.global(atoms as u64);
    let barrier = Barrier::new(&mut pb, t);

    let compute_force = pb.function("nab_force", 1, |f| {
        let i = f.param(0);
        let pi = f.load(pos.raw() as i64, i);
        let acc = f.copy(0);
        // sample interactions with a stride to keep cost manageable
        let stride = (atoms / 8).max(1);
        f.for_range(0, 8, |f, k| {
            let j0 = f.mul(k, stride);
            let j1 = f.add(j0, i);
            let j = f.rem(j1, atoms);
            let pj = f.load(pos.raw() as i64, j);
            let d = f.sub(pi, pj);
            let d2 = f.mul(d, d);
            let r = f.add(d2, 1);
            let contrib = f.div(1_000_000, r);
            let s = f.add(acc, contrib);
            f.assign(acc, s);
        });
        f.store(force.raw() as i64, i, acc);
        f.ret(None);
    });
    let integrate = pb.function("nab_integrate", 1, |f| {
        let i = f.param(0);
        let p = f.load(pos.raw() as i64, i);
        let fr = f.load(force.raw() as i64, i);
        let dp = f.div(fr, 1000);
        let np = f.add(p, dp);
        let wrapped = f.rem(np, 100_000);
        f.store(pos.raw() as i64, i, wrapped);
        f.ret(None);
    });
    // Persistent worker: force phase, barrier, integrate phase, barrier.
    let worker = pb.function("nab_worker", 1, |f| {
        let tid = f.param(0);
        let per = atoms / t;
        let start = f.mul(tid, per);
        let end = f.add(start, per);
        f.for_range(0, steps, |f, _| {
            f.for_range(Operand::Reg(start), Operand::Reg(end), |f, i| {
                f.call_void(compute_force, &[Operand::Reg(i)]);
            });
            barrier.worker(f, tid);
            f.for_range(Operand::Reg(start), Operand::Reg(end), |f, i| {
                f.call_void(integrate, &[Operand::Reg(i)]);
            });
            barrier.worker(f, tid);
        });
        f.ret(None);
    });
    let main = pb.function("main", 0, |f| {
        f.for_range(0, atoms, |f, i| {
            let v = f.mul(i, 37);
            let w = f.rem(v, 100_000);
            f.store(pos.raw() as i64, i, w);
        });
        run_pool(f, worker, t, 2 * steps, &barrier);
        f.ret(None);
    });
    let program = pb.finish(main).expect("nab");
    let focus = program.routine_by_name("nab_force");
    Workload {
        name: "nab".to_owned(),
        program,
        devices: Vec::new(),
        focus,
    }
}

/// `kdtree`: the main thread builds a shared tree, worker threads answer
/// nearest-neighbour queries over it; between query batches the main
/// thread rebalances keys — workers' re-reads are thread-induced.
pub fn kdtree(threads: u32, scale: u32) -> Workload {
    let t = threads.max(1) as i64;
    let nodes = (32 * scale.max(1) as i64).max(8);
    let queries = 10 * scale.max(1) as i64;
    let batches = 3i64;
    let mut pb = ProgramBuilder::new();
    // node i: [key] at tree[i]; children implicit (2i+1, 2i+2)
    let tree = pb.global(nodes as u64);
    let barrier = Barrier::new(&mut pb, t);

    let build_node = pb.function("kd_build_node", 2, |f| {
        let i = f.param(0);
        let key = f.param(1);
        f.store(tree.raw() as i64, i, key);
        f.ret(None);
    });
    let query = pb.function("kd_query", 1, |f| {
        let target = f.param(0);
        let i = f.copy(0);
        let best = f.copy(i64::MAX);
        f.while_loop(
            |f| Operand::Reg(f.lt(i, nodes)),
            |f| {
                let k = f.load(tree.raw() as i64, i);
                let d0 = f.sub(k, target);
                let d1 = f.mul(d0, d0);
                let nb = f.min(best, d1);
                f.assign(best, nb);
                let go_left = f.lt(target, k);
                let l0 = f.mul(i, 2);
                let left = f.add(l0, 1);
                let right = f.add(l0, 2);
                f.if_else(go_left, |f| f.assign(i, left), |f| f.assign(i, right));
            },
        );
        f.ret_val(best);
    });
    let worker = pb.function("kd_worker", 1, |f| {
        let tid = f.param(0);
        f.for_range(0, batches, |f, _| {
            f.for_range(0, queries, |f, _| {
                let q = f.rand(100_000);
                let _ = f.call(query, &[Operand::Reg(q)]);
            });
            barrier.worker(f, tid);
        });
        f.ret(None);
    });
    let rebalance = pb.function("kd_rebalance", 1, |f| {
        let round = f.param(0);
        f.for_range(0, nodes, |f, i| {
            let old = f.load(tree.raw() as i64, i);
            let m0 = f.mul(old, 31);
            let m1 = f.add(m0, round);
            let key = f.rem(m1, 100_000);
            f.call_void(build_node, &[Operand::Reg(i), Operand::Reg(key)]);
        });
        f.ret(None);
    });
    let main = pb.function("main", 0, |f| {
        f.for_range(0, nodes, |f, i| {
            let h0 = f.mul(i, 2654435761i64 % 100_000);
            let key = f.rem(h0, 100_000);
            f.call_void(build_node, &[Operand::Reg(i), Operand::Reg(key)]);
        });
        let tids = f.alloc(t);
        f.for_range(0, t, |f, w| {
            let h = f.spawn(worker, &[Operand::Reg(w)]);
            f.store(tids, w, h);
        });
        f.for_range(0, batches, |f, round| {
            barrier.collect(f);
            f.call_void(rebalance, &[Operand::Reg(round)]);
            barrier.release(f);
        });
        f.for_range(0, t, |f, w| {
            let h = f.load(tids, w);
            f.join(h);
        });
        f.ret(None);
    });
    let program = pb.finish(main).expect("kdtree");
    let focus = program.routine_by_name("kd_query");
    Workload {
        name: "kdtree".to_owned(),
        program,
        devices: Vec::new(),
        focus,
    }
}

/// `botsalgn`: task-parallel sequence alignment — tasks are claimed from
/// a shared counter; the sequences were loaded by the main thread.
pub fn botsalgn(threads: u32, scale: u32) -> Workload {
    let t = threads.max(1) as i64;
    let seqs = 6 * scale.max(1) as i64;
    let seq_len = 10i64;
    let mut pb = ProgramBuilder::new();
    let bank = pb.global((seqs * seq_len) as u64);
    let next_task = pb.global(1);
    let task_mutex = pb.mutex();
    let tasks = seqs * (seqs - 1) / 2;

    let align_pair = pb.function("ba_align", 2, |f| {
        let a = f.param(0);
        let b = f.param(1);
        let abase0 = f.mul(a, seq_len);
        let abase = f.add(bank.raw() as i64, abase0);
        let bbase0 = f.mul(b, seq_len);
        let bbase = f.add(bank.raw() as i64, bbase0);
        let score = f.copy(0);
        f.for_range(0, seq_len, |f, i| {
            let ca = f.load(abase, i);
            f.for_range(0, seq_len, |f, j| {
                let cb = f.load(bbase, j);
                let eq = f.eq(ca, cb);
                let s = f.add(score, eq);
                f.assign(score, s);
            });
        });
        f.ret_val(score);
    });
    let worker = pb.function("ba_worker", 1, |f| {
        let _tid = f.param(0);
        let my_task = f.copy(0);
        let more = f.copy(1);
        f.while_loop(
            |f| Operand::Reg(f.copy(more)),
            |f| {
                f.lock(task_mutex);
                let k = f.load(next_task.raw() as i64, 0);
                let in_range = f.lt(k, tasks);
                f.if_else(
                    in_range,
                    |f| {
                        let k2 = f.add(k, 1);
                        f.store(next_task.raw() as i64, 0, k2);
                        f.assign(my_task, k);
                        f.assign(more, 1);
                    },
                    |f| f.assign(more, 0),
                );
                f.unlock(task_mutex);
                f.if_then(more, |f| {
                    // decode pair (a, b) from the task index
                    let a = f.rem(my_task, seqs);
                    let b0 = f.div(my_task, seqs);
                    let b1 = f.rem(b0, seqs);
                    let differ = f.ne(a, b1);
                    f.if_then(differ, |f| {
                        let _ = f.call(align_pair, &[Operand::Reg(a), Operand::Reg(b1)]);
                    });
                });
            },
        );
        f.ret(None);
    });
    let main = pb.function("main", 0, |f| {
        f.for_range(0, seqs * seq_len, |f, i| {
            let v = f.rem(i, 4); // ACGT alphabet
            f.store(bank.raw() as i64, i, v);
        });
        let tids = f.alloc(t);
        f.for_range(0, t, |f, w| {
            let h = f.spawn(worker, &[Operand::Reg(w)]);
            f.store(tids, w, h);
        });
        f.for_range(0, t, |f, w| {
            let h = f.load(tids, w);
            f.join(h);
        });
        f.ret(None);
    });
    let program = pb.finish(main).expect("botsalgn");
    let focus = program.routine_by_name("ba_align");
    Workload {
        name: "botsalgn".to_owned(),
        program,
        devices: Vec::new(),
        focus,
    }
}

/// `md`: a second molecular-dynamics shape with halo exchange — threads
/// own contiguous particle ranges and read halo cells their neighbours
/// rewrote every step.
pub fn md(threads: u32, scale: u32) -> Workload {
    let t = threads.max(1) as i64;
    let per = 20 * scale.max(1) as i64;
    let n = per * t;
    let steps = 4i64;
    let mut pb = ProgramBuilder::new();
    let x = pb.global(n as u64);
    let barrier = Barrier::new(&mut pb, t);

    let step_range = pb.function("md_step_range", 2, |f| {
        let start = f.param(0);
        let end = f.param(1);
        f.for_range(Operand::Reg(start), Operand::Reg(end), |f, i| {
            let xi = f.load(x.raw() as i64, i);
            let lm = f.sub(i, 1);
            let li = f.max(lm, 0);
            let xl = f.load(x.raw() as i64, li);
            let rm = f.add(i, 1);
            let ri = f.min(rm, n - 1);
            let xr = f.load(x.raw() as i64, ri);
            let s0 = f.add(xl, xr);
            let s1 = f.add(s0, xi);
            let nv = f.div(s1, 3);
            f.store(x.raw() as i64, i, nv);
        });
        f.ret(None);
    });
    let worker = pb.function("md_worker", 1, |f| {
        let tid = f.param(0);
        let start = f.mul(tid, per);
        let end = f.add(start, per);
        f.for_range(0, steps, |f, _| {
            f.call_void(step_range, &[Operand::Reg(start), Operand::Reg(end)]);
            barrier.worker(f, tid);
        });
        f.ret(None);
    });
    let main = pb.function("main", 0, |f| {
        f.for_range(0, n, |f, i| {
            let v = f.mul(i, 11);
            f.store(x.raw() as i64, i, v);
        });
        run_pool(f, worker, t, steps, &barrier);
        f.ret(None);
    });
    let program = pb.finish(main).expect("md");
    let focus = program.routine_by_name("md_step_range");
    Workload {
        name: "md".to_owned(),
        program,
        devices: Vec::new(),
        focus,
    }
}

/// `imagick`: a row-parallel image filter — the input image comes from a
/// device once; each filtering pass reads rows its neighbours wrote.
pub fn imagick(threads: u32, scale: u32) -> Workload {
    let t = threads.max(1) as i64;
    let rows = 4 * t;
    let cols = 10 * scale.max(1) as i64;
    let passes = 3i64;
    let mut pb = ProgramBuilder::new();
    let img = pb.global((rows * cols) as u64);
    let barrier = Barrier::new(&mut pb, t);

    let filter_row = pb.function("im_filter_row", 1, |f| {
        let r = f.param(0);
        let base0 = f.mul(r, cols);
        let base = f.add(img.raw() as i64, base0);
        f.for_range(0, cols, |f, c| {
            let v = f.load(base, c);
            let um = f.sub(r, 1);
            let ur = f.max(um, 0);
            let ub0 = f.mul(ur, cols);
            let ui = f.add(ub0, c);
            let uv = f.load(img.raw() as i64, ui);
            let dm = f.add(r, 1);
            let dr = f.min(dm, rows - 1);
            let db0 = f.mul(dr, cols);
            let di = f.add(db0, c);
            let dv = f.load(img.raw() as i64, di);
            let s0 = f.add(uv, dv);
            let s1 = f.add(s0, v);
            let nv = f.div(s1, 3);
            f.store(base, c, nv);
        });
        f.ret(None);
    });
    let worker = pb.function("im_worker", 1, |f| {
        let tid = f.param(0);
        let per = rows / t;
        let start = f.mul(tid, per);
        let end = f.add(start, per);
        f.for_range(0, passes, |f, _| {
            f.for_range(Operand::Reg(start), Operand::Reg(end), |f, r| {
                f.call_void(filter_row, &[Operand::Reg(r)]);
            });
            barrier.worker(f, tid);
        });
        f.ret(None);
    });
    let main = pb.function("main", 0, |f| {
        // Decode a small external header, then synthesize the pixel data
        // in-process (the on-disk image is compressed; decoding writes it).
        let hdr = f.alloc(8);
        let _ = f.syscall(drms_vm::SyscallNo::Read, 0, hdr, 8, 0);
        let h0 = f.load(hdr, 0);
        f.for_range(0, rows * cols, |f, i| {
            let m0 = f.mul(i, 193);
            let m1 = f.add(m0, h0);
            let v = f.rem(m1, 256);
            f.store(img.raw() as i64, i, v);
        });
        run_pool(f, worker, t, passes, &barrier);
        f.ret(None);
    });
    let program = pb.finish(main).expect("imagick");
    let focus = program.routine_by_name("im_filter_row");
    Workload {
        name: "imagick".to_owned(),
        program,
        devices: vec![drms_vm::Device::Stream { seed: 0x1A6 }],
        focus,
    }
}

/// `swim`: shallow-water stencil over two ping-pong grids — persistent
/// workers, halo reads of neighbour-written rows each step.
pub fn swim(threads: u32, scale: u32) -> Workload {
    let t = threads.max(1) as i64;
    let cols = 8 * scale.max(1) as i64;
    let rows = 3 * t;
    let steps = 3i64;
    let n = rows * cols;
    let mut pb = ProgramBuilder::new();
    let u = pb.global(n as u64);
    let v = pb.global(n as u64);
    let barrier = Barrier::new(&mut pb, t);

    // swim_step_row(row, src, dst): dst[row] from src[row-1..=row+1].
    let step_row = pb.function("swim_step_row", 3, |f| {
        let r = f.param(0);
        let src = f.param(1);
        let dst = f.param(2);
        let base0 = f.mul(r, cols);
        f.for_range(0, cols, |f, c| {
            let i = f.add(base0, c);
            let x = f.load(src, i);
            let um = f.sub(r, 1);
            let ur = f.max(um, 0);
            let ui0 = f.mul(ur, cols);
            let ui = f.add(ui0, c);
            let xu = f.load(src, ui);
            let dm = f.add(r, 1);
            let dr = f.min(dm, rows - 1);
            let di0 = f.mul(dr, cols);
            let di = f.add(di0, c);
            let xd = f.load(src, di);
            let s0 = f.add(xu, xd);
            let s1 = f.add(s0, x);
            let nv = f.div(s1, 3);
            f.store(dst, i, nv);
        });
        f.ret(None);
    });
    let worker = pb.function("swim_worker", 1, |f| {
        let tid = f.param(0);
        let per = rows / t;
        let start = f.mul(tid, per);
        let end = f.add(start, per);
        let ua = u.raw() as i64;
        let va = v.raw() as i64;
        f.for_range(0, steps, |f, it| {
            let parity = f.rem(it, 2);
            let even = f.eq(parity, 0);
            let src = f.copy(va);
            let dst = f.copy(ua);
            f.if_then(even, |f| {
                f.assign(src, ua);
                f.assign(dst, va);
            });
            f.for_range(Operand::Reg(start), Operand::Reg(end), |f, r| {
                f.call_void(
                    step_row,
                    &[Operand::Reg(r), Operand::Reg(src), Operand::Reg(dst)],
                );
            });
            barrier.worker(f, tid);
        });
        f.ret(None);
    });
    let main = pb.function("main", 0, |f| {
        f.for_range(0, n, |f, i| {
            let x = f.rem(i, 13);
            f.store(u.raw() as i64, i, x);
        });
        run_pool(f, worker, t, steps, &barrier);
        f.ret(None);
    });
    let program = pb.finish(main).expect("swim");
    let focus = program.routine_by_name("swim_step_row");
    Workload {
        name: "swim".to_owned(),
        program,
        devices: Vec::new(),
        focus,
    }
}

/// `bt331`: block-tridiagonal solver shape — forward sweep over blocks,
/// each worker's block row depending on the previous row computed by a
/// different worker in the previous phase.
pub fn bt331(threads: u32, scale: u32) -> Workload {
    let t = threads.max(1) as i64;
    let block = 6i64;
    let block_rows = 2 * t * scale.max(1) as i64;
    let n = block * block_rows;
    let mut pb = ProgramBuilder::new();
    let x = pb.global(n as u64);
    let barrier = Barrier::new(&mut pb, t);

    // bt_solve_block(row): x[row] from x[row-1]'s block.
    let solve_block = pb.function("bt_solve_block", 1, |f| {
        let r = f.param(0);
        let base0 = f.mul(r, block);
        f.for_range(0, block, |f, c| {
            let i = f.add(base0, c);
            let pm = f.sub(i, block);
            let pi = f.max(pm, 0);
            let prev = f.load(x.raw() as i64, pi);
            let own = f.load(x.raw() as i64, i);
            let s = f.add(prev, own);
            let nv = f.rem(s, 100_003);
            f.store(x.raw() as i64, i, nv);
        });
        f.ret(None);
    });
    let worker = pb.function("bt_worker", 1, |f| {
        let tid = f.param(0);
        // wave over block rows: row r is handled by worker r % t, one
        // row per barrier phase.
        f.for_range(0, block_rows, |f, r| {
            let mine0 = f.rem(r, t);
            let mine = f.eq(mine0, tid);
            f.if_then(mine, |f| {
                f.call_void(solve_block, &[Operand::Reg(r)]);
            });
            barrier.worker(f, tid);
        });
        f.ret(None);
    });
    let main = pb.function("main", 0, |f| {
        f.for_range(0, n, |f, i| {
            let v = f.mul(i, 7);
            f.store(x.raw() as i64, i, v);
        });
        run_pool(f, worker, t, block_rows, &barrier);
        f.ret(None);
    });
    let program = pb.finish(main).expect("bt331");
    let focus = program.routine_by_name("bt_solve_block");
    Workload {
        name: "bt331".to_owned(),
        program,
        devices: Vec::new(),
        focus,
    }
}

/// `ilbdc`: lattice-Boltzmann-style streaming — each step propagates
/// cell populations to neighbour cells owned by other workers.
pub fn ilbdc(threads: u32, scale: u32) -> Workload {
    let t = threads.max(1) as i64;
    let per = 16 * scale.max(1) as i64;
    let n = per * t;
    let steps = 3i64;
    let mut pb = ProgramBuilder::new();
    let f_in = pb.global(n as u64);
    let f_out = pb.global(n as u64);
    let barrier = Barrier::new(&mut pb, t);

    // ilbdc_stream(i, src, dst): collide-and-stream for one site.
    let stream_site = pb.function("ilbdc_stream", 3, |f| {
        let i = f.param(0);
        let src = f.param(1);
        let dst = f.param(2);
        let here = f.load(src, i);
        let lm = f.sub(i, 1);
        let li = f.max(lm, 0);
        let left = f.load(src, li);
        let rm = f.add(i, 1);
        let ri = f.min(rm, n - 1);
        let right = f.load(src, ri);
        let s0 = f.add(left, right);
        let relaxed0 = f.add(s0, here);
        let relaxed = f.div(relaxed0, 3);
        // stream to the downstream site
        f.store(dst, ri, relaxed);
        f.ret(None);
    });
    let worker = pb.function("ilbdc_worker", 1, |f| {
        let tid = f.param(0);
        let start = f.mul(tid, per);
        let end = f.add(start, per);
        let a = f_in.raw() as i64;
        let b = f_out.raw() as i64;
        f.for_range(0, steps, |f, it| {
            let parity = f.rem(it, 2);
            let even = f.eq(parity, 0);
            let src = f.copy(b);
            let dst = f.copy(a);
            f.if_then(even, |f| {
                f.assign(src, a);
                f.assign(dst, b);
            });
            f.for_range(Operand::Reg(start), Operand::Reg(end), |f, i| {
                f.call_void(
                    stream_site,
                    &[Operand::Reg(i), Operand::Reg(src), Operand::Reg(dst)],
                );
            });
            barrier.worker(f, tid);
        });
        f.ret(None);
    });
    let main = pb.function("main", 0, |f| {
        f.for_range(0, n, |f, i| {
            let v = f.rem(i, 29);
            f.store(f_in.raw() as i64, i, v);
        });
        run_pool(f, worker, t, steps, &barrier);
        f.ret(None);
    });
    let program = pb.finish(main).expect("ilbdc");
    let focus = program.routine_by_name("ilbdc_stream");
    Workload {
        name: "ilbdc".to_owned(),
        program,
        devices: Vec::new(),
        focus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_core::{DrmsConfig, DrmsProfiler};
    use drms_vm::run_program;

    fn thread_vs_kernel(w: &Workload) -> (u64, u64) {
        let mut prof = DrmsProfiler::new(DrmsConfig::full());
        run_program(&w.program, w.run_config(), &mut prof)
            .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
        let rep = prof.into_report();
        let mut th = 0;
        let mut ke = 0;
        for (_, p) in rep.iter() {
            th += p.breakdown.thread_induced;
            ke += p.breakdown.kernel_induced;
        }
        (th, ke)
    }

    #[test]
    fn omp_benchmarks_are_thread_input_dominated() {
        // The paper's Figure 15: all OMP2012 benchmarks have thread input
        // above ~69% of their induced first-reads.
        for w in crate::spec_omp_suite(2, 1) {
            let (th, ke) = thread_vs_kernel(&w);
            let total = th + ke;
            assert!(total > 0, "{} has no induced first-reads", w.name);
            let frac = th as f64 / total as f64;
            assert!(
                frac > 0.6,
                "{}: thread fraction {frac:.2} not dominant ({th}/{total})",
                w.name
            );
        }
    }

    #[test]
    fn smithwa_wavefront_has_massive_thread_input() {
        let (th, ke) = thread_vs_kernel(&smithwa(2, 1));
        assert!(th > 5 * ke.max(1), "smithwa: {th} thread vs {ke} kernel");
    }

    #[test]
    fn persistent_workers_make_drms_exceed_rms() {
        // Workers re-read cells other threads rewrote in earlier phases,
        // within one long activation: Σdrms > Σrms (positive volume).
        for w in [nab(2, 1), md(2, 1), imagick(2, 1), smithwa(2, 1)] {
            let mut prof = DrmsProfiler::new(DrmsConfig::full());
            run_program(&w.program, w.run_config(), &mut prof).unwrap();
            let v = prof.into_report().dynamic_input_volume();
            assert!(v > 0.0, "{}: volume {v} should be positive", w.name);
        }
    }

    #[test]
    fn kdtree_queries_read_builder_written_nodes() {
        let w = kdtree(2, 1);
        let mut prof = DrmsProfiler::new(DrmsConfig::full());
        run_program(&w.program, w.run_config(), &mut prof).unwrap();
        let rep = prof.into_report();
        let q = rep.merged_routine(w.focus.unwrap());
        assert!(
            q.breakdown.thread_induced > 0,
            "tree nodes are thread input"
        );
        assert!(q.calls >= 20);
    }
}
