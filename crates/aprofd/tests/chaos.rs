//! Chaos and hardening suite for the daemon: disk-full shedding,
//! slow-loris and oversize-request defense, the connection cap, and
//! retention GC surviving restarts.
//!
//! The storage faults are injected through the same seeded
//! [`HostIo`] plans `aprofd --host-faults` accepts; the network abuse
//! is real sockets doing what a hostile or broken client would do.

use drms::trace::hostio::HostIo;
use drms_aprofd::client::Client;
use drms_aprofd::daemon::{serve, Daemon, DaemonConfig, DISK_FULL_RETRY_MS};
use drms_aprofd::spec::{job_id, JobSpec};
use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

const SPEC: &str = "tenant alice\nfamily stream\nsizes 4,6\nseeds 1,2\njobs 2\n";

fn state_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("drms-chaosd-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("state dir");
    dir
}

struct Server {
    daemon: Arc<Daemon>,
    addr: String,
    threads: Vec<JoinHandle<()>>,
}

fn start_with(cfg: DaemonConfig) -> Server {
    let daemon = Daemon::new(cfg).expect("daemon");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let mut threads = daemon.spawn_workers();
    let d = Arc::clone(&daemon);
    threads.push(std::thread::spawn(move || {
        serve(d, listener).expect("serve");
    }));
    Server {
        daemon,
        addr,
        threads,
    }
}

fn start(dir: &Path, workers: usize) -> Server {
    start_with(DaemonConfig {
        workers,
        ..DaemonConfig::new(dir.to_path_buf())
    })
}

impl Server {
    fn client(&self) -> Client {
        let mut c = Client::new(self.addr.clone());
        c.backoff_base_ms = 0;
        c
    }

    fn stop(self) {
        self.daemon.begin_drain();
        for t in self.threads {
            t.join().expect("daemon thread");
        }
    }
}

fn submit(server: &Server, spec: &str) -> String {
    let reply = server
        .client()
        .request("POST", "/jobs", spec)
        .expect("submit");
    assert_eq!(reply.status, 200, "{}", reply.body);
    reply.body.trim().to_string()
}

fn status_of(server: &Server, id: &str) -> (u16, String) {
    let reply = server
        .client()
        .request("GET", &format!("/jobs/{id}"), "")
        .expect("status");
    (reply.status, reply.body)
}

fn wait_done(server: &Server, id: &str) {
    for _ in 0..600 {
        let (code, body) = status_of(server, id);
        assert_eq!(code, 200, "{body}");
        match body.lines().find_map(|l| l.strip_prefix("state ")) {
            Some("done") => return,
            Some("failed") => panic!("job failed:\n{body}"),
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    panic!("job {id} never finished");
}

/// Raw-socket round trip: send `request` bytes, read until the server
/// closes, return the whole response text.
fn raw(addr: &str, request: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(request).expect("send");
    let mut out = String::new();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let _ = s.read_to_string(&mut out);
    out
}

/// Disk-full: the spec persist fails typed, the daemon sheds 507 with
/// the deterministic retry hint, the queue slot comes back, the counter
/// holds (the retry mints the *same* id), and the queue survives a
/// restart.
#[test]
fn disk_full_sheds_507_and_the_retried_submission_mints_the_same_id() {
    let dir = state_dir("disk-full");
    // The first temp-file creation (= the first submission's spec
    // persist) hits ENOSPC; everything after succeeds.
    let s = start_with(DaemonConfig {
        workers: 0,
        host_io: HostIo::from_spec("create:enospc:once=1").expect("plan"),
        ..DaemonConfig::new(dir.clone())
    });
    let mut one_shot = s.client();
    one_shot.attempts = 1;
    match one_shot.request("POST", "/jobs", SPEC) {
        Err(drms_aprofd::client::ClientError::Shed(reply)) => {
            assert_eq!(reply.status, 507, "{}", reply.body);
            assert_eq!(reply.retry_after_ms, Some(DISK_FULL_RETRY_MS));
            assert!(
                reply.body.contains("state disk unavailable"),
                "{}",
                reply.body
            );
            assert!(reply.body.contains("injected host fault"), "{}", reply.body);
        }
        other => panic!("expected a 507 shed, got {other:?}"),
    }
    // Nothing half-written, no phantom queue entry.
    let health = s.client().request("GET", "/healthz", "").expect("health");
    assert!(health.body.contains("queued 0"), "{}", health.body);

    // Space "returns" (the once-fault is spent): the retry succeeds and
    // the id is the one the first attempt would have produced — the
    // counter did not advance past the failed persist.
    let id = submit(&s, SPEC);
    assert_eq!(id, job_id(&JobSpec::parse(SPEC).unwrap(), 1));
    s.stop();

    // The admitted job was durable despite the earlier fault: a clean
    // restart still has it queued.
    let s2 = start(&dir, 0);
    let (code, body) = status_of(&s2, &id);
    assert_eq!(code, 200, "{body}");
    assert!(body.contains("state queued"), "{body}");
    s2.stop();
}

/// Slow loris: a client that sends half a request line and stalls gets
/// a typed 408 when the read deadline expires — and the daemon stays
/// responsive to honest clients throughout.
#[test]
fn slow_loris_gets_a_408_and_the_daemon_stays_responsive() {
    let dir = state_dir("loris");
    let s = start_with(DaemonConfig {
        workers: 0,
        read_timeout: Duration::from_millis(300),
        ..DaemonConfig::new(dir)
    });

    let mut loris = TcpStream::connect(&s.addr).expect("connect");
    loris.write_all(b"GET /heal").expect("partial request");

    // While the loris stalls, an honest health check still answers.
    let health = s.client().request("GET", "/healthz", "").expect("health");
    assert_eq!(health.status, 200);

    let mut out = String::new();
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let _ = loris.read_to_string(&mut out);
    assert!(out.starts_with("HTTP/1.1 408"), "got: {out:?}");
    assert!(out.contains("read deadline expired"), "got: {out:?}");

    let metrics = s.client().request("GET", "/metrics", "").expect("metrics");
    assert!(
        metrics.body.contains("aprofd_http_timeouts 1"),
        "{}",
        metrics.body
    );
    s.stop();
}

/// Oversized requests are refused typed (413), not buffered: a giant
/// header line, too many headers, and an oversized body are all caps.
#[test]
fn oversized_requests_are_refused_with_413() {
    let dir = state_dir("toolarge");
    let s = start(&dir, 0);

    let giant_header = format!(
        "GET /healthz HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
        "a".repeat(8 * 1024)
    );
    let out = raw(&s.addr, giant_header.as_bytes());
    assert!(out.starts_with("HTTP/1.1 413"), "got: {out:?}");

    let giant_body = format!(
        "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        10 * 1024 * 1024
    );
    let out = raw(&s.addr, giant_body.as_bytes());
    assert!(out.starts_with("HTTP/1.1 413"), "got: {out:?}");

    let metrics = s.client().request("GET", "/metrics", "").expect("metrics");
    assert!(
        metrics.body.contains("aprofd_http_too_large 2"),
        "{}",
        metrics.body
    );
    s.stop();
}

/// The connection cap sheds excess connections at the door with a 503
/// instead of spawning unbounded handler threads.
#[test]
fn connection_cap_sheds_excess_connections_with_503() {
    let dir = state_dir("conncap");
    let s = start_with(DaemonConfig {
        workers: 0,
        max_connections: 1,
        read_timeout: Duration::from_secs(5),
        ..DaemonConfig::new(dir)
    });

    // Occupy the only slot with a connection that never completes its
    // request (its handler blocks in the read until the deadline).
    let mut hog = TcpStream::connect(&s.addr).expect("connect");
    hog.write_all(b"GET /heal").expect("partial request");
    // Let the accept loop register the hog before probing the cap.
    std::thread::sleep(Duration::from_millis(200));

    let out = raw(&s.addr, b"GET /healthz HTTP/1.1\r\n\r\n");
    assert!(out.starts_with("HTTP/1.1 503"), "got: {out:?}");
    assert!(out.contains("connection limit"), "got: {out:?}");
    assert!(out.contains("X-Retry-After-Ms: 250"), "got: {out:?}");
    drop(hog);

    // The slot frees once the hog is gone; honest requests flow again.
    let health = s.client().request("GET", "/healthz", "").expect("health");
    assert_eq!(health.status, 200);
    let metrics = s.client().request("GET", "/metrics", "").expect("metrics");
    assert!(
        metrics.body.contains("aprofd_http_conn_refused"),
        "{}",
        metrics.body
    );
    s.stop();
}

/// Regression for the slot leak: a handler that panics mid-request
/// must return its `max_connections` slot (the drop guard runs during
/// unwind) and be counted — with a cap of one, three consecutive
/// panics would wedge the daemon forever if any slot leaked.
#[test]
fn a_panicking_handler_returns_its_slot_and_is_counted() {
    let dir = state_dir("panic");
    let s = start_with(DaemonConfig {
        workers: 0,
        max_connections: 1,
        debug_endpoints: true,
        ..DaemonConfig::new(dir)
    });
    for round in 1..=3 {
        let out = raw(&s.addr, b"GET /debug/panic HTTP/1.1\r\n\r\n");
        assert_eq!(
            out, "",
            "a panicked handler answers nothing (round {round})"
        );
        // The freed slot must serve the very next connection. The
        // client absorbs the tiny window between socket close and the
        // guard's drop by honoring the 503's retry hint.
        let health = s.client().request("GET", "/healthz", "").expect("health");
        assert_eq!(health.status, 200, "round {round}: {}", health.body);
    }
    let metrics = s.client().request("GET", "/metrics", "").expect("metrics");
    assert!(
        metrics.body.contains("aprofd_http_handler_panics 3"),
        "{}",
        metrics.body
    );
    s.stop();
}

/// The `Threads:` line of `/proc/self/status` — the whole test
/// process, which is fine: we only assert the *delta* across churn.
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("proc status")
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads line")
        .trim()
        .parse()
        .expect("thread count")
}

/// The io-thread pool keeps the thread count flat: forty short-lived
/// connections must not grow the process by even one thread (the old
/// design spawned one per connection).
#[test]
fn the_io_pool_keeps_thread_count_flat_under_connection_churn() {
    let dir = state_dir("threads");
    let s = start_with(DaemonConfig {
        workers: 0,
        io_threads: 2,
        ..DaemonConfig::new(dir)
    });
    // Warm the pool so its threads are in the baseline.
    let health = s.client().request("GET", "/healthz", "").expect("health");
    assert_eq!(health.status, 200);
    let before = thread_count();
    for _ in 0..40 {
        let out = raw(
            &s.addr,
            b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(out.starts_with("HTTP/1.1 200"), "got: {out:?}");
    }
    let after = thread_count();
    assert!(
        after <= before + 2,
        "connection churn grew the thread count: {before} -> {after}"
    );
    // And the chaos endpoint is gated: without `debug_endpoints` it
    // does not exist.
    let out = raw(&s.addr, b"GET /debug/panic HTTP/1.1\r\n\r\n");
    assert!(out.starts_with("HTTP/1.1 404"), "got: {out:?}");
    s.stop();
}

/// Reads one `Content-Length`-framed response off a keep-alive
/// connection: status line, headers, exactly `Content-Length` body
/// bytes — leaving the stream positioned at the next response.
fn read_framed(reader: &mut std::io::BufReader<TcpStream>) -> (String, String, String) {
    use std::io::BufRead as _;
    let mut status = String::new();
    reader.read_line(&mut status).expect("status line");
    let mut headers = String::new();
    let mut len = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        if line.trim_end().is_empty() {
            break;
        }
        let lower = line.to_ascii_lowercase();
        if let Some(v) = lower.trim_end().strip_prefix("content-length:") {
            len = v.trim().parse().expect("content length");
        }
        headers.push_str(&line);
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).expect("body");
    (status, headers, String::from_utf8(body).expect("utf8 body"))
}

/// Keep-alive soak: one raw connection serves many sequential requests
/// under a connection cap of one — proof the daemon stays fully
/// responsive through a single persistent socket — and `Connection:
/// close` ends it on request.
#[test]
fn one_keep_alive_connection_serves_many_requests_under_the_cap() {
    let dir = state_dir("keepalive");
    let s = start_with(DaemonConfig {
        workers: 0,
        max_connections: 1,
        ..DaemonConfig::new(dir)
    });

    let stream = TcpStream::connect(&s.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = std::io::BufReader::new(stream);
    for i in 0..50 {
        writer
            .write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
            .expect("send");
        let (status, headers, body) = read_framed(&mut reader);
        assert!(status.starts_with("HTTP/1.1 200"), "req {i}: {status:?}");
        assert!(
            headers
                .to_ascii_lowercase()
                .contains("connection: keep-alive"),
            "req {i}: {headers:?}"
        );
        assert!(body.starts_with("ok\n"), "req {i}: {body:?}");
    }
    // An explicit close is honored: the reply says so and the server
    // hangs up after it.
    writer
        .write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        .expect("send");
    let (status, headers, _) = read_framed(&mut reader);
    assert!(status.starts_with("HTTP/1.1 200"), "{status:?}");
    assert!(
        headers.to_ascii_lowercase().contains("connection: close"),
        "{headers:?}"
    );
    let mut rest = String::new();
    let _ = reader.read_to_string(&mut rest);
    assert_eq!(rest, "", "the server must close after Connection: close");
    s.stop();
}

/// Retention GC: finished jobs beyond `retain_count` are tombstoned and
/// pruned, stay gone across a restart (the startup scan honors the
/// tombstone journal), the submission counter continues past pruned
/// jobs, and an age-based policy prunes the rest at startup.
#[test]
fn gc_pruned_jobs_stay_gone_across_restart_and_the_counter_advances() {
    let dir = state_dir("gc");
    let s = start_with(DaemonConfig {
        workers: 1,
        retain_count: Some(1),
        ..DaemonConfig::new(dir.clone())
    });
    let id1 = submit(&s, SPEC);
    wait_done(&s, &id1);
    let id2 = submit(&s, SPEC);
    wait_done(&s, &id2);
    let id3 = submit(&s, SPEC);
    wait_done(&s, &id3);
    assert_ne!(id1, id2);
    assert_ne!(id2, id3);

    // retain_count = 1: after the third finishes, the two oldest are
    // tombstoned + pruned.
    let (code, body) = status_of(&s, &id1);
    assert_eq!(code, 404, "{body}");
    let (code, body) = status_of(&s, &id2);
    assert_eq!(code, 404, "{body}");
    let (code, _) = status_of(&s, &id3);
    assert_eq!(code, 200);
    let metrics = s.client().request("GET", "/metrics", "").expect("metrics");
    assert!(
        metrics.body.contains("aprofd_jobs_gc_pruned 2"),
        "{}",
        metrics.body
    );
    s.stop();
    assert!(
        !dir.join(format!("job-{id1}.spec")).exists(),
        "pruned job files must be deleted"
    );
    assert!(dir.join("gc.tombstones").exists());

    // Restart: the tombstones keep the pruned jobs gone, and the
    // counter continues past them — a fresh submission of the same spec
    // mints a *new* id, never a pruned one.
    let s2 = start(&dir, 0);
    let (code, _) = status_of(&s2, &id1);
    assert_eq!(code, 404, "pruned jobs must not resurrect on restart");
    let (code, _) = status_of(&s2, &id3);
    assert_eq!(code, 200, "retained jobs survive the restart");
    let id4 = submit(&s2, SPEC);
    assert_eq!(id4, job_id(&JobSpec::parse(SPEC).unwrap(), 4));
    for old in [&id1, &id2, &id3] {
        assert_ne!(&id4, old, "the counter re-minted a pruned or live id");
    }
    s2.stop();

    // Age-based retention at startup: with retain_age = 0 every
    // finished job is immediately out of policy and pruned by the
    // startup GC pass.
    let s3 = start_with(DaemonConfig {
        workers: 0,
        retain_age: Some(Duration::from_millis(0)),
        ..DaemonConfig::new(dir.clone())
    });
    let (code, _) = status_of(&s3, &id3);
    assert_eq!(code, 404, "age-expired jobs are pruned at startup");
    s3.stop();
}

/// `trace_dir on`: the job spills per-cell trace shards under
/// `job-<id>.shards/`, the shards replay offline into a clean drms
/// report, and retention GC removes the shard directory with the rest
/// of the job's files.
#[test]
fn trace_shards_are_retained_as_artifacts_and_gc_removes_them() {
    let dir = state_dir("trace-shards");
    let s = start_with(DaemonConfig {
        workers: 1,
        retain_count: Some(1),
        ..DaemonConfig::new(dir.clone())
    });
    const TRACED: &str = "tenant alice\nfamily stream\nsizes 4\nseeds 1\ntrace_dir on\n";
    let id = submit(&s, TRACED);
    wait_done(&s, &id);

    let shards = dir.join(format!("job-{id}.shards"));
    assert!(shards.is_dir(), "traced job leaves a shard directory");
    let cell = shards.join("cell-stream-4-1");
    assert!(cell.is_dir(), "one spill directory per sweep cell");
    assert!(cell.join("MANIFEST").exists());

    // The spilled stream replays offline into a complete profile.
    let set = drms::trace::ShardSet::load(&cell, 2).expect("load shards");
    assert_eq!(set.dropped, 0, "clean shards salvage everything");
    assert!(set.total > 0);
    let mut prof = drms::core::DrmsProfiler::new(drms::core::DrmsConfig::full());
    drms::vm::replay_shards_into(&set, &mut prof);
    assert!(!prof.report().is_empty());

    // retain_count = 1: the next finished job pushes this one out of
    // policy, and the GC removes the shard directory too.
    let id2 = submit(&s, SPEC);
    wait_done(&s, &id2);
    let (code, _) = status_of(&s, &id);
    assert_eq!(code, 404, "traced job is pruned");
    assert!(
        !shards.exists(),
        "GC must remove the shard directory with the job"
    );
    s.stop();
}
