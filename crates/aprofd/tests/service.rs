//! End-to-end service tests: an in-process daemon (the same `serve`
//! loop and worker pool the `aprofd` binary runs) exercised over real
//! sockets by the same retrying `Client` that backs `aprofctl`.

use drms_aprofd::client::Client;
use drms_aprofd::daemon::{serve, Daemon, DaemonConfig, JobState};
use drms_aprofd::queue::QueueConfig;
use drms_aprofd::spec::{job_id, JobSpec};
use drms_bench::supervisor::{run_supervised_with, JournalWriter};
use drms_bench::sweep::{FamilyBench, SweepBench};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

fn state_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("drms-aprofd-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("state dir");
    dir
}

/// One running in-process daemon: the worker pool plus the accept loop,
/// reachable at `addr`. `stop` drains and joins everything.
struct Server {
    daemon: Arc<Daemon>,
    addr: String,
    threads: Vec<JoinHandle<()>>,
}

fn start(dir: &Path, workers: usize, queue: QueueConfig) -> Server {
    let daemon = Daemon::new(DaemonConfig {
        workers,
        queue,
        ..DaemonConfig::new(dir.to_path_buf())
    })
    .expect("daemon");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let mut threads = daemon.spawn_workers();
    let d = Arc::clone(&daemon);
    threads.push(std::thread::spawn(move || {
        serve(d, listener).expect("serve");
    }));
    Server {
        daemon,
        addr,
        threads,
    }
}

impl Server {
    fn client(&self) -> Client {
        let mut c = Client::new(self.addr.clone());
        c.backoff_base_ms = 0; // tests never sleep on transport blips
        c
    }

    fn stop(self) {
        self.daemon.begin_drain();
        for t in self.threads {
            t.join().expect("daemon thread");
        }
    }
}

const SPEC: &str = "tenant alice\nfamily stream\nsizes 4,6\nseeds 1,2\njobs 2\n";

fn submit(server: &Server, spec: &str) -> String {
    let reply = server
        .client()
        .request("POST", "/jobs", spec)
        .expect("submit");
    assert_eq!(reply.status, 200, "{}", reply.body);
    reply.body.trim().to_string()
}

fn wait_done(server: &Server, id: &str) -> String {
    let client = server.client();
    for _ in 0..600 {
        let reply = client
            .request("GET", &format!("/jobs/{id}"), "")
            .expect("status");
        assert_eq!(reply.status, 200, "{}", reply.body);
        let state = reply
            .body
            .lines()
            .find_map(|l| l.strip_prefix("state "))
            .expect("state line")
            .to_string();
        match state.as_str() {
            "done" => return reply.body,
            "failed" => panic!("job failed:\n{}", reply.body),
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    panic!("job {id} never finished");
}

/// The bench artifact an uninterrupted daemon run must match: the same
/// spec run directly through the supervisor, journal and all.
fn direct_bench(dir: &Path, spec_text: &str) -> String {
    let spec = JobSpec::parse(spec_text).expect("spec");
    let mut writer = JournalWriter::create(&dir.join("direct.journal")).expect("journal");
    let result = run_supervised_with(
        &spec.sweep_spec(),
        &spec.supervisor_options(),
        Some(&mut writer),
        &drms_bench::supervisor::profile_cell,
    );
    SweepBench {
        jobs: spec.jobs,
        resumed: false,
        families: vec![FamilyBench::from_resumed(result)],
    }
    .to_json()
}

#[test]
fn job_ids_are_deterministic_across_daemon_generations() {
    let dir_a = state_dir("ids-a");
    let dir_b = state_dir("ids-b");
    let a = start(&dir_a, 0, QueueConfig::default());
    let b = start(&dir_b, 0, QueueConfig::default());
    let id_a = submit(&a, SPEC);
    let id_b = submit(&b, SPEC);
    assert_eq!(id_a, id_b, "same spec, same counter, same id");
    assert_eq!(
        id_a,
        job_id(&JobSpec::parse(SPEC).unwrap(), 1),
        "the id is the documented FNV-1a derivation"
    );
    // A second submission of the same spec gets a distinct, still
    // deterministic id: the counter is part of the key.
    let id_a2 = submit(&a, SPEC);
    let id_b2 = submit(&b, SPEC);
    assert_ne!(id_a, id_a2);
    assert_eq!(id_a2, id_b2);
    a.stop();
    b.stop();
}

#[test]
fn zero_budgets_are_rejected_with_a_400() {
    let dir = state_dir("reject");
    let s = start(&dir, 0, QueueConfig::default());
    for bad in [
        "family stream\nsizes 4\ndeadline_ms 0\n",
        "family stream\nsizes 4\nmax_attempts 0\n",
    ] {
        let reply = s.client().request("POST", "/jobs", bad).expect("reply");
        assert_eq!(reply.status, 400, "{}", reply.body);
        assert!(reply.body.contains("rejected"), "{}", reply.body);
    }
    // Nothing was persisted for rejected specs.
    assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
    s.stop();
}

#[test]
fn a_submitted_job_runs_to_the_same_artifact_as_a_direct_sweep() {
    let dir = state_dir("run");
    let s = start(&dir, 2, QueueConfig::default());
    let id = submit(&s, SPEC);
    let status = wait_done(&s, id.as_str());
    assert!(status.contains("cells 4/4"), "{status}");
    assert!(status.contains("fingerprint "), "{status}");

    let bench = std::fs::read_to_string(dir.join(format!("job-{id}.bench.json"))).unwrap();
    assert_eq!(
        bench,
        direct_bench(&dir, SPEC),
        "daemon adds nothing to the artifact"
    );

    // The finished report artifact serves over HTTP, and per-job
    // metrics stream as Prometheus text without a merge error.
    let report = s
        .client()
        .request("GET", &format!("/jobs/{id}/report"), "")
        .expect("report");
    assert_eq!(report.status, 200);
    assert!(
        report.body.contains("## cell family=stream"),
        "{}",
        report.body
    );
    let metrics = s
        .client()
        .request("GET", &format!("/jobs/{id}/metrics"), "")
        .expect("metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics.body.contains("drms_"), "{}", metrics.body);
    s.stop();
}

#[test]
fn full_queue_sheds_with_a_typed_retry_after() {
    let dir = state_dir("shed");
    let s = start(
        &dir,
        0, // admit-only: queued jobs never drain, so the cap is reachable
        QueueConfig {
            capacity: 2,
            ..QueueConfig::default()
        },
    );
    submit(&s, SPEC);
    submit(&s, SPEC);
    let mut one_shot = s.client();
    one_shot.attempts = 1;
    match one_shot.request("POST", "/jobs", SPEC) {
        Err(drms_aprofd::client::ClientError::Shed(reply)) => {
            assert_eq!(reply.status, 429);
            assert_eq!(reply.retry_after_ms, Some(500), "deterministic hint");
            assert!(reply.body.contains("queue full"), "{}", reply.body);
        }
        other => panic!("expected a shed, got {other:?}"),
    }
    // The shed submission left no trace; the health lines still show
    // exactly the two admitted jobs.
    let health = s.client().request("GET", "/healthz", "").expect("health");
    assert!(health.body.contains("queued 2"), "{}", health.body);
    s.stop();
}

#[test]
fn tenant_quota_sheds_only_the_noisy_tenant() {
    let dir = state_dir("tenant");
    let s = start(
        &dir,
        0,
        QueueConfig {
            capacity: 64,
            tenant_queued_cap: 1,
            ..QueueConfig::default()
        },
    );
    submit(&s, SPEC);
    let mut one_shot = s.client();
    one_shot.attempts = 1;
    match one_shot.request("POST", "/jobs", SPEC) {
        Err(drms_aprofd::client::ClientError::Shed(reply)) => {
            assert_eq!(reply.status, 429);
            assert!(reply.body.contains("tenant quota"), "{}", reply.body);
        }
        other => panic!("expected a tenant shed, got {other:?}"),
    }
    let quiet = SPEC.replace("tenant alice", "tenant bob");
    submit(&s, &quiet);
    s.stop();
}

#[test]
fn draining_refuses_submissions_but_finishes_the_queue_on_restart() {
    let dir = state_dir("drain");
    let s = start(&dir, 0, QueueConfig::default());
    let id = submit(&s, SPEC);
    // With no workers the drain completes the moment it begins (no job
    // mid-run) and the listener closes, so probe the refusal at the
    // handler — the same code path a connection would hit mid-drain.
    s.daemon.begin_drain();
    let refusal = s.daemon.handle(&drms_aprofd::http::Request {
        method: "POST".into(),
        path: "/jobs".into(),
        query: String::new(),
        body: SPEC.into(),
        close: false,
    });
    assert_eq!(refusal.status, 503);
    assert_eq!(refusal.retry_after_ms, Some(1000));
    assert!(refusal.body.contains("draining"), "{}", refusal.body);
    s.stop();

    // The queued job survived the drain on disk; a restarted daemon
    // (with workers this time) runs it without resubmission.
    let s2 = start(&dir, 2, QueueConfig::default());
    wait_done(&s2, id.as_str());
    s2.stop();
}

/// The crash path, in-process: a job's journal is torn mid-record (as a
/// `kill -9` mid-append leaves it), the daemon restarts, and the
/// resumed run must produce byte-identical artifacts to an
/// uninterrupted one.
#[test]
fn restart_resumes_a_torn_journal_to_identical_artifacts() {
    let baseline_dir = state_dir("resume-baseline");
    let crashed_dir = state_dir("resume-crashed");

    // Uninterrupted daemon run: the artifact to match.
    let s = start(&baseline_dir, 1, QueueConfig::default());
    let id = submit(&s, SPEC);
    wait_done(&s, id.as_str());
    s.stop();
    let baseline_bench =
        std::fs::read_to_string(baseline_dir.join(format!("job-{id}.bench.json"))).unwrap();
    let baseline_metrics =
        std::fs::read_to_string(baseline_dir.join(format!("job-{id}.metrics.json"))).unwrap();

    // "Crashed" state: the durable spec plus a journal torn mid-record.
    // (Deterministic job IDs make the two state dirs line up by path.)
    std::fs::copy(
        baseline_dir.join(format!("job-{id}.spec")),
        crashed_dir.join(format!("job-{id}.spec")),
    )
    .unwrap();
    let full = std::fs::read_to_string(baseline_dir.join(format!("job-{id}.journal"))).unwrap();
    assert!(full.len() > 40, "journal has content to tear");
    std::fs::write(
        crashed_dir.join(format!("job-{id}.journal")),
        &full[..full.len() - 23],
    )
    .unwrap();

    // Restart over the crashed state: the job is restored (not
    // resubmitted), resumed, and finishes to the same bytes.
    let s2 = start(&crashed_dir, 1, QueueConfig::default());
    let status = wait_done(&s2, id.as_str());
    assert!(status.contains("resumed 1"), "{status}");
    let health = s2.client().request("GET", "/healthz", "").expect("health");
    assert!(health.body.contains("done 1"), "{}", health.body);
    s2.stop();

    let resumed_bench =
        std::fs::read_to_string(crashed_dir.join(format!("job-{id}.bench.json"))).unwrap();
    let resumed_metrics =
        std::fs::read_to_string(crashed_dir.join(format!("job-{id}.metrics.json"))).unwrap();
    assert_eq!(resumed_bench, baseline_bench, "bench artifact diverged");
    assert_eq!(
        resumed_metrics, baseline_metrics,
        "metrics artifact diverged"
    );
}

#[test]
fn live_jobs_serve_snapshot_and_delta_reports_from_the_journal() {
    let dir = state_dir("live");
    // workers = 0: the job stays queued, so "live" views must cope with
    // an empty journal, then with a finished one after a restart.
    let s = start(&dir, 0, QueueConfig::default());
    let id = submit(&s, SPEC);
    let snap = s
        .client()
        .request("GET", &format!("/jobs/{id}/report"), "")
        .expect("snapshot");
    assert_eq!(snap.status, 200);
    assert!(snap.body.contains("cursor 0"), "{}", snap.body);
    assert!(snap.body.contains("snapshot stream: 0/4"), "{}", snap.body);
    s.stop();

    let s2 = start(&dir, 1, QueueConfig::default());
    wait_done(&s2, id.as_str());
    let delta = s2
        .client()
        .request("GET", &format!("/jobs/{id}/report?since=3"), "")
        .expect("delta");
    assert_eq!(delta.status, 200);
    assert!(delta.body.contains("cursor 4"), "{}", delta.body);
    assert_eq!(
        delta
            .body
            .lines()
            .filter(|l| l.starts_with("cell "))
            .count(),
        1,
        "delta serves only the cells past the cursor:\n{}",
        delta.body
    );
    s2.stop();
}

/// The tentpole end-to-end: a one-worker daemon running a low-priority
/// sweep gets a high-priority job. The running job must yield at its
/// next grid-cell boundary, the high job must finish first, and the
/// preempted job — resumed from its own journal — must still produce
/// artifacts byte-identical to an uninterrupted run.
#[test]
fn a_high_priority_job_preempts_and_the_yielded_job_resumes_identically() {
    let dir = state_dir("preempt");
    // Enough cells that the low job is still mid-grid when the high
    // one arrives: 5 sizes x 4 seeds = 20 cell boundaries to yield at.
    let low_spec = "tenant alice\nfamily stream\nsizes 256,384,512,640,768\n\
                    seeds 1,2,3,4\njobs 1\npriority 0\n";
    let high_spec = "tenant bob\nfamily stream\nsizes 4\nseeds 1\njobs 1\npriority 9\n";

    let s = start(&dir, 1, QueueConfig::default());
    let low = submit(&s, low_spec);
    // Wait until the low job is actually on the worker.
    let client = s.client();
    for i in 0.. {
        let body = client
            .request("GET", &format!("/jobs/{low}"), "")
            .expect("status")
            .body;
        match body.lines().find_map(|l| l.strip_prefix("state ")) {
            Some("running") => break,
            Some("done") => panic!("low job finished before the high one could preempt"),
            _ if i > 2000 => panic!("low job never started:\n{body}"),
            _ => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    let high = submit(&s, high_spec);

    // Record which job reaches `done` first.
    let mut first_done = None;
    for i in 0.. {
        for id in [&high, &low] {
            let body = client
                .request("GET", &format!("/jobs/{id}"), "")
                .expect("status")
                .body;
            match body.lines().find_map(|l| l.strip_prefix("state ")) {
                Some("done") => {
                    first_done.get_or_insert_with(|| id.to_string());
                }
                Some("failed") => panic!("job {id} failed:\n{body}"),
                _ => {}
            }
        }
        if first_done.is_some() {
            break;
        }
        assert!(i < 6000, "neither job finished");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        first_done.as_deref(),
        Some(high.as_str()),
        "the high-priority job must finish before the preempted sweep"
    );
    let low_status = wait_done(&s, low.as_str());
    assert!(
        low_status.contains("resumed 1"),
        "the preempted job re-dispatches through the resume path:\n{low_status}"
    );

    // The preemption itself is observable and counted.
    let metrics = client.request("GET", "/metrics", "").expect("metrics").body;
    let counter = |name: &str| {
        metrics
            .lines()
            .find_map(|l| l.strip_prefix(name))
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(0)
    };
    assert!(
        counter("drms_aprofd_jobs_preempt_signals ") >= 1,
        "no preempt signal was raised:\n{metrics}"
    );
    assert!(
        counter("drms_aprofd_jobs_preempted ") >= 1,
        "the low job never yielded:\n{metrics}"
    );
    s.stop();

    // Byte-identity: the preempted-then-resumed artifact matches the
    // same spec swept directly, journal checkpoint and all.
    let bench = std::fs::read_to_string(dir.join(format!("job-{low}.bench.json"))).unwrap();
    assert_eq!(
        bench,
        direct_bench(&dir, low_spec),
        "preemption must not change the artifact"
    );
}

/// The `/jobs/ID/events` long-poll: a queued job's poll parks until the
/// daemon's poll timeout, and a finished job answers immediately with
/// every cell past the cursor plus its terminal state.
#[test]
fn events_long_poll_parks_then_streams_cells_past_the_cursor() {
    let dir = state_dir("events");
    let daemon = Daemon::new(DaemonConfig {
        workers: 0,
        poll_timeout: Duration::from_millis(120),
        ..DaemonConfig::new(dir.clone())
    })
    .expect("daemon");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let mut threads = daemon.spawn_workers();
    let d = Arc::clone(&daemon);
    threads.push(std::thread::spawn(move || {
        serve(d, listener).expect("serve");
    }));
    let s = Server {
        daemon,
        addr,
        threads,
    };

    let id = submit(&s, SPEC);
    // No workers: the poll has nothing to report and must park until
    // the configured timeout, then answer with an unchanged cursor.
    let t0 = std::time::Instant::now();
    let reply = s
        .client()
        .request("GET", &format!("/jobs/{id}/events?since=0"), "")
        .expect("events");
    assert!(
        t0.elapsed() >= Duration::from_millis(100),
        "the poll answered without parking"
    );
    assert_eq!(reply.status, 200);
    assert!(reply.body.contains("cursor 0"), "{}", reply.body);
    assert!(reply.body.contains("state queued"), "{}", reply.body);
    assert!(
        s.client()
            .request("GET", "/jobs/nope/events", "")
            .expect("missing")
            .status
            == 404,
        "unknown jobs 404"
    );
    s.stop();

    // Restart with a worker: once the job finishes, the poll answers
    // immediately with all four cells, and a cursor-advanced poll
    // serves only the tail.
    let s2 = start(&dir, 1, QueueConfig::default());
    wait_done(&s2, id.as_str());
    let full = s2
        .client()
        .request("GET", &format!("/jobs/{id}/events?since=0"), "")
        .expect("events");
    assert!(full.body.contains("cursor 4"), "{}", full.body);
    assert!(full.body.contains("state done"), "{}", full.body);
    assert_eq!(
        full.body.lines().filter(|l| l.starts_with("cell ")).count(),
        4,
        "{}",
        full.body
    );
    let tail = s2
        .client()
        .request("GET", &format!("/jobs/{id}/events?since=3"), "")
        .expect("events");
    assert_eq!(
        tail.body.lines().filter(|l| l.starts_with("cell ")).count(),
        1,
        "the cursor skips already-delivered cells:\n{}",
        tail.body
    );
    s2.stop();
}

#[test]
fn restored_entries_report_their_state_without_a_network_restart() {
    // Pure store-level check of Daemon::new's scan: done markers load
    // as records, unfinished specs re-queue.
    let dir = state_dir("scan");
    let s = start(&dir, 1, QueueConfig::default());
    let done_id = submit(&s, SPEC);
    wait_done(&s, done_id.as_str());
    s.stop();

    let queued_spec = SPEC.replace("tenant alice", "tenant carol");
    let s2 = start(&dir, 0, QueueConfig::default());
    let queued_id = submit(&s2, &queued_spec);
    s2.stop();

    let d = Daemon::new(DaemonConfig {
        workers: 0,
        ..DaemonConfig::new(dir.clone())
    })
    .expect("daemon");
    let status = |id: &str| {
        d.handle(&drms_aprofd::http::Request {
            method: "GET".into(),
            path: format!("/jobs/{id}"),
            query: String::new(),
            body: String::new(),
            close: false,
        })
    };
    assert!(status(&done_id).body.contains("state done"));
    assert!(
        status(&done_id).body.contains("fingerprint "),
        "done summaries reload from the marker"
    );
    assert!(status(&queued_id).body.contains("state queued"));
    assert_eq!(
        JobState::Queued.as_str(),
        "queued",
        "state names are part of the wire format"
    );
}
