//! The retrying client `aprofctl` is built on.
//!
//! Retry discipline mirrors the supervisor's: exponential backoff with
//! **seeded FNV-1a jitter** — deterministic for a given (address,
//! request, attempt), so a fleet of clients spreads out without any
//! wall-clock or RNG seed, and a replayed script sleeps the same
//! milliseconds every time. When the server sheds with an
//! `X-Retry-After-Ms` hint, the client honors the hint (plus its own
//! jitter) instead of its blind schedule — back-pressure is
//! server-shaped, thundering-herd-avoidance is client-shaped.

use crate::http::{roundtrip, Reply};
use drms::sched::fnv1a;
use std::time::Duration;

/// A retrying client for one daemon address.
#[derive(Clone, Debug)]
pub struct Client {
    /// Daemon address (`host:port`).
    pub addr: String,
    /// Total attempts per request (minimum 1).
    pub attempts: u32,
    /// Base backoff before the second attempt, in milliseconds.
    pub backoff_base_ms: u64,
    /// Upper bound on any single backoff sleep, in milliseconds.
    pub backoff_cap_ms: u64,
    /// Per-request I/O timeout.
    pub timeout: Duration,
}

/// Terminal outcome of a retried request.
#[derive(Clone, Debug)]
pub enum ClientError {
    /// Every attempt was shed; the last reply carries the final hint.
    Shed(Reply),
    /// Every attempt blew the per-request socket deadline — the daemon
    /// is hung or unreachable-but-accepting; distinct from [`Io`] so
    /// `aprofctl` can exit with the timeout code instead of wedging.
    ///
    /// [`Io`]: ClientError::Io
    Timeout(String),
    /// Every attempt failed at the transport (connect/framing).
    Io(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Shed(r) => {
                write!(
                    f,
                    "shed after retries (status {}): {}",
                    r.status,
                    r.body.trim_end()
                )
            }
            ClientError::Timeout(e) => {
                write!(f, "request deadline expired after retries: {e}")
            }
            ClientError::Io(e) => write!(f, "transport failed after retries: {e}"),
        }
    }
}

/// Whether a transport error is the socket deadline expiring (reported
/// as `WouldBlock` or `TimedOut` depending on platform).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

impl std::error::Error for ClientError {}

impl Client {
    /// A client with the supervisor-flavored defaults: 5 attempts,
    /// 50 ms base, 2 s cap.
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            attempts: 5,
            backoff_base_ms: 50,
            backoff_cap_ms: 2_000,
            timeout: Duration::from_secs(10),
        }
    }

    /// The deterministic backoff before attempt `attempt + 1`, in
    /// milliseconds — the supervisor's exact idiom (half-capped
    /// exponential plus FNV-1a jitter over a stable key), keyed here by
    /// address, request, and attempt number.
    pub fn backoff_ms(&self, what: &str, attempt: u32) -> u64 {
        if self.backoff_base_ms == 0 {
            return 0;
        }
        let exp = self
            .backoff_base_ms
            .saturating_mul(1u64 << (attempt.saturating_sub(1)).min(16));
        let capped = exp.min(self.backoff_cap_ms).max(1);
        let key = format!("{}:{what}:{attempt}", self.addr);
        let jitter = fnv1a(key.as_bytes()) % (capped / 2 + 1);
        (capped / 2 + jitter).min(self.backoff_cap_ms)
    }

    /// Performs `method path` with retries: transport failures and shed
    /// responses back off and retry; any other reply (including 4xx) is
    /// returned as-is on first sight — retrying a rejected spec cannot
    /// help.
    ///
    /// # Errors
    /// [`ClientError::Shed`] when every attempt was shed,
    /// [`ClientError::Io`] when every attempt failed at the transport.
    pub fn request(&self, method: &str, path: &str, body: &str) -> Result<Reply, ClientError> {
        let attempts = self.attempts.max(1);
        let mut last_shed: Option<Reply> = None;
        let mut last_io = String::new();
        let mut last_was_timeout = false;
        for attempt in 1..=attempts {
            match roundtrip(&self.addr, method, path, body, self.timeout) {
                Ok(reply) if reply.is_shed() => {
                    let blind = self.backoff_ms(path, attempt);
                    // Server hint wins the base; client jitter still
                    // de-synchronizes the herd around it.
                    let ms = match reply.retry_after_ms {
                        Some(hint) => hint + blind / 2,
                        None => blind,
                    };
                    last_shed = Some(reply);
                    if attempt < attempts && ms > 0 {
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                }
                Ok(reply) => return Ok(reply),
                Err(e) => {
                    last_was_timeout = is_timeout(&e);
                    last_io = e.to_string();
                    last_shed = None;
                    let ms = self.backoff_ms(path, attempt);
                    if attempt < attempts && ms > 0 {
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                }
            }
        }
        match last_shed {
            Some(reply) => Err(ClientError::Shed(reply)),
            None if last_was_timeout => Err(ClientError::Timeout(last_io)),
            None => Err(ClientError::Io(last_io)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let c = Client::new("127.0.0.1:1");
        for attempt in 1..=10 {
            let a = c.backoff_ms("/jobs", attempt);
            let b = c.backoff_ms("/jobs", attempt);
            assert_eq!(a, b, "same key, same sleep");
            assert!(a <= c.backoff_cap_ms, "attempt {attempt} slept {a} ms");
        }
        assert_ne!(
            c.backoff_ms("/jobs", 3),
            c.backoff_ms("/healthz", 3),
            "jitter is keyed by the request"
        );
    }

    #[test]
    fn zero_base_disables_sleeping() {
        let mut c = Client::new("127.0.0.1:1");
        c.backoff_base_ms = 0;
        assert_eq!(c.backoff_ms("/jobs", 7), 0);
    }

    #[test]
    fn hung_server_surfaces_the_typed_timeout() {
        // Accepts connections but never answers — the wedged-daemon
        // shape the socket deadline exists for.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let mut held = Vec::new();
            while let Ok((s, _)) = listener.accept() {
                held.push(s);
            }
        });
        let mut c = Client::new(addr);
        c.attempts = 2;
        c.backoff_base_ms = 0;
        c.timeout = Duration::from_millis(100);
        match c.request("GET", "/healthz", "") {
            Err(ClientError::Timeout(_)) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn transport_failure_surfaces_after_retries() {
        // Reserved port with nothing listening; connect fails fast.
        let mut c = Client::new("127.0.0.1:1");
        c.attempts = 2;
        c.backoff_base_ms = 0;
        c.timeout = Duration::from_millis(200);
        match c.request("GET", "/healthz", "") {
            Err(ClientError::Io(_)) => {}
            other => panic!("expected Io, got {other:?}"),
        }
    }
}
