//! Bounded admission with per-tenant fairness and quotas.
//!
//! The queue is the daemon's only growth point, so it is bounded twice:
//! a global capacity (full ⇒ the submission is *shed* with a
//! deterministic retry-after, never silently queued) and a per-tenant
//! queued cap (one tenant flooding the service cannot evict the
//! others' headroom). Dispatch is round-robin across tenants with a
//! per-tenant running cap, so a tenant with a hundred queued sweeps
//! still yields the next free worker to a tenant with one.

use std::collections::{BTreeMap, VecDeque};

/// Bounds of the admission queue.
#[derive(Clone, Debug)]
pub struct QueueConfig {
    /// Queued jobs across all tenants before submissions are shed.
    pub capacity: usize,
    /// Queued jobs per tenant before that tenant's submissions are shed.
    pub tenant_queued_cap: usize,
    /// Concurrently running jobs per tenant.
    pub tenant_running_cap: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            capacity: 64,
            tenant_queued_cap: 16,
            tenant_running_cap: 2,
        }
    }
}

/// The typed admission decision for one submission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Admitted and queued.
    Queued,
    /// Shed: the global queue is full. Retry after the given delay.
    ShedFull {
        /// Jobs queued when the submission was refused.
        queued: usize,
        /// Deterministic client back-pressure hint, in milliseconds.
        retry_after_ms: u64,
    },
    /// Shed: the tenant's queued quota is exhausted (other tenants may
    /// still submit). Retry after the given delay.
    ShedTenant {
        /// Jobs this tenant had queued when the submission was refused.
        queued: usize,
        /// Deterministic client back-pressure hint, in milliseconds.
        retry_after_ms: u64,
    },
}

/// The bounded, tenant-fair admission queue. Pure data structure — the
/// daemon holds it under its state mutex.
#[derive(Debug)]
pub struct AdmissionQueue {
    cfg: QueueConfig,
    queues: BTreeMap<String, VecDeque<String>>,
    running: BTreeMap<String, usize>,
    rr: VecDeque<String>,
    queued_total: usize,
}

impl AdmissionQueue {
    /// An empty queue with the given bounds.
    pub fn new(cfg: QueueConfig) -> Self {
        AdmissionQueue {
            cfg,
            queues: BTreeMap::new(),
            running: BTreeMap::new(),
            rr: VecDeque::new(),
            queued_total: 0,
        }
    }

    /// Jobs currently queued across tenants.
    pub fn queued(&self) -> usize {
        self.queued_total
    }

    /// Jobs currently marked running across tenants.
    pub fn running(&self) -> usize {
        self.running.values().sum()
    }

    /// The deterministic retry-after hint for a shed submission:
    /// proportional to queue depth (each queued sweep is ~250 ms of
    /// drain time at minimum), bounded so clients never sleep forever.
    /// No randomness — the jitter that prevents a thundering herd is
    /// the *client's* seeded FNV-1a discipline, not the server's.
    pub fn retry_after_ms(&self) -> u64 {
        (250u64.saturating_mul(self.queued_total as u64)).clamp(250, 10_000)
    }

    /// Offers one submission. Queues it or sheds it with a typed
    /// decision — the queue never grows past its bounds.
    pub fn offer(&mut self, tenant: &str, job: &str) -> Admission {
        if self.queued_total >= self.cfg.capacity {
            return Admission::ShedFull {
                queued: self.queued_total,
                retry_after_ms: self.retry_after_ms(),
            };
        }
        let tenant_queued = self.queues.get(tenant).map_or(0, VecDeque::len);
        if tenant_queued >= self.cfg.tenant_queued_cap {
            return Admission::ShedTenant {
                queued: tenant_queued,
                retry_after_ms: self.retry_after_ms(),
            };
        }
        self.push(tenant, job);
        Admission::Queued
    }

    /// Re-admits a journaled job during restart-resume, bypassing the
    /// caps: it was admitted before the crash and its spec is already
    /// durable — shedding it now would lose accepted work.
    pub fn restore(&mut self, tenant: &str, job: &str) {
        self.push(tenant, job);
    }

    fn push(&mut self, tenant: &str, job: &str) {
        if !self.queues.contains_key(tenant) && !self.rr.iter().any(|t| t == tenant) {
            self.rr.push_back(tenant.to_string());
        }
        self.queues
            .entry(tenant.to_string())
            .or_default()
            .push_back(job.to_string());
        self.queued_total += 1;
    }

    /// Dispatches the next job fairly: rotates through tenants, skipping
    /// any whose running cap is reached, and pops FIFO within a tenant.
    /// Marks the job running for its tenant.
    pub fn pop_fair(&mut self) -> Option<(String, String)> {
        for _ in 0..self.rr.len() {
            let tenant = self.rr.pop_front()?;
            let eligible = self.queues.get(&tenant).is_some_and(|q| !q.is_empty())
                && self.running.get(&tenant).copied().unwrap_or(0) < self.cfg.tenant_running_cap;
            if eligible {
                let job = self
                    .queues
                    .get_mut(&tenant)
                    .and_then(VecDeque::pop_front)
                    .expect("eligible tenant has a queued job");
                self.queued_total -= 1;
                *self.running.entry(tenant.clone()).or_insert(0) += 1;
                self.rr.push_back(tenant.clone());
                return Some((tenant, job));
            }
            self.rr.push_back(tenant);
        }
        None
    }

    /// Withdraws a still-queued job (admission succeeded but a later
    /// step of the submission — e.g. persisting the spec to a full disk
    /// — failed, so the slot must be given back). Returns whether the
    /// job was found and removed.
    pub fn cancel(&mut self, tenant: &str, job: &str) -> bool {
        let Some(q) = self.queues.get_mut(tenant) else {
            return false;
        };
        let Some(pos) = q.iter().position(|j| j == job) else {
            return false;
        };
        q.remove(pos);
        self.queued_total -= 1;
        true
    }

    /// Marks one of `tenant`'s running jobs finished.
    pub fn finished(&mut self, tenant: &str) {
        if let Some(n) = self.running.get_mut(tenant) {
            *n = n.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue(capacity: usize, tq: usize, tr: usize) -> AdmissionQueue {
        AdmissionQueue::new(QueueConfig {
            capacity,
            tenant_queued_cap: tq,
            tenant_running_cap: tr,
        })
    }

    #[test]
    fn full_queue_sheds_with_depth_proportional_retry_after() {
        let mut q = queue(2, 16, 2);
        assert_eq!(q.offer("a", "j1"), Admission::Queued);
        assert_eq!(q.offer("a", "j2"), Admission::Queued);
        match q.offer("b", "j3") {
            Admission::ShedFull {
                queued,
                retry_after_ms,
            } => {
                assert_eq!(queued, 2);
                assert_eq!(retry_after_ms, 500, "deterministic, depth-proportional");
            }
            other => panic!("expected ShedFull, got {other:?}"),
        }
        assert_eq!(q.queued(), 2, "shed submissions never grow the queue");
    }

    #[test]
    fn tenant_quota_sheds_only_the_noisy_tenant() {
        let mut q = queue(64, 1, 2);
        assert_eq!(q.offer("noisy", "j1"), Admission::Queued);
        assert!(matches!(
            q.offer("noisy", "j2"),
            Admission::ShedTenant { queued: 1, .. }
        ));
        assert_eq!(q.offer("quiet", "j3"), Admission::Queued);
    }

    #[test]
    fn dispatch_round_robins_across_tenants() {
        let mut q = queue(64, 16, 4);
        for j in ["a1", "a2", "a3"] {
            q.offer("alice", j);
        }
        q.offer("bob", "b1");
        let order: Vec<String> = std::iter::from_fn(|| q.pop_fair().map(|(_, j)| j)).collect();
        assert_eq!(order, ["a1", "b1", "a2", "a3"], "bob is not starved");
    }

    #[test]
    fn running_cap_defers_a_tenants_next_job() {
        let mut q = queue(64, 16, 1);
        q.offer("a", "j1");
        q.offer("a", "j2");
        assert_eq!(q.pop_fair(), Some(("a".into(), "j1".into())));
        assert_eq!(q.pop_fair(), None, "tenant at running cap");
        q.finished("a");
        assert_eq!(q.pop_fair(), Some(("a".into(), "j2".into())));
        q.finished("a");
        assert_eq!(q.running(), 0);
    }

    #[test]
    fn cancel_gives_the_slot_back() {
        let mut q = queue(2, 2, 1);
        q.offer("a", "j1");
        q.offer("a", "j2");
        assert!(matches!(q.offer("a", "j3"), Admission::ShedFull { .. }));
        assert!(q.cancel("a", "j2"));
        assert!(!q.cancel("a", "j2"), "already gone");
        assert_eq!(q.queued(), 1);
        assert_eq!(q.offer("a", "j3"), Admission::Queued, "slot reusable");
        assert_eq!(q.pop_fair(), Some(("a".into(), "j1".into())));
    }

    #[test]
    fn restore_bypasses_the_caps() {
        let mut q = queue(1, 1, 1);
        q.offer("a", "j1");
        q.restore("a", "j2");
        assert_eq!(q.queued(), 2, "restored jobs are never shed");
        assert!(matches!(q.offer("a", "j3"), Admission::ShedFull { .. }));
    }
}
