//! Bounded admission with priorities, per-tenant fairness and quotas.
//!
//! The queue is the daemon's only growth point, so it is bounded twice:
//! a global capacity (full ⇒ the submission is *shed* with a
//! deterministic retry-after, never silently queued) and a per-tenant
//! queued cap (one tenant flooding the service cannot evict the
//! others' headroom).
//!
//! Dispatch order is a total, deterministic key over the queued set:
//!
//! 1. **effective priority**, descending — a job's spec priority
//!    (`0..=9`) plus anti-starvation aging (every
//!    [`QueueConfig::aging_every`] dispatches, every queued job is
//!    promoted one band, capped at [`MAX_PRIORITY`]), so a low-priority
//!    job under a stream of high-priority arrivals climbs to the top
//!    band in bounded dispatches and then wins on FIFO order;
//! 2. **least-recently-dispatched tenant**, ascending (tenant name
//!    breaks ties) — round-robin across tenants within a band, so a
//!    tenant with a hundred queued sweeps still yields the next free
//!    worker to a tenant with one;
//! 3. **admission sequence**, ascending — FIFO within a (band, tenant).
//!    Restart-resume re-admits journaled jobs in sorted job-ID order,
//!    so the sequence (and therefore the dispatch order) is a pure
//!    function of the job IDs, never of wall-clock.

use std::collections::BTreeMap;

/// The highest admissible job priority (bands are `0..=MAX_PRIORITY`).
pub const MAX_PRIORITY: u8 = 9;

/// Bounds of the admission queue.
#[derive(Clone, Debug)]
pub struct QueueConfig {
    /// Queued jobs across all tenants before submissions are shed.
    pub capacity: usize,
    /// Queued jobs per tenant before that tenant's submissions are shed.
    pub tenant_queued_cap: usize,
    /// Concurrently running jobs per tenant.
    pub tenant_running_cap: usize,
    /// Dispatches between anti-starvation promotions: every
    /// `aging_every` dispatches, every queued job's effective priority
    /// rises one band (capped at [`MAX_PRIORITY`]). Counter-driven —
    /// never wall-clock — so the promotion points are identical across
    /// a restart replaying the same dispatch sequence.
    pub aging_every: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            capacity: 64,
            tenant_queued_cap: 16,
            tenant_running_cap: 2,
            aging_every: 8,
        }
    }
}

/// The typed admission decision for one submission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Admitted and queued.
    Queued,
    /// Shed: the global queue is full. Retry after the given delay.
    ShedFull {
        /// Jobs queued when the submission was refused.
        queued: usize,
        /// Deterministic client back-pressure hint, in milliseconds.
        retry_after_ms: u64,
    },
    /// Shed: the tenant's queued quota is exhausted (other tenants may
    /// still submit). Retry after the given delay.
    ShedTenant {
        /// Jobs this tenant had queued when the submission was refused.
        queued: usize,
        /// Deterministic client back-pressure hint, in milliseconds.
        retry_after_ms: u64,
    },
}

/// One dispatched job, as handed to a worker by
/// [`AdmissionQueue::pop_fair`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dispatch {
    /// The job's tenant.
    pub tenant: String,
    /// The job ID.
    pub job: String,
    /// The job's *base* (spec) priority — what a preempted re-queue
    /// restores, and what preemption victim selection compares.
    pub priority: u8,
}

#[derive(Debug)]
struct QueuedJob {
    tenant: String,
    job: String,
    /// Spec priority, `0..=MAX_PRIORITY`.
    base: u8,
    /// Base plus aging promotions, capped at [`MAX_PRIORITY`].
    effective: u8,
    /// Admission order, strictly increasing — the FIFO axis.
    seq: u64,
}

/// The bounded, tenant-fair, priority-ordered admission queue. Pure
/// data structure — the daemon holds it under its state mutex.
#[derive(Debug)]
pub struct AdmissionQueue {
    cfg: QueueConfig,
    queued: Vec<QueuedJob>,
    running: BTreeMap<String, usize>,
    /// Dispatch counter value at each tenant's last dispatch (0 =
    /// never) — the round-robin axis within a priority band.
    last_dispatch: BTreeMap<String, u64>,
    /// Total dispatches, drives aging and `last_dispatch`.
    dispatches: u64,
    seq: u64,
}

impl AdmissionQueue {
    /// An empty queue with the given bounds.
    pub fn new(cfg: QueueConfig) -> Self {
        AdmissionQueue {
            cfg,
            queued: Vec::new(),
            running: BTreeMap::new(),
            last_dispatch: BTreeMap::new(),
            dispatches: 0,
            seq: 0,
        }
    }

    /// Jobs currently queued across tenants.
    pub fn queued(&self) -> usize {
        self.queued.len()
    }

    /// The configured global capacity (the brownout ladder is keyed to
    /// `queued() / capacity()`).
    pub fn capacity(&self) -> usize {
        self.cfg.capacity
    }

    /// Jobs currently marked running across tenants.
    pub fn running(&self) -> usize {
        self.running.values().sum()
    }

    /// The highest effective priority among queued jobs, if any — what
    /// the daemon compares against running jobs when deciding whether
    /// to preempt.
    pub fn highest_queued_priority(&self) -> Option<u8> {
        self.queued.iter().map(|j| j.effective).max()
    }

    /// The deterministic retry-after hint for a shed submission:
    /// proportional to queue depth (each queued sweep is ~250 ms of
    /// drain time at minimum), bounded so clients never sleep forever.
    /// No randomness — the jitter that prevents a thundering herd is
    /// the *client's* seeded FNV-1a discipline, not the server's.
    pub fn retry_after_ms(&self) -> u64 {
        (250u64.saturating_mul(self.queued.len() as u64)).clamp(250, 10_000)
    }

    /// Offers one submission. Queues it or sheds it with a typed
    /// decision — the queue never grows past its bounds.
    pub fn offer(&mut self, tenant: &str, job: &str, priority: u8) -> Admission {
        if self.queued.len() >= self.cfg.capacity {
            return Admission::ShedFull {
                queued: self.queued.len(),
                retry_after_ms: self.retry_after_ms(),
            };
        }
        let tenant_queued = self.queued.iter().filter(|j| j.tenant == tenant).count();
        if tenant_queued >= self.cfg.tenant_queued_cap {
            return Admission::ShedTenant {
                queued: tenant_queued,
                retry_after_ms: self.retry_after_ms(),
            };
        }
        self.push(tenant, job, priority);
        Admission::Queued
    }

    /// Re-admits a job bypassing the caps: a journaled job during
    /// restart-resume, or a preempted job returning to the queue. It
    /// was admitted once and its spec is already durable — shedding it
    /// now would lose accepted work.
    pub fn restore(&mut self, tenant: &str, job: &str, priority: u8) {
        self.push(tenant, job, priority);
    }

    fn push(&mut self, tenant: &str, job: &str, priority: u8) {
        let priority = priority.min(MAX_PRIORITY);
        self.queued.push(QueuedJob {
            tenant: tenant.to_string(),
            job: job.to_string(),
            base: priority,
            effective: priority,
            seq: self.seq,
        });
        self.seq += 1;
    }

    /// Dispatches the next job by the deterministic order documented on
    /// the module: effective priority, then least-recently-dispatched
    /// tenant (skipping tenants at their running cap), then admission
    /// order. Marks the job running for its tenant and ages the
    /// remaining queue every [`QueueConfig::aging_every`] dispatches.
    pub fn pop_fair(&mut self) -> Option<Dispatch> {
        let best = self
            .queued
            .iter()
            .enumerate()
            .filter(|(_, j)| {
                self.running.get(&j.tenant).copied().unwrap_or(0) < self.cfg.tenant_running_cap
            })
            .min_by(|(_, a), (_, b)| {
                let last = |j: &QueuedJob| self.last_dispatch.get(&j.tenant).copied().unwrap_or(0);
                b.effective
                    .cmp(&a.effective)
                    .then_with(|| last(a).cmp(&last(b)))
                    .then_with(|| a.tenant.cmp(&b.tenant))
                    .then_with(|| a.seq.cmp(&b.seq))
            })
            .map(|(i, _)| i)?;
        let picked = self.queued.remove(best);
        self.dispatches += 1;
        *self.running.entry(picked.tenant.clone()).or_insert(0) += 1;
        self.last_dispatch
            .insert(picked.tenant.clone(), self.dispatches);
        if self.cfg.aging_every > 0 && self.dispatches.is_multiple_of(self.cfg.aging_every as u64) {
            for j in &mut self.queued {
                j.effective = (j.effective + 1).min(MAX_PRIORITY);
            }
        }
        Some(Dispatch {
            tenant: picked.tenant,
            job: picked.job,
            priority: picked.base,
        })
    }

    /// Withdraws a still-queued job (admission succeeded but a later
    /// step of the submission — e.g. persisting the spec to a full disk
    /// — failed, so the slot must be given back). Returns whether the
    /// job was found and removed.
    pub fn cancel(&mut self, tenant: &str, job: &str) -> bool {
        let Some(pos) = self
            .queued
            .iter()
            .position(|j| j.tenant == tenant && j.job == job)
        else {
            return false;
        };
        self.queued.remove(pos);
        true
    }

    /// Marks one of `tenant`'s running jobs finished.
    pub fn finished(&mut self, tenant: &str) {
        if let Some(n) = self.running.get_mut(tenant) {
            *n = n.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue(capacity: usize, tq: usize, tr: usize) -> AdmissionQueue {
        AdmissionQueue::new(QueueConfig {
            capacity,
            tenant_queued_cap: tq,
            tenant_running_cap: tr,
            ..QueueConfig::default()
        })
    }

    fn drain(q: &mut AdmissionQueue) -> Vec<String> {
        std::iter::from_fn(|| {
            q.pop_fair().map(|d| {
                q.finished(&d.tenant);
                d.job
            })
        })
        .collect()
    }

    #[test]
    fn full_queue_sheds_with_depth_proportional_retry_after() {
        let mut q = queue(2, 16, 2);
        assert_eq!(q.offer("a", "j1", 0), Admission::Queued);
        assert_eq!(q.offer("a", "j2", 0), Admission::Queued);
        match q.offer("b", "j3", 9) {
            Admission::ShedFull {
                queued,
                retry_after_ms,
            } => {
                assert_eq!(queued, 2);
                assert_eq!(retry_after_ms, 500, "deterministic, depth-proportional");
            }
            other => panic!("expected ShedFull, got {other:?}"),
        }
        assert_eq!(q.queued(), 2, "shed submissions never grow the queue");
    }

    #[test]
    fn tenant_quota_sheds_only_the_noisy_tenant() {
        let mut q = queue(64, 1, 2);
        assert_eq!(q.offer("noisy", "j1", 0), Admission::Queued);
        assert!(matches!(
            q.offer("noisy", "j2", 0),
            Admission::ShedTenant { queued: 1, .. }
        ));
        assert_eq!(q.offer("quiet", "j3", 0), Admission::Queued);
    }

    #[test]
    fn dispatch_round_robins_across_tenants() {
        let mut q = queue(64, 16, 4);
        for j in ["a1", "a2", "a3"] {
            q.offer("alice", j, 0);
        }
        q.offer("bob", "b1", 0);
        let order: Vec<String> = std::iter::from_fn(|| q.pop_fair().map(|d| d.job)).collect();
        assert_eq!(order, ["a1", "b1", "a2", "a3"], "bob is not starved");
    }

    #[test]
    fn higher_priority_dispatches_first_fifo_within_a_band() {
        let mut q = queue(64, 16, 16);
        q.offer("a", "low1", 1);
        q.offer("a", "high1", 5);
        q.offer("b", "high2", 5);
        q.offer("a", "low2", 1);
        let order = drain(&mut q);
        assert_eq!(
            order,
            ["high1", "high2", "low1", "low2"],
            "bands strictly ordered, FIFO + round-robin within a band"
        );
    }

    #[test]
    fn running_cap_defers_a_tenants_next_job() {
        let mut q = queue(64, 16, 1);
        q.offer("a", "j1", 0);
        q.offer("a", "j2", 0);
        assert_eq!(q.pop_fair().map(|d| d.job).as_deref(), Some("j1"));
        assert_eq!(q.pop_fair(), None, "tenant at running cap");
        q.finished("a");
        assert_eq!(q.pop_fair().map(|d| d.job).as_deref(), Some("j2"));
        q.finished("a");
        assert_eq!(q.running(), 0);
    }

    #[test]
    fn cancel_gives_the_slot_back() {
        let mut q = queue(2, 2, 1);
        q.offer("a", "j1", 0);
        q.offer("a", "j2", 0);
        assert!(matches!(q.offer("a", "j3", 0), Admission::ShedFull { .. }));
        assert!(q.cancel("a", "j2"));
        assert!(!q.cancel("a", "j2"), "already gone");
        assert_eq!(q.queued(), 1);
        assert_eq!(q.offer("a", "j3", 0), Admission::Queued, "slot reusable");
        assert_eq!(q.pop_fair().map(|d| d.job).as_deref(), Some("j1"));
    }

    #[test]
    fn restore_bypasses_the_caps_and_keeps_priority() {
        let mut q = queue(1, 1, 1);
        q.offer("a", "j1", 0);
        q.restore("a", "j2", 7);
        assert_eq!(q.queued(), 2, "restored jobs are never shed");
        assert!(matches!(q.offer("a", "j3", 0), Admission::ShedFull { .. }));
        let d = q.pop_fair().unwrap();
        assert_eq!((d.job.as_str(), d.priority), ("j2", 7));
    }

    // -----------------------------------------------------------------
    // Seeded property suite. A tiny xorshift PRNG keeps the scenarios
    // deterministic: every run of the suite sees the same arrivals.

    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// No starvation: a single low-priority job admitted into a steady
    /// stream of high-priority arrivals still dispatches within a
    /// bounded number of dispatches (aging promotes it band by band;
    /// once it reaches the top band its earlier admission sequence wins
    /// the FIFO tie-break over every later arrival).
    #[test]
    fn property_no_starvation_under_aging() {
        for seed in [1u64, 7, 42, 1337] {
            let mut rng = Rng(seed);
            let mut q = AdmissionQueue::new(QueueConfig {
                capacity: 1024,
                tenant_queued_cap: 1024,
                tenant_running_cap: 1024,
                aging_every: 4,
            });
            q.offer("victim", "starved", 0);
            let mut dispatched_at = None;
            for step in 0..400u64 {
                let tenant = format!("noisy{}", rng.below(3));
                q.offer(&tenant, &format!("hi{step}"), MAX_PRIORITY);
                let d = q.pop_fair().expect("queue is never empty here");
                q.finished(&d.tenant);
                if d.job == "starved" {
                    dispatched_at = Some(step);
                    break;
                }
            }
            // Worst case: 9 promotions × aging_every dispatches to reach
            // the top band, plus the jobs already ahead of it there.
            let at = dispatched_at.unwrap_or_else(|| panic!("seed {seed}: job starved"));
            assert!(at <= 60, "seed {seed}: dispatched only at step {at}");
        }
    }

    /// Fairness within a band: with equal priorities, no tenant's
    /// dispatch share exceeds its fair share by more than one while
    /// every tenant still has queued work.
    #[test]
    fn property_fairness_within_a_band() {
        for seed in [3u64, 11, 99] {
            let mut rng = Rng(seed);
            let tenants = ["alpha", "beta", "gamma"];
            let mut q = AdmissionQueue::new(QueueConfig {
                capacity: 1024,
                tenant_queued_cap: 1024,
                tenant_running_cap: 1024,
                aging_every: 8,
            });
            let per_tenant = 20;
            // Interleave admissions in a seed-dependent order.
            let mut remaining: Vec<usize> = vec![per_tenant; tenants.len()];
            let mut n = 0;
            while remaining.iter().any(|&r| r > 0) {
                let t = rng.below(tenants.len() as u64) as usize;
                if remaining[t] > 0 {
                    remaining[t] -= 1;
                    q.offer(tenants[t], &format!("{}-{n}", tenants[t]), 3);
                    n += 1;
                }
            }
            let mut counts = BTreeMap::new();
            for step in 1..=tenants.len() * per_tenant {
                let d = q.pop_fair().expect("work remains");
                q.finished(&d.tenant);
                *counts.entry(d.tenant.clone()).or_insert(0usize) += 1;
                // While every tenant still has queued jobs, shares stay
                // within one of each other (pure round-robin).
                if step <= tenants.len() * (per_tenant - 1) {
                    let max = counts.values().max().copied().unwrap_or(0);
                    let min = tenants
                        .iter()
                        .map(|t| counts.get(*t).copied().unwrap_or(0))
                        .min()
                        .unwrap();
                    assert!(
                        max - min <= 1,
                        "seed {seed} step {step}: unfair shares {counts:?}"
                    );
                }
            }
        }
    }

    /// Restart determinism: re-admitting the same (tenant, job,
    /// priority) set in the same order — what the daemon does on
    /// restart, sorted by job ID — always yields the same dispatch
    /// order, regardless of how the first incarnation interleaved
    /// offers and pops before dying.
    #[test]
    fn property_dispatch_order_is_deterministic_across_restarts() {
        for seed in [5u64, 23, 77] {
            let mut rng = Rng(seed);
            let jobs: Vec<(String, String, u8)> = (0..30)
                .map(|_| {
                    (
                        format!("t{}", rng.below(4)),
                        format!("{:016x}", rng.next()),
                        rng.below(10) as u8,
                    )
                })
                .chain(std::iter::once(("t0".into(), "ffff".into(), 0)))
                .collect();
            let order = |q: &mut AdmissionQueue| -> Vec<String> { drain(q) };
            let mut sorted = jobs.clone();
            sorted.sort_by(|a, b| a.1.cmp(&b.1));
            let mut a = AdmissionQueue::new(QueueConfig::default());
            let mut b = AdmissionQueue::new(QueueConfig::default());
            for (t, j, p) in &sorted {
                a.restore(t, j, *p);
                b.restore(t, j, *p);
            }
            assert_eq!(order(&mut a), order(&mut b), "seed {seed}");
        }
    }
}
