//! The daemon: job store, worker pool, endpoints, and restart-resume.
//!
//! Every job lives in the state directory as a small family of files
//! keyed by its deterministic ID:
//!
//! ```text
//! job-<id>.spec          canonical spec + submission counter (written at admission)
//! job-<id>.journal       per-job checkpoint journal (supervisor-appended, fsynced)
//! job-<id>.bench.json    drms-sweep-v2 artifact (atomic, deterministic)
//! job-<id>.report.txt    merged profile report (atomic, deterministic)
//! job-<id>.metrics.json  merged metrics registry (atomic, deterministic)
//! job-<id>.done          completion summary (atomic; presence = job finished)
//! job-<id>.failed        failure summary (atomic; presence = job failed)
//! gc.tombstones          journal of pruned job IDs (written before deletion)
//! ```
//!
//! The `.spec` file is the durability point: a submission is
//! acknowledged only after its spec is atomically on disk, so a
//! `kill -9` at *any* later moment leaves either a finished job (done
//! marker present) or a resumable one (spec present, journal salvaged
//! by [`resume_sweep`], missing cells re-run). Restart scans the
//! directory, restores the submission counter, and re-queues every
//! unfinished job — artifacts come out byte-identical to an
//! uninterrupted run.
//!
//! Retention GC prunes finished jobs beyond [`DaemonConfig::retain_count`]
//! / older than [`DaemonConfig::retain_age`]. Each pruned ID is first
//! appended (fsynced) to the `gc.tombstones` journal, *then* its files
//! are deleted — so a crash between the two leaves a tombstone the
//! startup scan honors (leftovers removed, job never resurrected) and
//! the submission counter continues past pruned jobs (IDs never
//! collide).
//!
//! Every host write goes through [`DaemonConfig::host_io`]: production
//! uses real I/O; tests and `aprofd --host-faults` inject ENOSPC,
//! fsync-EIO, and torn writes. A spec that cannot be persisted is shed
//! with a typed 507 and a deterministic retry-after — the queue slot is
//! withdrawn, the counter is not advanced, and the daemon keeps serving.

use crate::http::{Request, RequestError, Response};
use crate::queue::{Admission, AdmissionQueue, QueueConfig};
use crate::spec::{job_id, JobSpec};
use drms::analysis::{sweep_snapshot, CostPlot, InputMetric};
use drms::trace::hostio::HostIo;
use drms::trace::journal;
use drms::trace::Metrics;
use drms_bench::artifact::atomic_write_with;
use drms_bench::supervisor::{
    decode_cell_payload, profile_cell, resume_sweep_with_io, run_supervised_with, JournalWriter,
};
use drms_bench::sweep::{family_workload, FamilyBench, SweepBench, SweepCell};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, SystemTime};

/// Deterministic retry-after for the 507 disk-full shed: long enough
/// that an operator plausibly freed space, fixed so clients and tests
/// see the same hint every time.
pub const DISK_FULL_RETRY_MS: u64 = 5_000;

/// Daemon configuration (CLI flags map 1:1 onto this).
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Directory holding specs, journals, and artifacts.
    pub state_dir: PathBuf,
    /// Concurrent jobs. `0` is a valid admission-only mode (jobs queue
    /// but never run) used by tests and the CI full-queue gate.
    pub workers: usize,
    /// Admission bounds.
    pub queue: QueueConfig,
    /// Host file I/O for every durable write (specs, journals,
    /// artifacts, tombstones). Real in production; fault-injected under
    /// test and behind `--host-faults`.
    pub host_io: HostIo,
    /// Keep at most this many finished (done/failed) jobs on disk;
    /// older ones are tombstoned and pruned. `None` = keep all.
    pub retain_count: Option<usize>,
    /// Prune finished jobs whose completion marker is older than this.
    /// `None` = no age limit.
    pub retain_age: Option<Duration>,
    /// Concurrent connections served; excess connections get an
    /// immediate 503 shed instead of an unbounded thread per socket.
    pub max_connections: usize,
    /// Per-socket read/write deadline — a slow-loris client dribbling
    /// bytes gets a typed 408 when it expires, not a parked thread.
    pub read_timeout: Duration,
}

impl DaemonConfig {
    /// Production defaults over `state_dir`: 2 workers, default queue
    /// bounds, real host I/O, no retention limits, 64 connections,
    /// 10 s socket deadlines.
    pub fn new(state_dir: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            state_dir: state_dir.into(),
            workers: 2,
            queue: QueueConfig::default(),
            host_io: HostIo::real(),
            retain_count: None,
            retain_age: None,
            max_connections: 64,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// Lifecycle state of one job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is sweeping its grid.
    Running,
    /// Finished; artifacts and the done marker are on disk.
    Done,
    /// Could not run (journal spec mismatch, I/O failure). The string
    /// is the human-readable cause.
    Failed(String),
}

impl JobState {
    /// The wire name of this state (the `state` line of `/jobs/{id}`).
    pub fn as_str(&self) -> &str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed(_) => "failed",
        }
    }
}

/// Attempt/retry accounting of a finished job (mirrors the sweep's own
/// derived counters, so a resumed job reports identical numbers).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JobSummary {
    /// Total cell attempts.
    pub attempts: u64,
    /// Attempts beyond the first, per cell, summed.
    pub retries: u64,
    /// Cells quarantined after exhausting their attempts.
    pub quarantined: u64,
    /// Completed cells.
    pub cells: u64,
    /// Fingerprint of the merged report (`drms-sweep-v2` discipline).
    pub fingerprint: u64,
}

impl JobSummary {
    fn to_text(&self) -> String {
        format!(
            "attempts {}\nretries {}\nquarantined {}\ncells {}\nfingerprint {:016x}\n",
            self.attempts, self.retries, self.quarantined, self.cells, self.fingerprint
        )
    }

    fn parse(text: &str) -> JobSummary {
        let mut s = JobSummary::default();
        for line in text.lines() {
            let Some((k, v)) = line.split_once(' ') else {
                continue;
            };
            match k {
                "attempts" => s.attempts = v.parse().unwrap_or(0),
                "retries" => s.retries = v.parse().unwrap_or(0),
                "quarantined" => s.quarantined = v.parse().unwrap_or(0),
                "cells" => s.cells = v.parse().unwrap_or(0),
                "fingerprint" => s.fingerprint = u64::from_str_radix(v, 16).unwrap_or(0),
                _ => {}
            }
        }
        s
    }
}

struct JobEntry {
    spec: JobSpec,
    submitted: u64,
    state: JobState,
    resumed: bool,
    summary: Option<JobSummary>,
}

struct Inner {
    entries: BTreeMap<String, JobEntry>,
    queue: AdmissionQueue,
    counter: u64,
    running_jobs: usize,
}

/// The shared daemon state. Cheap to clone behind an [`Arc`]; the
/// worker pool, the accept loop, and every connection handler hold one.
pub struct Daemon {
    cfg: DaemonConfig,
    inner: Mutex<Inner>,
    cv: Condvar,
    metrics: Mutex<Metrics>,
    draining: AtomicBool,
}

impl Daemon {
    /// Creates the daemon over `cfg.state_dir`, creating the directory
    /// and restoring every journaled job found in it: done/failed jobs
    /// load as records, unfinished ones re-queue for resume in
    /// submission order, and the submission counter continues past the
    /// highest restored value (so new job IDs never collide).
    pub fn new(cfg: DaemonConfig) -> std::io::Result<Arc<Daemon>> {
        std::fs::create_dir_all(&cfg.state_dir)?;
        let mut inner = Inner {
            entries: BTreeMap::new(),
            queue: AdmissionQueue::new(cfg.queue.clone()),
            counter: 0,
            running_jobs: 0,
        };
        let mut metrics = Metrics::new();

        // Tombstones first: a pruned job must never be resurrected,
        // even when a crash between tombstone-write and file-deletion
        // left its spec behind. The tombstone also carries the pruned
        // job's submission number, so the counter continues past it and
        // new IDs never collide with GC'd history.
        let mut tombstoned: BTreeSet<String> = BTreeSet::new();
        if let Ok(text) = std::fs::read_to_string(cfg.state_dir.join("gc.tombstones")) {
            for rec in &journal::from_text_lossy(&text).records {
                let Some(id) = rec.meta.strip_prefix("gc ") else {
                    continue;
                };
                tombstoned.insert(id.to_string());
                for line in rec.payload.lines() {
                    if let Some(v) = line.strip_prefix("submitted ") {
                        inner.counter = inner.counter.max(v.parse().unwrap_or(0));
                    }
                }
            }
        }

        let mut restored: Vec<(u64, String, String)> = Vec::new(); // (submitted, id, tenant)
        for entry in std::fs::read_dir(&cfg.state_dir)? {
            let name = entry?.file_name();
            let Some(id) = name
                .to_str()
                .and_then(|n| n.strip_prefix("job-"))
                .and_then(|n| n.strip_suffix(".spec"))
            else {
                continue;
            };
            let id = id.to_string();
            if tombstoned.contains(&id) {
                continue; // leftovers swept below
            }
            let text = std::fs::read_to_string(cfg.state_dir.join(&*name))?;
            let mut submitted = 0u64;
            let mut spec_lines = String::new();
            for line in text.lines() {
                if let Some(v) = line.strip_prefix("submitted ") {
                    submitted = v.parse().unwrap_or(0);
                } else {
                    spec_lines.push_str(line);
                    spec_lines.push('\n');
                }
            }
            let spec = match JobSpec::parse(&spec_lines) {
                Ok(s) => s,
                Err(e) => {
                    // A spec this daemon once accepted no longer parses
                    // (config drift): record the failure, don't crash.
                    metrics.inc("aprofd.jobs.unloadable");
                    inner.entries.insert(
                        id,
                        JobEntry {
                            spec: JobSpec::default(),
                            submitted,
                            state: JobState::Failed(format!("unloadable spec: {e}")),
                            resumed: true,
                            summary: None,
                        },
                    );
                    continue;
                }
            };
            inner.counter = inner.counter.max(submitted);
            let done = cfg.state_dir.join(format!("job-{id}.done"));
            let failed = cfg.state_dir.join(format!("job-{id}.failed"));
            let (state, summary) = if let Ok(t) = std::fs::read_to_string(&done) {
                (JobState::Done, Some(JobSummary::parse(&t)))
            } else if let Ok(t) = std::fs::read_to_string(&failed) {
                (JobState::Failed(t.trim().to_string()), None)
            } else {
                restored.push((submitted, id.clone(), spec.tenant.clone()));
                (JobState::Queued, None)
            };
            inner.entries.insert(
                id,
                JobEntry {
                    spec,
                    submitted,
                    state,
                    resumed: true,
                    summary,
                },
            );
        }
        // Re-queue unfinished jobs in their original submission order,
        // bypassing admission caps (they were admitted pre-crash).
        restored.sort();
        for (_, id, tenant) in restored {
            inner.queue.restore(&tenant, &id);
            metrics.inc("aprofd.jobs.restored");
        }
        metrics.set_gauge("aprofd.queue.depth", inner.queue.queued() as u64);

        // Sweep leftovers of tombstoned jobs (the crash window between
        // tombstone-write and deletion).
        for id in &tombstoned {
            if remove_job_files(&cfg.state_dir, id) {
                metrics.inc("aprofd.jobs.gc_swept");
            }
        }

        let daemon = Arc::new(Daemon {
            cfg,
            inner: Mutex::new(inner),
            cv: Condvar::new(),
            metrics: Mutex::new(metrics),
            draining: AtomicBool::new(false),
        });
        daemon.gc();
        Ok(daemon)
    }

    fn job_path(&self, id: &str, suffix: &str) -> PathBuf {
        self.cfg.state_dir.join(format!("job-{id}.{suffix}"))
    }

    /// Retention GC: prunes finished (done/failed) jobs beyond
    /// [`DaemonConfig::retain_count`] or older than
    /// [`DaemonConfig::retain_age`]. Runs at startup and after every
    /// job completion; a no-op when neither bound is set.
    ///
    /// Prune order is append-then-delete: the job's ID and submission
    /// number land (fsynced) in the `gc.tombstones` journal *before*
    /// any file is removed, so a crash mid-prune can only leave
    /// tombstoned leftovers the next startup sweeps — never a
    /// resurrected job. If the tombstone itself cannot be made durable
    /// (disk full), nothing is deleted.
    pub fn gc(&self) -> usize {
        if self.cfg.retain_count.is_none() && self.cfg.retain_age.is_none() {
            return 0;
        }
        // Pick victims under the lock; finished jobs cannot change
        // state, so acting on the snapshot afterwards is safe.
        let mut finished: Vec<(u64, String)> = {
            let inner = self.inner.lock().unwrap();
            inner
                .entries
                .iter()
                .filter(|(_, e)| matches!(e.state, JobState::Done | JobState::Failed(_)))
                .map(|(id, e)| (e.submitted, id.clone()))
                .collect()
        };
        finished.sort();
        let mut victims: BTreeSet<String> = BTreeSet::new();
        if let Some(keep) = self.cfg.retain_count {
            for (_, id) in finished.iter().take(finished.len().saturating_sub(keep)) {
                victims.insert(id.clone());
            }
        }
        if let Some(age) = self.cfg.retain_age {
            let now = SystemTime::now();
            for (_, id) in &finished {
                let marker = ["done", "failed"]
                    .iter()
                    .map(|s| self.job_path(id, s))
                    .find(|p| p.exists());
                let Some(mtime) = marker.and_then(|p| std::fs::metadata(p).ok()?.modified().ok())
                else {
                    continue;
                };
                if now.duration_since(mtime).is_ok_and(|d| d >= age) {
                    victims.insert(id.clone());
                }
            }
        }
        if victims.is_empty() {
            return 0;
        }
        let path = self.cfg.state_dir.join("gc.tombstones");
        let io = &self.cfg.host_io;
        let writer = if path.exists() {
            JournalWriter::append_to_with(io, &path)
        } else {
            JournalWriter::create_with(io, &path)
        };
        let mut writer = match writer {
            Ok(w) => w,
            Err(e) => {
                eprintln!("aprofd: gc skipped, tombstone journal unusable: {e}");
                return 0;
            }
        };
        let submitted_of: BTreeMap<&String, u64> =
            finished.iter().map(|(n, id)| (id, *n)).collect();
        let mut pruned = 0usize;
        for id in &victims {
            writer.append(
                &format!("gc {id}"),
                &format!("submitted {}\n", submitted_of.get(id).copied().unwrap_or(0)),
            );
            if !writer.is_active() {
                // The tombstone did not reach the disk: stop pruning
                // entirely rather than delete undurably-tombstoned jobs.
                eprintln!("aprofd: gc stopped, tombstone append failed");
                break;
            }
            remove_job_files(&self.cfg.state_dir, id);
            self.inner.lock().unwrap().entries.remove(id);
            pruned += 1;
        }
        if pruned > 0 {
            self.metrics
                .lock()
                .unwrap()
                .add("aprofd.jobs.gc_pruned", pruned as u64);
        }
        pruned
    }

    /// Begins the graceful drain: submissions are refused with a typed
    /// 503, running jobs finish, queued jobs stay durable on disk for
    /// the next start. Idempotent.
    pub fn begin_drain(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            self.metrics.lock().unwrap().inc("aprofd.drains");
        }
        self.cv.notify_all();
    }

    /// Whether a drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Whether the drain has finished (no job mid-run). Queued jobs do
    /// not block exit — their specs are durable and the next start
    /// resumes them.
    pub fn drain_complete(&self) -> bool {
        self.is_draining() && self.inner.lock().unwrap().running_jobs == 0
    }

    /// Spawns the worker pool (`cfg.workers` threads).
    pub fn spawn_workers(self: &Arc<Self>) -> Vec<std::thread::JoinHandle<()>> {
        (0..self.cfg.workers)
            .map(|_| {
                let d = Arc::clone(self);
                std::thread::spawn(move || d.worker_loop())
            })
            .collect()
    }

    fn worker_loop(&self) {
        loop {
            let popped = {
                let mut inner = self.inner.lock().unwrap();
                loop {
                    if let Some((tenant, id)) = inner.queue.pop_fair() {
                        inner.running_jobs += 1;
                        if let Some(e) = inner.entries.get_mut(&id) {
                            e.state = JobState::Running;
                        }
                        break Some((tenant, id));
                    }
                    if self.is_draining() {
                        break None;
                    }
                    let (guard, _) = self
                        .cv
                        .wait_timeout(inner, Duration::from_millis(100))
                        .unwrap();
                    inner = guard;
                }
            };
            let Some((tenant, id)) = popped else {
                return;
            };
            self.publish_depth();
            let outcome = self.run_job(&id);
            {
                let mut inner = self.inner.lock().unwrap();
                inner.queue.finished(&tenant);
                inner.running_jobs -= 1;
                if let Some(e) = inner.entries.get_mut(&id) {
                    match outcome {
                        Ok(summary) => {
                            e.state = JobState::Done;
                            e.summary = Some(summary);
                        }
                        Err(msg) => e.state = JobState::Failed(msg),
                    }
                }
            }
            let mut m = self.metrics.lock().unwrap();
            m.inc("aprofd.jobs.finished");
            drop(m);
            self.gc();
            self.publish_depth();
            self.cv.notify_all();
        }
    }

    /// Runs (or resumes) one job to its artifacts. Every failure mode
    /// the sweep itself can absorb — panics, deadlines, budgets,
    /// transient faults — is already the supervisor's business; only
    /// setup-level failures (journal unusable, artifact I/O) fail the
    /// job, and those are recorded durably in the `.failed` marker.
    fn run_job(&self, id: &str) -> Result<JobSummary, String> {
        let spec = {
            let inner = self.inner.lock().unwrap();
            match inner.entries.get(id) {
                Some(e) => e.spec.clone(),
                None => return Err("job vanished from the store".to_string()),
            }
        };
        let sweep_spec = spec.sweep_spec();
        let mut opts = spec.supervisor_options();
        if spec.trace_dir {
            // Shards are a job artifact: they live next to the journal
            // and report, survive restarts, and are removed with the
            // job (DELETE, tombstone sweep, retention GC).
            opts.trace_dir = Some(self.job_path(id, "shards"));
            opts.trace_io = self.cfg.host_io.clone();
        }
        let journal_path = self.job_path(id, "journal");

        let io = self.cfg.host_io.clone();

        let journal_bytes = std::fs::metadata(&journal_path)
            .map(|m| m.len())
            .unwrap_or(0);
        let (result, resumed) = if journal_bytes > 0 {
            match resume_sweep_with_io(&sweep_spec, &opts, &journal_path, &profile_cell, &io) {
                Ok((result, report)) => {
                    let mut m = self.metrics.lock().unwrap();
                    m.inc("aprofd.jobs.resumed");
                    m.merge(&report.metrics)
                        .map_err(|e| format!("resume metrics merge: {e}"))?;
                    drop(m);
                    (result, true)
                }
                Err(e) => {
                    let msg = render_error_chain(&e);
                    let _ = atomic_write_with(&io, &self.job_path(id, "failed"), &msg);
                    return Err(msg);
                }
            }
        } else {
            let mut writer = JournalWriter::create_with(&io, &journal_path)
                .map_err(|e| self.fail_job(id, format!("journal create: {e}")))?;
            (
                run_supervised_with(&sweep_spec, &opts, Some(&mut writer), &profile_cell),
                false,
            )
        };

        let summary = JobSummary {
            attempts: result.attempts(),
            retries: result.retries(),
            quarantined: result.quarantined.len() as u64,
            cells: result.cells.len() as u64,
            fingerprint: result.fingerprint(),
        };
        let report_text = result.merged_report_text();
        let metrics_json = result.merged_metrics().to_json();
        let bench = SweepBench {
            jobs: spec.jobs,
            resumed,
            families: vec![FamilyBench::from_resumed(result)],
        };
        let write = |suffix: &str, contents: &str| {
            atomic_write_with(&io, &self.job_path(id, suffix), contents)
                .map_err(|e| self.fail_job(id, format!("artifact `{suffix}`: {e}")))
        };
        write("bench.json", &bench.to_json())?;
        write("report.txt", &report_text)?;
        write("metrics.json", &metrics_json)?;
        write("done", &summary.to_text())?;
        Ok(summary)
    }

    /// Records a job failure durably and returns the message (for use
    /// as the in-memory state). Best-effort on purpose: the failure may
    /// *be* a full disk, and the partial outcome is already flushed in
    /// the journal — the in-memory state and restart-resume both carry
    /// the job regardless.
    fn fail_job(&self, id: &str, msg: String) -> String {
        let _ = atomic_write_with(&self.cfg.host_io, &self.job_path(id, "failed"), &msg);
        msg
    }

    fn publish_depth(&self) {
        let (queued, running) = {
            let inner = self.inner.lock().unwrap();
            (inner.queue.queued(), inner.running_jobs)
        };
        let mut m = self.metrics.lock().unwrap();
        m.set_gauge("aprofd.queue.depth", queued as u64);
        m.set_gauge("aprofd.jobs.running", running as u64);
    }

    // ------------------------------------------------------------------
    // Endpoints
    // ------------------------------------------------------------------

    /// Routes one request. Pure with respect to the connection — tests
    /// call this directly without a socket.
    pub fn handle(&self, req: &Request) -> Response {
        self.metrics.lock().unwrap().inc("aprofd.http.requests");
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => self.healthz(),
            ("GET", "/metrics") => Response::ok(self.metrics.lock().unwrap().to_prometheus()),
            ("POST", "/jobs") => self.submit(&req.body),
            ("POST", "/shutdown") => {
                self.begin_drain();
                Response::ok("draining\n")
            }
            ("GET", path) => {
                if let Some(rest) = path.strip_prefix("/jobs/") {
                    match rest.split_once('/') {
                        None => self.job_status(rest),
                        Some((id, "report")) => self.job_report(id, req.query_u64("since")),
                        Some((id, "metrics")) => self.job_metrics(id),
                        Some(_) => Response::text(404, "not found\n"),
                    }
                } else {
                    Response::text(404, "not found\n")
                }
            }
            _ => Response::text(404, "not found\n"),
        }
    }

    fn healthz(&self) -> Response {
        let inner = self.inner.lock().unwrap();
        let done = inner
            .entries
            .values()
            .filter(|e| e.state == JobState::Done)
            .count();
        Response::ok(format!(
            "ok\nqueued {}\nrunning {}\ndone {}\njobs {}\ndraining {}\n",
            inner.queue.queued(),
            inner.running_jobs,
            done,
            inner.entries.len(),
            self.is_draining() as u8,
        ))
    }

    /// Admission: parse → validate → durably persist the spec → queue.
    /// The bounded queue makes the refusal typed and explicit; nothing
    /// about a shed submission is retained.
    fn submit(&self, body: &str) -> Response {
        if self.is_draining() {
            self.metrics
                .lock()
                .unwrap()
                .inc("aprofd.jobs.refused_draining");
            return Response::shed(503, 1000, "draining: submissions refused; retry later\n");
        }
        let spec = match JobSpec::parse(body) {
            Ok(s) => s,
            Err(e) => {
                self.metrics
                    .lock()
                    .unwrap()
                    .inc("aprofd.jobs.rejected_spec");
                return Response::text(400, format!("rejected: {e}\n"));
            }
        };
        let (id, decision) = {
            let mut inner = self.inner.lock().unwrap();
            let submitted = inner.counter + 1;
            let id = job_id(&spec, submitted);
            let decision = inner.queue.offer(&spec.tenant, &id);
            if decision == Admission::Queued {
                // Durability point: acknowledge only after the spec is
                // atomically on disk. Failure to persist is a typed
                // disk-full shed: the queue slot is withdrawn and the
                // counter stays put, so the retried submission mints
                // the *same* deterministic ID once space returns.
                let spec_text = format!("{}submitted {submitted}\n", spec.canonical_text());
                if let Err(e) =
                    atomic_write_with(&self.cfg.host_io, &self.job_path(&id, "spec"), &spec_text)
                {
                    inner.queue.cancel(&spec.tenant, &id);
                    drop(inner);
                    self.metrics
                        .lock()
                        .unwrap()
                        .inc("aprofd.jobs.shed_disk_full");
                    self.publish_depth();
                    return Response::shed(
                        507,
                        DISK_FULL_RETRY_MS,
                        format!(
                            "shed: state disk unavailable ({e}); retry after {DISK_FULL_RETRY_MS} ms\n"
                        ),
                    );
                }
                inner.counter = submitted;
                inner.entries.insert(
                    id.clone(),
                    JobEntry {
                        spec: spec.clone(),
                        submitted,
                        state: JobState::Queued,
                        resumed: false,
                        summary: None,
                    },
                );
            }
            (id, decision)
        };
        let mut m = self.metrics.lock().unwrap();
        match decision {
            Admission::Queued => {
                m.inc("aprofd.jobs.submitted");
                drop(m);
                self.publish_depth();
                self.cv.notify_all();
                Response::ok(format!("{id}\n"))
            }
            Admission::ShedFull {
                queued,
                retry_after_ms,
            } => {
                m.inc("aprofd.jobs.shed_full");
                Response::shed(
                    429,
                    retry_after_ms,
                    format!(
                        "shed: queue full ({queued} queued); retry after {retry_after_ms} ms\n"
                    ),
                )
            }
            Admission::ShedTenant {
                queued,
                retry_after_ms,
            } => {
                m.inc("aprofd.jobs.shed_tenant");
                Response::shed(
                    429,
                    retry_after_ms,
                    format!(
                        "shed: tenant quota exhausted ({queued} queued); retry after {retry_after_ms} ms\n"
                    ),
                )
            }
        }
    }

    fn job_status(&self, id: &str) -> Response {
        let inner = self.inner.lock().unwrap();
        let Some(e) = inner.entries.get(id) else {
            return Response::text(404, format!("no such job `{id}`\n"));
        };
        let total = e.spec.grid_len();
        let mut out = String::new();
        let _ = writeln!(out, "id {id}");
        let _ = writeln!(out, "tenant {}", e.spec.tenant);
        let _ = writeln!(out, "family {}", e.spec.family);
        let _ = writeln!(out, "state {}", e.state.as_str());
        let _ = writeln!(out, "submitted {}", e.submitted);
        let _ = writeln!(out, "resumed {}", e.resumed as u8);
        match (&e.state, &e.summary) {
            (JobState::Done, Some(s)) => {
                let _ = writeln!(out, "cells {}/{total}", s.cells);
                let _ = writeln!(out, "attempts {}", s.attempts);
                let _ = writeln!(out, "retries {}", s.retries);
                let _ = writeln!(out, "quarantined {}", s.quarantined);
                let _ = writeln!(out, "fingerprint {:016x}", s.fingerprint);
            }
            (JobState::Failed(msg), _) => {
                let _ = writeln!(out, "error {}", msg.replace('\n', " "));
            }
            _ => {
                // Live accounting straight from the journal: cells land
                // there (fsynced) the moment they finish.
                drop(inner);
                let (cells, attempts, quarantined) = self.live_accounting(id);
                let _ = writeln!(out, "cells {cells}/{total}");
                let _ = writeln!(out, "attempts {attempts}");
                let _ = writeln!(out, "quarantined {quarantined}");
            }
        }
        Response::ok(out)
    }

    /// Salvages the job's journal (tolerating the torn tail of a live
    /// append) and decodes its completed cells in record order.
    fn live_cells(&self, id: &str) -> Vec<(usize, SweepCell)> {
        let Ok(text) = std::fs::read_to_string(self.job_path(id, "journal")) else {
            return Vec::new();
        };
        let salvaged = journal::from_text_lossy(&text);
        let mut cells = Vec::new();
        for rec in &salvaged.records {
            let mut tok = rec.meta.split(' ');
            if tok.next() != Some("cell") {
                continue;
            }
            let (Some(_family), Some(idx), Some("ok")) = (tok.next(), tok.next(), tok.next())
            else {
                continue;
            };
            let Ok(idx) = idx.parse::<usize>() else {
                continue;
            };
            if let Ok(cell) = decode_cell_payload(&rec.payload) {
                cells.push((idx, cell));
            }
        }
        cells
    }

    fn live_accounting(&self, id: &str) -> (usize, u64, usize) {
        let Ok(text) = std::fs::read_to_string(self.job_path(id, "journal")) else {
            return (0, 0, 0);
        };
        let salvaged = journal::from_text_lossy(&text);
        let mut cells = 0usize;
        let mut quarantined = 0usize;
        let mut attempts = 0u64;
        for rec in &salvaged.records {
            if !rec.meta.starts_with("cell ") {
                continue;
            }
            if rec.meta.ends_with(" ok") {
                cells += 1;
                if let Ok(c) = decode_cell_payload(&rec.payload) {
                    attempts += c.attempts as u64;
                }
            } else if rec.meta.ends_with(" quarantined") {
                quarantined += 1;
            }
        }
        (cells, attempts, quarantined)
    }

    /// Snapshot (`/jobs/{id}/report`) and delta
    /// (`/jobs/{id}/report?since=N`) rendering of a live run, straight
    /// from the journal. Done jobs serve their final artifact.
    fn job_report(&self, id: &str, since: Option<u64>) -> Response {
        let (state, family, total) = {
            let inner = self.inner.lock().unwrap();
            let Some(e) = inner.entries.get(id) else {
                return Response::text(404, format!("no such job `{id}`\n"));
            };
            (e.state.clone(), e.spec.family.clone(), e.spec.grid_len())
        };
        if since.is_none() && state == JobState::Done {
            return match std::fs::read_to_string(self.job_path(id, "report.txt")) {
                Ok(text) => Response::ok(text),
                Err(e) => Response::text(500, format!("artifact unreadable: {e}\n")),
            };
        }
        let cells = self.live_cells(id);
        let mut out = String::new();
        let _ = writeln!(out, "cursor {}", cells.len());
        let skip = since.unwrap_or(0) as usize;
        for (idx, cell) in cells.iter().skip(skip) {
            let _ = writeln!(
                out,
                "cell {idx} size {} seed {} attempts {} shadow_bytes {}",
                cell.size, cell.seed, cell.attempts, cell.shadow_bytes
            );
        }
        if since.is_none() {
            // Full snapshot: the partial drms plot of the family's focus
            // routine (worst-case cost per input, mirroring
            // `SweepResult::focus_plot`) plus the current fit,
            // re-rendered on every poll as the model converges.
            let mut worst: BTreeMap<u64, u64> = BTreeMap::new();
            if let Some(focus) = family_workload(&family, 1).and_then(|w| w.focus) {
                for (_, cell) in &cells {
                    let profile = cell.report.merged_routine(focus);
                    for (input, cost) in CostPlot::of(&profile, InputMetric::Drms).points {
                        let e = worst.entry(input).or_insert(cost);
                        *e = (*e).max(cost);
                    }
                }
            }
            let points: Vec<(u64, u64)> = worst.into_iter().collect();
            out.push_str(&sweep_snapshot(&family, &points, cells.len(), total));
        }
        Response::ok(out)
    }

    /// Streams the job's merged metrics as Prometheus text, rebuilt
    /// from the journal so live and finished jobs share one code path.
    /// A bucket-layout mismatch between cells surfaces as the typed
    /// [`drms::Error::Metrics`] chain, not a panic.
    fn job_metrics(&self, id: &str) -> Response {
        if !self.inner.lock().unwrap().entries.contains_key(id) {
            return Response::text(404, format!("no such job `{id}`\n"));
        }
        let mut merged = Metrics::new();
        for (_, cell) in self.live_cells(id) {
            if let Err(e) = merged.merge(&cell.metrics) {
                let err = drms::Error::from(e);
                return Response::text(500, render_error_chain(&err));
            }
        }
        Response::ok(merged.to_prometheus())
    }
}

/// Removes every `job-<id>.*` file. Returns whether anything existed.
fn remove_job_files(state_dir: &std::path::Path, id: &str) -> bool {
    let mut removed = false;
    for suffix in [
        "spec",
        "journal",
        "bench.json",
        "report.txt",
        "metrics.json",
        "done",
        "failed",
    ] {
        let path = state_dir.join(format!("job-{id}.{suffix}"));
        if std::fs::remove_file(path).is_ok() {
            removed = true;
        }
    }
    // The trace-shard spill directory (`trace_dir on` jobs).
    if std::fs::remove_dir_all(state_dir.join(format!("job-{id}.shards"))).is_ok() {
        removed = true;
    }
    removed
}

/// Renders an error with its `source()` chain, one frame per line.
fn render_error_chain(err: &dyn std::error::Error) -> String {
    let mut out = format!("{err}\n");
    let mut src = err.source();
    while let Some(e) = src {
        let _ = writeln!(out, "  caused by: {e}");
        src = e.source();
    }
    out
}

/// Serves `daemon` on `listener` until the drain completes: accepts
/// connections (each handled on its own thread, bounded by
/// [`DaemonConfig::max_connections`] — excess connections get an
/// immediate 503 shed), refuses new submissions while draining, and
/// returns once no job is mid-run. Both the `aprofd` binary and the
/// in-process tests run this.
pub fn serve(daemon: Arc<Daemon>, listener: TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let active = Arc::new(AtomicUsize::new(0));
    let max_connections = daemon.cfg.max_connections.max(1);
    loop {
        if daemon.drain_complete() {
            return Ok(());
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                if active.load(Ordering::SeqCst) >= max_connections {
                    // Shed at the door: a deterministic 503 beats an
                    // unbounded thread pile-up. The hint is short — the
                    // cap clears as fast as one request round-trips.
                    daemon
                        .metrics
                        .lock()
                        .unwrap()
                        .inc("aprofd.http.conn_refused");
                    let _ = stream.set_write_timeout(Some(daemon.cfg.read_timeout));
                    let _ = crate::http::write_response(
                        &mut stream,
                        &Response::shed(503, 250, "busy: connection limit reached; retry\n"),
                    );
                    continue;
                }
                active.fetch_add(1, Ordering::SeqCst);
                let d = Arc::clone(&daemon);
                let a = Arc::clone(&active);
                std::thread::spawn(move || {
                    handle_connection(&d, stream);
                    a.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
}

fn handle_connection(daemon: &Daemon, stream: TcpStream) {
    let deadline = daemon.cfg.read_timeout;
    let _ = stream.set_read_timeout(Some(deadline));
    let _ = stream.set_write_timeout(Some(deadline));
    let mut write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = std::io::BufReader::new(stream);
    let response = match crate::http::read_request(&mut reader) {
        Ok(req) => daemon.handle(&req),
        Err(e @ RequestError::TooLarge(_)) => {
            daemon.metrics.lock().unwrap().inc("aprofd.http.too_large");
            Response::text(413, format!("{e}\n"))
        }
        Err(e @ RequestError::Malformed(_)) => Response::text(400, format!("{e}\n")),
        Err(RequestError::Timeout) => {
            // Slow loris: the read deadline expired mid-request. Answer
            // typed (best-effort — the peer may be gone) and close; the
            // worker thread is freed either way.
            daemon.metrics.lock().unwrap().inc("aprofd.http.timeouts");
            Response::text(408, "request read deadline expired\n")
        }
        Err(RequestError::Closed | RequestError::Io(_)) => return, // nothing to answer
    };
    let _ = crate::http::write_response(&mut write_half, &response);
}
